// Ablation — explicit Euler-Maruyama (paper eq. 18) vs implicit
// (stochastic backward Euler).
//
// DESIGN.md question: what does the paper's explicit scheme cost in
// stability?  The study sweeps the step size through the explicit
// stability limit dt = 2 tau on the noisy RC bed: the explicit scheme
// blows up past it, the implicit variant stays bounded; below the limit
// the two agree.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/em_engine.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

int main() {
    bench::banner("Ablation: EM scheme",
                  "explicit Euler-Maruyama (eq. 18) vs implicit "
                  "backward-Euler variant — stability across step sizes");

    // tau = R C = 1 ns; drive to 1 V; mild noise.
    Circuit ckt = refckt::noisy_rc(1e3, 1e-12, 1e-3, 2e-9);
    const mna::MnaAssembler assembler(ckt);
    constexpr double tau = 1e-9;
    constexpr double t_stop = 50e-9;

    analysis::Table t({"dt/tau", "explicit |V(end)|", "implicit |V(end)|",
                       "explicit bounded?"});
    for (const double ratio : {0.1, 0.5, 1.0, 1.9, 2.1, 2.5}) {
        const double dt = ratio * tau;
        engines::EmOptions opt;
        opt.t_stop = t_stop;
        opt.dt = dt;

        opt.scheme = engines::EmScheme::explicit_em;
        const engines::EmEngine exp_engine(assembler, opt);
        stochastic::Rng rng_a(5);
        const double v_exp = exp_engine.run_path(rng_a)
                                 .node_waves[0]
                                 .value()
                                 .back();

        opt.scheme = engines::EmScheme::implicit_be;
        const engines::EmEngine imp_engine(assembler, opt);
        stochastic::Rng rng_b(5);
        const double v_imp = imp_engine.run_path(rng_b)
                                 .node_waves[0]
                                 .value()
                                 .back();

        t.add_row({analysis::Table::num(ratio, 3),
                   analysis::Table::num(std::abs(v_exp), 4),
                   analysis::Table::num(std::abs(v_imp), 4),
                   std::abs(v_exp) < 5.0 ? "yes" : "NO (unstable)"});
    }
    t.print(std::cout);
    std::cout << "\nShape to check: the explicit rows diverge once "
                 "dt/tau > 2 (the forward-Euler stability limit); the "
                 "implicit rows stay near the 1 V steady state at every "
                 "step size.\n";
    return 0;
}
