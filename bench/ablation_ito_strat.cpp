// Ablation — Ito vs Stratonovich sums (paper eqs. 15 and 16).
//
// Paper Sec. 4.2: "Equation (15) and (16) give markedly different
// answers.  Even with dt -> 0, the mismatch of the two equations does
// not go away."  The study integrates W dW with both conventions over a
// refinement ladder: the per-convention estimates converge to their OWN
// closed forms, and the gap converges to T/2 instead of vanishing.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "stochastic/ito.hpp"
#include "stochastic/stats.hpp"

using namespace nanosim;
using namespace nanosim::stochastic;

int main() {
    bench::banner("Ablation: eq. (15) vs eq. (16)",
                  "Ito (left-endpoint) vs Stratonovich (midpoint) "
                  "stochastic sums of W dW over a dt-refinement ladder");

    constexpr double horizon = 1.0;
    constexpr int reps = 600;

    analysis::Table t({"steps N", "E[Ito - closed form]",
                       "E[Strat - closed form]", "E[Strat - Ito]",
                       "expected gap"});
    for (const std::size_t steps : {64u, 256u, 1024u, 4096u}) {
        RunningStats ito_err;
        RunningStats strat_err;
        RunningStats gap;
        Rng rng(42);
        for (int rep = 0; rep < reps; ++rep) {
            const WienerPath w(rng, horizon, steps);
            const auto r = integrate_w_dw(w);
            ito_err.add(r.ito - r.ito_exact);
            strat_err.add(r.stratonovich - r.stratonovich_exact);
            gap.add(r.stratonovich - r.ito);
        }
        t.add_row({std::to_string(steps),
                   analysis::Table::num(ito_err.mean(), 3),
                   analysis::Table::num(strat_err.mean(), 3),
                   analysis::Table::num(gap.mean(), 4),
                   analysis::Table::num(horizon / 2.0, 4)});
    }
    t.print(std::cout);
    std::cout << "\nShape to check: the first two columns shrink toward 0 "
                 "with N (each convention converges to its own closed "
                 "form) while the gap column stays at T/2 = 0.5 — the "
                 "paper's point that the sampling convention changes the "
                 "answer, which is why Nano-Sim pins the EM engine to "
                 "the Ito convention of eq. (15).\n";
    return 0;
}
