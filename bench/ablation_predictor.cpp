// Ablation — the first-order Taylor conductance predictor (eq. 5).
//
// DESIGN.md question: does predicting G_eq(n+1) = G_eq(n) + h/2 G'_eq(n)
// forward actually matter, or would the stale chord G_eq(n) do?  The
// study runs the FET-RTD inverter and the RTD chain with the predictor
// on and off across error targets.
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

namespace {

void study(const std::string& name, Circuit& ckt, double t_stop) {
    bench::section(name);
    const mna::MnaAssembler assembler(ckt);
    engines::SwecTranOptions ref_opt;
    ref_opt.t_stop = t_stop;
    ref_opt.adaptive = false;
    ref_opt.dt_init = t_stop / 4000.0;
    const auto ref = engines::run_tran_swec(assembler, ref_opt);

    analysis::Table t({"eps", "predictor", "steps", "flops",
                       "waveform err [V]"});
    for (const double eps : {0.05, 0.1, 0.2}) {
        for (const bool use : {true, false}) {
            engines::SwecTranOptions opt;
            opt.t_stop = t_stop;
            opt.eps = eps;
            opt.use_predictor = use;
            const auto r = engines::run_tran_swec(assembler, opt);
            t.add_row({analysis::Table::num(eps),
                       use ? "eq. (5) ON" : "OFF (stale chord)",
                       std::to_string(r.steps_accepted),
                       std::to_string(r.flops.total()),
                       analysis::Table::num(
                           analysis::measure::max_abs_error(
                               r.node_waves[0], ref.node_waves[0]),
                           4)});
        }
    }
    t.print(std::cout);
}

} // namespace

int main() {
    bench::banner("Ablation: eq. (5) Taylor predictor",
                  "SWEC accuracy/cost with the conductance predictor "
                  "enabled vs disabled");
    {
        Circuit inv = refckt::fet_rtd_inverter();
        study("FET-RTD inverter, 200 ns", inv, 200e-9);
    }
    {
        refckt::ChainSpec spec;
        spec.stages = 8;
        Circuit chain = refckt::rtd_chain(spec);
        study("RTD chain x8, 100 ns", chain, 100e-9);
    }
    std::cout << "\nShape to check: at equal eps the predictor lowers the "
                 "waveform error (or allows the same error with larger "
                 "steps); the gap widens as eps grows.\n";
    return 0;
}
