// Nano-Sim bench harness — shared output helpers.
//
// Every binary in bench/ regenerates one table or figure of the paper:
// it prints a banner naming the artifact, the data series as aligned
// tables/CSV, and an ASCII rendering of the figure so the *shape* (peaks,
// NDR valleys, switching edges) is visible directly in bench_output.txt.
#ifndef NANOSIM_BENCH_BENCH_COMMON_HPP
#define NANOSIM_BENCH_BENCH_COMMON_HPP

#include <iostream>
#include <string>

#include "analysis/ascii_plot.hpp"
#include "analysis/table.hpp"
#include "analysis/waveform.hpp"

namespace nanosim::bench {

/// Banner naming the reproduced artifact.
inline void banner(const std::string& artifact, const std::string& what) {
    std::cout << '\n'
              << std::string(74, '=') << '\n'
              << "Nano-Sim reproduction | " << artifact << '\n'
              << what << '\n'
              << std::string(74, '=') << '\n';
}

/// Section divider inside one bench.
inline void section(const std::string& title) {
    std::cout << '\n' << "---- " << title << " ----\n";
}

/// Plot helper with sane bench defaults.
inline void plot(const std::vector<analysis::Waveform>& waves,
                 const std::string& title, const std::string& x_label,
                 const std::string& y_label) {
    analysis::PlotOptions opt;
    opt.title = title;
    opt.x_label = x_label;
    opt.y_label = y_label;
    opt.width = 72;
    opt.height = 18;
    analysis::ascii_plot(std::cout, waves, opt);
}

} // namespace nanosim::bench

#endif // NANOSIM_BENCH_BENCH_COMMON_HPP
