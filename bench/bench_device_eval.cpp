// Nano-Sim bench — device-evaluation fast path: StampProgram + tables.
//
//   $ ./bench_device_eval [mc_runs] [out.json] [mesh]
//
// Runs three workloads —
//
//   * fet_rtd_inverter   — 100 ns SWEC transient (dense solver path),
//   * rtd_mesh MxM       — 20 ns adaptive SWEC transient on an RTD-
//                          loaded RC mesh (sparse path),
//   * rtd_mesh MxM MC    — mc_runs-trial Monte-Carlo on an MxM mesh
//                          with an RTD at EVERY node (the device-eval
//                          stress version of BENCH_session.json's
//                          workload)
//
// — through three device-evaluation configurations:
//
//   * legacy   — the seed (pre-fast-path) per-step loop, reconstructed
//     in-binary the way bench_session_reuse reconstructs the PR-3-era
//     solver: SystemCache with use_stamp_program = false (per-device
//     virtual dispatch through the Stamper interface, binary-searched
//     slot lookups, per-step MnaBuilder rhs assembly) over the seed's
//     column-vector LU factor storage (linalg::FactorStorage::columns);
//   * program  — the default compiled StampProgram path: flat SoA
//     per-class evaluation + precomputed-slot scatters, exact closed-form
//     models.  Gated BIT-IDENTICAL to legacy;
//   * tables   — program + tabulated chord models (cubic-Hermite chord /
//     dG/dV lookups, closed-form fallback outside the range).  Gated to
//     <= 1e-6 relative waveform deviation and faster than `program` on
//     the Monte-Carlo workload.
//
// Exit code 1 when any gate fails: exact-path bit-identity (always),
// table accuracy (always), program >= 1.3x over legacy on the MC mesh
// workload and tables faster than program (full runs only; the CI smoke
// run with small mc_runs skips the timing gates).
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "devices/sources.hpp"
#include "engines/dc_swec.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/tran_swec.hpp"
#include "mna/system_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace nanosim;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// Which device-evaluation configuration a run uses.
enum class Path { legacy, program, tables };

const char* path_name(Path p) {
    switch (p) {
    case Path::legacy: return "legacy";
    case Path::program: return "program";
    case Path::tables: return "tables";
    }
    return "?";
}

mna::SystemCache::Options cache_options(Path p) {
    mna::SystemCache::Options o;
    o.use_stamp_program = p != Path::legacy;
    return o;
}

/// One workload run: waveforms + wall time + the cache's step split.
struct RunResult {
    std::vector<analysis::Waveform> waves; ///< node waves or {mean, stddev}
    double ms = 0.0;
    mna::SystemCache::Stats stats;
};

struct PathReport {
    double ms = 0.0;
    double eval_ms = 0.0;
    double stamp_ms = 0.0;
    double factor_ms = 0.0;
    double solve_ms = 0.0;
    std::size_t tables_built = 0;
};

struct WorkloadReport {
    std::string name;
    std::size_t unknowns = 0;
    PathReport legacy, program, tables;
    double dev_exact = 0.0;   ///< program vs legacy (bitwise; 0 required)
    bool grids_identical = false; ///< program step grid == legacy grid
    double dev_tables = 0.0;  ///< tables vs legacy, relative
    double speedup_program = 0.0; ///< legacy / program
    double speedup_tables = 0.0;  ///< legacy / tables
};

PathReport to_report(const RunResult& r) {
    PathReport p;
    p.ms = r.ms;
    p.eval_ms = r.stats.eval_s * 1e3;
    p.stamp_ms = r.stats.stamp_s * 1e3;
    p.factor_ms = r.stats.factor_s * 1e3;
    p.solve_ms = r.stats.solve_s * 1e3;
    p.tables_built = r.stats.tables_built;
    return p;
}

/// Bitwise comparison of two waveform sets (same step sequences, same
/// values — the exact-path contract).  Returns the max |a-b| (0.0 when
/// bit-identical) and sets `same_grid`.
double exact_deviation(const std::vector<analysis::Waveform>& a,
                       const std::vector<analysis::Waveform>& b,
                       bool& same_grid) {
    same_grid = a.size() == b.size();
    double dev = 0.0;
    for (std::size_t w = 0; same_grid && w < a.size(); ++w) {
        if (a[w].size() != b[w].size()) {
            same_grid = false;
            break;
        }
        for (std::size_t i = 0; i < a[w].size(); ++i) {
            if (std::memcmp(&a[w].time()[i], &b[w].time()[i],
                            sizeof(double)) != 0) {
                same_grid = false;
            }
            dev = std::max(dev,
                           std::abs(a[w].value_at(i) - b[w].value_at(i)));
        }
    }
    if (!same_grid) {
        dev = std::max(dev, 1.0); // structural mismatch: force a failure
    }
    return dev;
}

/// Relative deviation of `a` from reference `b`, sampled on a uniform
/// grid (the tabulated path may take a different step sequence), scaled
/// by each waveform's magnitude.
double relative_deviation(const std::vector<analysis::Waveform>& a,
                          const std::vector<analysis::Waveform>& b) {
    double worst = 0.0;
    for (std::size_t w = 0; w < a.size() && w < b.size(); ++w) {
        const double t0 = b[w].t_begin();
        const double t1 = b[w].t_end();
        const double scale = std::max(
            {std::abs(b[w].max_value()), std::abs(b[w].min_value()), 1e-12});
        constexpr int samples = 400;
        for (int s = 0; s <= samples; ++s) {
            const double t = t0 + (t1 - t0) * s / samples;
            worst = std::max(worst,
                             std::abs(a[w].at(t) - b[w].at(t)) / scale);
        }
    }
    return worst;
}

// ---- workloads --------------------------------------------------------

Circuit make_inverter() {
    return refckt::fet_rtd_inverter();
}

/// MxM RC mesh with an RTD load at EVERY node — the "RTD mesh" of the
/// paper-style statistical workloads (the RTD stamps are node-diagonal,
/// so the extra devices stress model evaluation, not factorisation).
Circuit make_mesh(int mesh) {
    refckt::MeshSpec spec;
    spec.rows = mesh;
    spec.cols = mesh;
    spec.rtd_stride = 1;
    Circuit ckt = refckt::rc_mesh(spec);
    const std::string center = "n" + std::to_string(mesh / 2) + "_" +
                               std::to_string(mesh / 2);
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, ckt.find_node(center),
                                1e-9);
    return ckt;
}

RunResult run_tran(const mna::MnaAssembler& assembler, double t_stop,
                   Path path) {
    mna::SystemCache cache(assembler, cache_options(path));
    engines::SwecTranOptions o;
    o.t_stop = t_stop;
    o.tables.enabled = path == Path::tables;
    const auto t0 = Clock::now();
    engines::TranResult res = engines::run_tran_swec(assembler, o, nullptr,
                                                     &cache);
    RunResult out;
    out.ms = ms_since(t0);
    out.waves = std::move(res.node_waves);
    out.stats = cache.stats();
    return out;
}

RunResult run_mc(const mna::MnaAssembler& assembler, NodeId node,
                 int mc_runs, double t_stop, double noise_dt, Path path) {
    mna::SystemCache cache(assembler, cache_options(path));
    // Warm start every trial from the shared operating point (computed
    // once per path through the same cache; excluded from the timing).
    const engines::DcResult op =
        engines::solve_op_swec(assembler, {}, 0.0, 1.0, &cache);

    engines::McOptions mc;
    mc.runs = mc_runs;
    mc.t_stop = t_stop;
    mc.noise_dt = noise_dt;
    mc.grid_points = 26;
    // Default (paper-faithful) per-trial configuration: the eq. (12)
    // adaptive controller stays ON (run_monte_carlo caps dt_max at the
    // noise bandwidth), so every step pays the full SWEC evaluation the
    // controller needs — chords, rates and step bounds per device.
    mc.tran.start_from_dc = false;
    mc.tran.initial = op.x;
    mc.tran.dt_init = noise_dt;
    mc.tran.tables.enabled = path == Path::tables;

    stochastic::Rng rng(1);
    const mna::SystemCache::Stats before = cache.stats();
    const auto t0 = Clock::now();
    engines::McResult res =
        engines::run_monte_carlo(assembler, mc, rng, node, nullptr, &cache);
    RunResult out;
    out.ms = ms_since(t0);
    out.waves.push_back(std::move(res.mean));
    out.waves.push_back(std::move(res.stddev));
    out.stats = cache.stats();
    // Report the MC phase only (the op march warmed the same cache).
    out.stats.eval_s -= before.eval_s;
    out.stats.stamp_s -= before.stamp_s;
    out.stats.factor_s -= before.factor_s;
    out.stats.solve_s -= before.solve_s;
    return out;
}

void print_path(const char* label, const PathReport& p) {
    std::cout << "  " << std::left << std::setw(8) << label << std::right
              << std::fixed << std::setprecision(2) << std::setw(9) << p.ms
              << " ms | eval " << std::setw(8) << p.eval_ms << " | stamp "
              << std::setw(8) << p.stamp_ms << " | factor " << std::setw(8)
              << p.factor_ms << " | solve " << std::setw(8) << p.solve_ms;
    if (p.tables_built > 0) {
        std::cout << " | " << p.tables_built << " tables";
    }
    std::cout << "\n";
}

} // namespace

int main(int argc, char** argv) {
    const int mc_runs = argc > 1 ? std::stoi(argv[1]) : 100;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_device_eval.json");
    const int mesh = argc > 3 ? std::stoi(argv[3]) : 32;
    const bool full_run = mc_runs >= 50;
    constexpr double k_table_tol = 1e-6;
    constexpr double k_mc_speedup_gate = 1.3;

    nanosim::bench::banner(
        "device_eval",
        "legacy virtual stamping vs compiled StampProgram vs tabulated "
        "chord models ({inverter, mesh} transients + " +
            std::to_string(mc_runs) + "-trial mesh Monte-Carlo)");

    bool pass = true;
    std::vector<WorkloadReport> reports;

    /// Run one workload through all three paths and gate the results.
    auto evaluate = [&](const std::string& name,
                        const mna::MnaAssembler& assembler,
                        const std::function<RunResult(Path)>& run,
                        bool gate_mc_speedup) {
        nanosim::bench::section(name);
        WorkloadReport rep;
        rep.name = name;
        rep.unknowns = static_cast<std::size_t>(assembler.unknowns());

        const RunResult legacy = run(Path::legacy);
        const RunResult program = run(Path::program);
        const RunResult tables = run(Path::tables);
        rep.legacy = to_report(legacy);
        rep.program = to_report(program);
        rep.tables = to_report(tables);
        rep.dev_exact =
            exact_deviation(program.waves, legacy.waves, rep.grids_identical);
        rep.dev_tables = relative_deviation(tables.waves, legacy.waves);
        rep.speedup_program =
            program.ms > 0.0 ? legacy.ms / program.ms : 0.0;
        rep.speedup_tables = tables.ms > 0.0 ? legacy.ms / tables.ms : 0.0;

        std::cout << "  " << rep.unknowns << " unknowns\n";
        print_path("legacy", rep.legacy);
        print_path("program", rep.program);
        print_path("tables", rep.tables);
        std::cout << std::scientific << std::setprecision(2)
                  << "  program vs legacy: dev " << rep.dev_exact
                  << (rep.grids_identical ? " (grids identical)"
                                          : " (GRIDS DIFFER)")
                  << " | tables vs legacy: rel dev " << rep.dev_tables
                  << std::fixed << std::setprecision(2) << " | speedup "
                  << rep.speedup_program << "x (program), "
                  << rep.speedup_tables << "x (tables)\n";

        if (rep.dev_exact != 0.0 || !rep.grids_identical) {
            std::cout << "  FAIL: StampProgram path must be bit-identical "
                         "to legacy stamping\n";
            pass = false;
        }
        if (rep.dev_tables > k_table_tol) {
            std::cout << "  FAIL: tabulated path beyond " << k_table_tol
                      << " relative deviation\n";
            pass = false;
        }
        if (full_run && gate_mc_speedup) {
            if (rep.speedup_program < k_mc_speedup_gate) {
                std::cout << "  FAIL: program path under the "
                          << k_mc_speedup_gate << "x MC speedup gate\n";
                pass = false;
            }
            if (rep.tables.ms >= rep.program.ms) {
                std::cout << "  FAIL: tabulated path not faster than the "
                             "exact program path\n";
                pass = false;
            }
        }
        reports.push_back(std::move(rep));
    };

    {
        const Circuit ckt = make_inverter();
        const mna::MnaAssembler assembler(ckt);
        evaluate("fet_rtd_inverter_tran", assembler,
                 [&](Path p) { return run_tran(assembler, 100e-9, p); },
                 /*gate_mc_speedup=*/false);
    }
    {
        const Circuit ckt = make_mesh(mesh);
        const mna::MnaAssembler assembler(ckt);
        evaluate("rtd_mesh" + std::to_string(mesh) + "x" +
                     std::to_string(mesh) + "_tran",
                 assembler,
                 [&](Path p) { return run_tran(assembler, 20e-9, p); },
                 /*gate_mc_speedup=*/false);
    }
    {
        const Circuit ckt = make_mesh(mesh);
        const mna::MnaAssembler assembler(ckt);
        const std::string center = "n" + std::to_string(mesh / 2) + "_" +
                                   std::to_string(mesh / 2);
        const NodeId node = ckt.find_node(center);
        evaluate("rtd_mesh" + std::to_string(mesh) + "x" +
                     std::to_string(mesh) + "_mc" + std::to_string(mc_runs),
                 assembler,
                 [&](Path p) {
                     return run_mc(assembler, node, mc_runs, 2e-9, 2.5e-10,
                                   p);
                 },
                 /*gate_mc_speedup=*/true);
    }

    std::ofstream json(out_path);
    json << std::scientific << std::setprecision(9);
    json << "{\n  \"bench\": \"device_eval\",\n"
         << "  \"mc_runs\": " << mc_runs << ",\n"
         << "  \"mesh\": " << mesh << ",\n"
         << "  \"exact_gate\": \"bit-identical\",\n"
         << "  \"table_rel_tol\": " << k_table_tol << ",\n"
         << "  \"mc_speedup_gate\": " << k_mc_speedup_gate << ",\n"
         << "  \"timing_gates_active\": " << (full_run ? "true" : "false")
         << ",\n  \"workloads\": [\n";
    auto path_json = [&json](const char* key, const PathReport& p) {
        json << "      \"" << key << "\": {\"ms\": " << p.ms
             << ", \"eval_ms\": " << p.eval_ms << ", \"stamp_ms\": "
             << p.stamp_ms << ", \"factor_ms\": " << p.factor_ms
             << ", \"solve_ms\": " << p.solve_ms << ", \"tables_built\": "
             << p.tables_built << "},\n";
    };
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const WorkloadReport& r = reports[i];
        json << "    {\n      \"name\": \"" << r.name << "\",\n"
             << "      \"unknowns\": " << r.unknowns << ",\n";
        path_json("legacy", r.legacy);
        path_json("program", r.program);
        path_json("tables", r.tables);
        json << "      \"dev_exact\": " << r.dev_exact << ",\n"
             << "      \"grids_identical\": "
             << (r.grids_identical ? "true" : "false") << ",\n"
             << "      \"dev_tables_rel\": " << r.dev_tables << ",\n"
             << "      \"speedup_program\": " << r.speedup_program << ",\n"
             << "      \"speedup_tables\": " << r.speedup_tables << "\n    }"
             << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::cout << "\nwrote " << out_path << (pass ? " (pass)" : " (FAIL)")
              << "\n";
    return pass ? 0 : 1;
}
