// Nano-Sim bench — parallel level-scheduled numeric refactorisation.
//
//   $ ./bench_factor_parallel [grid] [out.json]
//
// Times SparseLu::refactor on k x k 2-D grid Laplacians (the mesh
// pattern of the rc_mesh / power-grid workloads) serially and on a
// worker pool at 2 and 4 threads, verifies that every thread count
// produced BIT-IDENTICAL factors and solutions, and records wall-clock
// times + speedups to BENCH_factor.json.
//
// Exit code: 0 only when (a) all thread counts were bit-identical and
// (b) the largest grid reached the 1.5x refactor speedup target at 4
// threads — gate (b) is waived automatically on hosts with fewer than 4
// hardware threads (CI smoke runners), gate (a) never is.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "runtime/execution_policy.hpp"
#include "runtime/thread_pool.hpp"

using namespace nanosim;
using Clock = std::chrono::steady_clock;

namespace {

[[nodiscard]] double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// k x k 5-point grid Laplacian with a dominant diagonal.
linalg::Triplets laplacian2d(std::size_t k) {
    const std::size_t n = k * k;
    linalg::Triplets a(n, n);
    for (std::size_t r = 0; r < k; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
            const std::size_t i = r * k + c;
            a.add(i, i, 8.0 + 0.01 * static_cast<double>(i % 7));
            if (r + 1 < k) {
                a.add(i, i + k, -1.0);
                a.add(i + k, i, -1.0);
            }
            if (c + 1 < k) {
                a.add(i, i + 1, -1.0);
                a.add(i + 1, i, -1.0);
            }
        }
    }
    return a;
}

struct SizeResult {
    std::size_t grid = 0;
    std::size_t n = 0;
    std::size_t supernodes = 0;
    std::size_t levels = 0;
    std::vector<double> ms;      // parallel to thread_counts
    bool identical = true;
};

constexpr int k_thread_counts[] = {1, 2, 4};
constexpr int k_rounds = 40;
constexpr int k_value_sets = 4;

/// Run the refactor loop for one grid size at every thread count.
SizeResult bench_size(std::size_t grid) {
    SizeResult out;
    out.grid = grid;
    out.n = grid * grid;

    const linalg::Triplets a = laplacian2d(grid);
    // Caller-order pattern (for slot-order value sets) from a natural
    // probe; the timed factorisations run under a fill-reducing ordering
    // — natural order gives a 2-D grid a chain-shaped elimination tree
    // (levels == columns, nothing to run in parallel), min-degree the
    // bushy tree the level schedule feeds on.  This mirrors the
    // SystemCache sparse path, which auto-selects the same ordering
    // family for mesh patterns.
    const linalg::SparseLu pattern_probe(a);
    const auto& col_ptr = pattern_probe.pattern_col_ptr();
    const auto& row_idx = pattern_probe.pattern_row_idx();
    const linalg::Permutation ordering =
        linalg::min_degree_ordering(grid * grid, col_ptr, row_idx);

    // Deterministic perturbed value sets in cached-pattern slot order
    // (diagonal dominance preserved): the timed loop runs the
    // allocation-free refactor(span) hot path, exactly like the
    // SystemCache per-step loop.
    std::mt19937 gen(20260809);
    std::uniform_real_distribution<double> dist(0.9, 1.1);
    std::vector<std::vector<double>> sets(k_value_sets);
    for (auto& values : sets) {
        values.resize(row_idx.size());
        for (std::size_t c = 0; c < out.n; ++c) {
            for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
                const double base =
                    row_idx[p] == c
                        ? 8.0 + 0.01 * static_cast<double>(c % 7)
                        : -1.0;
                values[p] = base * dist(gen);
            }
        }
    }

    linalg::Vector b(out.n);
    for (std::size_t i = 0; i < out.n; ++i) {
        b[i] = std::sin(static_cast<double>(i) * 0.37) + 1.5;
    }

    std::vector<double> ref_l, ref_u;
    linalg::Vector ref_x;
    for (const int threads : k_thread_counts) {
        runtime::ThreadPool pool(threads);
        linalg::SparseLu lu(a, ordering);
        if (threads > 1) {
            lu.set_refactor_pool(&pool);
        }
        out.supernodes = lu.supernode_count();
        out.levels = lu.level_count();

        bool ok = true;
        ok = ok && lu.refactor(std::span<const double>(sets[0])); // warm-up
        const auto t0 = Clock::now();
        for (int r = 0; r < k_rounds; ++r) {
            ok = ok && lu.refactor(
                           std::span<const double>(sets[r % k_value_sets]));
        }
        out.ms.push_back(ms_since(t0));
        // Land every thread count on the same final value set, then gate
        // the factors and the solution bit-for-bit against threads=1.
        ok = ok && lu.refactor(std::span<const double>(sets[0]));
        const linalg::Vector x = lu.solve(b);
        if (!ok) {
            out.identical = false;
            continue;
        }
        if (threads == 1) {
            ref_l.assign(lu.l_values().begin(), lu.l_values().end());
            ref_u.assign(lu.u_values().begin(), lu.u_values().end());
            ref_x = x;
        } else {
            const auto same = [](std::span<const double> s,
                                 const std::vector<double>& r) {
                return s.size() == r.size() &&
                       std::memcmp(s.data(), r.data(),
                                   r.size() * sizeof(double)) == 0;
            };
            out.identical = out.identical && same(lu.l_values(), ref_l) &&
                            same(lu.u_values(), ref_u) &&
                            x.size() == ref_x.size() &&
                            std::memcmp(x.data(), ref_x.data(),
                                        x.size() * sizeof(double)) == 0;
        }
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t grid =
        argc > 1 ? std::max(8UL, std::stoul(argv[1])) : 64UL;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_factor.json");

    bench::banner("parallel refactorisation",
                  "level-scheduled SparseLu::refactor on 2-D grid "
                  "Laplacians: serial vs 2/4 worker threads");

    std::vector<std::size_t> sizes;
    for (const std::size_t s : {grid / 4, grid / 2, grid}) {
        if (s >= 8 && (sizes.empty() || sizes.back() != s)) {
            sizes.push_back(s);
        }
    }

    const int hardware = runtime::ExecutionPolicy{}.resolved();
    std::vector<SizeResult> results;
    bool identical = true;
    bench::section("refactor wall time (" + std::to_string(k_rounds) +
                   " rounds per thread count)");
    std::cout << "  grid        n   sns  lvls";
    for (const int t : k_thread_counts) {
        std::cout << "   t=" << t << " ms";
    }
    std::cout << "  speedup(4)\n";
    for (const std::size_t s : sizes) {
        results.push_back(bench_size(s));
        const SizeResult& r = results.back();
        identical = identical && r.identical;
        std::cout << "  " << r.grid << "x" << r.grid << "  " << r.n << "  "
                  << r.supernodes << "  " << r.levels;
        for (const double ms : r.ms) {
            std::cout << "  " << ms;
        }
        std::cout << "  " << r.ms.front() / r.ms.back() << "x"
                  << (r.identical ? "" : "  [NOT BIT-IDENTICAL]") << '\n';
    }

    // The speedup gate is the acceptance target (>= 1.5x at 4 threads on
    // the 64x64 mesh); it only applies when the run actually includes
    // that workload AND the host has 4+ hardware threads.  Smoke runs
    // (small grids) and starved CI runners gate bit-identity only.
    const SizeResult& largest = results.back();
    const double speedup_best = largest.ms.front() / largest.ms.back();
    const bool speedup_gate_waived = hardware < 4 || largest.grid < 64;
    const bool speedup_ok = speedup_gate_waived || speedup_best >= 1.5;

    std::cout << "\n  bit-identical across thread counts: "
              << (identical ? "yes" : "NO — BUG") << '\n'
              << "  speedup at 4 threads on " << largest.grid << "x"
              << largest.grid << ": " << speedup_best << "x ("
              << (speedup_gate_waived
                      ? (hardware < 4 ? "gate waived: <4 hardware threads"
                                      : "gate waived: smoke-size grid")
                      : (speedup_ok ? "gate passed" : "gate FAILED"))
              << ")\n";

    std::ofstream json(out_path);
    json << "{\n"
         << "  \"workload\": \"2d grid laplacian refactor\",\n"
         << "  \"rounds\": " << k_rounds << ",\n"
         << "  \"sizes\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        json << (i != 0 ? ", " : "") << results[i].grid;
    }
    json << "],\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SizeResult& r = results[i];
        json << "    {\"grid\": " << r.grid << ", \"n\": " << r.n
             << ", \"supernodes\": " << r.supernodes
             << ", \"levels\": " << r.levels;
        for (std::size_t t = 0; t < r.ms.size(); ++t) {
            json << ", \"threads_" << k_thread_counts[t]
                 << "_ms\": " << r.ms[t];
        }
        json << ", \"speedup_4_threads\": " << r.ms.front() / r.ms.back()
             << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"speedup_4_threads_largest\": " << speedup_best << ",\n"
         << "  \"speedup_target\": 1.5,\n"
         << "  \"speedup_gate_waived\": "
         << (speedup_gate_waived ? "true" : "false") << ",\n"
         << "  \"hardware_threads\": " << hardware << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::cout << "  wrote " << out_path << '\n';

    return identical && speedup_ok ? 0 : 1;
}
