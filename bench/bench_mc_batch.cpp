// Nano-Sim bench — trial-batched Monte-Carlo driver.
//
//   $ ./bench_mc_batch [mc_runs] [out.json] [mesh]
//
// Runs the mc_runs-trial Monte-Carlo on an MxM RTD mesh (an RTD at every
// node, white-noise current at the centre — BENCH_device_eval.json's MC
// workload) through the serial driver and the trial-batched driver
// (engines/mc_batch.hpp) at widths {1, 2, 4, 8}, every run warm-started
// from the same operating point through its own fresh solver cache.
//
// Gates (exit code 1 on any failure):
//   * bit-identity, ALWAYS: every batched width must reproduce the
//     serial driver's step grids, mean/stddev waveforms and per-trial
//     accepted-step sequences exactly (memcmp, not a tolerance);
//   * speedup, full runs on >= 4 hardware threads only: width 8 with a
//     4-worker factor pool must beat the serial driver at the SAME
//     thread budget by >= 1.5x wall clock.  The CI smoke run (small
//     mc_runs / mesh) checks identity only.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "devices/sources.hpp"
#include "engines/dc_swec.hpp"
#include "engines/mc_batch.hpp"
#include "engines/monte_carlo.hpp"
#include "mna/system_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace nanosim;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// MxM RC mesh, RTD at every node, white-noise current at the centre.
Circuit make_mesh(int mesh) {
    refckt::MeshSpec spec;
    spec.rows = mesh;
    spec.cols = mesh;
    spec.rtd_stride = 1;
    Circuit ckt = refckt::rc_mesh(spec);
    const std::string center = "n" + std::to_string(mesh / 2) + "_" +
                               std::to_string(mesh / 2);
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, ckt.find_node(center),
                                1e-9);
    return ckt;
}

/// One Monte-Carlo run: mean/stddev, step fingerprints, wall time, cache
/// work.  width 0 = serial driver, otherwise the batched driver.
struct McRun {
    std::vector<analysis::Waveform> waves; ///< {mean, stddev}
    std::vector<int> trial_steps;
    double ms = 0.0;
    mna::SystemCache::Stats stats;
};

McRun run_mc(const mna::MnaAssembler& assembler, NodeId node, int mc_runs,
             int width, int threads) {
    mna::SystemCache cache(assembler);
    cache.set_factor_threads(threads);
    // Warm start every trial from the shared operating point (computed
    // once per run through the same cache; excluded from the timing).
    const engines::DcResult op =
        engines::solve_op_swec(assembler, {}, 0.0, 1.0, &cache);

    engines::McOptions mc;
    mc.runs = mc_runs;
    mc.t_stop = 2e-9;
    mc.noise_dt = 2.5e-10;
    mc.grid_points = 26;
    mc.tran.start_from_dc = false;
    mc.tran.initial = op.x;
    mc.tran.dt_init = mc.noise_dt;

    stochastic::Rng rng(1);
    const auto t0 = Clock::now();
    engines::McResult res =
        width > 0 ? engines::run_monte_carlo_batched(assembler, mc, rng,
                                                     node, width, nullptr,
                                                     &cache)
                  : engines::run_monte_carlo(assembler, mc, rng, node,
                                             nullptr, &cache);
    McRun out;
    out.ms = ms_since(t0);
    out.waves.push_back(std::move(res.mean));
    out.waves.push_back(std::move(res.stddev));
    out.trial_steps = std::move(res.trial_steps);
    out.stats = cache.stats();
    return out;
}

/// Bitwise comparison of two waveform sets; max |a-b| (0.0 when
/// bit-identical), `same_grid` false on any structural/time mismatch.
double exact_deviation(const std::vector<analysis::Waveform>& a,
                       const std::vector<analysis::Waveform>& b,
                       bool& same_grid) {
    same_grid = a.size() == b.size();
    double dev = 0.0;
    for (std::size_t w = 0; same_grid && w < a.size(); ++w) {
        if (a[w].size() != b[w].size()) {
            same_grid = false;
            break;
        }
        for (std::size_t i = 0; i < a[w].size(); ++i) {
            if (std::memcmp(&a[w].time()[i], &b[w].time()[i],
                            sizeof(double)) != 0) {
                same_grid = false;
            }
            dev = std::max(dev,
                           std::abs(a[w].value_at(i) - b[w].value_at(i)));
        }
    }
    if (!same_grid) {
        dev = std::max(dev, 1.0); // structural mismatch: force a failure
    }
    return dev;
}

struct WidthReport {
    int width = 0;
    int threads = 1;
    double ms = 0.0;
    double speedup = 0.0; ///< serial (same thread budget) / this
    double dev = 0.0;
    bool identical = false; ///< grids + values + step sequences
    std::size_t batched_solves = 0;
    std::size_t shared_factor_solves = 0;
    std::size_t fast_refactors = 0;
};

} // namespace

int main(int argc, char** argv) {
    const int mc_runs = argc > 1 ? std::stoi(argv[1]) : 100;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_mc_batch.json");
    const int mesh = argc > 3 ? std::stoi(argv[3]) : 32;
    const bool full_run = mc_runs >= 50;
    const unsigned hw = std::thread::hardware_concurrency();
    const int pool_threads = 4;
    const bool gate_speedup = full_run && hw >= 4;
    constexpr double k_speedup_gate = 1.5;
    constexpr int k_gated_width = 8;

    nanosim::bench::banner(
        "mc_batch",
        "serial vs trial-batched Monte-Carlo driver (" +
            std::to_string(mc_runs) + "-trial " + std::to_string(mesh) +
            "x" + std::to_string(mesh) + " RTD-mesh MC, widths 1/2/4/8)");

    const Circuit ckt = make_mesh(mesh);
    const mna::MnaAssembler assembler(ckt);
    const std::string center = "n" + std::to_string(mesh / 2) + "_" +
                               std::to_string(mesh / 2);
    const NodeId node = ckt.find_node(center);
    std::cout << "  " << assembler.unknowns() << " unknowns, "
              << mc_runs << " trials, " << hw << " hardware threads\n";

    bool pass = true;

    nanosim::bench::section("serial baseline");
    const McRun serial1 = run_mc(assembler, node, mc_runs, 0, 1);
    const McRun serialN = run_mc(assembler, node, mc_runs, 0, pool_threads);
    std::cout << std::fixed << std::setprecision(2) << "  serial (1 thread) "
              << std::setw(9) << serial1.ms << " ms | serial ("
              << pool_threads << " factor threads) " << std::setw(9)
              << serialN.ms << " ms\n";
    {
        bool same = false;
        const double dev = exact_deviation(serialN.waves, serial1.waves, same);
        if (dev != 0.0 || serialN.trial_steps != serial1.trial_steps) {
            std::cout << "  FAIL: serial driver depends on the factor pool "
                         "width\n";
            pass = false;
        }
    }

    std::vector<WidthReport> reports;
    for (const int width : {1, 2, 4, 8}) {
        // Identity must hold at every thread count; time at the pool
        // width the speedup gate uses.
        for (const int threads : {1, pool_threads}) {
            const McRun batched =
                run_mc(assembler, node, mc_runs, width, threads);
            const McRun& base = threads == 1 ? serial1 : serialN;
            WidthReport rep;
            rep.width = width;
            rep.threads = threads;
            rep.ms = batched.ms;
            rep.speedup = batched.ms > 0.0 ? base.ms / batched.ms : 0.0;
            bool same = false;
            rep.dev = exact_deviation(batched.waves, serial1.waves, same);
            rep.identical = same && rep.dev == 0.0 &&
                            batched.trial_steps == serial1.trial_steps;
            rep.batched_solves = batched.stats.batched_solves;
            rep.shared_factor_solves = batched.stats.shared_factor_solves;
            rep.fast_refactors = batched.stats.fast_refactors;

            std::cout << "  width " << width << " x" << threads
                      << " threads: " << std::setw(9) << rep.ms << " ms | "
                      << std::setprecision(2) << rep.speedup
                      << "x vs serial | "
                      << (rep.identical ? "bit-identical" : "DIVERGED")
                      << " | " << rep.batched_solves << " batched solves, "
                      << rep.shared_factor_solves << " shared-factor\n";
            if (!rep.identical) {
                std::cout << "  FAIL: batched driver must be bit-identical "
                             "to serial at every width\n";
                pass = false;
            }
            if (gate_speedup && width == k_gated_width &&
                threads == pool_threads &&
                rep.speedup < k_speedup_gate) {
                std::cout << "  FAIL: width " << k_gated_width << " under the "
                          << k_speedup_gate << "x speedup gate\n";
                pass = false;
            }
            reports.push_back(rep);
        }
    }

    std::ofstream json(out_path);
    json << std::scientific << std::setprecision(9);
    json << "{\n  \"bench\": \"mc_batch\",\n"
         << "  \"mc_runs\": " << mc_runs << ",\n"
         << "  \"mesh\": " << mesh << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"identity_gate\": \"bit-identical\",\n"
         << "  \"speedup_gate\": " << k_speedup_gate << ",\n"
         << "  \"speedup_gate_active\": " << (gate_speedup ? "true" : "false")
         << ",\n  \"serial_ms\": " << serial1.ms << ",\n"
         << "  \"serial_pooled_ms\": " << serialN.ms << ",\n"
         << "  \"widths\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const WidthReport& r = reports[i];
        json << "    {\"width\": " << r.width << ", \"threads\": "
             << r.threads << ", \"ms\": " << r.ms << ", \"speedup\": "
             << r.speedup << ", \"dev\": " << r.dev
             << ", \"bit_identical\": " << (r.identical ? "true" : "false")
             << ", \"batched_solves\": " << r.batched_solves
             << ", \"shared_factor_solves\": " << r.shared_factor_solves
             << ", \"fast_refactors\": " << r.fast_refactors << "}"
             << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::cout << "\nwrote " << out_path << (pass ? " (pass)" : " (FAIL)")
              << "\n";
    return pass ? 0 : 1;
}
