// Nano-Sim bench — telemetry overhead gate (obs/ subsystem).
//
//   $ ./bench_obs_overhead [mc_runs] [out.json] [mesh]
//
// The obs/ contract: instrumentation compiled into every hot path must
// be near-free while telemetry is DISABLED (the default), and enabling
// it must never change simulation results.  This bench enforces both
// with its exit code:
//
//   1. bit identity (always): one Monte-Carlo workload run with
//      telemetry off and with metrics+tracing on, same seed — the mean /
//      stddev ensembles must agree bit-for-bit.
//   2. disabled-site cost (always): a tight loop over the disabled-path
//      code (Span construction + the metrics_enabled() gate) must stay
//      under 50 ns per site — catching an accidental clock read or lock
//      on the disabled path.
//   3. predicted disabled overhead (always): span-site count per MC run
//      (from the enabled run's trace) x measured ns/site must be < 2% of
//      the run's wall time — the "instrumented but disabled within 2% of
//      baseline" gate, computed deterministically instead of from two
//      noisy wall-clock populations.
// The interleaved off/on wall and CPU times are also reported (run-to-
// run spread, enabled-mode overhead) but stay informational: on a shared
// box even CPU time moves several percent run to run (frequency scaling,
// cache tenancy), so a wall-clock assertion would only gate the weather.
// The predicted-overhead gate bounds the same quantity from two numbers
// that ARE reproducible — the per-site disabled cost and the exact span
// count per run.
//
// Writes BENCH_obs.json with every number behind the gates.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <optional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "core/sim_session.hpp"
#include "devices/sources.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace nanosim;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// The MC workload: an RC mesh with a white-noise injection at the
/// centre node, fixed-step trials on the noise grid (the realistic MC
/// configuration — trial cost is the noise-resolving transient).
Circuit make_workload(int mesh) {
    Circuit ckt = refckt::rc_mesh(mesh, mesh);
    const std::string center = "n" + std::to_string(mesh / 2) + "_" +
                               std::to_string(mesh / 2);
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, ckt.find_node(center),
                                1e-9);
    return ckt;
}

MonteCarloSpec make_spec(int mesh, int mc_runs) {
    MonteCarloSpec mc;
    mc.node =
        "n" + std::to_string(mesh / 2) + "_" + std::to_string(mesh / 2);
    mc.t_stop = 5e-9;
    mc.noise_dt = 2.5e-10;
    mc.runs = mc_runs;
    mc.grid_points = 26;
    mc.tran.adaptive = false;
    mc.tran.dt_init = mc.noise_dt;
    return mc;
}

struct McRun {
    double ms;     ///< wall clock
    double cpu_ms; ///< process CPU time (immune to scheduler noise)
    engines::McResult result;
};

McRun run_workload(int mesh, int mc_runs) {
    SimSession session(make_workload(mesh));
    const MonteCarloSpec spec = make_spec(mesh, mc_runs);
    const std::clock_t c0 = std::clock();
    const auto t0 = Clock::now();
    AnalysisResult r = session.run(spec);
    const double ms = ms_since(t0);
    const double cpu_ms = 1e3 * static_cast<double>(std::clock() - c0) /
                          CLOCKS_PER_SEC;
    return McRun{ms, cpu_ms,
                 std::get<engines::McResult>(std::move(r.payload))};
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Bit-exact waveform comparison (no tolerance: telemetry must not
/// perturb a single ulp).
bool identical(const analysis::Waveform& a, const analysis::Waveform& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.time_at(i) != b.time_at(i) ||
            a.value_at(i) != b.value_at(i)) {
            return false;
        }
    }
    return true;
}

/// ns per disabled instrumentation site: a Span whose constructor sees
/// tracing off plus the metrics_enabled() gate — the exact code every
/// hot loop pays when telemetry is idle.
double measure_disabled_site_ns() {
    obs::set_metrics_enabled(false);
    obs::stop_trace();
    constexpr std::int64_t kIters = 1 << 22;
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < kIters; ++i) {
        const obs::Span span("bench", "obs");
        sink += obs::metrics_enabled() ? 1u : 0u;
        // Keep the span observable so the loop body is not hoisted.
        asm volatile("" : : "r"(&span) : "memory");
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0)
            .count() /
        static_cast<double>(kIters);
    if (sink != 0) {
        std::cout << "  (impossible: gate open with metrics off)\n";
    }
    return ns;
}

} // namespace

int main(int argc, char** argv) {
    const int mc_runs = argc > 1 ? std::stoi(argv[1]) : 60;
    const std::string out_path = argc > 2 ? argv[2] : "BENCH_obs.json";
    const int mesh = argc > 3 ? std::stoi(argv[3]) : 10;
    const bool full = mc_runs >= 20;
    const int reps = full ? 5 : 1;

    nanosim::bench::banner(
        "telemetry overhead gate (BENCH_obs.json)",
        "disabled-path cost, on/off bit identity, 2% overhead bound");
    std::cout << "  workload: " << mesh << 'x' << mesh << " RC mesh + "
              << "white noise, " << mc_runs << "-trial Monte-Carlo ("
              << (full ? "full" : "smoke") << " mode, " << reps
              << " rep pair(s))\n";

    // ---- 1. disabled-site micro cost -----------------------------------
    nanosim::bench::section("disabled-path site cost");
    const double site_ns = measure_disabled_site_ns();
    std::cout << "  span + gate, telemetry off: " << std::fixed
              << std::setprecision(2) << site_ns << " ns/site\n";

    // ---- 2. interleaved off/on runs ------------------------------------
    nanosim::bench::section("interleaved Monte-Carlo runs (off / on)");
    obs::set_metrics_enabled(false);
    obs::stop_trace();
    run_workload(mesh, mc_runs); // warm-up: page-in, allocator, tables

    std::vector<double> off_ms;
    std::vector<double> off_cpu_ms;
    std::vector<double> on_ms;
    std::size_t spans_per_run = 0;
    std::optional<engines::McResult> off_result;
    std::optional<engines::McResult> on_result;
    for (int rep = 0; rep < reps; ++rep) {
        obs::set_metrics_enabled(false);
        obs::stop_trace();
        McRun off = run_workload(mesh, mc_runs);
        off_ms.push_back(off.ms);
        off_cpu_ms.push_back(off.cpu_ms);
        off_result.emplace(std::move(off.result));

        obs::set_metrics_enabled(true);
        obs::start_trace(); // restart per rep: bounds the event buffers
        McRun on = run_workload(mesh, mc_runs);
        obs::stop_trace();
        on_ms.push_back(on.ms);
        on_result.emplace(std::move(on.result));
        spans_per_run = obs::trace_event_count();
        std::cout << "  rep " << rep << ": off " << std::setprecision(2)
                  << off.ms << " ms (cpu " << off.cpu_ms << ") | on "
                  << on.ms << " ms\n";
    }
    obs::set_metrics_enabled(false);

    const double off_median = median(off_ms);
    const double off_min = *std::min_element(off_ms.begin(), off_ms.end());
    const double on_median = median(on_ms);
    const double enabled_overhead_pct =
        (on_median / off_median - 1.0) * 100.0;
    // Stability on CPU time, not wall clock: a shared CI box adds tens
    // of percent of scheduler noise to wall time, but the work done per
    // disabled run is fixed, so its CPU time is the reproducible signal.
    const double off_cpu_median = median(off_cpu_ms);
    const double off_cpu_min =
        *std::min_element(off_cpu_ms.begin(), off_cpu_ms.end());
    const double stability_pct =
        (off_cpu_median / off_cpu_min - 1.0) * 100.0;
    // Disabled instrumentation cost predicted from first principles:
    // every span site costs ~site_ns when idle (the histogram/counter
    // gates are the same check, bounded by 2x below for headroom).
    const double predicted_pct =
        100.0 * 2.0 * static_cast<double>(spans_per_run) * site_ns /
        (off_median * 1e6);

    std::cout << "  off median " << off_median << " ms (min " << off_min
              << "), on median " << on_median << " ms\n"
              << "  enabled overhead: " << enabled_overhead_pct
              << "% | " << spans_per_run << " spans/run -> predicted "
              << "disabled overhead " << std::setprecision(4)
              << predicted_pct << "%\n";

    // ---- 3. bit identity -----------------------------------------------
    nanosim::bench::section("bit identity (telemetry off vs on)");
    const bool paths_match =
        off_result->stats.paths() == on_result->stats.paths();
    const bool mean_ok = identical(off_result->mean, on_result->mean);
    const bool stddev_ok = identical(off_result->stddev, on_result->stddev);
    const bool identical_results = paths_match && mean_ok && stddev_ok;
    std::cout << "  paths " << (paths_match ? "==" : "!=") << ", mean "
              << (mean_ok ? "bit-identical" : "DIFFERS") << ", stddev "
              << (stddev_ok ? "bit-identical" : "DIFFERS") << '\n';

    // ---- gates ----------------------------------------------------------
    nanosim::bench::section("gates");
    const bool gate_site = site_ns <= 50.0;
    const bool gate_predicted = predicted_pct <= 2.0;
    const bool pass = identical_results && gate_site && gate_predicted;
    std::cout << "  bit identity                 "
              << (identical_results ? "PASS" : "FAIL") << '\n'
              << "  site cost <= 50 ns           "
              << (gate_site ? "PASS" : "FAIL") << '\n'
              << "  predicted overhead <= 2%     "
              << (gate_predicted ? "PASS" : "FAIL") << '\n'
              << "  off-run cpu spread (info)    " << std::setprecision(2)
              << stability_pct << "%\n";

    std::ofstream os(out_path);
    os << std::setprecision(17)
       << "{\n"
       << "  \"bench\": \"obs_overhead\",\n"
       << "  \"mode\": \"" << (full ? "full" : "smoke") << "\",\n"
       << "  \"mesh\": " << mesh << ",\n"
       << "  \"mc_runs\": " << mc_runs << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"disabled_site_ns\": " << site_ns << ",\n"
       << "  \"spans_per_run\": " << spans_per_run << ",\n"
       << "  \"off_ms_median\": " << off_median << ",\n"
       << "  \"off_cpu_ms_median\": " << off_cpu_median << ",\n"
       << "  \"off_cpu_ms_min\": " << off_cpu_min << ",\n"
       << "  \"off_ms_min\": " << off_min << ",\n"
       << "  \"on_ms_median\": " << on_median << ",\n"
       << "  \"enabled_overhead_pct\": " << enabled_overhead_pct << ",\n"
       << "  \"predicted_disabled_overhead_pct\": " << predicted_pct
       << ",\n"
       << "  \"off_cpu_stability_pct\": " << stability_pct << ",\n"
       << "  \"bit_identical\": " << (identical_results ? "true" : "false")
       << ",\n"
       << "  \"gates\": {\n"
       << "    \"bit_identity\": " << (identical_results ? "true" : "false")
       << ",\n"
       << "    \"site_cost\": " << (gate_site ? "true" : "false") << ",\n"
       << "    \"predicted_overhead\": "
       << (gate_predicted ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\n  wrote " << out_path << '\n'
              << "  overall: " << (pass ? "PASS" : "FAIL") << '\n';
    return pass ? 0 : 1;
}
