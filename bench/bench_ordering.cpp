// Nano-Sim bench — fill-reducing node orderings on 2-D mesh workloads.
//
//   $ ./bench_ordering [reps] [out.json] [max_grid]
//
// The RTD-chain benchmarks are 1-D ladders: natural node order is already
// near-optimal there.  This bench measures what the ordering layer was
// built for — the SWEC per-step matrix of rc_mesh grids (16x16 .. 64x64),
// where natural order costs O(n^1.5)+ LU fill that the pattern-reusing
// refactor path would otherwise re-pay on every accepted time point:
//
//   * predicted fill (symbolic, what SystemCache compares at freeze time)
//     and ACTUAL SparseLu L+U nonzeros, natural vs RCM vs min-degree;
//   * fresh-factor and numeric-refactor time per ordering;
//   * cross-ordering solve agreement (max |x_ordered - x_natural|).
//
// Writes BENCH_ordering.json.  Exit code 1 when no fill-reducing ordering
// strictly beats natural on the largest measured grid (>= 32x32 in a full
// run) or when solutions disagree — the CI smoke run (small max_grid)
// catches ordering regressions fast.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse_lu.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using nanosim::Circuit;
using nanosim::linalg::Ordering;
using nanosim::linalg::Permutation;
using nanosim::linalg::SparseLu;
using nanosim::linalg::Triplets;
using nanosim::linalg::Vector;

double us_since(Clock::time_point start) {
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
}

struct OrderingResult {
    std::string name;
    std::size_t predicted_fill = 0;
    std::size_t factor_nnz = 0;
    double factor_us = 0.0;
    double refactor_us = 0.0;
    double max_diff_vs_natural = 0.0;
};

struct GridResult {
    int grid = 0;
    std::size_t unknowns = 0;
    std::size_t pattern_nnz = 0;
    std::string auto_choice; ///< what SystemCache would pick
    std::vector<OrderingResult> orderings;
};

} // namespace

int main(int argc, char** argv) {
    const int reps = argc > 1 ? std::stoi(argv[1]) : 20;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_ordering.json");
    const int max_grid = argc > 3 ? std::stoi(argv[3]) : 64;

    nanosim::bench::banner(
        "ordering",
        "fill-reducing node orderings (natural vs RCM vs min-degree) on "
        "2-D RTD mesh workloads");

    std::vector<int> grids;
    for (const int g : {16, 24, 32, 48, 64}) {
        if (g <= max_grid) {
            grids.push_back(g);
        }
    }
    if (grids.empty()) {
        grids.push_back(max_grid);
    }

    std::vector<GridResult> results;
    bool all_agree = true;

    for (const int g : grids) {
        Circuit ckt = nanosim::refckt::rc_mesh(g, g);
        const nanosim::mna::MnaAssembler assembler(ckt);
        const double h = 1e-10;
        const Triplets a = nanosim::mna::swec_step_matrix(assembler, h);
        const auto n = static_cast<std::size_t>(assembler.unknowns());

        GridResult r;
        r.grid = g;
        r.unknowns = n;

        // Deterministic rhs for the agreement check.
        Vector b(n);
        for (std::size_t i = 0; i < n; ++i) {
            b[i] = 1e-3 * std::sin(static_cast<double>(i) + 1.0);
        }

        // CSC pattern + caller-order values of the step matrix — the
        // same compression SparseLu caches, so `values` is valid
        // refactor() input for every candidate ordering (the gather map
        // hides the permutation).
        const nanosim::linalg::CscForm csc =
            nanosim::linalg::compress_columns(a);
        const std::vector<std::size_t>& col_ptr = csc.col_ptr;
        const std::vector<std::size_t>& row_idx = csc.row_idx;
        const std::vector<double>& values = csc.values;

        const SparseLu natural_lu(a);
        r.pattern_nnz = natural_lu.pattern_nnz();
        const Vector x_natural = natural_lu.solve(b);

        // What SystemCache's freeze-time auto-select would do here.
        {
            nanosim::mna::SystemCache cache(assembler);
            r.auto_choice = nanosim::linalg::ordering_name(
                cache.stats().ordering);
        }

        struct Candidate {
            const char* name;
            Permutation perm; // empty = natural
        };
        std::vector<Candidate> candidates;
        candidates.push_back({"natural", Permutation{}});
        candidates.push_back(
            {"rcm", nanosim::linalg::reverse_cuthill_mckee(n, col_ptr,
                                                           row_idx)});
        candidates.push_back(
            {"min_degree",
             nanosim::linalg::min_degree_ordering(n, col_ptr, row_idx)});

        for (auto& cand : candidates) {
            OrderingResult o;
            o.name = cand.name;
            o.predicted_fill =
                nanosim::linalg::predicted_fill(n, col_ptr, row_idx,
                                                cand.perm);

            auto t0 = Clock::now();
            for (int i = 0; i < reps; ++i) {
                const SparseLu lu(a, cand.perm);
            }
            o.factor_us = us_since(t0) / reps;

            SparseLu lu(a, cand.perm);
            o.factor_nnz = lu.nnz_factors();

            // Refactor timing: values nudged per rep so the numeric
            // sweep is not value-degenerate.
            std::vector<double> nudged = values;
            t0 = Clock::now();
            for (int i = 0; i < reps; ++i) {
                for (double& v : nudged) {
                    v *= 1.0 + 1e-9;
                }
                (void)lu.refactor(std::span<const double>(nudged));
            }
            o.refactor_us = us_since(t0) / reps;

            // Agreement check on the PRISTINE values (the timing loop
            // left the factors holding the nudged matrix).
            (void)lu.refactor(std::span<const double>(values));
            const Vector x = lu.solve(b);
            for (std::size_t i = 0; i < n; ++i) {
                o.max_diff_vs_natural = std::max(
                    o.max_diff_vs_natural, std::abs(x[i] - x_natural[i]));
            }
            all_agree = all_agree && o.max_diff_vs_natural <= 1e-12;
            r.orderings.push_back(std::move(o));
        }
        results.push_back(std::move(r));
    }

    nanosim::bench::section("fill + factor/refactor time per ordering");
    std::cout << std::left << std::setw(7) << "grid" << std::setw(10)
              << "unknowns" << std::setw(12) << "ordering" << std::setw(11)
              << "pred_fill" << std::setw(11) << "lu_nnz" << std::setw(12)
              << "factor_us" << std::setw(13) << "refactor_us"
              << std::setw(12) << "maxdiff" << '\n';
    for (const auto& r : results) {
        for (const auto& o : r.orderings) {
            std::cout << std::left << std::setw(7)
                      << (std::to_string(r.grid) + "x" +
                          std::to_string(r.grid))
                      << std::setw(10) << r.unknowns << std::setw(12)
                      << o.name << std::setw(11) << o.predicted_fill
                      << std::setw(11) << o.factor_nnz << std::setw(12)
                      << o.factor_us << std::setw(13) << o.refactor_us
                      << std::setw(12) << std::scientific
                      << std::setprecision(2) << o.max_diff_vs_natural
                      << std::defaultfloat << std::setprecision(6) << '\n';
        }
        std::cout << "       auto-select: " << r.auto_choice << '\n';
    }

    // Regression gate: on the largest grid measured, some fill-reducing
    // ordering must strictly beat natural LU nonzeros (the acceptance
    // grid is 32x32; smoke runs gate on what they measured).
    const GridResult& gate = results.back();
    const std::size_t natural_nnz = gate.orderings[0].factor_nnz;
    std::size_t best_nnz = natural_nnz;
    std::string best = "natural";
    for (const auto& o : gate.orderings) {
        if (o.factor_nnz < best_nnz) {
            best_nnz = o.factor_nnz;
            best = o.name;
        }
    }
    const bool reduces = best_nnz < natural_nnz;
    std::cout << "\n  " << gate.grid << "x" << gate.grid
              << ": best ordering " << best << " with " << best_nnz
              << " L+U nnz vs natural " << natural_nnz << " ("
              << (reduces ? "reduced" : "NO REDUCTION — REGRESSION")
              << ")\n  ordered-vs-natural solve agreement <= 1e-12: "
              << (all_agree ? "yes" : "NO — REGRESSION") << '\n';

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"ordering\",\n  \"reps\": " << reps
         << ",\n  \"fill_reduced_on_largest_grid\": "
         << (reduces ? "true" : "false")
         << ",\n  \"solves_agree_1e-12\": "
         << (all_agree ? "true" : "false") << ",\n  \"grids\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        json << "    {\"grid\": \"" << r.grid << "x" << r.grid
             << "\", \"unknowns\": " << r.unknowns
             << ", \"pattern_nnz\": " << r.pattern_nnz
             << ", \"auto_select\": \"" << r.auto_choice
             << "\", \"orderings\": [\n";
        for (std::size_t k = 0; k < r.orderings.size(); ++k) {
            const auto& o = r.orderings[k];
            json << "      {\"name\": \"" << o.name
                 << "\", \"predicted_fill\": " << o.predicted_fill
                 << ", \"factor_nnz\": " << o.factor_nnz
                 << ", \"factor_us\": " << o.factor_us
                 << ", \"refactor_us\": " << o.refactor_us
                 << ", \"max_diff_vs_natural\": " << o.max_diff_vs_natural
                 << "}" << (k + 1 < r.orderings.size() ? "," : "") << "\n";
        }
        json << "    ]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "  wrote " << out_path << '\n';

    return (reduces && all_agree) ? 0 : 1;
}
