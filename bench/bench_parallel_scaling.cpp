// Nano-Sim bench — serial vs parallel Monte-Carlo scaling.
//
//   $ ./bench_parallel_scaling [runs] [out.json]
//
// Times the same fixed-seed Monte-Carlo ensemble on the noisy-RC test
// bed through the parallel driver at 1, 2 and 4 worker threads (plus
// the legacy single-stream serial driver as the baseline), verifies
// that every thread count produced bit-identical ensemble statistics,
// and records wall-clock times + speedups to BENCH_parallel.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/nanosim.hpp"
#include "core/ref_circuits.hpp"

using namespace nanosim;
using Clock = std::chrono::steady_clock;

namespace {

[[nodiscard]] double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

} // namespace

int main(int argc, char** argv) {
    const int runs = argc > 1 ? std::stoi(argv[1]) : 64;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_parallel.json");

    bench::banner("parallel scaling",
                  "Monte-Carlo ensemble wall time: serial driver vs "
                  "thread-pool driver at 1/2/4 workers");

    const Circuit ckt = refckt::noisy_rc();
    const mna::MnaAssembler assembler(ckt);
    const NodeId node = ckt.find_node("n1");

    // Long horizon: each realization costs ~ms so the per-task pool
    // overhead (µs) cannot mask the scaling.
    engines::McOptions options;
    options.runs = runs;
    options.t_stop = 50e-9;
    options.grid_points = 101;
    constexpr std::uint64_t k_seed = 42;

    bench::section("serial baseline (single-stream run_monte_carlo)");
    stochastic::Rng rng(k_seed);
    auto t0 = Clock::now();
    const auto serial = engines::run_monte_carlo(assembler, options, rng, node);
    const double serial_ms = ms_since(t0);
    std::cout << "  " << runs << " realizations in " << serial_ms << " ms ("
              << serial.flops.total() << " flops)\n";

    bench::section("thread-pool driver (per-realization RNG streams)");
    const std::vector<int> thread_counts{1, 2, 4};
    std::vector<double> pool_ms;
    std::vector<engines::McResult> results;
    for (const int threads : thread_counts) {
        t0 = Clock::now();
        results.push_back(engines::run_monte_carlo_parallel(
            assembler, options, k_seed, node,
            runtime::ExecutionPolicy{threads}));
        pool_ms.push_back(ms_since(t0));
        std::cout << "  threads=" << threads << ": " << pool_ms.back()
                  << " ms, speedup vs 1-thread pool = "
                  << pool_ms.front() / pool_ms.back() << "x\n";
    }

    // Reproducibility cross-check: every thread count must agree bit-wise.
    bool identical = true;
    for (std::size_t i = 1; i < results.size(); ++i) {
        identical = identical &&
                    results[i].mean.value() == results[0].mean.value() &&
                    results[i].stddev.value() == results[0].stddev.value();
    }
    std::cout << "\n  bit-identical across thread counts: "
              << (identical ? "yes" : "NO — BUG") << '\n';

    const double speedup4 = pool_ms.front() / pool_ms.back();
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"workload\": \"noisy_rc monte carlo\",\n"
         << "  \"runs\": " << runs << ",\n"
         << "  \"t_stop\": " << options.t_stop << ",\n"
         << "  \"serial_ms\": " << serial_ms << ",\n"
         << "  \"pool_1_thread_ms\": " << pool_ms[0] << ",\n"
         << "  \"pool_2_thread_ms\": " << pool_ms[1] << ",\n"
         << "  \"pool_4_thread_ms\": " << pool_ms[2] << ",\n"
         << "  \"speedup_4_threads\": " << speedup4 << ",\n"
         << "  \"hardware_threads\": "
         << runtime::ExecutionPolicy{}.resolved() << ",\n"
         << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
         << "}\n";
    std::cout << "  wrote " << out_path << '\n';

    return identical ? 0 : 1;
}
