// Nano-Sim bench — fail-point framework overhead + resume fidelity gate.
//
//   $ ./bench_robustness [mc_runs] [out.json] [mesh]
//
// The robustness contract (util/failpoints.hpp + the rescue ladder):
// injection sites compiled into every hot path must be near-free while
// DISABLED (the default), arming sites that never fire must not perturb
// a single ulp, and a campaign killed at a checkpoint must resume to the
// bit-identical result.  All four are enforced by the exit code:
//
//   1. disabled-site cost: a tight loop over failpoints::fire() with
//      nothing armed (one relaxed atomic load + branch) must stay under
//      25 ns per site — catching an accidental lock or map lookup on the
//      disabled path.
//   2. predicted disabled overhead <= 1%: gate evaluations per MC run
//      (counted exactly by an armed-but-never-firing run) x measured
//      ns/site must be under 1% of the run's wall time.  Like
//      bench_obs_overhead, the bound is computed from two reproducible
//      numbers instead of comparing two noisy wall-clock populations.
//   3. bit identity, disabled vs armed-never-firing: the same seeded
//      Monte-Carlo campaign with the framework off and with sites armed
//      at an unreachable Nth evaluation must agree bit-for-bit.
//   4. kill-and-resume bit identity: a campaign checkpointed mid-flight
//      and resumed from that checkpoint in a fresh session must
//      reproduce the uninterrupted campaign bit-for-bit (mean, stddev,
//      per-trial step fingerprint).
//
// Writes BENCH_robustness.json with every number behind the gates.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "core/sim_session.hpp"
#include "devices/sources.hpp"
#include "engines/monte_carlo.hpp"
#include "util/failpoints.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace nanosim;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// The MC workload: an RC mesh with a white-noise injection at the
/// centre node, fixed-step trials on the noise grid — every solver,
/// engine, and MC-driver injection site sits on this path.
Circuit make_workload(int mesh) {
    Circuit ckt = refckt::rc_mesh(mesh, mesh);
    const std::string center = "n" + std::to_string(mesh / 2) + "_" +
                               std::to_string(mesh / 2);
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, ckt.find_node(center),
                                1e-9);
    return ckt;
}

MonteCarloSpec make_spec(int mesh, int mc_runs) {
    MonteCarloSpec mc;
    mc.node =
        "n" + std::to_string(mesh / 2) + "_" + std::to_string(mesh / 2);
    mc.t_stop = 5e-9;
    mc.noise_dt = 2.5e-10;
    mc.runs = mc_runs;
    mc.grid_points = 26;
    mc.tran.adaptive = false;
    mc.tran.dt_init = mc.noise_dt;
    return mc;
}

struct McRun {
    double ms = 0.0;
    std::optional<engines::McResult> result;
    std::vector<engines::McCheckpoint> checkpoints;
};

McRun run_workload(int mesh, const MonteCarloSpec& spec,
                   bool capture_checkpoints = false) {
    SimSession session(make_workload(mesh));
    engines::AnalysisObserver observer;
    McRun out;
    if (capture_checkpoints) {
        observer.on_checkpoint = [&](const engines::McCheckpoint& cp) {
            out.checkpoints.push_back(cp);
        };
    }
    const auto t0 = Clock::now();
    AnalysisResult r =
        session.run(spec, capture_checkpoints ? &observer : nullptr);
    out.ms = ms_since(t0);
    out.result.emplace(std::get<engines::McResult>(std::move(r.payload)));
    return out;
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Bit-exact waveform comparison (no tolerance: a fail-point site that
/// never fires must not perturb a single ulp).
bool identical(const analysis::Waveform& a, const analysis::Waveform& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.time_at(i) != b.time_at(i) ||
            a.value_at(i) != b.value_at(i)) {
            return false;
        }
    }
    return true;
}

bool identical_mc(const engines::McResult& a, const engines::McResult& b) {
    return identical(a.mean, b.mean) && identical(a.stddev, b.stddev) &&
           a.stats.paths() == b.stats.paths() &&
           a.trial_steps == b.trial_steps &&
           a.failed_trials.size() == b.failed_trials.size();
}

/// ns per disabled injection site: exactly the guarded evaluation every
/// call site pays when nothing is armed anywhere.
double measure_disabled_site_ns() {
    failpoints::disarm_all();
    auto& fp = failpoints::site("bench.disabled_probe");
    constexpr std::int64_t kIters = 1 << 22;
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < kIters; ++i) {
        sink += failpoints::fire(fp) ? 1u : 0u;
        asm volatile("" : : "r"(&sink) : "memory");
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0)
            .count() /
        static_cast<double>(kIters);
    if (sink != 0) {
        std::cout << "  (impossible: disabled site fired)\n";
    }
    return ns;
}

/// Sum of fire() evaluations across every registered site.
std::uint64_t total_evaluations() {
    std::uint64_t total = 0;
    for (const auto& [name, mode] : failpoints::catalog()) {
        total += failpoints::site(name.c_str()).evaluations();
    }
    return total;
}

} // namespace

int main(int argc, char** argv) {
    const int mc_runs = argc > 1 ? std::stoi(argv[1]) : 40;
    const std::string out_path =
        argc > 2 ? argv[2] : "BENCH_robustness.json";
    const int mesh = argc > 3 ? std::stoi(argv[3]) : 8;
    const bool full = mc_runs >= 20;
    const int reps = full ? 5 : 1;

    nanosim::bench::banner(
        "fail-point overhead + resume fidelity gate "
        "(BENCH_robustness.json)",
        "disabled-path cost, armed-never-firing bit identity, "
        "kill-and-resume bit identity, 1% overhead bound");
    std::cout << "  workload: " << mesh << 'x' << mesh << " RC mesh + "
              << "white noise, " << mc_runs << "-trial Monte-Carlo ("
              << (full ? "full" : "smoke") << " mode, " << reps
              << " rep(s))\n";

    // ---- 1. disabled-site micro cost -----------------------------------
    nanosim::bench::section("disabled-path site cost");
    const double site_ns = measure_disabled_site_ns();
    std::cout << "  fire() with nothing armed: " << std::fixed
              << std::setprecision(2) << site_ns << " ns/site\n";

    // ---- 2. interleaved disabled / armed-never-firing runs -------------
    nanosim::bench::section(
        "interleaved Monte-Carlo runs (disabled / armed, never firing)");
    const MonteCarloSpec spec = make_spec(mesh, mc_runs);
    failpoints::disarm_all();
    run_workload(mesh, spec); // warm-up: page-in, allocator, tables

    std::vector<double> off_ms;
    std::vector<double> armed_ms;
    std::uint64_t evals_per_run = 0;
    std::optional<engines::McResult> off_result;
    std::optional<engines::McResult> armed_result;
    for (int rep = 0; rep < reps; ++rep) {
        failpoints::disarm_all();
        McRun off = run_workload(mesh, spec);
        off_ms.push_back(off.ms);
        off_result = std::move(off.result);

        // Armed at the billionth evaluation: the global gate is open and
        // every site counts its evaluations, but nothing ever fires.
        failpoints::arm_from_spec("bench.sentinel=1000000000,"
                                  "mc.trial_fail=1000000000,"
                                  "linalg.singular_pivot=1000000000");
        const std::uint64_t evals_before = total_evaluations();
        McRun armed = run_workload(mesh, spec);
        evals_per_run = total_evaluations() - evals_before;
        failpoints::disarm_all();
        armed_ms.push_back(armed.ms);
        armed_result = std::move(armed.result);
        std::cout << "  rep " << rep << ": disabled "
                  << std::setprecision(2) << off.ms << " ms | armed "
                  << armed.ms << " ms\n";
    }

    const double off_median = median(off_ms);
    const double armed_median = median(armed_ms);
    // Disabled overhead predicted from first principles: the exact gate
    // count per run (evaluations only happen where the disabled path
    // checks the gate) x the measured per-check cost, doubled for
    // headroom — compare bench_obs_overhead's 2% telemetry bound.
    const double predicted_pct = 100.0 * 2.0 *
                                 static_cast<double>(evals_per_run) *
                                 site_ns / (off_median * 1e6);
    std::cout << "  disabled median " << off_median << " ms, armed median "
              << armed_median << " ms\n"
              << "  " << evals_per_run << " gate checks/run -> predicted "
              << "disabled overhead " << std::setprecision(4)
              << predicted_pct << "%\n";

    // ---- 3. bit identity (disabled vs armed-never-firing) --------------
    nanosim::bench::section("bit identity (disabled vs armed)");
    const bool armed_identical = identical_mc(*off_result, *armed_result);
    const bool no_quarantine = off_result->failed_trials.empty() &&
                               armed_result->failed_trials.empty();
    std::cout << "  mean/stddev/steps "
              << (armed_identical ? "bit-identical" : "DIFFER")
              << ", quarantine "
              << (no_quarantine ? "empty" : "NON-EMPTY") << '\n';

    // ---- 4. kill-and-resume bit identity -------------------------------
    nanosim::bench::section("kill-and-resume bit identity");
    failpoints::disarm_all();
    MonteCarloSpec cp_spec = spec;
    cp_spec.checkpoint_every = std::max(1, mc_runs / 4);
    McRun checkpointed = run_workload(mesh, cp_spec, true);
    bool resume_identical = false;
    std::size_t resumed_at = 0;
    if (checkpointed.checkpoints.empty()) {
        std::cout << "  no checkpoints emitted (runs too small?)\n";
    } else {
        // "Kill" after the middle checkpoint: everything past it is
        // discarded, a fresh session resumes from the persisted state.
        const std::size_t mid = (checkpointed.checkpoints.size() - 1) / 2;
        const engines::McCheckpoint& cp = checkpointed.checkpoints[mid];
        resumed_at = static_cast<std::size_t>(cp.next_trial);
        MonteCarloSpec resume_spec = spec;
        resume_spec.resume =
            std::make_shared<engines::McCheckpoint>(cp);
        McRun resumed = run_workload(mesh, resume_spec);
        resume_identical =
            identical_mc(*off_result, *resumed.result) &&
            identical_mc(*off_result, *checkpointed.result);
        std::cout << "  killed after trial " << resumed_at << '/'
                  << mc_runs << "; resumed result "
                  << (resume_identical ? "bit-identical to uninterrupted"
                                       : "DIFFERS")
                  << '\n';
    }

    // ---- gates ----------------------------------------------------------
    nanosim::bench::section("gates");
    const bool gate_site = site_ns <= 25.0;
    const bool gate_predicted = predicted_pct <= 1.0;
    const bool pass = gate_site && gate_predicted && armed_identical &&
                      no_quarantine && resume_identical;
    std::cout << "  site cost <= 25 ns            "
              << (gate_site ? "PASS" : "FAIL") << '\n'
              << "  predicted overhead <= 1%      "
              << (gate_predicted ? "PASS" : "FAIL") << '\n'
              << "  armed-never-firing identity   "
              << (armed_identical && no_quarantine ? "PASS" : "FAIL")
              << '\n'
              << "  kill-and-resume identity      "
              << (resume_identical ? "PASS" : "FAIL") << '\n';

    std::ofstream os(out_path);
    os << std::setprecision(17)
       << "{\n"
       << "  \"bench\": \"robustness\",\n"
       << "  \"mode\": \"" << (full ? "full" : "smoke") << "\",\n"
       << "  \"mesh\": " << mesh << ",\n"
       << "  \"mc_runs\": " << mc_runs << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"disabled_site_ns\": " << site_ns << ",\n"
       << "  \"gate_checks_per_run\": " << evals_per_run << ",\n"
       << "  \"disabled_ms_median\": " << off_median << ",\n"
       << "  \"armed_ms_median\": " << armed_median << ",\n"
       << "  \"predicted_disabled_overhead_pct\": " << predicted_pct
       << ",\n"
       << "  \"resumed_at_trial\": " << resumed_at << ",\n"
       << "  \"gates\": {\n"
       << "    \"site_cost\": " << (gate_site ? "true" : "false") << ",\n"
       << "    \"predicted_overhead\": "
       << (gate_predicted ? "true" : "false") << ",\n"
       << "    \"armed_identity\": "
       << (armed_identical && no_quarantine ? "true" : "false") << ",\n"
       << "    \"resume_identity\": "
       << (resume_identical ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\n  wrote " << out_path << '\n'
              << "  overall: " << (pass ? "PASS" : "FAIL") << '\n';
    return pass ? 0 : 1;
}
