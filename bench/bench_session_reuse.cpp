// Nano-Sim bench — SimSession cache reuse across a whole analysis batch.
//
//   $ ./bench_session_reuse [mc_runs] [out.json] [mesh]
//
// Runs the sequence {op, DC sweep, transient, mc_runs-trial Monte-Carlo}
// on the FET-RTD inverter and a mesh x mesh RC mesh, two ways:
//
//   * session  — one SimSession::run per analysis: every engine call
//     restamps through ONE persistent SystemCache, so the union stamp
//     pattern is frozen and symbolically factored exactly once for the
//     whole batch (Monte-Carlo trials included);
//   * per-call — the PR-3-era construction: each analysis (and each MC
//     trial's transient) builds its own SystemCache, re-freezing the
//     pattern and re-running the symbolic analysis every time.
//
// Writes BENCH_session.json with per-analysis wall times, the session's
// solver counters and the cross-path agreement.  Exit code 1 when the
// two paths disagree beyond 1e-12, or when the sparse workload's session
// path performed more than one symbolic factorisation — the reuse
// contract this bench exists to guard.  A full run (mc_runs >= 50)
// additionally requires the session path to be faster on the sparse
// workload; the CI smoke run (small mc_runs) skips the timing gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "core/sim_session.hpp"
#include "devices/sources.hpp"
#include "engines/dc_swec.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/tran_swec.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace nanosim;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/// One workload: a circuit factory plus the analysis parameters.
struct Workload {
    std::string name;
    std::function<Circuit()> make;
    std::string sweep_source;
    double sweep_stop = 0.0;
    double sweep_step = 0.0;
    double tran_stop = 0.0;
    std::string mc_node;
    double mc_stop = 0.0;
    double mc_noise_dt = 0.0;
};

struct PathTimes {
    double op_ms = 0.0;
    double dc_ms = 0.0;
    double tran_ms = 0.0;
    double mc_ms = 0.0;
    [[nodiscard]] double total() const {
        return op_ms + dc_ms + tran_ms + mc_ms;
    }
};

/// Everything compared across the two paths.  (McResult has no default
/// constructor — its stats need a grid size — hence the placeholder.)
struct PathResults {
    engines::DcResult op;
    engines::SweepResult sweep;
    engines::TranResult tran;
    engines::McResult mc{.grid = {},
                         .mean = analysis::Waveform("mean"),
                         .stddev = analysis::Waveform("stddev"),
                         .stats = stochastic::EnsembleStats(1),
                         .aborted = false,
                         .flops = {}};
    PathTimes times;
    std::size_t full_factors = 0;
    std::size_t fast_refactors = 0;
};

struct WorkloadReport {
    std::string name;
    std::size_t unknowns = 0;
    bool dense_path = false;
    PathTimes session;
    PathTimes percall;
    std::size_t session_full_factors = 0;
    std::size_t session_fast_refactors = 0;
    double speedup = 0.0;
    double max_dev = 0.0;
};

PathResults run_session(const Workload& w, int mc_runs) {
    SimSession session(w.make());
    PathResults out;

    auto t0 = Clock::now();
    AnalysisResult op = session.run(OpSpec{});
    out.times.op_ms = ms_since(t0);
    out.full_factors += op.header.solver.full_factors;
    out.fast_refactors += op.header.solver.fast_refactors;

    DcSweepSpec dc;
    dc.source = w.sweep_source;
    dc.start = 0.0;
    dc.stop = w.sweep_stop;
    dc.step = w.sweep_step;
    t0 = Clock::now();
    AnalysisResult sweep = session.run(dc);
    out.times.dc_ms = ms_since(t0);
    out.full_factors += sweep.header.solver.full_factors;
    out.fast_refactors += sweep.header.solver.fast_refactors;

    TranSpec tran;
    tran.t_stop = w.tran_stop;
    t0 = Clock::now();
    AnalysisResult tr = session.run(tran);
    out.times.tran_ms = ms_since(t0);
    out.full_factors += tr.header.solver.full_factors;
    out.fast_refactors += tr.header.solver.fast_refactors;

    MonteCarloSpec mc;
    mc.node = w.mc_node;
    mc.t_stop = w.mc_stop;
    mc.noise_dt = w.mc_noise_dt;
    mc.runs = mc_runs;
    mc.grid_points = 26;
    // Warm-start every trial from the operating point and march on the
    // noise grid directly (the realistic MC configuration: the trial
    // cost is the noise-resolving transient, not a repeated DC march or
    // an adaptive controller chasing white noise).
    mc.tran.start_from_dc = false;
    mc.tran.initial = std::get<engines::DcResult>(op.payload).x;
    mc.tran.adaptive = false;
    mc.tran.dt_init = w.mc_noise_dt;
    t0 = Clock::now();
    AnalysisResult mcr = session.run(mc);
    out.times.mc_ms = ms_since(t0);
    out.full_factors += mcr.header.solver.full_factors;
    out.fast_refactors += mcr.header.solver.fast_refactors;

    out.op = std::get<engines::DcResult>(std::move(op.payload));
    out.sweep = std::get<engines::SweepResult>(std::move(sweep.payload));
    out.tran = std::get<engines::TranResult>(std::move(tr.payload));
    out.mc = std::get<engines::McResult>(std::move(mcr.payload));
    return out;
}

PathResults run_percall(const Workload& w, int mc_runs) {
    // PR-3-era shape: one assembler, but every engine call (and every MC
    // trial inside run_monte_carlo) freezes its own SystemCache.
    Circuit circuit = w.make();
    const mna::MnaAssembler assembler(circuit);
    PathResults out;

    auto t0 = Clock::now();
    out.op = engines::solve_op_swec(assembler);
    out.times.op_ms = ms_since(t0);

    DcSweepSpec values_helper;
    values_helper.source = w.sweep_source;
    values_helper.stop = w.sweep_stop;
    values_helper.step = w.sweep_step;
    const linalg::Vector values = values_helper.values();
    t0 = Clock::now();
    {
        // The legacy sweep parks the source at the final sweep value
        // (the facade bug the session's SourceWaveGuard fixes); restore
        // manually so the baseline computes the same downstream results.
        const SourceWaveGuard guard(circuit, w.sweep_source);
        out.sweep = engines::dc_sweep_swec(circuit, w.sweep_source, values);
    }
    out.times.dc_ms = ms_since(t0);

    engines::SwecTranOptions tran;
    tran.t_stop = w.tran_stop;
    t0 = Clock::now();
    out.tran = engines::run_tran_swec(assembler, tran);
    out.times.tran_ms = ms_since(t0);

    engines::McOptions mc;
    mc.t_stop = w.mc_stop;
    mc.noise_dt = w.mc_noise_dt;
    mc.runs = mc_runs;
    mc.grid_points = 26;
    mc.tran.start_from_dc = false;
    mc.tran.initial = out.op.x;
    mc.tran.adaptive = false;
    mc.tran.dt_init = w.mc_noise_dt;
    stochastic::Rng rng(1);
    const NodeId node = circuit.find_node(w.mc_node);
    t0 = Clock::now();
    out.mc = engines::run_monte_carlo(assembler, mc, rng, node);
    out.times.mc_ms = ms_since(t0);
    return out;
}

/// Max absolute deviation between the two paths' results.
double max_deviation(const PathResults& a, const PathResults& b,
                     double tran_stop) {
    double dev = 0.0;
    for (std::size_t i = 0; i < a.op.x.size(); ++i) {
        dev = std::max(dev, std::abs(a.op.x[i] - b.op.x[i]));
    }
    for (std::size_t k = 0; k < a.sweep.solutions.size(); ++k) {
        for (std::size_t i = 0; i < a.sweep.solutions[k].size(); ++i) {
            dev = std::max(dev, std::abs(a.sweep.solutions[k][i] -
                                         b.sweep.solutions[k][i]));
        }
    }
    // Transients may take (identical, but in principle differing) step
    // sequences; compare on a common sampling grid.
    for (std::size_t n = 0; n < a.tran.node_waves.size(); ++n) {
        for (int s = 0; s <= 50; ++s) {
            const double t = tran_stop * static_cast<double>(s) / 50.0;
            dev = std::max(dev, std::abs(a.tran.node_waves[n].at(t) -
                                         b.tran.node_waves[n].at(t)));
        }
    }
    for (std::size_t j = 0; j < a.mc.mean.size(); ++j) {
        dev = std::max(dev, std::abs(a.mc.mean.value()[j] -
                                     b.mc.mean.value()[j]));
        dev = std::max(dev, std::abs(a.mc.stddev.value()[j] -
                                     b.mc.stddev.value()[j]));
    }
    return dev;
}

void print_times(const char* label, const PathTimes& t) {
    std::cout << "  " << std::left << std::setw(9) << label << std::right
              << std::fixed << std::setprecision(2) << " op " << std::setw(9)
              << t.op_ms << " ms | dc " << std::setw(9) << t.dc_ms
              << " ms | tran " << std::setw(9) << t.tran_ms << " ms | mc "
              << std::setw(9) << t.mc_ms << " ms | total " << std::setw(9)
              << t.total() << " ms\n";
}

} // namespace

int main(int argc, char** argv) {
    const int mc_runs = argc > 1 ? std::stoi(argv[1]) : 100;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_session.json");
    const int mesh = argc > 3 ? std::stoi(argv[3]) : 32;
    const bool full_run = mc_runs >= 50;

    nanosim::bench::banner(
        "session_reuse",
        "SimSession::run_all {op, dc sweep, tran, " +
            std::to_string(mc_runs) +
            "-trial MC}: one persistent solver cache vs PR-3-era per-call "
            "construction");

    const double kT = 20e-9;
    std::vector<Workload> workloads;
    workloads.push_back(
        {"fet_rtd_inverter",
         [] {
             Circuit ckt = refckt::fet_rtd_inverter();
             ckt.add<NoiseCurrentSource>("NOISE1", k_ground,
                                         ckt.find_node("out"), 1e-9);
             return ckt;
         },
         "VIN", 5.0, 0.25, 100e-9, "out", kT, 1e-9});
    workloads.push_back(
        {"rc_mesh" + std::to_string(mesh) + "x" + std::to_string(mesh),
         [mesh] {
             Circuit ckt = refckt::rc_mesh(mesh, mesh);
             const std::string center =
                 "n" + std::to_string(mesh / 2) + "_" +
                 std::to_string(mesh / 2);
             ckt.add<NoiseCurrentSource>("NOISE1", k_ground,
                                         ckt.find_node(center), 1e-9);
             return ckt;
         },
         "VIN", 2.0, 0.2, kT, "n" + std::to_string(mesh / 2) + "_" +
                                  std::to_string(mesh / 2),
         5e-9, 2.5e-10});

    bool pass = true;
    std::vector<WorkloadReport> reports;
    for (const Workload& w : workloads) {
        nanosim::bench::section(w.name);
        WorkloadReport rep;
        rep.name = w.name;
        {
            const mna::MnaAssembler probe(w.make());
            rep.unknowns = static_cast<std::size_t>(probe.unknowns());
            rep.dense_path = rep.unknowns <= 64;
        }

        const PathResults session = run_session(w, mc_runs);
        const PathResults percall = run_percall(w, mc_runs);
        rep.session = session.times;
        rep.percall = percall.times;
        rep.session_full_factors = session.full_factors;
        rep.session_fast_refactors = session.fast_refactors;
        rep.speedup = session.times.total() > 0.0
                          ? percall.times.total() / session.times.total()
                          : 0.0;
        rep.max_dev = max_deviation(session, percall, w.tran_stop);

        std::cout << "  " << rep.unknowns << " unknowns ("
                  << (rep.dense_path ? "dense" : "sparse")
                  << " solver path)\n";
        print_times("session", rep.session);
        print_times("per-call", rep.percall);
        std::cout << "  session symbolic factorisations: "
                  << rep.session_full_factors << " (plus "
                  << rep.session_fast_refactors
                  << " pattern-reusing refactors)\n"
                  << "  speedup " << std::setprecision(2) << rep.speedup
                  << "x | max deviation " << std::scientific
                  << std::setprecision(2) << rep.max_dev << std::fixed
                  << "\n";

        if (rep.max_dev > 1e-12) {
            std::cout << "  FAIL: paths disagree beyond 1e-12\n";
            pass = false;
        }
        if (!rep.dense_path && rep.session_full_factors != 1) {
            std::cout << "  FAIL: sparse session batch should run exactly "
                         "one symbolic factorisation\n";
            pass = false;
        }
        if (full_run && !rep.dense_path && rep.speedup <= 1.02) {
            std::cout << "  FAIL: session path not faster on the sparse "
                         "workload\n";
            pass = false;
        }
        reports.push_back(std::move(rep));
    }

    std::ofstream json(out_path);
    json << std::scientific << std::setprecision(9);
    json << "{\n  \"bench\": \"session_reuse\",\n"
         << "  \"mc_runs\": " << mc_runs << ",\n"
         << "  \"agreement_tol\": 1e-12,\n"
         << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const WorkloadReport& r = reports[i];
        auto times = [&json](const char* key, const PathTimes& t) {
            json << "      \"" << key << "_ms\": {\"op\": " << t.op_ms
                 << ", \"dc\": " << t.dc_ms << ", \"tran\": " << t.tran_ms
                 << ", \"mc\": " << t.mc_ms << ", \"total\": " << t.total()
                 << "},\n";
        };
        json << "    {\n      \"name\": \"" << r.name << "\",\n"
             << "      \"unknowns\": " << r.unknowns << ",\n"
             << "      \"solver_path\": \""
             << (r.dense_path ? "dense" : "sparse") << "\",\n";
        times("session", r.session);
        times("percall", r.percall);
        json << "      \"session_full_factors\": " << r.session_full_factors
             << ",\n      \"session_fast_refactors\": "
             << r.session_fast_refactors << ",\n      \"speedup\": "
             << r.speedup << ",\n      \"max_dev\": " << r.max_dev << "\n    }"
             << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::cout << "\nwrote " << out_path << (pass ? " (pass)" : " (FAIL)")
              << "\n";
    return pass ? 0 : 1;
}
