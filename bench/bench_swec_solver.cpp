// Nano-Sim bench — pattern-reusing sparse solver on RTD chains.
//
//   $ ./bench_swec_solver [reps] [out.json]
//
// Measures, on the MNA matrix of rtd_chain circuits of growing size:
//
//   * fresh SparseLu factorisation time (the cost the seed engines paid
//     on EVERY accepted time point: triplet sort + symbolic DFS + pivot
//     search + numeric sweep), vs
//   * SparseLu::refactor() time (numeric sweep only, recorded reach sets
//     and pivots reused) — the cost an accepted step pays now;
//
// and the end-to-end SWEC transient time per accepted step through
// mna::SystemCache.  Writes BENCH_swec_solver.json with the
// factor-vs-refactor ratio per size.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/tran_swec.hpp"
#include "linalg/sparse_lu.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using nanosim::Circuit;
using nanosim::linalg::SparseLu;
using nanosim::linalg::Triplets;

double us_since(Clock::time_point start) {
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
}

struct SizeResult {
    int stages = 0;
    std::size_t unknowns = 0;
    std::size_t nnz = 0;
    double factor_us = 0.0;
    double refactor_us = 0.0;
    double ratio = 0.0;
    int tran_steps = 0;
    double tran_ms = 0.0;
    double tran_us_per_step = 0.0;
    std::size_t full_factors = 0;
    std::size_t fast_refactors = 0;
};

} // namespace

int main(int argc, char** argv) {
    const int reps = argc > 1 ? std::stoi(argv[1]) : 200;
    const std::string out_path =
        argc > 2 ? argv[2] : std::string("BENCH_swec_solver.json");

    nanosim::bench::banner(
        "swec solver",
        "symbolic/numeric split: fresh LU factor vs pattern-reusing "
        "refactor on RTD chains");

    const std::vector<int> sizes{100, 200, 400, 800};
    std::vector<SizeResult> results;

    for (const int stages : sizes) {
        nanosim::refckt::ChainSpec spec;
        spec.stages = stages;
        Circuit ckt = nanosim::refckt::rtd_chain(spec);
        const nanosim::mna::MnaAssembler assembler(ckt);

        SizeResult r;
        r.stages = stages;
        r.unknowns = static_cast<std::size_t>(assembler.unknowns());

        const double h = 1e-10;
        const Triplets a = nanosim::mna::swec_step_matrix(assembler, h);

        // Fresh factorisation — the seed's per-step cost.
        auto t0 = Clock::now();
        for (int i = 0; i < reps; ++i) {
            const SparseLu lu(a);
        }
        r.factor_us = us_since(t0) / reps;

        // Pattern-reusing refactor — the per-step cost now.  Values are
        // fed in cached pattern order (what SystemCache does) and nudged
        // each rep so the work is not value-degenerate.
        SparseLu lu(a);
        r.nnz = lu.pattern_nnz();
        // Caller-order CSC values — the same compression SparseLu caches.
        std::vector<double> values =
            nanosim::linalg::compress_columns(a).values;
        t0 = Clock::now();
        for (int i = 0; i < reps; ++i) {
            for (double& v : values) {
                v *= 1.0 + 1e-9; // chord values drift step to step
            }
            (void)lu.refactor(std::span<const double>(values));
        }
        r.refactor_us = us_since(t0) / reps;
        r.ratio = r.factor_us / r.refactor_us;

        // End-to-end SWEC transient through the cached system.
        nanosim::engines::SwecTranOptions opt;
        opt.t_stop = 20e-9;
        t0 = Clock::now();
        const auto tran = nanosim::engines::run_tran_swec(assembler, opt);
        r.tran_ms = us_since(t0) / 1000.0;
        r.tran_steps = tran.steps_accepted;
        r.tran_us_per_step = 1000.0 * r.tran_ms / tran.steps_accepted;
        r.full_factors = tran.solver_full_factors;
        r.fast_refactors = tran.solver_fast_refactors;

        results.push_back(r);
    }

    nanosim::bench::section("per-step solver cost");
    std::cout << std::left << std::setw(8) << "stages" << std::setw(10)
              << "unknowns" << std::setw(9) << "nnz" << std::setw(12)
              << "factor_us" << std::setw(13) << "refactor_us"
              << std::setw(8) << "ratio" << std::setw(12) << "tran_us/st"
              << std::setw(14) << "full/refast" << '\n';
    for (const auto& r : results) {
        std::cout << std::left << std::setw(8) << r.stages << std::setw(10)
                  << r.unknowns << std::setw(9) << r.nnz << std::setw(12)
                  << r.factor_us << std::setw(13) << r.refactor_us
                  << std::setw(8) << std::setprecision(3) << r.ratio
                  << std::setw(12) << r.tran_us_per_step << r.full_factors
                  << "/" << r.fast_refactors << std::setprecision(6)
                  << '\n';
    }

    bool refactor_wins = true;
    for (const auto& r : results) {
        refactor_wins = refactor_wins && r.refactor_us < r.factor_us;
    }
    std::cout << "\n  refactor strictly faster than fresh factor at every "
                 "size: "
              << (refactor_wins ? "yes" : "NO — REGRESSION") << '\n';

    std::ofstream json(out_path);
    json << "{\n  \"bench\": \"swec_solver\",\n  \"reps\": " << reps
         << ",\n  \"refactor_strictly_faster\": "
         << (refactor_wins ? "true" : "false") << ",\n  \"sizes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        json << "    {\"stages\": " << r.stages
             << ", \"unknowns\": " << r.unknowns << ", \"nnz\": " << r.nnz
             << ", \"factor_us\": " << r.factor_us
             << ", \"refactor_us\": " << r.refactor_us
             << ", \"factor_vs_refactor_ratio\": " << r.ratio
             << ", \"tran_steps\": " << r.tran_steps
             << ", \"tran_ms\": " << r.tran_ms
             << ", \"tran_us_per_step\": " << r.tran_us_per_step
             << ", \"solver_full_factors\": " << r.full_factors
             << ", \"solver_fast_refactors\": " << r.fast_refactors << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "  wrote " << out_path << '\n';

    return refactor_wins ? 0 : 1;
}
