// Figure 10 — results from the Euler-Maruyama method and the analytic
// solution.
//
// Paper: "The circuit is a time-variant nanoscale transistor with some
// parasitic RCs.  From 0-1ns, we observe a possible performance peak
// about 0.6 V."  The EM ensemble (mean +/- sigma envelope and sample
// paths) is compared point-by-point against the exact Ornstein-Uhlenbeck
// moment propagation (piecewise-constant G(t), Van Loan discretization).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/em_engine.hpp"
#include "engines/ou_exact.hpp"
#include "mna/mna.hpp"
#include "stochastic/stats.hpp"

using namespace nanosim;

int main() {
    bench::banner("Figure 10",
                  "Stochastic transient: Euler-Maruyama vs analytic "
                  "solution (time-variant transistor + parasitic RC + "
                  "white-noise input, 0-1 ns)");

    Circuit ckt = refckt::fig10_noisy_transistor();
    const mna::MnaAssembler assembler(ckt);
    constexpr double t_stop = 1e-9;
    constexpr std::size_t steps = 500;

    // Analytic reference (exact OU moment propagation).
    const auto exact = engines::exact_moments(assembler, t_stop, steps);

    // EM ensemble on the same grid.
    engines::EmOptions em;
    em.t_stop = t_stop;
    em.dt = t_stop / steps;
    const engines::EmEngine engine(assembler, em);
    stochastic::Rng rng(2024);
    const auto ens = engine.run_ensemble(500, rng, ckt.find_node("n1"));

    // One EM sample path for the figure.
    stochastic::Rng rng_path(7);
    const auto sample = engine.run_path(rng_path);

    analysis::Waveform exact_mean("analytic mean");
    analysis::Waveform exact_hi("analytic mean+sigma");
    analysis::Waveform exact_lo("analytic mean-sigma");
    for (std::size_t j = 0; j <= steps; ++j) {
        const double m = exact.mean[j][0];
        const double s = std::sqrt(exact.variance[j][0]);
        const double t = exact.grid[j] + (j == 0 ? 1e-18 : 0.0);
        exact_mean.append(t, m);
        exact_hi.append(t, m + s);
        exact_lo.append(t, m - s);
    }

    bench::section("sample path vs analytic envelope");
    bench::plot({sample.node_waves[0], exact_mean, exact_hi, exact_lo},
                "X = V(n1): one EM path against the exact mean +/- sigma",
                "t [s]", "V");

    bench::section("ensemble mean vs analytic mean");
    bench::plot({ens.mean, exact_mean}, "E[V(n1)](t), 500 EM paths",
                "t [s]", "V");

    // Point-by-point comparison table.
    analysis::Table t({"t [ns]", "EM mean [V]", "analytic mean [V]",
                       "EM sigma [mV]", "analytic sigma [mV]"});
    for (const std::size_t j :
         {steps / 10, steps / 4, steps / 2, (3 * steps) / 4, steps}) {
        t.add_row({analysis::Table::num(exact.grid[j] * 1e9, 3),
                   analysis::Table::num(ens.stats.at(j).mean(), 4),
                   analysis::Table::num(exact.mean[j][0], 4),
                   analysis::Table::num(ens.stats.at(j).stddev() * 1e3, 3),
                   analysis::Table::num(
                       std::sqrt(exact.variance[j][0]) * 1e3, 3)});
    }
    t.print(std::cout);

    // The paper's headline number: the peak within the 0-1 ns window.
    double exact_peak = 0.0;
    for (std::size_t j = 0; j <= steps; ++j) {
        exact_peak = std::max(exact_peak, exact.mean[j][0] +
                                              std::sqrt(exact.variance[j][0]));
    }
    std::cout << "\npeak statistics over 0-1 ns (paper: \"possible "
                 "performance peak about 0.6 V\"):\n"
              << "  EM per-path peak: mean = "
              << ens.stats.peak_stats().mean() << " V, max = "
              << ens.stats.peak_stats().max() << " V, p95 = "
              << stochastic::percentile(ens.stats.peaks(), 95.0) << " V\n"
              << "  analytic mean+sigma peak: " << exact_peak << " V\n";
    return 0;
}
