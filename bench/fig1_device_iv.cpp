// Figure 1 — I-V curves for (a) a resonant tunneling transistor and
// (b) a carbon nanotube / quantum nanowire.
//
// Paper: "The resulting I-V characteristics exhibits multiple peaks with
// a staircase contour" (RTT) and "the staircase characteristics of the
// conductance signal confirms that the carbon nanotubes behave as
// quantum wires" (CNT).
#include <iostream>

#include "bench_common.hpp"
#include "devices/nanowire.hpp"
#include "devices/rtt.hpp"
#include "util/constants.hpp"

using namespace nanosim;

namespace {

void rtt_curve() {
    bench::section("Fig. 1(a): RTT collector current vs V_CE (V_BE = 2 V)");
    const Rtt rtt("RTT1", 1, 2, 0);
    analysis::Waveform iv("I_C [mA]");
    analysis::Waveform gv("dI/dV [mS]");
    int peaks = 0;
    double prev = 0.0;
    bool rising = true;
    for (double v = 0.0; v <= 5.0 + 1e-9; v += 0.02) {
        const double i = rtt.collector_current(v, 2.0);
        iv.append(v == 0.0 ? 1e-12 : v, i * 1e3);
        gv.append(v == 0.0 ? 1e-12 : v, rtt.gce(v, 2.0) * 1e3);
        if (rising && i < prev) {
            ++peaks;
            rising = false;
        } else if (!rising && i > prev) {
            rising = true;
        }
        prev = i;
    }
    bench::plot({iv}, "RTT I-V: multiple resonance peaks", "V_CE [V]",
                "I_C [mA]");
    std::cout << "resonance peaks found in 0-5 V: " << peaks
              << " (paper: multiple peaks with a staircase contour)\n";
}

void cnt_curve() {
    bench::section("Fig. 1(b): nanowire/CNT I-V and conductance staircase");
    NanowireParams p;
    p.channels = 4;
    p.v_step = 0.5;
    p.smear = 0.03;
    const Nanowire nw("NW1", 1, 0, p);
    analysis::Waveform iv("I [uA]");
    analysis::Waveform g("G/G0");
    for (double v = -2.0; v <= 2.0 + 1e-9; v += 0.02) {
        iv.append(v, nw.current(v) * 1e6);
        g.append(v, nw.didv(v) / phys::g0_quantum);
    }
    bench::plot({iv}, "CNT I-V (odd, piecewise-linear staircase)", "V [V]",
                "I [uA]");
    bench::plot({g}, "CNT conductance in units of G0 = 2e^2/h", "V [V]",
                "G/G0");

    analysis::Table t({"plateau bias [V]", "G/G0 (measured)",
                       "G/G0 (expected)"});
    const double checks[4][2] = {
        {0.25, 1.0}, {0.75, 2.0}, {1.25, 3.0}, {1.75, 4.0}};
    for (const auto& c : checks) {
        t.add_row({analysis::Table::num(c[0]),
                   analysis::Table::num(nw.didv(c[0]) / phys::g0_quantum, 4),
                   analysis::Table::num(c[1], 2)});
    }
    t.print(std::cout);
}

} // namespace

int main() {
    bench::banner("Figure 1",
                  "Anticipated nanodevice I-V characteristics: RTT "
                  "multi-peak staircase and CNT conductance quantisation");
    rtt_curve();
    cnt_curve();
    return 0;
}
