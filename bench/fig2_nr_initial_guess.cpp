// Figure 2 — dependence of the Newton-Raphson method on the initial
// guess.
//
// Paper: "Starting with initial guess x0 leads to oscillations between
// points x1 and x2 whereas having x0' as the initial guess makes the
// simulation converge."  We reproduce this on a current-driven RTD
// (solve J(v) = I_src): a guess near the resonance peak bounces for the
// whole iteration budget; a guess past the peak converges in a handful
// of iterations — and different guesses that DO converge land on
// different branches of the non-monotonic curve.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "devices/rtd.hpp"
#include "devices/sources.hpp"
#include "engines/dc_nr.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

namespace {

Circuit current_driven_rtd(double i_src) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<ISource>("I1", k_ground, a, i_src);
    ckt.add<Rtd>("RTD1", a, k_ground);
    return ckt;
}

void trace_run(double i_src, double v0, int budget) {
    Circuit ckt = current_driven_rtd(i_src);
    const mna::MnaAssembler assembler(ckt);
    engines::NrOptions opt;
    opt.max_iterations = budget;
    opt.initial_guess = linalg::Vector{v0};
    opt.record_trace = true;
    const auto r = engines::solve_op_nr(assembler, opt);

    std::cout << "I_src=" << i_src * 1e3 << " mA, x0=" << v0
              << " V  ->  " << (r.converged ? "CONVERGED" : "FAILED")
              << " after " << r.iterations
              << " iterations (final x=" << std::setprecision(4)
              << r.x[0] << " V, residual=" << r.residual << ")\n";
    std::cout << "  iterates:";
    const std::size_t n = r.trace.size();
    for (std::size_t k = 0; k < std::min<std::size_t>(n, 12); ++k) {
        std::cout << ' ' << std::setprecision(3) << r.trace[k][0];
    }
    if (n > 12) {
        std::cout << " ... " << std::setprecision(3)
                  << r.trace[n - 2][0] << ' ' << r.trace[n - 1][0];
    }
    std::cout << '\n';

    // Render the iterate sequence as a "voltage vs iteration" plot so the
    // bouncing of the failed case is visible.
    analysis::Waveform it_wave("NR iterate [V]");
    for (std::size_t k = 0; k < n; ++k) {
        it_wave.append(static_cast<double>(k) + 1e-9, r.trace[k][0]);
    }
    if (it_wave.size() >= 2) {
        bench::plot({it_wave}, "", "iteration", "v");
    }
}

} // namespace

int main() {
    bench::banner("Figure 2",
                  "Dependence of Newton-Raphson convergence on the "
                  "initial guess (current-driven RTD, J(v) = I_src)");

    bench::section("bad guess x0 = 3.0 V (near the resonance peak)");
    trace_run(8e-3, 3.0, 40);

    bench::section("good guess x0' = 4.5 V (past the peak)");
    trace_run(8e-3, 4.5, 40);

    bench::section("converged-but-different-branch (I_src = 10 mA)");
    trace_run(10e-3, 3.0, 40);
    trace_run(10e-3, 4.5, 40);
    std::cout << "\nNote: both runs 'converge' — to operating points >1 V"
                 " apart.  This initial-guess dependence is exactly the\n"
                 "failure mode the step-wise equivalent conductance "
                 "technique eliminates (no Newton iterations at all).\n";
    return 0;
}
