// Figure 3 — equivalent conductance as per (a) the piecewise-linear
// model and (b) the step-wise (chord) model.
//
// Paper Sec. 3.2: the PWL segment conductance is the local secant
// dI/dV over a segment — NEGATIVE inside the NDR region (the hazard the
// ACES-style engine must manage), while the SWEC chord I(V)/V stays
// positive for every bias.
#include <iostream>

#include "bench_common.hpp"
#include "devices/rtd.hpp"

using namespace nanosim;

int main() {
    bench::banner("Figure 3",
                  "Equivalent conductance definitions: piecewise-linear "
                  "segment slope vs step-wise chord (RTD, paper params)");

    const RtdParams p = RtdParams::date05();
    constexpr int segments = 25;
    constexpr double v_max = 5.0;
    constexpr double dv = v_max / segments;

    analysis::Waveform pwl("PWL segment slope [mS]");
    analysis::Waveform chord("SWEC chord I/V [mS]");
    for (int s = 0; s < segments; ++s) {
        const double v0 = dv * s;
        const double v1 = v0 + dv;
        const double g_seg =
            (rtd_math::current(p, v1) - rtd_math::current(p, v0)) / dv;
        const double vm = 0.5 * (v0 + v1);
        pwl.append(vm, g_seg * 1e3);
        chord.append(vm, rtd_math::chord(p, vm) * 1e3);
    }
    bench::plot({pwl, chord},
                "conductance vs bias: PWL dips NEGATIVE in NDR, chord "
                "stays positive",
                "V [V]", "G [mS]");

    analysis::Table t({"bias [V]", "PWL slope [mS]", "SWEC chord [mS]"});
    int pwl_negative = 0;
    for (std::size_t i = 0; i < pwl.size(); i += 4) {
        t.add_row({analysis::Table::num(pwl.time_at(i), 3),
                   analysis::Table::num(pwl.value_at(i), 4),
                   analysis::Table::num(chord.value_at(i), 4)});
    }
    for (std::size_t i = 0; i < pwl.size(); ++i) {
        if (pwl.value_at(i) < 0.0) {
            ++pwl_negative;
        }
    }
    t.print(std::cout);
    std::cout << "PWL segments with negative conductance: " << pwl_negative
              << " / " << segments << '\n'
              << "SWEC chord minimum over the sweep: " << chord.min_value()
              << " mS (> 0: the NDR problem cannot occur)\n";
    return 0;
}
