// Figure 4 — RTD I-V characteristics with the three regions: first
// positive differential resistance (PDR1), negative differential
// resistance (NDR), second positive differential resistance (PDR2).
//
// Two parameter sets are rendered: the paper's exact DATE'05 set (whose
// J2 term keeps PDR2 above the plotted range — PDR1 + NDR are visible to
// 6 V) and the documented three-region demo set (DESIGN.md) that brings
// the valley and PDR2 inside the plot, matching the textbook shape of
// the figure.
#include <iostream>

#include "bench_common.hpp"
#include "devices/rtd.hpp"

using namespace nanosim;

namespace {

void render(const RtdParams& p, const char* name, double v_max) {
    bench::section(name);
    analysis::Waveform iv("J [mA]");
    for (double v = 0.0; v <= v_max + 1e-9; v += v_max / 200.0) {
        iv.append(v == 0.0 ? 1e-12 : v, rtd_math::current(p, v) * 1e3);
    }
    bench::plot({iv}, "", "V [V]", "J [mA]");

    const auto pv = rtd_math::find_peak_valley(p, v_max);
    const double jp = rtd_math::current(p, pv.v_peak);
    const double jv = rtd_math::current(p, pv.v_valley);
    analysis::Table t({"landmark", "V [V]", "J [mA]"});
    t.add_row({"resonance peak (PDR1 -> NDR)",
               analysis::Table::num(pv.v_peak, 4),
               analysis::Table::num(jp * 1e3, 4)});
    t.add_row({"valley (NDR -> PDR2)",
               analysis::Table::num(pv.v_valley, 4),
               analysis::Table::num(jv * 1e3, 4)});
    t.print(std::cout);
    if (pv.v_valley < v_max) {
        std::cout << "peak-to-valley current ratio: " << jp / jv << '\n';
    } else {
        std::cout << "valley beyond plotted range (J2 negligible below "
                     "~10 V for this set)\n";
    }
}

} // namespace

int main() {
    bench::banner("Figure 4",
                  "RTD I-V characteristics (Schulman equation, eq. 4): "
                  "PDR1 / NDR / PDR2 regions");
    render(RtdParams::date05(), "paper parameter set (Sec. 5.2)", 6.0);
    render(RtdParams::three_region_demo(),
           "three-region demo set (DESIGN.md substitution note)", 7.0);
    return 0;
}
