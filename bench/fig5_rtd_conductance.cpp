// Figure 5 — RTD conductance as a function of applied bias.
//
// Paper: "The differential conductance approach generates negative
// values of the conductance as the device enters the resistance
// decreasing region (RDR), whereas the stepwise equivalent conductance
// approach always generates positive values."
#include <iostream>

#include "bench_common.hpp"
#include "devices/rtd.hpp"

using namespace nanosim;

int main() {
    bench::banner("Figure 5",
                  "RTD conductance vs applied bias: differential (SPICE "
                  "view) vs step-wise equivalent (SWEC view)");

    const RtdParams p = RtdParams::date05();
    analysis::Waveform diff("differential dJ/dV [mS]");
    analysis::Waveform chord("SWEC chord J/V [mS]");
    double min_diff = 1e12;
    double min_chord = 1e12;
    double v_neg_start = -1.0;
    for (double v = 0.01; v <= 6.0 + 1e-9; v += 0.02) {
        const double gd = rtd_math::didv(p, v);
        const double gc = rtd_math::chord(p, v);
        diff.append(v, gd * 1e3);
        chord.append(v, gc * 1e3);
        if (gd < 0.0 && v_neg_start < 0.0) {
            v_neg_start = v;
        }
        min_diff = std::min(min_diff, gd);
        min_chord = std::min(min_chord, gc);
    }
    bench::plot({diff, chord},
                "conductance vs bias (note the differential curve "
                "crossing below zero)",
                "V [V]", "G [mS]");

    analysis::Table t({"quantity", "value"});
    t.add_row({"differential conductance minimum [mS]",
               analysis::Table::num(min_diff * 1e3, 5)});
    t.add_row({"bias where dJ/dV turns negative [V]",
               analysis::Table::num(v_neg_start, 4)});
    t.add_row({"SWEC chord conductance minimum [mS]",
               analysis::Table::num(min_chord * 1e3, 5)});
    t.print(std::cout);
    std::cout << (min_chord > 0.0
                      ? "chord conductance positive everywhere: NDR "
                        "problem structurally eliminated\n"
                      : "ERROR: chord went negative\n");
    return 0;
}
