// Figure 6 + eqs. (10)-(12) — adaptive time-step control study.
//
// The paper derives per-device and per-node step bounds from a target
// local error eps and takes their minimum (eq. 12).  This bench sweeps
// eps on the FET-RTD inverter and reports, for each target: the steps
// taken, the measured a-posteriori local error (eq. 10), and the
// waveform error against a fine-step reference — plus the fixed-step
// ablation, which needs far more steps for the same accuracy.
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

int main() {
    bench::banner("Figure 6 / eqs. 10-12",
                  "Adaptive time-step control: error target vs cost on "
                  "the FET-RTD inverter");

    Circuit ckt = refckt::fet_rtd_inverter();
    const mna::MnaAssembler assembler(ckt);

    engines::SwecTranOptions ref_opt;
    ref_opt.t_stop = 200e-9;
    ref_opt.adaptive = false;
    ref_opt.dt_init = 0.05e-9;
    const auto ref = engines::run_tran_swec(assembler, ref_opt);
    const auto& ref_out = ref.node(ckt, "out");
    std::cout << "reference: fixed dt = 0.05 ns, "
              << ref.steps_accepted << " steps\n";

    analysis::Table t({"mode", "eps target", "steps", "flops",
                       "mean eq.(10) err", "max eq.(10) err",
                       "waveform err [V]"});
    for (const double eps : {0.02, 0.05, 0.1, 0.2}) {
        engines::SwecTranOptions opt;
        opt.t_stop = 200e-9;
        opt.eps = eps;
        const auto r = engines::run_tran_swec(assembler, opt);
        t.add_row({"adaptive (eq. 12)", analysis::Table::num(eps),
                   std::to_string(r.steps_accepted),
                   std::to_string(r.flops.total()),
                   analysis::Table::num(r.avg_local_error, 3),
                   analysis::Table::num(r.max_local_error, 3),
                   analysis::Table::num(
                       analysis::measure::max_abs_error(
                           r.node(ckt, "out"), ref_out),
                       3)});
    }
    for (const double dt : {2e-9, 0.5e-9, 0.2e-9}) {
        engines::SwecTranOptions opt;
        opt.t_stop = 200e-9;
        opt.adaptive = false;
        opt.dt_init = dt;
        const auto r = engines::run_tran_swec(assembler, opt);
        t.add_row({"fixed dt=" + analysis::Table::num(dt * 1e9, 2) + "ns",
                   "-", std::to_string(r.steps_accepted),
                   std::to_string(r.flops.total()),
                   analysis::Table::num(r.avg_local_error, 3),
                   analysis::Table::num(r.max_local_error, 3),
                   analysis::Table::num(
                       analysis::measure::max_abs_error(
                           r.node(ckt, "out"), ref_out),
                       3)});
    }
    t.print(std::cout);
    std::cout << "\n(max eq.(10) spikes at regenerative MOBILE switching "
                 "events, where the node accelerates faster than any "
                 "history-based estimate for one step; the mean tracks "
                 "ordinary step control.)\n";
    std::cout << "\nShape to check: smaller eps -> more steps and smaller "
                 "waveform error; the adaptive rows beat fixed-step rows "
                 "of similar accuracy on step count.\n";
    return 0;
}
