// Figure 7 — DC analysis with SWEC: (a) RTD I-V captured through a
// voltage-divider sweep, compared against our MLA implementation;
// (b) the same for a nanowire.
//
// Paper: "our approach is able to capture the negative resistance region
// of the I-V curve very closely and accurately" and "SWEC is able to
// simulate the circuits involving nanowires."
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "devices/nanowire.hpp"
#include "devices/rtd.hpp"
#include "engines/dc_mla.hpp"
#include "engines/dc_swec.hpp"
#include "linalg/vecops.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

namespace {

void rtd_sweep() {
    bench::section("Fig. 7(a): RTD voltage-divider sweep, SWEC vs MLA");
    Circuit ckt_swec = refckt::rtd_divider(50.0);
    Circuit ckt_mla = refckt::rtd_divider(50.0);
    const linalg::Vector values = linalg::linspace(0.0, 5.0, 101);

    const auto swec = engines::dc_sweep_swec(ckt_swec, "V1", values);
    const auto mla = engines::dc_sweep_mla(ckt_mla, "V1", values);

    const mna::MnaAssembler assembler(ckt_swec);
    const auto& rtd = ckt_swec.get<Rtd>("RTD1");
    analysis::Waveform iv_swec("SWEC I(V_rtd) [mA]");
    analysis::Waveform iv_mla("MLA I(V_rtd) [mA]");
    double worst_gap = 0.0;
    for (std::size_t k = 1; k < swec.values.size(); ++k) {
        const NodeVoltages vs = assembler.view(swec.solutions[k]);
        const NodeVoltages vm = assembler.view(mla.solutions[k]);
        const double v_dev_s = vs(ckt_swec.find_node("out"));
        const double v_dev_m = vm(ckt_swec.find_node("out"));
        if (iv_swec.empty() || v_dev_s > iv_swec.time().back()) {
            iv_swec.append(v_dev_s, rtd.branch_current(vs) * 1e3);
        }
        if (iv_mla.empty() || v_dev_m > iv_mla.time().back()) {
            iv_mla.append(v_dev_m, rtd.branch_current(vm) * 1e3);
        }
        worst_gap = std::max(worst_gap, std::abs(v_dev_s - v_dev_m));
    }
    bench::plot({iv_swec, iv_mla},
                "RTD I-V recovered from the divider sweep (NDR region "
                "included)",
                "V across RTD [V]", "I [mA]");
    std::cout << "sweep points: " << swec.values.size()
              << ", SWEC failures: " << swec.failures()
              << ", MLA failures: " << mla.failures() << '\n'
              << "worst SWEC-vs-MLA device-voltage gap: " << worst_gap
              << " V\n"
              << "SWEC flops: " << swec.flops.total()
              << "   MLA flops: " << mla.flops.total() << '\n';
}

void nanowire_sweep() {
    bench::section("Fig. 7(b): nanowire divider sweep (SWEC)");
    Circuit ckt = refckt::nanowire_divider(1e3);
    const linalg::Vector values = linalg::linspace(-2.0, 2.0, 101);
    const auto sweep = engines::dc_sweep_swec(ckt, "V1", values);

    const mna::MnaAssembler assembler(ckt);
    const auto& nw = ckt.get<Nanowire>("NW1");
    analysis::Waveform iv("I(V_wire) [uA]");
    for (std::size_t k = 0; k < sweep.values.size(); ++k) {
        const NodeVoltages v = assembler.view(sweep.solutions[k]);
        const double v_dev = v(ckt.find_node("out"));
        if (iv.empty() || v_dev > iv.time().back()) {
            iv.append(v_dev, nw.branch_current(v) * 1e6);
        }
    }
    bench::plot({iv},
                "nanowire I-V from the divider sweep (quantum-wire "
                "staircase)",
                "V across wire [V]", "I [uA]");
    std::cout << "sweep failures: " << sweep.failures() << '\n';
}

} // namespace

int main() {
    bench::banner("Figure 7",
                  "DC sweeps with SWEC: RTD divider (vs MLA) and "
                  "nanowire divider");
    rtd_sweep();
    nanowire_sweep();
    return 0;
}
