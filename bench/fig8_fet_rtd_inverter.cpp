// Figure 8 — FET-RTD inverter transient: (a) circuit, output generated
// by (b) SWEC, (c) SPICE3-like NR, (d) ACES-like PWL.
//
// Paper: "SPICE3 fails to converge to the correct solution.  SWEC
// generates more accurate response without needing to solve set of non
// linear equations, thus yielding better results at less computational
// expense."
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/tran_nr.hpp"
#include "engines/tran_pwl.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

int main() {
    bench::banner("Figure 8",
                  "FET-RTD inverter transient (V_in: 0<->5 V pulse): "
                  "SWEC vs SPICE3-like NR vs ACES-like PWL");

    Circuit ckt = refckt::fet_rtd_inverter();
    const mna::MnaAssembler assembler(ckt);
    constexpr double t_stop = 400e-9;

    engines::SwecTranOptions sopt;
    sopt.t_stop = t_stop;
    const auto swec = engines::run_tran_swec(assembler, sopt);

    engines::NrTranOptions nopt;
    nopt.t_stop = t_stop;
    const auto nr = engines::run_tran_nr(assembler, nopt);

    engines::PwlTranOptions popt;
    popt.t_stop = t_stop;
    const auto pwl = engines::run_tran_pwl(assembler, popt);

    const auto& in = swec.node(ckt, "in");
    bench::section("input waveform");
    bench::plot({in}, "V(in)", "t [s]", "V");

    bench::section("(b) SWEC output");
    bench::plot({swec.node(ckt, "out")}, "V(out), SWEC", "t [s]", "V");

    bench::section("(c) SPICE3-like NR output");
    bench::plot({nr.node(ckt, "out")}, "V(out), NR companion model",
                "t [s]", "V");

    bench::section("(d) ACES-like PWL output");
    bench::plot({pwl.node(ckt, "out")}, "V(out), PWL segments", "t [s]",
                "V");

    bench::section("engine health and cost");
    analysis::Table t({"engine", "steps", "rejected", "iterations",
                       "non-converged steps", "flops"});
    t.add_row({"SWEC", std::to_string(swec.steps_accepted),
               std::to_string(swec.steps_rejected),
               std::to_string(swec.nr_iterations),
               std::to_string(swec.nonconverged_steps),
               std::to_string(swec.flops.total())});
    t.add_row({"NR (SPICE3-like)", std::to_string(nr.steps_accepted),
               std::to_string(nr.steps_rejected),
               std::to_string(nr.nr_iterations),
               std::to_string(nr.nonconverged_steps),
               std::to_string(nr.flops.total())});
    t.add_row({"PWL (ACES-like)", std::to_string(pwl.steps_accepted),
               std::to_string(pwl.steps_rejected),
               std::to_string(pwl.nr_iterations),
               std::to_string(pwl.nonconverged_steps),
               std::to_string(pwl.flops.total())});
    t.print(std::cout);

    std::cout << "\nShape to check (paper): SWEC switches cleanly with "
                 "ZERO nonlinear iterations and zero non-converged "
                 "steps; the NR engine needs hundreds of iterations and "
                 "shows NDR distress (rejections / non-converged "
                 "steps); PWL tracks but pays segment iterations.\n";
    return 0;
}
