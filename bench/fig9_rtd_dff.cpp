// Figure 9 — RTD D-flip-flop: clocked MOBILE latch.
//
// Paper: "The input waveform switches at t = 300ns and the output
// waveform switches at the rising edge of clock at t = 350ns.  This
// shows that we could capture the right behavior of the circuit."
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

namespace {

double avg_between(const analysis::Waveform& w, double t0, double t1) {
    double acc = 0.0;
    constexpr int n = 64;
    for (int i = 0; i < n; ++i) {
        acc += w.at(t0 + (t1 - t0) * i / (n - 1));
    }
    return acc / n;
}

} // namespace

int main() {
    bench::banner("Figure 9",
                  "RTD D-flip-flop (clocked MOBILE latch): D switches at "
                  "300 ns, Q responds at the 350 ns rising clock edge");

    Circuit ckt = refckt::rtd_dff();
    const mna::MnaAssembler assembler(ckt);
    engines::SwecTranOptions opt;
    opt.t_stop = 500e-9;
    const auto res = engines::run_tran_swec(assembler, opt);

    bench::section("(b) clock");
    bench::plot({res.node(ckt, "clk")}, "V(clk)", "t [s]", "V");
    bench::section("(c) data and output");
    bench::plot({res.node(ckt, "d"), res.node(ckt, "q")},
                "V(d) and V(q) — MOBILE latch output is valid while the "
                "clock is high (return-to-zero) and inverts D",
                "t [s]", "V");

    const auto& q = res.node(ckt, "q");
    analysis::Table t({"window", "meaning", "avg V(q) [V]"});
    t.add_row({"255-295 ns", "clock high, D=0 (before switch)",
               analysis::Table::num(avg_between(q, 255e-9, 295e-9), 4)});
    t.add_row({"305-340 ns", "clock LOW, D already switched",
               analysis::Table::num(avg_between(q, 305e-9, 340e-9), 4)});
    t.add_row({"355-395 ns", "clock high again (first edge after D)",
               analysis::Table::num(avg_between(q, 355e-9, 395e-9), 4)});
    t.print(std::cout);

    const double before = avg_between(q, 255e-9, 295e-9);
    const double after = avg_between(q, 355e-9, 395e-9);
    std::cout << "\nQ level in the clock-high window BEFORE the D switch: "
              << before << " V; AFTER: " << after << " V\n"
              << "Shape to check (paper): the output state changes only "
                 "at the first rising clock edge after the data edge "
                 "(350 ns), never between 300 and 345 ns.\n";
    std::cout << "SWEC steps: " << res.steps_accepted
              << ", nonlinear iterations: " << res.nr_iterations
              << " (non-iterative as claimed)\n";
    return 0;
}
