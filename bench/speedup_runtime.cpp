// Headline claim (Secs. 1 & 6) — "The experimental results show a 20-30
// times speedup comparing with existing simulators."
//
// Two harnesses in one binary:
//  1. a flop/accuracy table across workloads (inverter, RTD chains of
//     growing size) comparing SWEC against the SPICE3-like NR engine at
//     (a) the NR engine's default accuracy and (b) matched accuracy, and
//     the EM-vs-Monte-Carlo cost for the stochastic analysis;
//  2. google-benchmark wall-time measurements of the same engines.
//
// See EXPERIMENTS.md for how the measured band relates to the paper's
// 20-30x (whose SPICE3 baseline failed outright on Fig. 8 — an
// effectively unbounded cost).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "engines/em_engine.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/tran_nr.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

namespace {

void flop_table() {
    bench::banner("Speedup claim (Secs. 1/6)",
                  "SWEC vs SPICE3-like NR: flops and accuracy across "
                  "workloads; EM vs Monte-Carlo for stochastic analysis");

    analysis::Table t({"workload", "engine", "steps", "iter", "flops",
                       "waveform err [V]", "NRflops/SWECflops"});

    const auto run_pair = [&](const std::string& name, Circuit& ckt,
                              double t_stop, double nr_lte,
                              const std::string& observe) {
        const mna::MnaAssembler assembler(ckt);
        engines::SwecTranOptions ref_opt;
        ref_opt.t_stop = t_stop;
        ref_opt.adaptive = false;
        ref_opt.dt_init = t_stop / 4000.0;
        const auto ref = engines::run_tran_swec(assembler, ref_opt);

        engines::SwecTranOptions sopt;
        sopt.t_stop = t_stop;
        const auto s = engines::run_tran_swec(assembler, sopt);

        engines::NrTranOptions nopt;
        nopt.t_stop = t_stop;
        nopt.lte_tol = nr_lte;
        const auto n = engines::run_tran_nr(assembler, nopt);

        const double err_s = analysis::measure::max_abs_error(
            s.node(ckt, observe), ref.node(ckt, observe));
        const double err_n = analysis::measure::max_abs_error(
            n.node(ckt, observe), ref.node(ckt, observe));
        const double ratio = static_cast<double>(n.flops.total()) /
                             static_cast<double>(s.flops.total());
        t.add_row({name, "SWEC", std::to_string(s.steps_accepted),
                   std::to_string(s.nr_iterations),
                   std::to_string(s.flops.total()),
                   analysis::Table::num(err_s, 3), ""});
        t.add_row({"", "NR lte=" + analysis::Table::num(nr_lte, 1),
                   std::to_string(n.steps_accepted),
                   std::to_string(n.nr_iterations),
                   std::to_string(n.flops.total()),
                   analysis::Table::num(err_n, 3),
                   analysis::Table::num(ratio, 3)});
    };

    {
        Circuit inv = refckt::fet_rtd_inverter();
        run_pair("FET-RTD inverter, 200 ns", inv, 200e-9, 1e-4, "out");
    }
    for (const int stages : {4, 16, 32}) {
        refckt::ChainSpec spec;
        spec.stages = stages;
        Circuit chain = refckt::rtd_chain(spec);
        run_pair("RTD chain x" + std::to_string(stages) + ", 100 ns",
                 chain, 100e-9, 1e-4,
                 "n" + std::to_string(stages));
    }
    t.print(std::cout);

    bench::section("stochastic analysis: EM vs Monte-Carlo (matched "
                   "paths and grid)");
    Circuit noisy = refckt::noisy_rc();
    const mna::MnaAssembler assembler(noisy);
    constexpr int paths = 100;
    constexpr double t_stop = 5e-9;
    constexpr double dt = 25e-12;

    engines::EmOptions em;
    em.t_stop = t_stop;
    em.dt = dt;
    const engines::EmEngine engine(assembler, em);
    stochastic::Rng rng(1);
    const FlopScope em_scope;
    const auto ens = engine.run_ensemble(paths, rng, 1);
    const std::uint64_t em_flops = em_scope.counter().total();

    engines::McOptions mc;
    mc.runs = paths;
    mc.t_stop = t_stop;
    mc.noise_dt = dt;
    stochastic::Rng rng2(2);
    const auto mcr = engines::run_monte_carlo(assembler, mc, rng2, 1);

    // Monte-Carlo as practiced on SPICE-like simulators (the paper's
    // Sec. 1 baseline): each realized-noise path runs the NR transient.
    std::uint64_t mc_nr_flops = 0;
    double mc_nr_mean_end = 0.0;
    {
        stochastic::Rng rng3(3);
        const double sqrt_dt = std::sqrt(dt);
        const auto holds = static_cast<std::size_t>(t_stop / dt);
        const FlopScope scope;
        for (int p = 0; p < paths; ++p) {
            std::vector<double> hold(holds);
            for (auto& v : hold) {
                v = 5e-9 * rng3.gauss() / sqrt_dt; // sigma of noisy_rc
            }
            engines::NrTranOptions nr;
            nr.t_stop = t_stop;
            nr.dt_max = dt;
            nr.start_from_dc = false;
            nr.noise.push_back(std::make_shared<PwlWave>(
                [&] {
                    std::vector<std::pair<double, double>> pts;
                    pts.reserve(holds);
                    for (std::size_t k = 0; k < holds; ++k) {
                        pts.emplace_back(dt * static_cast<double>(k),
                                         hold[k]);
                    }
                    return pts;
                }()));
            const auto r = engines::run_tran_nr(assembler, nr);
            mc_nr_mean_end += r.node_waves[0].value().back();
        }
        mc_nr_flops = scope.counter().total();
        mc_nr_mean_end /= paths;
    }

    analysis::Table t2({"method", "paths", "flops", "mean(end) [V]",
                        "sigma(end) [V]"});
    t2.add_row({"Euler-Maruyama", std::to_string(paths),
                std::to_string(em_flops),
                analysis::Table::num(ens.mean.value().back(), 4),
                analysis::Table::num(ens.stddev.value().back(), 4)});
    t2.add_row({"Monte-Carlo (SWEC transients)", std::to_string(paths),
                std::to_string(mcr.flops.total()),
                analysis::Table::num(mcr.mean.value().back(), 4),
                analysis::Table::num(mcr.stddev.value().back(), 4)});
    t2.add_row({"Monte-Carlo (NR transients)", std::to_string(paths),
                std::to_string(mc_nr_flops),
                analysis::Table::num(mc_nr_mean_end, 4), "-"});
    t2.print(std::cout);
    std::cout << "MC(SWEC)/EM flop ratio: "
              << static_cast<double>(mcr.flops.total()) /
                     static_cast<double>(std::max<std::uint64_t>(em_flops,
                                                                 1))
              << "x;  MC(NR)/EM flop ratio: "
              << static_cast<double>(mc_nr_flops) /
                     static_cast<double>(std::max<std::uint64_t>(em_flops,
                                                                 1))
              << "x\n";
}

// ---- google-benchmark wall-time measurements ----

void bm_swec_inverter(benchmark::State& state) {
    Circuit ckt = refckt::fet_rtd_inverter();
    const mna::MnaAssembler assembler(ckt);
    engines::SwecTranOptions opt;
    opt.t_stop = 200e-9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engines::run_tran_swec(assembler, opt));
    }
}
BENCHMARK(bm_swec_inverter)->Unit(benchmark::kMillisecond);

void bm_nr_inverter(benchmark::State& state) {
    Circuit ckt = refckt::fet_rtd_inverter();
    const mna::MnaAssembler assembler(ckt);
    engines::NrTranOptions opt;
    opt.t_stop = 200e-9;
    opt.lte_tol = 1e-4; // matched accuracy (see flop table)
    for (auto _ : state) {
        benchmark::DoNotOptimize(engines::run_tran_nr(assembler, opt));
    }
}
BENCHMARK(bm_nr_inverter)->Unit(benchmark::kMillisecond);

void bm_swec_chain(benchmark::State& state) {
    refckt::ChainSpec spec;
    spec.stages = static_cast<int>(state.range(0));
    Circuit ckt = refckt::rtd_chain(spec);
    const mna::MnaAssembler assembler(ckt);
    engines::SwecTranOptions opt;
    opt.t_stop = 100e-9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engines::run_tran_swec(assembler, opt));
    }
}
BENCHMARK(bm_swec_chain)->Arg(4)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void bm_nr_chain(benchmark::State& state) {
    refckt::ChainSpec spec;
    spec.stages = static_cast<int>(state.range(0));
    Circuit ckt = refckt::rtd_chain(spec);
    const mna::MnaAssembler assembler(ckt);
    engines::NrTranOptions opt;
    opt.t_stop = 100e-9;
    opt.lte_tol = 1e-4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engines::run_tran_nr(assembler, opt));
    }
}
BENCHMARK(bm_nr_chain)->Arg(4)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void bm_em_path(benchmark::State& state) {
    Circuit ckt = refckt::noisy_rc();
    const mna::MnaAssembler assembler(ckt);
    engines::EmOptions em;
    em.t_stop = 5e-9;
    em.dt = 25e-12;
    const engines::EmEngine engine(assembler, em);
    stochastic::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run_path(rng));
    }
}
BENCHMARK(bm_em_path)->Unit(benchmark::kMicrosecond);

void bm_mc_path(benchmark::State& state) {
    Circuit ckt = refckt::noisy_rc();
    const mna::MnaAssembler assembler(ckt);
    engines::McOptions mc;
    mc.runs = 1;
    mc.t_stop = 5e-9;
    mc.noise_dt = 25e-12;
    stochastic::Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engines::run_monte_carlo(assembler, mc, rng, 1));
    }
}
BENCHMARK(bm_mc_path)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
    flop_table();
    bench::section("google-benchmark wall times");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
