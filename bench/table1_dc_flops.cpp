// Table I — comparison of DC simulation performance (floating point
// operations), SWEC vs our implementation of the Modified Limiting
// Algorithm (MLA).
//
// Paper: "Table I compares the number of floating point operations
// needed to perform different types of simulations by SWEC and MLA ...
// SWEC is a non iterative method and thus yields high simulation speed."
// The scanned table's row content is not legible in the text source, so
// the same KINDS of rows are reported: cold-start operating points and
// full sweeps on the Sec. 5.1 circuits (see EXPERIMENTS.md for the
// paper-vs-measured discussion).
#include <iostream>

#include "bench_common.hpp"
#include "core/ref_circuits.hpp"
#include "devices/sources.hpp"
#include "engines/dc_mla.hpp"
#include "engines/dc_swec.hpp"
#include "linalg/vecops.hpp"
#include "mna/mna.hpp"

using namespace nanosim;

namespace {

struct Row {
    std::string name;
    std::uint64_t swec = 0;
    std::uint64_t mla = 0;
    bool swec_ok = true;
    bool mla_ok = true;
};

Row op_row(const std::string& name, Circuit ckt, double bias) {
    ckt.get_mutable<VSource>("V1").set_wave(std::make_shared<DcWave>(bias));
    const mna::MnaAssembler assembler(ckt);
    Row row;
    row.name = name;
    const auto swec = engines::solve_op_swec(assembler);
    const auto mla = engines::solve_op_mla(assembler);
    row.swec = swec.flops.total();
    row.mla = mla.flops.total();
    row.swec_ok = swec.converged;
    row.mla_ok = mla.converged;
    return row;
}

Row sweep_row(const std::string& name, Circuit ckt_a, Circuit ckt_b,
              double lo, double hi, std::size_t points) {
    const linalg::Vector values = linalg::linspace(lo, hi, points);
    Row row;
    row.name = name;
    const auto swec = engines::dc_sweep_swec(ckt_a, "V1", values);
    const auto mla = engines::dc_sweep_mla(ckt_b, "V1", values);
    row.swec = swec.flops.total();
    row.mla = mla.flops.total();
    row.swec_ok = swec.failures() == 0;
    row.mla_ok = mla.failures() == 0;
    return row;
}

/// Cold-start sweep: every point solved from scratch, the configuration
/// closest to "run a DC analysis per bias" (and the one that exposes the
/// iterative solver's restart cost, as Table I's standalone DC rows do).
Row cold_sweep_row(const std::string& name, Circuit ckt, double lo,
                   double hi, std::size_t points) {
    Row row;
    row.name = name;
    const linalg::Vector values = linalg::linspace(lo, hi, points);
    auto set_level = [&ckt](double v) {
        ckt.get_mutable<VSource>("V1").set_wave(
            std::make_shared<DcWave>(v));
    };
    {
        set_level(values.front());
        const mna::MnaAssembler assembler(ckt);
        const FlopScope scope;
        for (const double v : values) {
            set_level(v);
            const auto r = engines::solve_op_swec(assembler);
            row.swec_ok = row.swec_ok && r.converged;
        }
        row.swec = scope.counter().total();
    }
    {
        set_level(values.front());
        const mna::MnaAssembler assembler(ckt);
        const FlopScope scope;
        for (const double v : values) {
            set_level(v);
            const auto r = engines::solve_op_mla(assembler);
            row.mla_ok = row.mla_ok && r.converged;
        }
        row.mla = scope.counter().total();
    }
    return row;
}

} // namespace

int main() {
    bench::banner("Table I",
                  "DC simulation cost in floating point operations: "
                  "SWEC vs MLA (our implementation, as in the paper)");

    std::vector<Row> rows;
    rows.push_back(op_row("RTD divider op @ 2.0 V (cold start)",
                          refckt::rtd_divider(50.0), 2.0));
    rows.push_back(op_row("RTD divider op @ 5.0 V (cold start)",
                          refckt::rtd_divider(50.0), 5.0));
    rows.push_back(op_row("RTD divider op @ 5.0 V, R=220 (NDR-crossing)",
                          refckt::rtd_divider(220.0), 5.0));
    {
        refckt::ChainSpec spec;
        spec.stages = 8;
        Circuit chain = refckt::rtd_chain(spec);
        // Reuse the chain's pulse source as a DC bias point.
        chain.get_mutable<VSource>("V1").set_wave(
            std::make_shared<DcWave>(5.0));
        const mna::MnaAssembler assembler(chain);
        Row row;
        row.name = "8-stage RTD chain op @ 5.0 V (cold start)";
        const auto swec = engines::solve_op_swec(assembler);
        const auto mla = engines::solve_op_mla(assembler);
        row.swec = swec.flops.total();
        row.mla = mla.flops.total();
        row.swec_ok = swec.converged;
        row.mla_ok = mla.converged;
        rows.push_back(row);
    }
    rows.push_back(sweep_row("RTD divider sweep 0-5 V, 101 pts (warm)",
                             refckt::rtd_divider(50.0),
                             refckt::rtd_divider(50.0), 0.0, 5.0, 101));
    rows.push_back(sweep_row("nanowire divider sweep -2..2 V, 81 pts (warm)",
                             refckt::nanowire_divider(1e3),
                             refckt::nanowire_divider(1e3), -2.0, 2.0,
                             81));
    rows.push_back(cold_sweep_row(
        "RTD divider sweep 0-5 V, 101 pts (cold per point)",
        refckt::rtd_divider(50.0), 0.0, 5.0, 101));

    analysis::Table t({"DC simulation", "SWEC flops", "MLA flops",
                       "MLA/SWEC", "both converged"});
    for (const auto& r : rows) {
        t.add_row({r.name, std::to_string(r.swec), std::to_string(r.mla),
                   analysis::Table::num(
                       static_cast<double>(r.mla) /
                           static_cast<double>(std::max<std::uint64_t>(
                               r.swec, 1)),
                       3),
                   r.swec_ok && r.mla_ok ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\nShape to check (paper): SWEC needs fewer flops than "
                 "the iterative MLA on every row; the paper reports "
                 "20-30x for its workloads — see EXPERIMENTS.md for the "
                 "measured band here and why warm-started sweeps narrow "
                 "the gap.\n";
    return 0;
}
