// Nano-Sim example — 2-D RTD mesh transient through the ordered sparse
// solver.
//
//   $ ./mesh_transient [rows cols]
//
// Builds the rc_mesh workload (an RxC resistor grid with grounded
// capacitors and RTD loads, pulse-driven at one corner — the topology of
// nanotech fabrics and power-distribution networks), runs the SWEC
// transient, and reports what the cached sparse solver did: which
// fill-reducing ordering SystemCache picked at pattern-freeze time, the
// predicted vs actual LU fill, and the full-factor/fast-refactor split.
// The same workload is available from the CLI as
// `nanosim run --circuit mesh:RxC`.
#include <iostream>
#include <string>

#include "core/nanosim.hpp"

using namespace nanosim;

int main(int argc, char** argv) {
    const int rows = argc > 1 ? std::stoi(argv[1]) : 12;
    const int cols = argc > 2 ? std::stoi(argv[2]) : rows;

    Circuit ckt = refckt::rc_mesh(rows, cols);
    const mna::MnaAssembler assembler(ckt);
    std::cout << "rc_mesh " << rows << "x" << cols << ": "
              << ckt.device_count() << " devices, " << assembler.unknowns()
              << " unknowns\n";

    engines::SwecTranOptions opt;
    opt.t_stop = 100e-9;
    const engines::TranResult res = engines::run_tran_swec(assembler, opt);

    std::cout << "SWEC transient: " << res.steps_accepted
              << " accepted steps, last point at t = "
              << res.node_waves.front().t_end() << " s (t_stop = "
              << opt.t_stop << " s)\n";
    std::cout << "sparse solver: ordering " << res.solver_ordering.name()
              << ", pattern nnz " << res.solver_ordering.pattern_nnz
              << ", factor nnz " << res.solver_ordering.factor_nnz
              << " (predicted " << res.solver_ordering.predicted_fill_chosen
              << ", natural order would be "
              << res.solver_ordering.predicted_fill_natural << ")\n";
    std::cout << "factorisations: " << res.solver_full_factors
              << " full, " << res.solver_fast_refactors
              << " pattern-reusing refactors, " << res.solver_dense_solves
              << " dense solves\n";

    // The far-corner node shows the pulse diffusing across the grid.
    const std::string far = "n" + std::to_string(rows - 1) + "_" +
                            std::to_string(cols - 1);
    analysis::PlotOptions plot;
    plot.title = "mesh corner response";
    plot.x_label = "t [s]";
    analysis::ascii_plot(
        std::cout,
        {res.node(ckt, "n0_0"), res.node(ckt, far)}, plot);
    return 0;
}
