// Nano-Sim example — deck-driven simulation.
//
//   $ ./netlist_file [deck.cir]
//
// With no argument, a demonstration deck is written to a temporary file
// first.  The example then parses the deck, runs every analysis card it
// contains (.op / .dc / .tran) and prints the results — the workflow of
// a classic SPICE-style batch run.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <variant>

#include "core/nanosim.hpp"

using namespace nanosim;

namespace {

const char* k_demo_deck = R"(.title RTD inverter demo deck
* MOBILE-style FET-RTD inverter with explicit model cards.
.model rtd_drv RTD(A=1e-4 B=2 C=1.5 D=0.3 N1=0.35 N2=0.0172 H=1.43e-8)
.model rtd_ld  RTD(A=3e-4 B=2 C=1.5 D=0.3 N1=0.35 N2=0.0172 H=4.29e-8)
.model nch NMOS(VTO=1 KP=2e-3 W=20u L=1u)

VDD vdd 0 DC 5
VIN in  0 PULSE(0 5 50n 5n 5n 95n 200n)
RTDL vdd out rtd_ld
RTDD out 0   rtd_drv
M1 out in 0 nch
COUT out 0 100p
CIN  in  0 10p

.op
.dc VIN 0 5 0.5
.tran 1n 400n
)";

void run_deck(const std::string& path) {
    Simulator sim = Simulator::from_deck_file(path);
    std::cout << "parsed deck with " << sim.circuit().device_count()
              << " devices, " << sim.circuit().num_nodes()
              << " nodes, " << sim.deck_analyses().size()
              << " analysis cards\n";

    for (const auto& card : sim.deck_analyses()) {
        if (std::holds_alternative<OpCard>(card)) {
            std::cout << "\n== .op (SWEC engine) ==\n";
            const auto op = sim.operating_point();
            for (NodeId n = 1; n <= sim.circuit().num_nodes(); ++n) {
                std::cout << "  v(" << sim.circuit().node_name(n)
                          << ") = "
                          << sim.assembler().view(op.x)(n) << " V\n";
            }
        } else if (const auto* dc = std::get_if<DcCard>(&card)) {
            std::cout << "\n== .dc " << dc->source << ' ' << dc->start
                      << " .. " << dc->stop << " ==\n";
            const auto sweep =
                sim.dc_sweep(dc->source, dc->start, dc->stop, dc->step);
            const NodeId out = sim.circuit().find_node("out");
            for (std::size_t k = 0; k < sweep.values.size(); ++k) {
                std::cout << "  " << dc->source << '='
                          << sweep.values[k] << "  v(out)="
                          << sim.assembler().view(sweep.solutions[k])(out)
                          << '\n';
            }
        } else if (const auto* tran = std::get_if<TranCard>(&card)) {
            std::cout << "\n== .tran to " << tran->tstop * 1e9
                      << " ns (SWEC engine) ==\n";
            engines::SwecTranOptions opt;
            opt.t_stop = tran->tstop;
            opt.dt_init = tran->tstep;
            const auto res = sim.transient(opt);
            analysis::PlotOptions plot;
            plot.title = "v(out)";
            plot.x_label = "t [s]";
            analysis::ascii_plot(std::cout,
                                 {res.node(sim.circuit(), "out")}, plot);
            std::cout << "  " << res.steps_accepted << " steps, "
                      << res.flops.total() << " flops\n";
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        path = "nanosim_demo_deck.cir";
        std::ofstream out(path);
        out << k_demo_deck;
        std::cout << "wrote demonstration deck to " << path << "\n\n";
    }
    try {
        run_deck(path);
    } catch (const SimError& e) {
        std::cerr << "simulation failed: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
