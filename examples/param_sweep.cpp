// Nano-Sim example — programmatic parameter sweep with the JobPlan API.
//
//   $ ./param_sweep [sweep.csv]
//
// Sweeps the RTD peak-current parameter A of the drive RTD in the
// FET-RTD inverter (the paper's Fig. 8 circuit) across a parameter
// grid, runs the SWEC transient at every point on all available cores,
// and plots the peak output voltage against the parameter.  This is the
// programmatic face of the `nanosim sweep` CLI verb: build a JobPlan,
// hand run_sweep_campaign a circuit factory, read metrics back.
#include <iostream>

#include "core/nanosim.hpp"
#include "core/ref_circuits.hpp"

using namespace nanosim;

int main(int argc, char** argv) {
    // One axis: the drive RTD's Schulman A parameter (peak current
    // scale), 13 points around the paper's 1e-4 A value.
    runtime::JobPlan plan;
    plan.add_axis({"RTDD", "A", 0.5e-4, 2.0e-4, 13});

    // Each job gets a fresh inverter circuit and a .tran card matching
    // the example's usual horizon; the campaign reduces every node wave
    // to peak + final metrics.
    const std::vector<AnalysisCard> cards{TranCard{1e-9, 400e-9}};
    runtime::CampaignOptions options; // threads = all cores

    const auto result = runtime::run_sweep_campaign(
        plan, []() { return refckt::fet_rtd_inverter(); }, cards, options);

    std::cout << "swept " << result.rows.size() << " grid points, "
              << result.failures() << " failures\n";
    for (const auto& row : result.rows) {
        if (!row.ok) {
            std::cout << "  point " << row.index << " failed: " << row.error
                      << '\n';
        }
    }

    // Peak output voltage vs the swept parameter.
    const auto peak = result.metric_wave("tran1.peak.v(out)");
    analysis::PlotOptions plot;
    plot.title = "FET-RTD inverter: peak v(out) vs RTD A parameter";
    plot.x_label = "RTDD:A [A]";
    plot.y_label = "peak v(out) [V]";
    analysis::ascii_plot(std::cout, {peak}, plot);

    const auto stats = result.metric_stats("tran1.peak.v(out)");
    std::cout << "\npeak v(out) across the grid: mean = " << stats.mean()
              << " V, stddev = " << stats.stddev() << " V, range = ["
              << stats.min() << ", " << stats.max() << "] V\n";

    if (argc > 1) {
        result.write_csv_file(argv[1]);
        std::cout << "campaign CSV written to " << argv[1] << '\n';
    }
    return result.failures() == 0 ? 0 : 1;
}
