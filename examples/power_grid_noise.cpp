// Nano-Sim example — stochastic power-grid droop analysis.
//
//   $ ./power_grid_noise [grid_side]
//
// The paper motivates its stochastic engine with power-grid analysis
// under random current draws from nanodevices (its refs [11], [12]):
// "even though the average voltage drop is zero, if the transient
// voltage drop at a certain time point exceeds certain constraints, the
// whole design is still going to fail."
//
// This example builds an N x N resistive power grid with decap at every
// node, supplied from one corner, loaded by deterministic draws plus
// white-noise draws at every interior node, and uses the IMPLICIT
// Euler-Maruyama engine (the grid has a voltage source, so C is
// singular and the paper's explicit scheme does not apply) to estimate
// the worst droop distribution.  Also a scale demonstration: the MNA
// system is solved by the Gilbert-Peierls sparse LU.
#include <iostream>
#include <string>

#include "core/nanosim.hpp"

using namespace nanosim;

namespace {

Circuit build_grid(int side) {
    Circuit ckt;
    const double r_seg = 2.0;     // grid segment resistance [ohm]
    const double c_decap = 10e-12;// decap per node [F]
    const double i_load = 1e-3;   // deterministic draw per node [A]
    const double sigma = 2e-9;    // noise intensity per node

    auto name = [](int i, int j) {
        return "g" + std::to_string(i) + "_" + std::to_string(j);
    };
    // Nodes and decaps.
    for (int i = 0; i < side; ++i) {
        for (int j = 0; j < side; ++j) {
            const NodeId n = ckt.node(name(i, j));
            ckt.add<Capacitor>("C" + name(i, j), n, k_ground, c_decap);
        }
    }
    // Grid resistors.
    for (int i = 0; i < side; ++i) {
        for (int j = 0; j < side; ++j) {
            if (i + 1 < side) {
                ckt.add<Resistor>("RV" + name(i, j), ckt.node(name(i, j)),
                                  ckt.node(name(i + 1, j)), r_seg);
            }
            if (j + 1 < side) {
                ckt.add<Resistor>("RH" + name(i, j), ckt.node(name(i, j)),
                                  ckt.node(name(i, j + 1)), r_seg);
            }
        }
    }
    // Supply at the corner.
    ckt.add<VSource>("VDD", ckt.node(name(0, 0)), k_ground, 1.0);
    // Loads + noise at interior nodes.
    for (int i = 1; i < side; ++i) {
        for (int j = 1; j < side; ++j) {
            const NodeId n = ckt.node(name(i, j));
            ckt.add<ISource>("IL" + name(i, j), n, k_ground, i_load);
            ckt.add<NoiseCurrentSource>("NS" + name(i, j), n, k_ground,
                                        sigma);
        }
    }
    return ckt;
}

} // namespace

int main(int argc, char** argv) {
    const int side = argc > 1 ? std::stoi(argv[1]) : 6;
    Circuit ckt = build_grid(side);
    const mna::MnaAssembler assembler(ckt);
    std::cout << "power grid " << side << "x" << side << ": "
              << ckt.device_count() << " devices, "
              << assembler.unknowns() << " unknowns (sparse LU engaged "
              << (assembler.unknowns() > 64 ? "yes" : "no") << ")\n";

    // Observe the far corner — the worst-droop node.
    const std::string far = "g" + std::to_string(side - 1) + "_" +
                            std::to_string(side - 1);

    engines::EmOptions opt;
    opt.t_stop = 10e-9;
    opt.dt = 50e-12;
    opt.scheme = engines::EmScheme::implicit_be; // C singular: V source
    opt.start_from_dc = true;
    const engines::EmEngine engine(assembler, opt);

    stochastic::Rng rng(7);
    const auto ens = engine.run_ensemble(200, rng, ckt.find_node(far));

    std::cout << "far-corner voltage, " << ens.stats.paths()
              << " paths over " << opt.t_stop * 1e9 << " ns:\n"
              << "  mean(end)  : "
              << ens.stats.at(ens.grid.size() - 1).mean() << " V\n"
              << "  sigma(end) : "
              << ens.stats.at(ens.grid.size() - 1).stddev() << " V\n";

    // Droop = 1.0 - min over time; collect per-path minimum via the
    // peak machinery on the negated waveform: use per-point stats here.
    double worst_mean_droop = 0.0;
    for (std::size_t j = 0; j < ens.grid.size(); ++j) {
        worst_mean_droop = std::max(
            worst_mean_droop, 1.0 - (ens.stats.at(j).mean() -
                                     3.0 * ens.stats.at(j).stddev()));
    }
    std::cout << "  worst mean-3sigma droop over the window: "
              << worst_mean_droop * 1e3 << " mV\n"
              << "A deterministic run sees only the mean droop; the "
                 "3-sigma figure is what signs off the grid.\n";
    return 0;
}
