// Nano-Sim quickstart — build a circuit in code, run analyses through a
// SimSession, find the RTD's resonance peak.
//
//   $ ./quickstart
//
// Walks the three core steps every Nano-Sim program follows:
//   1. describe the circuit (devices + nodes),
//   2. describe the analyses as AnalysisSpecs and run them through one
//      SimSession (every run shares the session's cached solver),
//   3. post-process the typed AnalysisResults.
#include <iostream>

#include "core/nanosim.hpp"

using namespace nanosim;

int main() {
    // 1. A voltage divider: V1 --- 50 ohm --- out --- RTD --- gnd.
    //    The RTD uses the Schulman physics-based I-V equation with the
    //    parameter set from the DATE'05 paper.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, 0.0);
    ckt.add<Resistor>("R1", in, out, 50.0);
    ckt.add<Rtd>("RTD1", out, k_ground, RtdParams::date05());

    // 2. One session, two analyses.  The DC sweep uses the SWEC engine
    //    (non-iterative: no Newton-Raphson anywhere, so the NDR region
    //    cannot break it); the transient that follows reuses the very
    //    same cached solver — the uniform result header shows the work.
    SimSession session(std::move(ckt));

    DcSweepSpec dc;
    dc.source = "V1";
    dc.start = 0.0;
    dc.stop = 5.0;
    dc.step = 0.05;
    const AnalysisResult swept = session.run(dc);
    const engines::SweepResult& sweep = swept.sweep();
    std::cout << "swept " << sweep.values.size() << " points, "
              << sweep.failures() << " failures, "
              << sweep.flops.total() << " flops total ["
              << swept.header.engine << " engine, "
              << swept.header.elapsed_s * 1e3 << " ms]\n\n";

    // 3. Recover the device I-V curve and find the peak.
    const auto& rtd = session.circuit().get<Rtd>("RTD1");
    const auto& assembler = session.assembler();
    analysis::Waveform iv("I(RTD) [mA]");
    for (std::size_t k = 0; k < sweep.values.size(); ++k) {
        const NodeVoltages v = assembler.view(sweep.solutions[k]);
        const double v_dev = v(session.circuit().find_node("out"));
        if (iv.empty() || v_dev > iv.time().back()) {
            iv.append(v_dev, rtd.branch_current(v) * 1e3);
        }
    }
    analysis::PlotOptions plot;
    plot.title = "RTD I-V recovered from the divider sweep";
    plot.x_label = "V across RTD [V]";
    analysis::ascii_plot(std::cout, {iv}, plot);

    const double v_peak = analysis::measure::peak_time(iv);
    std::cout << "\nresonance peak: " << iv.max_value() << " mA at "
              << v_peak << " V\n"
              << "current at 5 V bias: " << iv.value().back()
              << " mA (NDR region: below the peak)\n";

    // Bonus: a transient on the same session, watched by an observer.
    // The spec API makes progress + cancellation one parameter away.
    engines::AnalysisObserver observer;
    observer.on_progress = [](double f) {
        static int last = -1;
        const int pct = static_cast<int>(f * 100.0);
        if (pct / 25 != last) {
            last = pct / 25;
            std::cout << "  transient " << pct << "%\n";
        }
    };
    TranSpec tran;
    tran.t_stop = 100e-9;
    const AnalysisResult tr = session.run(tran, &observer);
    std::cout << "transient: " << tr.tran().steps_accepted
              << " steps, solver did " << tr.header.solver.full_factors
              << " full / " << tr.header.solver.fast_refactors
              << " fast factorisations, " << tr.header.solver.dense_solves
              << " dense solves (cached pattern " << std::hex
              << tr.header.cache_signature << std::dec << ")\n";
    return 0;
}
