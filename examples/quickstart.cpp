// Nano-Sim quickstart — build a circuit in code, run a DC sweep, find
// the RTD's resonance peak.
//
//   $ ./quickstart
//
// Walks the three core steps every Nano-Sim program follows:
//   1. describe the circuit (devices + nodes),
//   2. pick an engine and run an analysis,
//   3. post-process the solutions.
#include <iostream>

#include "core/nanosim.hpp"

using namespace nanosim;

int main() {
    // 1. A voltage divider: V1 --- 50 ohm --- out --- RTD --- gnd.
    //    The RTD uses the Schulman physics-based I-V equation with the
    //    parameter set from the DATE'05 paper.
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, 0.0);
    ckt.add<Resistor>("R1", in, out, 50.0);
    ckt.add<Rtd>("RTD1", out, k_ground, RtdParams::date05());

    // 2. Sweep the source with the SWEC engine (non-iterative DC: no
    //    Newton-Raphson anywhere, so the NDR region cannot break it).
    Simulator sim(std::move(ckt));
    const auto sweep = sim.dc_sweep("V1", 0.0, 5.0, 0.05);
    std::cout << "swept " << sweep.values.size() << " points, "
              << sweep.failures() << " failures, "
              << sweep.flops.total() << " flops total\n\n";

    // 3. Recover the device I-V curve and find the peak.
    const auto& rtd = sim.circuit().get<Rtd>("RTD1");
    const auto& assembler = sim.assembler();
    analysis::Waveform iv("I(RTD) [mA]");
    for (std::size_t k = 0; k < sweep.values.size(); ++k) {
        const NodeVoltages v = assembler.view(sweep.solutions[k]);
        const double v_dev = v(sim.circuit().find_node("out"));
        if (iv.empty() || v_dev > iv.time().back()) {
            iv.append(v_dev, rtd.branch_current(v) * 1e3);
        }
    }
    analysis::PlotOptions plot;
    plot.title = "RTD I-V recovered from the divider sweep";
    plot.x_label = "V across RTD [V]";
    analysis::ascii_plot(std::cout, {iv}, plot);

    const double v_peak = analysis::measure::peak_time(iv);
    std::cout << "\nresonance peak: " << iv.max_value() << " mA at "
              << v_peak << " V\n"
              << "current at 5 V bias: " << iv.value().back()
              << " mA (NDR region: below the peak)\n";
    return 0;
}
