// Nano-Sim example — RTD D-flip-flop (clocked MOBILE latch, paper Fig. 9).
//
//   $ ./rtd_flipflop
//
// Shows a sequential nanocircuit: the data input switches mid-cycle and
// the output responds only at the next rising clock edge.  Demonstrates
// waveform measurements (edge timing) on simulation output.
#include <cmath>
#include <iostream>

#include "core/nanosim.hpp"
#include "core/ref_circuits.hpp"

using namespace nanosim;

int main() {
    refckt::DffSpec spec; // D switches at 300 ns; clock period 100 ns
    Circuit ckt = refckt::rtd_dff(spec);
    const mna::MnaAssembler assembler(ckt);

    engines::SwecTranOptions opt;
    opt.t_stop = 500e-9;
    const auto res = engines::run_tran_swec(assembler, opt);

    analysis::PlotOptions plot;
    plot.title = "RTD D-flip-flop: clock, data, output";
    plot.x_label = "t [s]";
    analysis::ascii_plot(std::cout,
                         {res.node(ckt, "clk"), res.node(ckt, "d"),
                          res.node(ckt, "q")},
                         plot);

    // When did D switch, and when did Q respond?
    const auto& d = res.node(ckt, "d");
    const auto& q = res.node(ckt, "q");
    const double t_d = analysis::measure::crossing_time(d, 2.5, true);
    // Q is return-to-zero: compare its level in successive clock-high
    // windows to find the cycle where the latched value changed.
    double t_q_change = std::nan("");
    for (double w0 = 55e-9; w0 + 40e-9 < 500e-9; w0 += 100e-9) {
        double level = 0.0;
        for (int i = 0; i < 16; ++i) {
            level += q.at(w0 + 2.5e-9 * i) / 16.0;
        }
        if (w0 > t_d && level < 1.0) {
            t_q_change = w0;
            break;
        }
    }
    std::cout << "\nD rising edge at " << t_d * 1e9 << " ns\n"
              << "first clock-high window with the new Q value begins at "
              << t_q_change * 1e9 << " ns (paper: the output switches at "
              << "the 350 ns rising clock edge)\n";
    std::cout << "SWEC: " << res.steps_accepted
              << " steps, 0 nonlinear iterations\n";
    return 0;
}
