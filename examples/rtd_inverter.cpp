// Nano-Sim example — FET-RTD inverter transient with engine comparison.
//
//   $ ./rtd_inverter [out.csv]
//
// Simulates the paper's Fig. 8 circuit (a MOBILE-style inverter: two
// series RTDs with a parallel NMOS pull-down) with all three transient
// engines and writes the waveforms side by side, optionally to CSV for
// external plotting.
#include <iostream>

#include "core/nanosim.hpp"
#include "core/ref_circuits.hpp"

using namespace nanosim;

int main(int argc, char** argv) {
    Circuit ckt = refckt::fet_rtd_inverter();
    const mna::MnaAssembler assembler(ckt);

    engines::SwecTranOptions opt;
    opt.t_stop = 400e-9;
    const auto swec = engines::run_tran_swec(assembler, opt);

    engines::NrTranOptions nr_opt;
    nr_opt.t_stop = opt.t_stop;
    const auto nr = engines::run_tran_nr(assembler, nr_opt);

    engines::PwlTranOptions pwl_opt;
    pwl_opt.t_stop = opt.t_stop;
    const auto pwl = engines::run_tran_pwl(assembler, pwl_opt);

    // Overlay the input and the three outputs.
    analysis::Waveform in = swec.node(ckt, "in");
    analysis::Waveform out_swec = swec.node(ckt, "out");
    out_swec.set_label("v(out) SWEC");
    analysis::Waveform out_nr = nr.node(ckt, "out").resampled(400);
    out_nr.set_label("v(out) NR");
    analysis::Waveform out_pwl = pwl.node(ckt, "out").resampled(400);
    out_pwl.set_label("v(out) PWL");

    analysis::PlotOptions plot;
    plot.title = "FET-RTD inverter: input and SWEC output";
    plot.x_label = "t [s]";
    analysis::ascii_plot(std::cout, {in, out_swec}, plot);

    std::cout << "\nengine summary:\n"
              << "  SWEC: " << swec.steps_accepted << " steps, 0 NR "
              << "iterations, " << swec.flops.total() << " flops\n"
              << "  NR:   " << nr.steps_accepted << " steps, "
              << nr.nr_iterations << " NR iterations, "
              << nr.nonconverged_steps << " non-converged, "
              << nr.flops.total() << " flops\n"
              << "  PWL:  " << pwl.steps_accepted << " steps, "
              << pwl.nr_iterations << " segment iterations, "
              << pwl.flops.total() << " flops\n";

    // Timing measurements on the SWEC output.
    const double t_fall = analysis::measure::crossing_time(
        out_swec, 2.5, false, 50e-9);
    const double t_rise = analysis::measure::crossing_time(
        out_swec, 2.5, true, t_fall);
    std::cout << "\noutput 50% fall at " << t_fall * 1e9
              << " ns, 50% rise at " << t_rise * 1e9 << " ns\n";

    if (argc > 1) {
        analysis::write_csv_file(
            argv[1], {in, out_swec, out_nr, out_pwl});
        std::cout << "waveforms written to " << argv[1] << '\n';
    }
    return 0;
}
