// Nano-Sim example — stochastic performance prediction (paper Sec. 4).
//
//   $ ./stochastic_peak
//
// The paper's closing idea: "Following the Black-Scholes approach we can
// predict the peak performance within certain time window."  This
// example runs the Euler-Maruyama engine on the Fig. 10 circuit (a
// time-variant transistor with parasitic RC and a white-noise input) and
// reports the distribution of the per-path peak voltage over 0-1 ns —
// exactly the quantity a signal-integrity check needs ("even though the
// average voltage drop is zero, if the transient voltage drop at a
// certain time point exceeds certain constraints, the whole design is
// still going to fail").
#include <iostream>

#include "core/nanosim.hpp"
#include "core/ref_circuits.hpp"

using namespace nanosim;

int main() {
    Circuit ckt = refckt::fig10_noisy_transistor();
    const mna::MnaAssembler assembler(ckt);

    engines::EmOptions opt;
    opt.t_stop = 1e-9;
    opt.dt = 2e-12;
    const engines::EmEngine engine(assembler, opt);

    stochastic::Rng rng(12345);
    const auto ens = engine.run_ensemble(1000, rng,
                                         ckt.find_node("n1"));

    analysis::PlotOptions plot;
    plot.title = "ensemble mean and +1 sigma of V(n1)";
    plot.x_label = "t [s]";
    analysis::Waveform hi("mean+sigma");
    for (std::size_t j = 0; j < ens.grid.size(); ++j) {
        hi.append(ens.grid[j] + (j == 0 ? 1e-18 : 0.0),
                  ens.stats.at(j).mean() + ens.stats.at(j).stddev());
    }
    analysis::ascii_plot(std::cout, {ens.mean, hi}, plot);

    const auto& peaks = ens.stats.peaks();
    std::cout << "\npeak voltage within 0-1 ns over " << peaks.size()
              << " paths:\n"
              << "  mean  : " << ens.stats.peak_stats().mean() << " V\n"
              << "  sigma : " << ens.stats.peak_stats().stddev() << " V\n"
              << "  p50   : " << stochastic::percentile(peaks, 50) << " V\n"
              << "  p95   : " << stochastic::percentile(peaks, 95) << " V\n"
              << "  p99   : " << stochastic::percentile(peaks, 99) << " V\n"
              << "  max   : " << ens.stats.peak_stats().max() << " V\n";

    // Histogram of the peak distribution.
    stochastic::Histogram hist(0.3, 0.9, 24);
    for (const double p : peaks) {
        hist.add(p);
    }
    std::cout << "\npeak histogram (0.3-0.9 V):\n";
    for (std::size_t b = 0; b < hist.bins(); ++b) {
        std::cout << "  " << hist.bin_center(b) << " V | "
                  << std::string(hist.count(b) / 4, '#') << ' '
                  << hist.count(b) << '\n';
    }

    std::cout << "\nIf the design constraint were V(n1) <= 0.7 V, the "
                 "mean waveform alone would pass, while the p99 peak "
                 "tells the real story — the paper's argument for "
                 "transient (not just expected-value) prediction.\n";
    return 0;
}
