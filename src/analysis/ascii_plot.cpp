#include "analysis/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace nanosim::analysis {

void ascii_plot(std::ostream& os, const std::vector<Waveform>& waves,
                const PlotOptions& options) {
    if (waves.empty()) {
        throw AnalysisError("ascii_plot: no waveforms");
    }
    for (const auto& w : waves) {
        if (w.size() < 2) {
            throw AnalysisError("ascii_plot: waveform '" + w.label() +
                                "' has fewer than 2 samples");
        }
    }
    const int width = std::max(options.width, 16);
    const int height = std::max(options.height, 4);

    double t0 = std::numeric_limits<double>::infinity();
    double t1 = -std::numeric_limits<double>::infinity();
    double v0 = std::numeric_limits<double>::infinity();
    double v1 = -std::numeric_limits<double>::infinity();
    for (const auto& w : waves) {
        t0 = std::min(t0, w.t_begin());
        t1 = std::max(t1, w.t_end());
        v0 = std::min(v0, w.min_value());
        v1 = std::max(v1, w.max_value());
    }
    if (v1 == v0) { // flat line: open a window around it
        v0 -= 1.0;
        v1 += 1.0;
    }

    static constexpr char glyphs[] = {'*', '+', 'o', 'x', '#', '@'};
    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width),
                                              ' '));
    for (std::size_t s = 0; s < waves.size(); ++s) {
        const char glyph = glyphs[s % sizeof(glyphs)];
        const auto& w = waves[s];
        for (int col = 0; col < width; ++col) {
            const double t =
                t0 + (t1 - t0) * col / static_cast<double>(width - 1);
            if (t < w.t_begin() || t > w.t_end()) {
                continue;
            }
            const double v = w.at(t);
            const double f = (v - v0) / (v1 - v0);
            int row = static_cast<int>(std::lround(
                (1.0 - f) * static_cast<double>(height - 1)));
            row = std::clamp(row, 0, height - 1);
            grid[static_cast<std::size_t>(row)]
                [static_cast<std::size_t>(col)] = glyph;
        }
    }

    if (!options.title.empty()) {
        os << options.title << '\n';
    }
    std::ostringstream top;
    top << std::setprecision(4) << v1;
    std::ostringstream bottom;
    bottom << std::setprecision(4) << v0;
    const std::size_t label_w = std::max(top.str().size(),
                                         bottom.str().size());
    for (int r = 0; r < height; ++r) {
        std::string label(label_w, ' ');
        if (r == 0) {
            label = top.str();
        } else if (r == height - 1) {
            label = bottom.str();
        }
        os << std::right << std::setw(static_cast<int>(label_w)) << label
           << " |" << grid[static_cast<std::size_t>(r)] << '\n';
    }
    os << std::string(label_w + 1, ' ') << '+'
       << std::string(static_cast<std::size_t>(width), '-') << '\n';
    std::ostringstream xl;
    xl << std::setprecision(4) << t0;
    std::ostringstream xr;
    xr << std::setprecision(4) << t1;
    const int pad = width - static_cast<int>(xl.str().size()) -
                    static_cast<int>(xr.str().size());
    os << std::string(label_w + 2, ' ') << xl.str()
       << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ')
       << xr.str() << "   [" << options.x_label << "]\n";
    std::size_t gi = 0;
    for (const auto& w : waves) {
        os << "    " << glyphs[gi % sizeof(glyphs)] << " = "
           << (w.label().empty() ? "series" : w.label()) << '\n';
        ++gi;
    }
}

} // namespace nanosim::analysis
