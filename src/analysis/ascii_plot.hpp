// Nano-Sim — ASCII waveform rendering.
//
// The bench binaries regenerate the paper's *figures*; since the harness
// is terminal-only, each figure is emitted both as a CSV series and as an
// ASCII plot so the shape (peaks, NDR valley, switching edges) is
// directly visible in bench_output.txt.
#ifndef NANOSIM_ANALYSIS_ASCII_PLOT_HPP
#define NANOSIM_ANALYSIS_ASCII_PLOT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/waveform.hpp"

namespace nanosim::analysis {

/// Plot options.
struct PlotOptions {
    int width = 72;   ///< plot columns
    int height = 20;  ///< plot rows
    std::string title;
    std::string x_label = "x";
    std::string y_label = "y";
};

/// Render one or more waveforms on a shared axis; each series gets its
/// own glyph (*, +, o, x, ...).  Throws AnalysisError on empty input.
void ascii_plot(std::ostream& os, const std::vector<Waveform>& waves,
                const PlotOptions& options = {});

} // namespace nanosim::analysis

#endif // NANOSIM_ANALYSIS_ASCII_PLOT_HPP
