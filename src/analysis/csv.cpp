#include "analysis/csv.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace nanosim::analysis {

void write_csv(std::ostream& os, const std::vector<Waveform>& waves,
               const std::string& time_header) {
    if (waves.empty() || waves.front().empty()) {
        throw AnalysisError("write_csv: no data");
    }
    os << time_header;
    for (const auto& w : waves) {
        os << ',' << (w.label().empty() ? "value" : w.label());
    }
    os << '\n';
    os << std::setprecision(12);
    const auto& t = waves.front().time();
    for (const double tt : t) {
        os << tt;
        for (const auto& w : waves) {
            os << ',' << w.at(tt);
        }
        os << '\n';
    }
}

void write_csv_file(const std::string& path,
                    const std::vector<Waveform>& waves,
                    const std::string& time_header) {
    std::ofstream os(path);
    if (!os) {
        throw IoError("write_csv_file: cannot open '" + path + "'");
    }
    write_csv(os, waves, time_header);
}

std::vector<Waveform> read_csv(std::istream& is) {
    std::string header;
    if (!std::getline(is, header)) {
        throw AnalysisError("read_csv: empty input");
    }
    std::vector<std::string> labels;
    {
        std::istringstream hs(header);
        std::string cell;
        while (std::getline(hs, cell, ',')) {
            labels.push_back(cell);
        }
    }
    if (labels.size() < 2) {
        throw AnalysisError("read_csv: need a time column and one series");
    }
    std::vector<Waveform> waves;
    waves.reserve(labels.size() - 1);
    for (std::size_t i = 1; i < labels.size(); ++i) {
        waves.emplace_back(labels[i]);
    }
    std::string line;
    int line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        std::istringstream ls(line);
        std::string cell;
        std::vector<double> row;
        while (std::getline(ls, cell, ',')) {
            try {
                row.push_back(std::stod(cell));
            } catch (const std::exception&) {
                throw AnalysisError("read_csv: bad number at line " +
                                    std::to_string(line_no));
            }
        }
        if (row.size() != labels.size()) {
            throw AnalysisError("read_csv: wrong column count at line " +
                                std::to_string(line_no));
        }
        for (std::size_t i = 1; i < row.size(); ++i) {
            waves[i - 1].append(row[0], row[i]);
        }
    }
    return waves;
}

std::vector<Waveform> read_csv_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw IoError("read_csv_file: cannot open '" + path + "'");
    }
    return read_csv(is);
}

} // namespace nanosim::analysis
