// Nano-Sim — CSV export/import of waveforms.
//
// Bench binaries write their series next to the printed tables so the
// figures can be re-plotted with any external tool.
#ifndef NANOSIM_ANALYSIS_CSV_HPP
#define NANOSIM_ANALYSIS_CSV_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/waveform.hpp"

namespace nanosim::analysis {

/// Write waveforms as CSV columns: first column is the time axis of the
/// first waveform; other waveforms are interpolated onto it.  Throws
/// AnalysisError on an empty list.
void write_csv(std::ostream& os, const std::vector<Waveform>& waves,
               const std::string& time_header = "time");

/// Write to a file (IoError on failure).
void write_csv_file(const std::string& path,
                    const std::vector<Waveform>& waves,
                    const std::string& time_header = "time");

/// Read a CSV produced by write_csv: returns one waveform per non-time
/// column.  Throws IoError / AnalysisError on malformed input.
[[nodiscard]] std::vector<Waveform> read_csv(std::istream& is);
[[nodiscard]] std::vector<Waveform> read_csv_file(const std::string& path);

} // namespace nanosim::analysis

#endif // NANOSIM_ANALYSIS_CSV_HPP
