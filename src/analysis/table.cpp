#include "analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace nanosim::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    if (headers_.empty()) {
        throw AnalysisError("Table: needs at least one column");
    }
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw AnalysisError("Table::add_row: cell count mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    const auto rule = [&]() {
        os << '+';
        for (const std::size_t w : width) {
            os << std::string(w + 2, '-') << '+';
        }
        os << '\n';
    };
    const auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c] << " |";
        }
        os << '\n';
    };
    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) {
        line(row);
    }
    rule();
}

} // namespace nanosim::analysis
