// Nano-Sim — fixed-width ASCII table rendering for bench output.
//
// The bench binaries print paper-style tables (Table I and the per-figure
// data series) to stdout; this formatter keeps them aligned and readable
// without any external dependency.
#ifndef NANOSIM_ANALYSIS_TABLE_HPP
#define NANOSIM_ANALYSIS_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace nanosim::analysis {

/// Column-aligned ASCII table.
class Table {
public:
    /// Create with column headers.
    explicit Table(std::vector<std::string> headers);

    /// Append a row (must match the header count; throws AnalysisError).
    void add_row(std::vector<std::string> cells);

    /// Helper: format a double with `precision` significant digits.
    [[nodiscard]] static std::string num(double v, int precision = 5);

    /// Render with box-drawing rules.
    void print(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nanosim::analysis

#endif // NANOSIM_ANALYSIS_TABLE_HPP
