#include "analysis/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace nanosim::analysis {

Waveform::Waveform(std::string label, std::vector<double> time,
                   std::vector<double> value)
    : label_(std::move(label)),
      time_(std::move(time)),
      value_(std::move(value)) {
    if (time_.size() != value_.size()) {
        throw AnalysisError("Waveform: time/value length mismatch");
    }
    for (std::size_t i = 1; i < time_.size(); ++i) {
        if (time_[i] <= time_[i - 1]) {
            throw AnalysisError("Waveform: time must be strictly increasing");
        }
    }
}

void Waveform::append(double t, double v) {
    if (!time_.empty() && t <= time_.back()) {
        throw AnalysisError("Waveform::append: non-increasing time");
    }
    time_.push_back(t);
    value_.push_back(v);
}

namespace {

/// Per-thread last-segment hints, direct-mapped by waveform identity.
/// Each sampling thread advances its own cursors, so concurrent readers
/// of one waveform never contend (the shared-atomic design ping-ponged
/// the hint between threads, degrading every reader to binary search).
/// A slot holding a dangling pointer is harmless: the identity is used
/// only as a hash key, never dereferenced, and a wrong hint is validated
/// against the time axis before use.
struct CursorHint {
    const void* wave = nullptr;
    std::size_t segment = 0;
};
constexpr std::size_t k_cursor_slots = 8; // power of two

CursorHint& cursor_slot(const void* wave) noexcept {
    thread_local CursorHint slots[k_cursor_slots];
    const auto key = reinterpret_cast<std::uintptr_t>(wave);
    // Low bits are alignment zeros; fold in some higher ones.
    return slots[(key >> 6) & (k_cursor_slots - 1)];
}

} // namespace

double Waveform::at(double t) const {
    if (empty()) {
        throw AnalysisError("Waveform::at: empty waveform");
    }
    if (t <= time_.front()) {
        return value_.front();
    }
    if (t >= time_.back()) {
        return value_.back();
    }
    // Last-segment cursor: try the hinted segment and its successor
    // before binary-searching.  Segment selection (time_[lo] <= t <
    // time_[lo+1]) matches upper_bound exactly, so the interpolation is
    // bit-identical to an uncached lookup.
    const std::size_t n = time_.size();
    auto in_segment = [&](std::size_t s) {
        return s + 1 < n && time_[s] <= t && t < time_[s + 1];
    };
    CursorHint& hint = cursor_slot(this);
    std::size_t lo = hint.wave == this ? hint.segment : 0;
    if (!in_segment(lo)) {
        if (in_segment(lo + 1)) {
            ++lo;
        } else {
            const auto it = std::upper_bound(time_.begin(), time_.end(), t);
            lo = static_cast<std::size_t>(it - time_.begin()) - 1;
        }
    }
    hint.wave = this;
    hint.segment = lo;
    const std::size_t hi = lo + 1;
    const double f = (t - time_[lo]) / (time_[hi] - time_[lo]);
    return value_[lo] + f * (value_[hi] - value_[lo]);
}

Waveform Waveform::resampled(std::size_t n) const {
    if (empty() || n < 2) {
        throw AnalysisError("Waveform::resampled: need data and n >= 2");
    }
    Waveform out(label_);
    const double t0 = t_begin();
    const double t1 = t_end();
    for (std::size_t i = 0; i < n; ++i) {
        const double t =
            t0 + (t1 - t0) * static_cast<double>(i) /
                     static_cast<double>(n - 1);
        out.append(t, at(t));
    }
    return out;
}

double Waveform::max_value() const {
    if (empty()) {
        throw AnalysisError("Waveform::max_value: empty waveform");
    }
    return *std::max_element(value_.begin(), value_.end());
}

double Waveform::min_value() const {
    if (empty()) {
        throw AnalysisError("Waveform::min_value: empty waveform");
    }
    return *std::min_element(value_.begin(), value_.end());
}

namespace measure {

double crossing_time(const Waveform& w, double level, bool rising,
                     double after) {
    for (std::size_t i = 1; i < w.size(); ++i) {
        const double t0 = w.time_at(i - 1);
        const double t1 = w.time_at(i);
        if (t1 < after) {
            continue;
        }
        const double v0 = w.value_at(i - 1);
        const double v1 = w.value_at(i);
        const bool crossed =
            rising ? (v0 < level && v1 >= level) : (v0 > level && v1 <= level);
        if (!crossed) {
            continue;
        }
        const double f = (level - v0) / (v1 - v0);
        const double tc = t0 + f * (t1 - t0);
        if (tc >= after) {
            return tc;
        }
    }
    return std::numeric_limits<double>::quiet_NaN();
}

double peak_time(const Waveform& w) {
    if (w.empty()) {
        throw AnalysisError("peak_time: empty waveform");
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < w.size(); ++i) {
        if (w.value_at(i) > w.value_at(best)) {
            best = i;
        }
    }
    return w.time_at(best);
}

double rms(const Waveform& w) {
    if (w.size() < 2) {
        throw AnalysisError("rms: need at least two samples");
    }
    double acc = 0.0;
    for (std::size_t i = 1; i < w.size(); ++i) {
        const double dt = w.time_at(i) - w.time_at(i - 1);
        const double v0 = w.value_at(i - 1);
        const double v1 = w.value_at(i);
        acc += dt * (v0 * v0 + v1 * v1) / 2.0;
    }
    return std::sqrt(acc / (w.t_end() - w.t_begin()));
}

double max_abs_error(const Waveform& a, const Waveform& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        worst = std::max(worst,
                         std::abs(a.value_at(i) - b.at(a.time_at(i))));
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        worst = std::max(worst,
                         std::abs(b.value_at(i) - a.at(b.time_at(i))));
    }
    return worst;
}

double rms_error(const Waveform& a, const Waveform& b, std::size_t n) {
    const double t0 = std::max(a.t_begin(), b.t_begin());
    const double t1 = std::min(a.t_end(), b.t_end());
    if (!(t1 > t0) || n < 2) {
        throw AnalysisError("rms_error: waveforms do not overlap");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                                  static_cast<double>(n - 1);
        const double d = a.at(t) - b.at(t);
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(n));
}

} // namespace measure

} // namespace nanosim::analysis
