// Nano-Sim — waveform container and interpolation.
//
// A Waveform is a (time, value) series produced by an engine for one
// circuit quantity.  Time points may be non-uniform (adaptive stepping),
// so value() interpolates linearly and resampled() maps onto a uniform
// grid for comparison between engines that chose different step
// sequences.
#ifndef NANOSIM_ANALYSIS_WAVEFORM_HPP
#define NANOSIM_ANALYSIS_WAVEFORM_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nanosim::analysis {

/// Sampled scalar signal over time (or over a sweep variable).
class Waveform {
public:
    Waveform() = default;

    /// Named waveform ("v(out)", "i(RTD1)").
    explicit Waveform(std::string label) : label_(std::move(label)) {}

    /// Construct from parallel vectors (must be equal length, time
    /// strictly increasing; throws AnalysisError).
    Waveform(std::string label, std::vector<double> time,
             std::vector<double> value);

    [[nodiscard]] const std::string& label() const noexcept { return label_; }
    void set_label(std::string label) { label_ = std::move(label); }

    /// Append one sample; time must exceed the previous sample's time.
    void append(double t, double v);

    [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }
    [[nodiscard]] bool empty() const noexcept { return time_.empty(); }
    [[nodiscard]] const std::vector<double>& time() const noexcept {
        return time_;
    }
    [[nodiscard]] const std::vector<double>& value() const noexcept {
        return value_;
    }
    [[nodiscard]] double time_at(std::size_t i) const { return time_[i]; }
    [[nodiscard]] double value_at(std::size_t i) const { return value_[i]; }

    [[nodiscard]] double t_begin() const { return time_.front(); }
    [[nodiscard]] double t_end() const { return time_.back(); }

    /// Linear interpolation at time t (clamped to the end values outside
    /// the record).  Throws AnalysisError on an empty waveform.
    ///
    /// Interior lookups keep a last-segment cursor: consumers sample
    /// waveforms on monotone grids (resampled(), the measure:: helpers,
    /// Monte-Carlo statistics), so the next query almost always lands in
    /// the hinted or the following segment — O(1) instead of a binary
    /// search per sample.  The cursor lives in a small THREAD-LOCAL
    /// cache keyed by waveform identity: concurrent samplers of the same
    /// waveform each advance their own hint instead of ping-ponging a
    /// shared one (which silently degraded every reader to repeated
    /// binary searches).  Values are bit-identical either way — the hint
    /// only chooses how the segment is found, never which one.
    [[nodiscard]] double at(double t) const;

    /// Uniform resampling with n >= 2 points across [t_begin, t_end].
    [[nodiscard]] Waveform resampled(std::size_t n) const;

    /// Global extrema of the recorded samples.
    [[nodiscard]] double max_value() const;
    [[nodiscard]] double min_value() const;

private:
    std::string label_;
    std::vector<double> time_;
    std::vector<double> value_;
};

/// Measurements on waveforms (delay, crossings, peaks, error norms).
namespace measure {

/// First time the waveform crosses `level` in the given direction after
/// `after`.  rising = upward crossing.  Returns NaN when never crossed.
[[nodiscard]] double crossing_time(const Waveform& w, double level,
                                   bool rising, double after = 0.0);

/// Time of the global maximum.
[[nodiscard]] double peak_time(const Waveform& w);

/// RMS of the samples (trapezoidal weighting over time).
[[nodiscard]] double rms(const Waveform& w);

/// Max |a - b| over the union time range, comparing by interpolation at
/// a's time points and b's time points.
[[nodiscard]] double max_abs_error(const Waveform& a, const Waveform& b);

/// RMS of (a - b) sampled on a uniform n-point grid over the overlap.
[[nodiscard]] double rms_error(const Waveform& a, const Waveform& b,
                               std::size_t n = 512);

} // namespace measure

} // namespace nanosim::analysis

#endif // NANOSIM_ANALYSIS_WAVEFORM_HPP
