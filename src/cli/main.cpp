// nanosim — command-line batch simulator.
//
//   nanosim [run] [options] deck.cir        single-deck batch run
//   nanosim report [options] deck.cir       run + per-analysis RunReport
//   nanosim sweep deck.cir --param DEV:P=start:stop:points [...]
//
// run options:
//   --engine swec|nr|mla|pwl   transient/DC engine (default: swec)
//   --csv PREFIX               write waveforms/sweeps to PREFIX_*.csv
//   --trace FILE.json          Chrome/Perfetto trace of the run
//   --metrics FILE.json        dump the metrics registry after the run
//   --progress                 live progress meter (rate + ETA) on stderr
//   --quiet                    suppress ASCII plots
//   --verbose                  raise log level to info
//   --version                  print version and exit
//
// sweep options (parameter-grid campaign over the deck's .op/.tran
// cards; axes combine as a cartesian grid):
//   --param DEV:P=a:b:n        sweep device DEV parameter P over n
//                              uniformly spaced values in [a, b]
//                              (repeatable; engineering notation ok)
//   --threads N                worker threads (default: all cores)
//   --out FILE.csv             write the aggregated campaign CSV
//   --trace / --metrics        as for run (pool queue-wait shows up here)
//   --quiet                    suppress ASCII plots
//
// The NANOSIM_LOG environment variable (trace|debug|info|warn|error|off)
// sets the log threshold before flags are parsed; --verbose overrides it.
//
// `run` maps every analysis card in the deck (.op, .dc, .tran) onto an
// AnalysisSpec and executes it through one SimSession — the same single
// execution path the library facade and the sweep campaigns use, so the
// whole deck shares one cached symbolic factorisation — then prints
// results in SPICE-batch style.  Exit code 0 on success, 1 on
// simulation failure, 2 on usage errors.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <variant>
#include <vector>

#include "core/nanosim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "util/failpoints.hpp"

using namespace nanosim;

namespace {

struct CliOptions {
    std::string deck_path;
    DcEngine dc_engine = DcEngine::swec;
    TranEngine tran_engine = TranEngine::swec;
    std::string engine_name = "swec";
    std::optional<std::string> csv_prefix;
    std::optional<std::string> circuit_spec; ///< built-in generator spec
    double tstop = 200e-9;                   ///< --circuit transient horizon
    bool quiet = false;
    bool progress = false;                   ///< stderr progress meter
    bool tabulate = false;                   ///< tabulated SWEC device models
    bool report = false;                     ///< `report` verb: pretty RunReports
    int threads = 1;                         ///< factor-path workers
    int mc_batch = 0;                        ///< Monte-Carlo trial-batch width
    double deadline_s = 0.0;                 ///< per-analysis wall budget [s]
    std::vector<std::string> probes;         ///< extra MC observation nodes
    std::optional<std::string> trace_path;   ///< --trace FILE.json
    std::optional<std::string> metrics_path; ///< --metrics FILE.json
    std::optional<std::string> failpoints;   ///< --failpoints SPEC
};

/// Progress meter on stderr, driven by the AnalysisObserver.  Redraws on
/// >= 1% increments or every 250 ms (whichever comes first) so the rate
/// and ETA fields stay live without drowning tight step loops in
/// terminal writes.  Rate comes from the on_step/on_trial item counts;
/// ETA extrapolates the completed fraction against elapsed wall time.
class ProgressMeter {
public:
    void begin(const std::string& label) {
        label_ = label;
        last_percent_ = -1;
        max_len_ = 0;
        items_ = 0;
        unit_ = nullptr;
        start_ = Clock::now();
        last_draw_ = start_;
        draw(0.0, /*force=*/true);
    }
    /// Latest item count from on_step (accepted steps) / on_trial (done
    /// trials); gives the rate field its numerator and unit label.
    void items(long count, const char* unit) {
        items_ = count;
        unit_ = unit;
    }
    void draw(double fraction, bool force = false) {
        fraction = std::min(std::max(fraction, 0.0), 1.0);
        const int percent = static_cast<int>(fraction * 100.0);
        const auto now = Clock::now();
        if (!force && percent == last_percent_ &&
            now - last_draw_ < std::chrono::milliseconds(250)) {
            return;
        }
        last_percent_ = percent;
        last_draw_ = now;
        const double elapsed =
            std::chrono::duration<double>(now - start_).count();

        std::ostringstream line;
        line << "  " << label_ << " [";
        constexpr int width = 24;
        const int filled = static_cast<int>(fraction * width);
        for (int i = 0; i < width; ++i) {
            line << (i < filled ? '=' : (i == filled ? '>' : ' '));
        }
        line << "] " << percent << '%';
        if (items_ > 0 && unit_ != nullptr && elapsed > 0.0) {
            line << " | " << std::setprecision(3)
                 << static_cast<double>(items_) / elapsed << ' ' << unit_
                 << "/s";
        }
        // ETA once there is enough signal to extrapolate from.
        if (fraction > 0.0 && fraction < 1.0 && elapsed > 0.1) {
            const double eta = elapsed * (1.0 - fraction) / fraction;
            line << " | ETA ";
            if (eta < 60.0) {
                line << std::fixed << std::setprecision(1) << eta << "s";
                line.unsetf(std::ios::fixed);
            } else {
                line << static_cast<long>(eta / 60.0) << "m"
                     << static_cast<long>(eta) % 60 << "s";
            }
        }
        const std::string text = line.str();
        // Pad to the longest line written so a shrinking ETA does not
        // leave stale characters behind the cursor.
        max_len_ = std::max(max_len_, text.size());
        std::cerr << '\r' << text
                  << std::string(max_len_ - text.size(), ' ') << std::flush;
    }
    void end() {
        if (last_percent_ >= 0) {
            std::cerr << '\r' << std::string(max_len_, ' ') << '\r'
                      << std::flush;
            last_percent_ = -1;
        }
    }

private:
    using Clock = std::chrono::steady_clock;
    std::string label_;
    int last_percent_ = -1;
    std::size_t max_len_ = 0;
    long items_ = 0;
    const char* unit_ = nullptr;
    Clock::time_point start_;
    Clock::time_point last_draw_;
};

void usage(std::ostream& os) {
    os << "usage: nanosim [run] [options] deck.cir\n"
          "       nanosim run --circuit mesh:RxC [options]\n"
          "       nanosim report [options] deck.cir\n"
          "       nanosim sweep deck.cir --param DEV:P=start:stop:points\n"
          "       nanosim serve [--port N] [--workers N] [options]\n"
          "       nanosim submit --port N (deck.cir | --circuit SPEC)\n"
          "                      [--spec JSON] [options]\n"
          "run options:\n"
          "  --engine swec|nr|mla|pwl   analysis engine (default swec)\n"
          "  --csv PREFIX               export results as PREFIX_*.csv\n"
          "  --trace FILE.json          write a Chrome/Perfetto trace of\n"
          "                             the run (load in ui.perfetto.dev\n"
          "                             or chrome://tracing)\n"
          "  --metrics FILE.json        enable the metrics registry and\n"
          "                             dump it (counters + histograms)\n"
          "                             after the run\n"
          "  --progress                 live progress meter with rate and\n"
          "                             ETA on stderr\n"
          "  --circuit SPEC             built-in workload instead of a\n"
          "                             deck: mesh:RxC (RTD-loaded RC\n"
          "                             mesh) or grid:RxC[:vias] (power-\n"
          "                             distribution grid); runs .op +\n"
          "                             .tran to --tstop\n"
          "  --tstop T                  --circuit transient horizon [s]\n"
          "                             (default 200e-9)\n"
          "  --tabulate                 tabulated chord-conductance models\n"
          "                             for the SWEC engines (cubic-Hermite\n"
          "                             lookup tables, <= 1e-6 rel. error,\n"
          "                             exact closed-form fallback outside\n"
          "                             the tabulated voltage range)\n"
          "  --threads N                worker threads for the sparse\n"
          "                             numeric refactor (0 = all cores,\n"
          "                             default 1 = serial; results are\n"
          "                             bit-identical at any value)\n"
          "  --mc-batch K               Monte-Carlo trial-batch width:\n"
          "                             keep K trials in flight with\n"
          "                             batched evaluation/refactors and\n"
          "                             shared-factor multi-RHS solves;\n"
          "                             bit-identical to the serial\n"
          "                             driver at any K\n"
          "  --probe n1,n2,...          extra Monte-Carlo observation\n"
          "                             nodes (per-node mean/stddev\n"
          "                             alongside the primary node)\n"
          "  --deadline T               wall-clock budget per analysis [s];\n"
          "                             on expiry the run is cancelled via\n"
          "                             the observer path and returns an\n"
          "                             aborted PARTIAL result (exit 1)\n"
          "  --failpoints SPEC          arm fault-injection sites (chaos\n"
          "                             testing): comma list of name=mode,\n"
          "                             mode off|always|1inN|N; see README\n"
          "                             'Robustness' for the site catalog\n"
          "  --quiet                    no ASCII plots\n"
          "  --verbose                  info-level logging\n"
          "  --version                  print version\n"
          "report verb: run the deck's analyses like `run`, then print a\n"
          "  structured per-run solver report (step-bound winners, factor\n"
          "  strategy mix, analyze/eval/stamp/factor/solve time split)\n"
          "  instead of waveform plots; accepts all run options\n"
          "sweep options:\n"
          "  --param DEV:P=a:b:n        axis: device DEV, parameter P, n\n"
          "                             points in [a, b]; repeat for a\n"
          "                             cartesian grid (RTD params A,B,C,\n"
          "                             D,N1,N2,H,TEMP; R/C/L values; V/I\n"
          "                             DC; NOISE SIGMA)\n"
          "  --threads N                worker threads (default all cores)\n"
          "  --out FILE.csv             aggregated campaign CSV\n"
          "  --trace FILE.json          Chrome/Perfetto trace (as in run)\n"
          "  --metrics FILE.json        metrics registry dump (as in run)\n"
          "  --quiet                    no ASCII plots\n"
          "serve options (NDJSON analysis service on TCP; see README):\n"
          "  --host H / --port N        bind address (default 127.0.0.1,\n"
          "                             port 0 = ephemeral; the bound port\n"
          "                             is printed as 'listening on ...')\n"
          "  --workers N                concurrent job executors (default 2)\n"
          "  --queue-depth N            backpressure bound (default 64)\n"
          "  --threads N                factor-path workers per session\n"
          "  --max-sessions N           session-dedup cache capacity\n"
          "  --idle-timeout T           per-connection read idle budget\n"
          "                             [s]: one quiet interval sends a\n"
          "                             heartbeat probe, a second closes\n"
          "                             the connection (0 = wait forever)\n"
          "  --metrics FILE.json        dump the metrics registry on stop\n"
          "  --failpoints SPEC          arm fault-injection sites (as in\n"
          "                             run)\n"
          "  SIGTERM/SIGINT             drain the queue and exit 0; a\n"
          "                             second signal force-cancels\n"
          "submit options (client for `nanosim serve`):\n"
          "  --host H / --port N        server address (--port required)\n"
          "  deck.cir | --circuit SPEC  circuit source (deck file is sent\n"
          "                             by value; SPEC as in run)\n"
          "  --spec JSON                wire-format analysis spec, e.g.\n"
          "                             '{\"kind\":\"mc\",\"node\":\"n1_1\",\n"
          "                             \"t_stop\":1e-9}' (default: op)\n"
          "  --noise NODE:SIGMA         add a noise source at NODE\n"
          "                             (repeatable)\n"
          "  --priority P               higher runs first (default 0)\n"
          "  --deadline T               queue+run wall budget [s]\n"
          "  --json                     echo raw protocol lines (events +\n"
          "                             final result document) to stdout\n"
          "  --no-follow                submit and exit without streaming\n"
          "  --connect-timeout T        TCP connect budget [s] (default 5;\n"
          "                             0 = blocking POSIX connect)\n"
          "  --read-timeout T           per-read budget [s] while waiting\n"
          "                             for responses/events (default 0 =\n"
          "                             wait forever; pair with the\n"
          "                             server's --idle-timeout heartbeat)\n"
          "  --retries N                submit attempts on connection\n"
          "                             errors with capped exponential\n"
          "                             backoff (default 3); resubmits\n"
          "                             carry an idempotency key so the\n"
          "                             job runs at most once\n"
          "  --checkpoint FILE          persist the latest mc checkpoint\n"
          "                             event doc to FILE (atomic rename);\n"
          "                             requires an mc --spec with\n"
          "                             \"checkpoint_every\" set\n"
          "  --resume FILE              resume an mc job from a checkpoint\n"
          "                             written by --checkpoint; requires\n"
          "                             the SAME --spec as the original\n"
          "                             run (surviving trials stay bit-\n"
          "                             identical to an uninterrupted run)\n"
          "  --failpoints SPEC          arm fault-injection sites in the\n"
          "                             SERVER process (sent on the wire)\n"
          "environment:\n"
          "  NANOSIM_LOG=LEVEL          log threshold before flag parsing\n"
          "                             (trace|debug|info|warn|error|off);\n"
          "                             --verbose overrides it\n"
          "  NANOSIM_FAILPOINTS=SPEC    arm fault-injection sites before\n"
          "                             any verb runs (same syntax as\n"
          "                             --failpoints)\n"
          "example:\n"
          "  nanosim sweep deck.cir --param RTD1:A=1e-3:2e-3:11 \\\n"
          "      --threads 8 --out sweep.csv\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
    CliOptions opt;
    bool tstop_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--version") {
            std::cout << "nanosim " << version_string() << '\n';
            std::exit(0);
        }
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--tabulate") {
            opt.tabulate = true;
        } else if (arg == "--verbose") {
            log::set_level(log::Level::info);
        } else if (arg == "--engine") {
            if (++i >= argc) {
                return std::nullopt;
            }
            const std::string e = argv[i];
            opt.engine_name = e;
            if (e == "swec") {
                opt.dc_engine = DcEngine::swec;
                opt.tran_engine = TranEngine::swec;
            } else if (e == "nr") {
                opt.dc_engine = DcEngine::newton_raphson;
                opt.tran_engine = TranEngine::newton_raphson;
            } else if (e == "mla") {
                opt.dc_engine = DcEngine::mla;
                opt.tran_engine = TranEngine::swec; // no MLA transient
            } else if (e == "pwl") {
                opt.dc_engine = DcEngine::swec;
                opt.tran_engine = TranEngine::pwl;
            } else {
                return std::nullopt;
            }
        } else if (arg == "--csv") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.csv_prefix = argv[i];
        } else if (arg == "--trace") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.trace_path = argv[i];
        } else if (arg == "--metrics") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.metrics_path = argv[i];
        } else if (arg == "--failpoints") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.failpoints = argv[i];
        } else if (arg == "--threads") {
            if (++i >= argc) {
                return std::nullopt;
            }
            try {
                std::size_t used = 0;
                opt.threads = std::stoi(argv[i], &used);
                if (used != std::strlen(argv[i]) || opt.threads < 0) {
                    return std::nullopt;
                }
            } catch (const std::exception&) {
                return std::nullopt;
            }
        } else if (arg == "--mc-batch") {
            if (++i >= argc) {
                return std::nullopt;
            }
            try {
                std::size_t used = 0;
                opt.mc_batch = std::stoi(argv[i], &used);
                if (used != std::strlen(argv[i]) || opt.mc_batch < 1) {
                    return std::nullopt;
                }
            } catch (const std::exception&) {
                return std::nullopt;
            }
        } else if (arg == "--probe") {
            if (++i >= argc) {
                return std::nullopt;
            }
            std::string list = argv[i];
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                if (name.empty()) {
                    return std::nullopt;
                }
                opt.probes.push_back(name);
                if (comma == std::string::npos) {
                    break;
                }
                pos = comma + 1;
            }
        } else if (arg == "--circuit") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.circuit_spec = argv[i];
        } else if (arg == "--deadline") {
            if (++i >= argc) {
                return std::nullopt;
            }
            try {
                opt.deadline_s = parse_value(argv[i]);
                if (opt.deadline_s <= 0.0) {
                    return std::nullopt;
                }
            } catch (const std::exception&) {
                return std::nullopt;
            }
        } else if (arg == "--tstop") {
            if (++i >= argc) {
                return std::nullopt;
            }
            try {
                opt.tstop = parse_value(argv[i]);
                tstop_set = true;
            } catch (const std::exception&) {
                return std::nullopt;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return std::nullopt;
        } else if (opt.deck_path.empty()) {
            opt.deck_path = arg;
        } else {
            return std::nullopt;
        }
    }
    if (opt.deck_path.empty() == !opt.circuit_spec.has_value()) {
        return std::nullopt; // exactly one of deck / --circuit
    }
    if (tstop_set && !opt.circuit_spec) {
        // A deck's .tran card owns its horizon; silently ignoring the
        // flag would run a different simulation than the user asked for.
        return std::nullopt;
    }
    return opt;
}

void maybe_plot(const CliOptions& cli,
                const std::vector<analysis::Waveform>& waves,
                const std::string& title, const std::string& x_label) {
    if (cli.quiet || waves.empty()) {
        return;
    }
    analysis::PlotOptions plot;
    plot.title = title;
    plot.x_label = x_label;
    analysis::ascii_plot(std::cout, waves, plot);
}

/// Per-step wall-time attribution of a cached-solver analysis (the
/// SolverWork analyze/eval/stamp/factor/solve split); silent when the
/// analysis never went through a SystemCache.
void print_step_split(const AnalysisHeader& header) {
    const SolverWork& sw = header.solver;
    const double total = sw.analyze_s + sw.eval_s + sw.stamp_s +
                         sw.factor_s + sw.solve_s;
    if (total <= 0.0) {
        return;
    }
    const auto flags = std::cout.flags();
    const auto precision = std::cout.precision();
    std::cout << std::fixed << std::setprecision(2)
              << "  step time: analyze " << sw.analyze_s * 1e3
              << " ms | eval "
              << sw.eval_s * 1e3 << " ms | stamp " << sw.stamp_s * 1e3
              << " ms | factor " << sw.factor_s * 1e3 << " ms | solve "
              << sw.solve_s * 1e3 << " ms";
    if (sw.tables_built > 0) {
        std::cout << " | " << sw.tables_built << " chord tables built";
    }
    std::cout << '\n';
    std::cout.flags(flags);
    std::cout.precision(precision);
}

int run_op(const SimSession& session, const AnalysisResult& result,
           int index) {
    std::cout << "\n* analysis " << index << ": .op (engine "
              << result.header.engine << ")\n";
    const auto& op = result.dc();
    if (!op.converged) {
        std::cout << "  OPERATING POINT DID NOT CONVERGE after "
                  << op.iterations << " iterations (residual "
                  << op.residual << ")\n";
        return 1;
    }
    const auto v = session.assembler().view(op.x);
    for (NodeId n = 1; n <= session.circuit().num_nodes(); ++n) {
        std::cout << "  v(" << session.circuit().node_name(n)
                  << ") = " << v(n) << " V\n";
    }
    std::cout << "  [" << op.iterations << " iterations/steps, "
              << op.flops.total() << " flops]\n";
    print_step_split(result.header);
    return 0;
}

int run_dc(const SimSession& session, const CliOptions& cli,
           const DcSweepSpec& spec, const AnalysisResult& result,
           int index) {
    std::cout << "\n* analysis " << index << ": .dc " << spec.source
              << ' ' << spec.start << " -> " << spec.stop << " step "
              << spec.step << " (engine " << result.header.engine << ")\n";
    const auto& sweep = result.sweep();
    std::cout << "  " << sweep.values.size() << " points, "
              << sweep.failures() << " failures, "
              << sweep.flops.total() << " flops\n";

    // One waveform per node, indexed by the sweep value.
    std::vector<analysis::Waveform> waves;
    for (NodeId n = 1; n <= session.circuit().num_nodes(); ++n) {
        analysis::Waveform w("v(" + session.circuit().node_name(n) + ")");
        for (std::size_t k = 0; k < sweep.values.size(); ++k) {
            if (w.empty() || sweep.values[k] > w.time().back()) {
                w.append(sweep.values[k],
                         session.assembler().view(sweep.solutions[k])(n));
            }
        }
        waves.push_back(std::move(w));
    }
    maybe_plot(cli, waves, "DC sweep", spec.source + " [V]");
    if (cli.csv_prefix) {
        const std::string path =
            *cli.csv_prefix + "_dc" + std::to_string(index) + ".csv";
        analysis::write_csv_file(path, waves, spec.source);
        std::cout << "  wrote " << path << '\n';
    }
    return sweep.failures() == 0 ? 0 : 1;
}

int run_tran(const CliOptions& cli, const TranSpec& spec,
             const AnalysisResult& result, int index) {
    std::cout << "\n* analysis " << index << ": .tran "
              << spec.common.dt_init << ' ' << spec.t_stop << " (engine "
              << result.header.engine << ")\n";
    const auto& res = result.tran();
    std::cout << "  " << res.steps_accepted << " steps ("
              << res.steps_rejected << " rejected), "
              << res.nr_iterations << " nonlinear iterations, "
              << res.nonconverged_steps << " non-converged, "
              << res.flops.total() << " flops\n";
    if (res.solver_full_factors + res.solver_fast_refactors > 0) {
        std::cout << "  sparse solver: ordering "
                  << res.solver_ordering.name() << ", factor nnz "
                  << res.solver_ordering.factor_nnz << " (predicted "
                  << res.solver_ordering.predicted_fill_chosen
                  << " vs natural "
                  << res.solver_ordering.predicted_fill_natural << "), "
                  << res.solver_full_factors << " full / "
                  << res.solver_fast_refactors << " fast factorisations\n";
    }
    print_step_split(result.header);
    maybe_plot(cli, res.node_waves, "transient", "t [s]");
    if (cli.csv_prefix) {
        const std::string path =
            *cli.csv_prefix + "_tran" + std::to_string(index) + ".csv";
        analysis::write_csv_file(path, res.node_waves);
        std::cout << "  wrote " << path << '\n';
    }
    return 0;
}

/// Enable the telemetry backends requested on the command line.  Called
/// before the first analysis so the session's symbolic setup is covered.
void start_telemetry(const std::optional<std::string>& trace_path,
                     const std::optional<std::string>& metrics_path,
                     bool report) {
    if (metrics_path || report) {
        // The report verb reads the pool counters, which only tick when
        // the registry is live.
        obs::set_metrics_enabled(true);
    }
    if (trace_path) {
        obs::start_trace();
    }
}

/// Write the --trace / --metrics artifacts after the analyses complete
/// (shared by the run/report and sweep verbs).
void write_telemetry(const std::optional<std::string>& trace_path,
                     const std::optional<std::string>& metrics_path) {
    if (trace_path) {
        obs::stop_trace();
        obs::write_trace_file(*trace_path);
        std::cout << "  wrote " << *trace_path << " ("
                  << obs::trace_event_count() << " trace events";
        if (obs::trace_dropped_count() > 0) {
            std::cout << ", " << obs::trace_dropped_count() << " dropped";
        }
        std::cout << ")\n";
    }
    if (metrics_path) {
        obs::metrics().write_json_file(*metrics_path);
        std::cout << "  wrote " << *metrics_path << " ("
                  << obs::metrics().size() << " instruments)\n";
    }
}

// ---- sweep verb -------------------------------------------------------

struct SweepCliOptions {
    std::string deck_path;
    runtime::JobPlan plan;
    runtime::CampaignOptions campaign;
    std::optional<std::string> out_path;
    std::optional<std::string> trace_path;
    std::optional<std::string> metrics_path;
    bool quiet = false;
};

[[nodiscard]] long parse_int_arg(const char* flag, const std::string& text) {
    try {
        std::size_t used = 0;
        const long value = std::stol(text, &used);
        if (used == text.size()) {
            return value;
        }
    } catch (const std::exception&) {
    }
    throw NetlistError(std::string(flag) + " wants an integer, got '" +
                       text + "'");
}

std::optional<SweepCliOptions> parse_sweep_args(int argc, char** argv,
                                                int first) {
    SweepCliOptions opt;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--param") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.plan.add_axis(runtime::parse_param_axis(argv[i]));
        } else if (arg == "--threads") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.campaign.policy.threads =
                static_cast<int>(parse_int_arg("--threads", argv[i]));
        } else if (arg == "--out") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.out_path = argv[i];
        } else if (arg == "--trace") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.trace_path = argv[i];
        } else if (arg == "--metrics") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.metrics_path = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return std::nullopt;
        } else if (opt.deck_path.empty()) {
            opt.deck_path = arg;
        } else {
            return std::nullopt;
        }
    }
    if (opt.deck_path.empty() || opt.plan.axes().empty()) {
        return std::nullopt;
    }
    return opt;
}

int run_sweep(const SweepCliOptions& cli) {
    start_telemetry(cli.trace_path, cli.metrics_path, /*report=*/false);
    const SimSession session = SimSession::from_deck_file(cli.deck_path);
    std::cout << "nanosim " << version_string() << " | sweep | "
              << cli.deck_path << " | " << cli.plan.size() << " points on "
              << cli.campaign.policy.resolved() << " threads\n";
    for (const auto& axis : cli.plan.axes()) {
        std::cout << "  axis " << axis.label() << ": " << axis.start
                  << " -> " << axis.stop << " (" << axis.points
                  << " points)\n";
    }

    const runtime::CampaignResult result =
        session.sweep(cli.plan, cli.campaign);
    std::cout << "  " << result.rows.size() << " jobs, "
              << result.failures() << " failures, "
              << result.metric_names.size() << " metrics per point\n";
    for (const auto& row : result.rows) {
        if (!row.ok) {
            std::cout << "  point " << row.index << " FAILED: " << row.error
                      << '\n';
        }
    }

    // Persist before plotting: a plot hiccup must not cost the CSV.
    if (cli.out_path) {
        result.write_csv_file(*cli.out_path);
        std::cout << "  wrote " << *cli.out_path << '\n';
    }
    write_telemetry(cli.trace_path, cli.metrics_path);

    // 1-D campaigns: plot every metric against the swept parameter.
    if (!cli.quiet && cli.plan.axes().size() == 1) {
        std::vector<analysis::Waveform> waves;
        for (const auto& metric : result.metric_names) {
            analysis::Waveform w = result.metric_wave(metric);
            if (w.size() >= 2) {
                waves.push_back(std::move(w));
            }
        }
        if (!waves.empty()) {
            analysis::PlotOptions plot;
            plot.title = "sweep campaign";
            plot.x_label = cli.plan.axes()[0].label();
            analysis::ascii_plot(std::cout, waves, plot);
        }
    }

    return result.failures() == 0 ? 0 : 1;
}

// ---- serve verb -------------------------------------------------------

/// Self-pipe for SIGTERM/SIGINT: the handler only write()s (async-signal
/// safe); a watcher thread turns bytes into Server::stop calls.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_stop_signal(int /*sig*/) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

struct ServeCliOptions {
    service::ServerOptions server;
    std::optional<std::string> metrics_path;
    std::optional<std::string> failpoints; ///< --failpoints SPEC
};

std::optional<ServeCliOptions> parse_serve_args(int argc, char** argv,
                                                int first) {
    ServeCliOptions opt;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (arg == "--verbose") {
            log::set_level(log::Level::info);
            continue;
        }
        if (++i >= argc) {
            return std::nullopt; // every remaining flag takes a value
        }
        try {
            if (arg == "--port") {
                opt.server.port =
                    static_cast<int>(parse_int_arg("--port", argv[i]));
            } else if (arg == "--host") {
                opt.server.host = argv[i];
            } else if (arg == "--workers") {
                opt.server.workers =
                    static_cast<int>(parse_int_arg("--workers", argv[i]));
            } else if (arg == "--queue-depth") {
                opt.server.queue_depth = static_cast<std::size_t>(
                    parse_int_arg("--queue-depth", argv[i]));
            } else if (arg == "--threads") {
                opt.server.factor_threads = static_cast<int>(
                    parse_int_arg("--threads", argv[i]));
            } else if (arg == "--max-sessions") {
                opt.server.max_sessions = static_cast<std::size_t>(
                    parse_int_arg("--max-sessions", argv[i]));
            } else if (arg == "--idle-timeout") {
                opt.server.idle_timeout_s = parse_value(argv[i]);
                if (opt.server.idle_timeout_s < 0.0) {
                    return std::nullopt;
                }
            } else if (arg == "--metrics") {
                opt.metrics_path = argv[i];
            } else if (arg == "--failpoints") {
                opt.failpoints = argv[i];
            } else {
                return std::nullopt;
            }
        } catch (const std::exception&) {
            return std::nullopt;
        }
    }
    if (opt.server.port < 0 || opt.server.port > 65535 ||
        opt.server.workers < 1 || opt.server.queue_depth < 1) {
        return std::nullopt;
    }
    return opt;
}

int run_serve(const ServeCliOptions& cli) {
    if (cli.metrics_path) {
        obs::set_metrics_enabled(true);
    }
    if (cli.failpoints) {
        failpoints::arm_from_spec(*cli.failpoints);
    }
    service::Server server(cli.server);
    server.start();
    // Scripted clients (and the CI smoke) parse this exact line to learn
    // the ephemeral port — keep it first and flushed.
    std::cout << "listening on " << cli.server.host << ":" << server.port()
              << '\n'
              << std::flush;

    if (::pipe(g_signal_pipe) != 0) {
        std::cerr << "nanosim serve: cannot create signal pipe\n";
        return 1;
    }
    std::signal(SIGTERM, on_stop_signal);
    std::signal(SIGINT, on_stop_signal);
    std::thread watcher([&server] {
        char byte = 0;
        int stops = 0;
        while (::read(g_signal_pipe[0], &byte, 1) == 1) {
            ++stops;
            if (stops == 1) {
                // First signal: graceful — drain everything queued.
                std::cerr << "nanosim serve: draining queue...\n";
                server.stop(/*drain=*/true);
            } else {
                // Second signal: force — cancel queued and running jobs.
                std::cerr << "nanosim serve: force stop\n";
                server.stop(/*drain=*/false);
                break;
            }
        }
    });

    // Blocks until a signal or an {"op":"shutdown"} request stops the
    // server and the queue finishes per the stop mode.
    server.wait();

    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    ::close(g_signal_pipe[1]); // EOF unblocks the watcher's read()
    watcher.join();
    ::close(g_signal_pipe[0]);

    if (cli.metrics_path) {
        obs::metrics().write_json_file(*cli.metrics_path);
        std::cerr << "nanosim serve: wrote " << *cli.metrics_path << '\n';
    }
    std::cout << "stopped\n";
    return 0;
}

// ---- submit verb ------------------------------------------------------

struct SubmitCliOptions {
    std::string host = "127.0.0.1";
    int port = 0;
    std::string deck_path;                   ///< positional deck file
    std::optional<std::string> circuit_spec; ///< --circuit generator spec
    std::vector<service::wire::NoiseInjection> noise;
    std::optional<std::string> spec_json;    ///< --spec raw wire JSON
    int priority = 0;
    double deadline_s = 0.0;
    bool follow = true;   ///< subscribe + stream events until terminal
    bool json_out = false; ///< echo raw protocol lines instead of prose
    service::ClientOptions client;           ///< --connect/--read-timeout
    int retries = 3;                         ///< --retries (submit attempts)
    std::optional<std::string> failpoints;   ///< --failpoints SPEC (server side)
    std::optional<std::string> checkpoint_path; ///< --checkpoint FILE
    std::optional<std::string> resume_path;     ///< --resume FILE
};

std::optional<SubmitCliOptions> parse_submit_args(int argc, char** argv,
                                                  int first) {
    SubmitCliOptions opt;
    bool port_set = false;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (arg == "--no-follow") {
            opt.follow = false;
            continue;
        }
        if (arg == "--json") {
            opt.json_out = true;
            continue;
        }
        if (!arg.empty() && arg[0] != '-') {
            if (!opt.deck_path.empty()) {
                return std::nullopt;
            }
            opt.deck_path = arg;
            continue;
        }
        if (++i >= argc) {
            return std::nullopt;
        }
        try {
            if (arg == "--host") {
                opt.host = argv[i];
            } else if (arg == "--port") {
                opt.port = static_cast<int>(parse_int_arg("--port", argv[i]));
                port_set = true;
            } else if (arg == "--circuit") {
                opt.circuit_spec = argv[i];
            } else if (arg == "--spec") {
                opt.spec_json = argv[i];
            } else if (arg == "--priority") {
                opt.priority =
                    static_cast<int>(parse_int_arg("--priority", argv[i]));
            } else if (arg == "--deadline") {
                opt.deadline_s = parse_value(argv[i]);
                if (opt.deadline_s <= 0.0) {
                    return std::nullopt;
                }
            } else if (arg == "--connect-timeout") {
                opt.client.connect_timeout_s = parse_value(argv[i]);
                if (opt.client.connect_timeout_s < 0.0) {
                    return std::nullopt;
                }
            } else if (arg == "--read-timeout") {
                opt.client.read_timeout_s = parse_value(argv[i]);
                if (opt.client.read_timeout_s < 0.0) {
                    return std::nullopt;
                }
            } else if (arg == "--retries") {
                opt.retries =
                    static_cast<int>(parse_int_arg("--retries", argv[i]));
                if (opt.retries < 1) {
                    return std::nullopt;
                }
            } else if (arg == "--failpoints") {
                opt.failpoints = argv[i];
            } else if (arg == "--checkpoint") {
                opt.checkpoint_path = argv[i];
            } else if (arg == "--resume") {
                opt.resume_path = argv[i];
            } else if (arg == "--noise") {
                // NODE:SIGMA — matched against circuit node names server
                // side, so errors surface in the job result.
                const std::string pair = argv[i];
                const auto colon = pair.rfind(':');
                if (colon == std::string::npos || colon == 0) {
                    return std::nullopt;
                }
                service::wire::NoiseInjection inj;
                inj.node = pair.substr(0, colon);
                inj.sigma = parse_value(pair.substr(colon + 1));
                opt.noise.push_back(std::move(inj));
            } else {
                return std::nullopt;
            }
        } catch (const std::exception&) {
            return std::nullopt;
        }
    }
    if (!port_set || opt.port < 1 || opt.port > 65535) {
        return std::nullopt;
    }
    if (opt.deck_path.empty() == !opt.circuit_spec.has_value()) {
        return std::nullopt; // exactly one of deck / --circuit
    }
    if (opt.resume_path && !opt.spec_json) {
        // A checkpoint only carries accumulator state — the mc spec it
        // belongs to must be restated so the resumed run is well-defined.
        return std::nullopt;
    }
    return opt;
}

/// Read a whole file (deck, checkpoint JSON) or throw IoError.
std::string slurp_file(const std::string& path, const char* what) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw IoError(std::string("submit: cannot read ") + what + " '" +
                      path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

int run_submit(const SubmitCliOptions& cli) {
    namespace json = service::json;

    service::wire::CircuitSource circuit;
    if (cli.circuit_spec) {
        circuit.builtin = *cli.circuit_spec;
    } else {
        circuit.deck = slurp_file(cli.deck_path, "deck");
    }
    circuit.noise = cli.noise;

    json::Value request{json::Object{}};
    request.set("op", "submit");
    request.set("circuit", circuit.to_json());
    if (cli.spec_json) {
        json::Value spec = json::parse(*cli.spec_json);
        if (cli.resume_path) {
            // Accept either the bare checkpoint document or a full
            // {"event":"checkpoint",...} line captured from the stream.
            json::Value doc =
                json::parse(slurp_file(*cli.resume_path, "checkpoint"));
            if (doc.find("event") != nullptr &&
                doc.find("checkpoint") != nullptr) {
                doc = doc.at("checkpoint");
            }
            spec.set("resume", std::move(doc));
        }
        // Validate the wire spec locally so a typo is a usage error here
        // rather than a rejected request there.
        request.set("spec", service::wire::spec_to_json(
                                service::wire::spec_from_json(spec)));
    }
    if (cli.failpoints) {
        request.set("failpoints", json::Value(*cli.failpoints));
    }
    if (cli.priority != 0) {
        request.set("priority", json::Value(cli.priority));
    }
    if (cli.deadline_s > 0.0) {
        request.set("deadline_s", json::Value(cli.deadline_s));
    }
    request.set("subscribe", json::Value(cli.follow));

    // Events may legitimately interleave ahead of the submit response on
    // a subscribed connection (the worker can even finish a small job
    // first), so the same collector runs during every request; a
    // terminal event seen early short-circuits wait_for_terminal.
    std::optional<json::Value> early_terminal;
    const auto on_event = [&](const json::Value& event) {
        if (cli.json_out) {
            std::cout << event.dump() << '\n' << std::flush;
        } else if (const json::Value* f = event.find("fraction")) {
            std::cerr << "\r  " << static_cast<int>(f->as_number() * 100)
                      << "%" << std::flush;
        } else if (event.find("done") != nullptr &&
                   event.find("total") != nullptr) {
            std::cerr << "\r  trial " << event.at("done").as_int() << '/'
                      << event.at("total").as_int() << std::flush;
        }
        const std::string& name = event.at("event").as_string();
        if (cli.checkpoint_path && name == "checkpoint") {
            if (const json::Value* cp = event.find("checkpoint")) {
                // Write-then-rename: a kill mid-write leaves the previous
                // complete checkpoint in place, never a torn file.
                const std::string tmp = *cli.checkpoint_path + ".tmp";
                {
                    std::ofstream out(tmp,
                                      std::ios::binary | std::ios::trunc);
                    out << cp->dump() << '\n';
                }
                std::rename(tmp.c_str(), cli.checkpoint_path->c_str());
            }
        }
        if (name == "done" || name == "failed" || name == "cancelled" ||
            name == "expired") {
            early_terminal = event;
        }
    };

    // Idempotent submit with retries: the key makes a resubmit after a
    // lost connection return the SAME job instead of double-running it.
    request.set("idempotency_key", service::idempotency_key(request));
    service::RetryPolicy policy;
    policy.attempts = cli.retries;
    std::unique_ptr<service::Client> client_ptr;
    json::Value reply;
    for (int attempt = 1;; ++attempt) {
        try {
            client_ptr = std::make_unique<service::Client>(
                cli.host, cli.port, cli.client);
            reply = client_ptr->request(request, on_event);
            break;
        } catch (const IoError&) {
            if (attempt >= policy.attempts) {
                throw;
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double>(policy.delay_s(attempt)));
        }
    }
    service::Client& client = *client_ptr;
    if (cli.json_out) {
        std::cout << reply.dump() << '\n' << std::flush;
    }
    if (!reply.at("ok").as_bool()) {
        if (!cli.json_out) {
            std::cerr << "nanosim submit: rejected: "
                      << reply.at("error").as_string() << '\n';
        }
        return 1;
    }
    const std::uint64_t id = reply.at("id").as_uint();
    if (!cli.json_out) {
        std::cout << "submitted job " << id << '\n';
    }
    if (!cli.follow) {
        return 0;
    }

    const json::Value terminal = early_terminal
                                     ? *early_terminal
                                     : client.wait_for_terminal(id, on_event);
    if (!cli.json_out) {
        std::cerr << '\r';
    }
    const std::string& outcome = terminal.at("event").as_string();

    if (outcome == "done" || outcome == "cancelled") {
        json::Value fetch{json::Object{}};
        fetch.set("op", "result");
        fetch.set("id", json::Value(static_cast<double>(id)));
        const json::Value result = client.request(fetch);
        if (cli.json_out) {
            std::cout << result.dump() << '\n' << std::flush;
        } else if (result.at("ok").as_bool()) {
            const json::Value& header =
                result.at("result").at("header");
            std::cout << "job " << id << ' ' << outcome << ": "
                      << header.at("kind").as_string() << " via "
                      << header.at("engine").as_string() << ", "
                      << header.at("elapsed_s").as_number() << " s\n";
        }
    } else if (!cli.json_out) {
        std::cout << "job " << id << ' ' << outcome;
        if (const json::Value* err = terminal.find("error")) {
            std::cout << ": " << err->as_string();
        }
        std::cout << '\n';
    }
    return outcome == "done" ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    // Environment-driven log threshold first, so parse/setup diagnostics
    // already honour it; --verbose below still overrides.
    log::set_level_from_env();
    try {
        // NANOSIM_FAILPOINTS arms injection sites before any verb runs;
        // --failpoints flags below layer on top.
        failpoints::arm_from_env();
    } catch (const SimError& e) {
        std::cerr << "nanosim: NANOSIM_FAILPOINTS: " << e.what() << '\n';
        return 2;
    }
    // Verb dispatch: "sweep" runs a campaign, "report" runs the deck's
    // cards and prints structured solver reports, "run" (or a bare deck
    // path, for compatibility) runs the deck's own analysis cards.
    int first = 1;
    bool sweep_verb = false;
    bool report_verb = false;
    bool serve_verb = false;
    bool submit_verb = false;
    if (argc > 1) {
        const std::string verb = argv[1];
        if (verb == "sweep") {
            sweep_verb = true;
            first = 2;
        } else if (verb == "run") {
            first = 2;
        } else if (verb == "report") {
            report_verb = true;
            first = 2;
        } else if (verb == "serve") {
            serve_verb = true;
            first = 2;
        } else if (verb == "submit") {
            submit_verb = true;
            first = 2;
        }
    }
    if (serve_verb) {
        const auto cli = parse_serve_args(argc, argv, first);
        if (!cli) {
            usage(std::cerr);
            return 2;
        }
        try {
            return run_serve(*cli);
        } catch (const SimError& e) {
            std::cerr << "nanosim: " << e.what() << '\n';
            return 1;
        }
    }
    if (submit_verb) {
        const auto cli = parse_submit_args(argc, argv, first);
        if (!cli) {
            usage(std::cerr);
            return 2;
        }
        try {
            return run_submit(*cli);
        } catch (const SimError& e) {
            std::cerr << "nanosim: " << e.what() << '\n';
            return 1;
        }
    }
    if (sweep_verb) {
        std::optional<SweepCliOptions> cli;
        try {
            cli = parse_sweep_args(argc, argv, first);
        } catch (const std::exception& e) { // bad --param/--threads values
            std::cerr << "nanosim: " << e.what() << '\n';
            usage(std::cerr);
            return 2;
        }
        if (!cli) {
            usage(std::cerr);
            return 2;
        }
        try {
            return run_sweep(*cli);
        } catch (const SimError& e) {
            std::cerr << "nanosim: " << e.what() << '\n';
            return 1;
        }
    }

    auto cli = parse_args(argc - (first - 1), argv + (first - 1));
    if (!cli) {
        usage(std::cerr);
        return 2;
    }
    cli->report = report_verb;
    try {
        if (cli->failpoints) {
            failpoints::arm_from_spec(*cli->failpoints);
        }
        start_telemetry(cli->trace_path, cli->metrics_path, cli->report);
        // One persistent session: every analysis below shares its cached
        // stamp pattern + symbolic factorisation (the run_deck path).
        SimSession session =
            cli->circuit_spec
                ? SimSession(refckt::builtin_circuit(*cli->circuit_spec))
                : SimSession::from_deck_file(cli->deck_path);
        if (cli->threads != 1) {
            // 0 = all cores (ExecutionPolicy semantics); results stay
            // bit-identical to the serial factor path by construction.
            session.set_factor_threads(
                cli->threads > 0
                    ? cli->threads
                    : runtime::ExecutionPolicy{}.resolved());
        }
        const std::string source =
            cli->circuit_spec ? *cli->circuit_spec : cli->deck_path;
        std::cout << "nanosim " << version_string() << " | " << source
                  << " | "
                  << session.circuit().device_count() << " devices, "
                  << session.circuit().num_nodes() << " nodes, "
                  << session.assembler().unknowns() << " unknowns\n";
        // Deck cards (or .op + .tran for built-in circuits) map onto
        // specs; --engine applies uniformly.
        std::vector<AnalysisSpec> specs;
        if (cli->circuit_spec) {
            OpSpec op;
            op.engine = cli->dc_engine;
            specs.emplace_back(std::move(op));
            TranSpec tran;
            tran.engine = cli->tran_engine;
            tran.t_stop = cli->tstop;
            tran.common.dt_init = cli->tstop / 500.0;
            specs.emplace_back(std::move(tran));
        } else {
            specs = SimSession::specs_from_deck(
                session.deck_analyses(), cli->dc_engine, cli->tran_engine);
        }
        if (specs.empty()) {
            std::cout << "deck has no analysis cards (.op/.dc/.tran); "
                         "nothing to do\n";
            return 0;
        }
        if (cli->tabulate) {
            for (AnalysisSpec& spec : specs) {
                std::visit([](auto& s) { s.common.tabulate = true; }, spec);
            }
        }
        if (cli->deadline_s > 0.0) {
            for (AnalysisSpec& spec : specs) {
                std::visit(
                    [&](auto& s) { s.common.deadline_s = cli->deadline_s; },
                    spec);
            }
        }
        if (cli->mc_batch > 0 || !cli->probes.empty()) {
            for (AnalysisSpec& spec : specs) {
                std::visit(
                    [&](auto& s) {
                        if constexpr (std::is_same_v<std::decay_t<decltype(s)>,
                                                     MonteCarloSpec>) {
                            if (cli->mc_batch > 0) {
                                s.batch = cli->mc_batch;
                            }
                            if (!cli->probes.empty()) {
                                s.probes = cli->probes;
                            }
                        }
                    },
                    spec);
            }
        }

        ProgressMeter meter;
        engines::AnalysisObserver observer;
        observer.on_progress = [&meter](double f) { meter.draw(f); };
        observer.on_step = [&meter](double, int accepted) {
            meter.items(accepted, "steps");
        };
        observer.on_trial = [&meter](int done, int total) {
            meter.items(done, "trials");
            if (total > 0) {
                meter.draw(static_cast<double>(done) / total);
            }
        };
        const engines::AnalysisObserver* obs =
            cli->progress ? &observer : nullptr;

        int rc = 0;
        int index = 0;
        for (const AnalysisSpec& spec : specs) {
            ++index;
            if (obs != nullptr) {
                meter.begin("analysis " + std::to_string(index));
            }
            AnalysisResult result;
            try {
                result = session.run(spec, obs);
            } catch (...) {
                // Erase the meter line so the error lands on a clean one.
                meter.end();
                throw;
            }
            meter.end();
            if (result.header.aborted) {
                // Deadline (or observer cancel) path: partial results are
                // still printed below, but the exit code flags the cut.
                std::cout << "\n* analysis " << index
                          << " ABORTED after " << std::setprecision(3)
                          << result.header.elapsed_s
                          << " s (deadline/cancel) — partial results\n";
                rc |= 1;
            }
            if (cli->report) {
                // Structured per-run solver report instead of waveforms.
                std::cout << "\n* analysis " << index << ": "
                          << result.report.pretty();
                continue;
            }
            if (std::holds_alternative<OpSpec>(spec)) {
                rc |= run_op(session, result, index);
            } else if (const auto* dc = std::get_if<DcSweepSpec>(&spec)) {
                rc |= run_dc(session, *cli, *dc, result, index);
            } else if (const auto* tran = std::get_if<TranSpec>(&spec)) {
                rc |= run_tran(*cli, *tran, result, index);
            }
        }
        write_telemetry(cli->trace_path, cli->metrics_path);
        return rc;
    } catch (const SimError& e) {
        std::cerr << "nanosim: " << e.what() << '\n';
        return 1;
    }
}
