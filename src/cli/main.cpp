// nanosim — command-line batch simulator.
//
//   nanosim [options] deck.cir
//
//   --engine swec|nr|mla|pwl   transient/DC engine (default: swec)
//   --csv PREFIX               write waveforms/sweeps to PREFIX_*.csv
//   --quiet                    suppress ASCII plots
//   --verbose                  raise log level to info
//   --version                  print version and exit
//
// Runs every analysis card in the deck (.op, .dc, .tran) with the
// selected engine and prints results in SPICE-batch style.  Exit code 0
// on success, 1 on simulation failure, 2 on usage errors.
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <variant>

#include "core/nanosim.hpp"

using namespace nanosim;

namespace {

struct CliOptions {
    std::string deck_path;
    DcEngine dc_engine = DcEngine::swec;
    TranEngine tran_engine = TranEngine::swec;
    std::string engine_name = "swec";
    std::optional<std::string> csv_prefix;
    bool quiet = false;
};

void usage(std::ostream& os) {
    os << "usage: nanosim [options] deck.cir\n"
          "  --engine swec|nr|mla|pwl   analysis engine (default swec)\n"
          "  --csv PREFIX               export results as PREFIX_*.csv\n"
          "  --quiet                    no ASCII plots\n"
          "  --verbose                  info-level logging\n"
          "  --version                  print version\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--version") {
            std::cout << "nanosim " << version_string() << '\n';
            std::exit(0);
        }
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--verbose") {
            log::set_level(log::Level::info);
        } else if (arg == "--engine") {
            if (++i >= argc) {
                return std::nullopt;
            }
            const std::string e = argv[i];
            opt.engine_name = e;
            if (e == "swec") {
                opt.dc_engine = DcEngine::swec;
                opt.tran_engine = TranEngine::swec;
            } else if (e == "nr") {
                opt.dc_engine = DcEngine::newton_raphson;
                opt.tran_engine = TranEngine::newton_raphson;
            } else if (e == "mla") {
                opt.dc_engine = DcEngine::mla;
                opt.tran_engine = TranEngine::swec; // no MLA transient
            } else if (e == "pwl") {
                opt.dc_engine = DcEngine::swec;
                opt.tran_engine = TranEngine::pwl;
            } else {
                return std::nullopt;
            }
        } else if (arg == "--csv") {
            if (++i >= argc) {
                return std::nullopt;
            }
            opt.csv_prefix = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return std::nullopt;
        } else if (opt.deck_path.empty()) {
            opt.deck_path = arg;
        } else {
            return std::nullopt;
        }
    }
    if (opt.deck_path.empty()) {
        return std::nullopt;
    }
    return opt;
}

void maybe_plot(const CliOptions& cli,
                const std::vector<analysis::Waveform>& waves,
                const std::string& title, const std::string& x_label) {
    if (cli.quiet || waves.empty()) {
        return;
    }
    analysis::PlotOptions plot;
    plot.title = title;
    plot.x_label = x_label;
    analysis::ascii_plot(std::cout, waves, plot);
}

int run_op(Simulator& sim, const CliOptions& cli, int index) {
    std::cout << "\n* analysis " << index << ": .op (engine "
              << cli.engine_name << ")\n";
    const auto op = sim.operating_point(cli.dc_engine);
    if (!op.converged) {
        std::cout << "  OPERATING POINT DID NOT CONVERGE after "
                  << op.iterations << " iterations (residual "
                  << op.residual << ")\n";
        return 1;
    }
    const auto v = sim.assembler().view(op.x);
    for (NodeId n = 1; n <= sim.circuit().num_nodes(); ++n) {
        std::cout << "  v(" << sim.circuit().node_name(n)
                  << ") = " << v(n) << " V\n";
    }
    std::cout << "  [" << op.iterations << " iterations/steps, "
              << op.flops.total() << " flops]\n";
    return 0;
}

int run_dc(Simulator& sim, const CliOptions& cli, const DcCard& card,
           int index) {
    std::cout << "\n* analysis " << index << ": .dc " << card.source
              << ' ' << card.start << " -> " << card.stop << " step "
              << card.step << " (engine " << cli.engine_name << ")\n";
    const auto sweep = sim.dc_sweep(card.source, card.start, card.stop,
                                    card.step, cli.dc_engine);
    std::cout << "  " << sweep.values.size() << " points, "
              << sweep.failures() << " failures, "
              << sweep.flops.total() << " flops\n";

    // One waveform per node, indexed by the sweep value.
    std::vector<analysis::Waveform> waves;
    for (NodeId n = 1; n <= sim.circuit().num_nodes(); ++n) {
        analysis::Waveform w("v(" + sim.circuit().node_name(n) + ")");
        for (std::size_t k = 0; k < sweep.values.size(); ++k) {
            if (w.empty() || sweep.values[k] > w.time().back()) {
                w.append(sweep.values[k],
                         sim.assembler().view(sweep.solutions[k])(n));
            }
        }
        waves.push_back(std::move(w));
    }
    maybe_plot(cli, waves, "DC sweep", card.source + " [V]");
    if (cli.csv_prefix) {
        const std::string path =
            *cli.csv_prefix + "_dc" + std::to_string(index) + ".csv";
        analysis::write_csv_file(path, waves, card.source);
        std::cout << "  wrote " << path << '\n';
    }
    return sweep.failures() == 0 ? 0 : 1;
}

int run_tran(Simulator& sim, const CliOptions& cli, const TranCard& card,
             int index) {
    std::cout << "\n* analysis " << index << ": .tran " << card.tstep
              << ' ' << card.tstop << " (engine " << cli.engine_name
              << ")\n";
    engines::SwecTranOptions opt;
    opt.t_stop = card.tstop;
    opt.dt_init = card.tstep;
    const auto res = sim.transient(opt, cli.tran_engine);
    std::cout << "  " << res.steps_accepted << " steps ("
              << res.steps_rejected << " rejected), "
              << res.nr_iterations << " nonlinear iterations, "
              << res.nonconverged_steps << " non-converged, "
              << res.flops.total() << " flops\n";
    maybe_plot(cli, res.node_waves, "transient", "t [s]");
    if (cli.csv_prefix) {
        const std::string path =
            *cli.csv_prefix + "_tran" + std::to_string(index) + ".csv";
        analysis::write_csv_file(path, res.node_waves);
        std::cout << "  wrote " << path << '\n';
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const auto cli = parse_args(argc, argv);
    if (!cli) {
        usage(std::cerr);
        return 2;
    }
    try {
        Simulator sim = Simulator::from_deck_file(cli->deck_path);
        std::cout << "nanosim " << version_string() << " | "
                  << cli->deck_path << " | "
                  << sim.circuit().device_count() << " devices, "
                  << sim.circuit().num_nodes() << " nodes, "
                  << sim.assembler().unknowns() << " unknowns\n";
        if (sim.deck_analyses().empty()) {
            std::cout << "deck has no analysis cards (.op/.dc/.tran); "
                         "nothing to do\n";
            return 0;
        }
        int rc = 0;
        int index = 0;
        for (const auto& card : sim.deck_analyses()) {
            ++index;
            if (std::holds_alternative<OpCard>(card)) {
                rc |= run_op(sim, *cli, index);
            } else if (const auto* dc = std::get_if<DcCard>(&card)) {
                rc |= run_dc(sim, *cli, *dc, index);
            } else if (const auto* tran = std::get_if<TranCard>(&card)) {
                rc |= run_tran(sim, *cli, *tran, index);
            }
        }
        return rc;
    } catch (const SimError& e) {
        std::cerr << "nanosim: " << e.what() << '\n';
        return 1;
    }
}
