#include "core/analysis_spec.hpp"

#include <cmath>

#include "linalg/vecops.hpp"

namespace nanosim {

const char* engine_name(DcEngine engine) noexcept {
    switch (engine) {
    case DcEngine::swec:
        return "swec";
    case DcEngine::newton_raphson:
        return "nr";
    case DcEngine::mla:
        return "mla";
    }
    return "?";
}

const char* engine_name(TranEngine engine) noexcept {
    switch (engine) {
    case TranEngine::swec:
        return "swec";
    case TranEngine::newton_raphson:
        return "nr";
    case TranEngine::pwl:
        return "pwl";
    }
    return "?";
}

const char* analysis_kind_name(AnalysisKind kind) noexcept {
    switch (kind) {
    case AnalysisKind::op:
        return "op";
    case AnalysisKind::dc_sweep:
        return "dc";
    case AnalysisKind::tran:
        return "tran";
    case AnalysisKind::monte_carlo:
        return "mc";
    case AnalysisKind::ensemble:
        return "em";
    }
    return "?";
}

linalg::Vector DcSweepSpec::values() const {
    if (step == 0.0 || (stop - start) * step < 0.0) {
        throw AnalysisError("DcSweepSpec '" + name +
                            "': inconsistent start/stop/step");
    }
    const auto count =
        static_cast<std::size_t>(std::abs((stop - start) / step)) + 1;
    return linalg::linspace(start, stop, count);
}

} // namespace nanosim
