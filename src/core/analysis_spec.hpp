// Nano-Sim — the typed analysis request/response pair.
//
// An AnalysisSpec is one analysis request: a std::variant over the five
// kinds the simulator runs (operating point, DC sweep, transient,
// Monte-Carlo, Euler-Maruyama ensemble), each carrying its engine
// selection plus the commonly tuned options factored out of the
// per-engine `*Options` structs.  A SimSession executes specs against
// one circuit and returns AnalysisResults — a uniform header (name,
// kind, engine, elapsed time, abort flag, solver-cache work) over the
// engine-native payload.
//
//     SimSession session = SimSession::from_deck_file("x.cir");
//     AnalysisResult tr = session.run(TranSpec{.t_stop = 1e-6});
//     tr.tran().node(session.circuit(), "out");        // typed payload
//     tr.header.solver.full_factors;                   // uniform header
//
// Power users still reach the engines directly (the benches do); the
// spec layer is the ergonomic, cache-sharing front door.
#ifndef NANOSIM_CORE_ANALYSIS_SPEC_HPP
#define NANOSIM_CORE_ANALYSIS_SPEC_HPP

#include <cstdint>
#include <string>
#include <variant>

#include "engines/em_engine.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/results.hpp"
#include "engines/tran_swec.hpp"
#include "linalg/dense.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"

namespace nanosim {

/// DC solver selection.
enum class DcEngine {
    swec,           ///< pseudo-transient SWEC (default; paper Sec. 5.1)
    newton_raphson, ///< plain NR (SPICE behaviour, incl. NDR failures)
    mla,            ///< Bhattacharya-Mazumder limited NR baseline
};

/// Transient solver selection.
enum class TranEngine {
    swec,           ///< SWEC (default; paper Sec. 3)
    newton_raphson, ///< SPICE3-like companion-model NR
    pwl,            ///< ACES-like piecewise linear
};

[[nodiscard]] const char* engine_name(DcEngine engine) noexcept;
[[nodiscard]] const char* engine_name(TranEngine engine) noexcept;

/// Options shared across analysis kinds, factored out of the per-engine
/// structs.  A zero means "use the engine's default" everywhere, so a
/// default-constructed CommonOptions reproduces each engine's historical
/// behaviour exactly.
struct CommonOptions {
    double abstol = 0.0;  ///< NR-family absolute voltage tolerance [V]
    double reltol = 0.0;  ///< NR-family relative tolerance
    double dt_init = 0.0; ///< transient first step [s]
    double dt_min = 0.0;  ///< transient step floor [s]
    double dt_max = 0.0;  ///< transient step ceiling [s]
    /// Opt-in tabulated chord-conductance models for the SWEC engines
    /// (devices/tabulated.hpp): cubic-Hermite lookups replace the
    /// closed-form transcendentals inside the default voltage range,
    /// exact fallback outside.  Tables build once per session solver
    /// cache and are shared across analyses / Monte-Carlo trials.
    bool tabulate = false;
    /// Wall-clock budget for the whole analysis [s]; 0 = none.  When the
    /// budget runs out the run is cancelled through the observer path and
    /// returns an `aborted` partial result (never an exception) — the
    /// same contract as a client-initiated cancel.
    double deadline_s = 0.0;
};

/// DC operating point.
struct OpSpec {
    std::string name = "op";
    DcEngine engine = DcEngine::swec;
    CommonOptions common;
};

/// DC sweep of a named V/I source over [start, stop] by `step`.
struct DcSweepSpec {
    std::string name = "dc";
    DcEngine engine = DcEngine::swec;
    CommonOptions common;
    std::string source;  ///< swept V or I source name
    double start = 0.0;
    double stop = 0.0;
    double step = 0.0;   ///< signed increment (sign must match stop-start)

    /// The sweep values (endpoints included).  Throws AnalysisError on an
    /// inconsistent start/stop/step triple.
    [[nodiscard]] linalg::Vector values() const;
};

/// Transient over [0, t_stop].
struct TranSpec {
    std::string name = "tran";
    TranEngine engine = TranEngine::swec;
    CommonOptions common;
    double t_stop = 0.0;       ///< horizon [s] (required, > 0)
    bool start_from_dc = true; ///< initial condition from a DC solve
    linalg::Vector initial;    ///< explicit IC (overrides start_from_dc)
    // --- SWEC-engine knobs (ignored by the NR/PWL baselines) ---
    double eps = 0.05;         ///< target local error ratio (eq. 10)
    bool adaptive = true;      ///< eq. (12) step control
    bool use_predictor = true; ///< eq. (5) Taylor predictor
    double growth_limit = 2.0; ///< max step growth per step
    double geq_floor = 1e-12;  ///< conductance floor [S]
    /// Noise realizations (Monte-Carlo internals; normally empty).
    mna::MnaAssembler::NoiseRealization noise;
};

/// Monte-Carlo noise analysis on one node (SWEC transient per trial).
struct MonteCarloSpec {
    std::string name = "mc";
    CommonOptions common;
    std::string node;          ///< observed node (required)
    double t_stop = 0.0;       ///< horizon [s] (required, > 0)
    int runs = 200;            ///< deterministic transients to run
    double noise_dt = 0.0;     ///< noise bandwidth grid; 0 = t_stop/200
    std::size_t grid_points = 201; ///< statistics sampling grid
    std::uint64_t seed = 1;
    /// false = serial driver consuming one RNG stream, every trial
    /// refactoring through the session's shared solver cache (the
    /// symbolic analysis is never repeated); true = the parallel driver
    /// (engines/parallel.hpp) with per-trial RNG streams — bit-identical
    /// for any `threads`, but a different seed contract than serial.
    bool parallel = false;
    int threads = 0; ///< parallel worker count; 0 = all cores
    /// Trial-batch width for the batched driver (engines/mc_batch.hpp):
    /// > 1 keeps that many trials in flight with batched evaluation,
    /// refactorisation, and shared-factor solves, bit-identical to the
    /// serial driver.  Takes precedence over `parallel`.  0/1 = serial.
    int batch = 0;
    /// Extra nodes to observe alongside `node` (per-node mean/stddev
    /// blocks in the result).
    std::vector<std::string> probes;
    /// Emit a resumable engines::McCheckpoint through the observer every
    /// N completed trials (0 = off).
    int checkpoint_every = 0;
    /// Resume a checkpointed campaign at resume->next_trial (see
    /// engines::McOptions::resume); the spec must describe the same
    /// campaign.
    std::shared_ptr<const engines::McCheckpoint> resume;
    /// Base options for the per-trial transient (t_stop/noise overridden
    /// per trial); lets a spec reproduce engines::McOptions exactly.
    engines::SwecTranOptions tran;
};

/// Euler-Maruyama stochastic ensemble on one node (paper Sec. 4).
struct EnsembleSpec {
    std::string name = "em";
    CommonOptions common;
    std::string node;          ///< observed node (required)
    double t_stop = 0.0;       ///< horizon [s] (required, > 0)
    double dt = 0.0;           ///< uniform SDE step [s] (required, > 0)
    int paths = 100;           ///< sample paths
    engines::EmScheme scheme = engines::EmScheme::explicit_em;
    bool swec_update = true;   ///< refresh chord conductances per step
    bool start_from_dc = false;
    linalg::Vector initial;
    std::uint64_t seed = 1;
    bool parallel = false;     ///< see MonteCarloSpec::parallel
    int threads = 0;           ///< parallel worker count; 0 = all cores
};

/// One analysis request.
using AnalysisSpec =
    std::variant<OpSpec, DcSweepSpec, TranSpec, MonteCarloSpec, EnsembleSpec>;

/// Which alternative an AnalysisSpec / AnalysisResult holds.
enum class AnalysisKind { op, dc_sweep, tran, monte_carlo, ensemble };

[[nodiscard]] const char* analysis_kind_name(AnalysisKind kind) noexcept;

/// Solver-cache work spent inside one analysis (deltas, not lifetime
/// totals of the session's cache).  full_factors counts symbolic +
/// pivoting factorisations — the quantity a persistent SimSession cache
/// drives to zero for repeat analyses on an unchanged circuit.
struct SolverWork {
    std::size_t full_factors = 0;
    std::size_t fast_refactors = 0;
    std::size_t dense_solves = 0;
    /// refactor() pivot-degradation fallbacks (subset of full_factors).
    std::size_t pivot_fallbacks = 0;
    /// Stamp-pattern misses that forced a re-freeze (exotic devices only).
    std::size_t pattern_rebuilds = 0;
    // ---- wall-time attribution of the per-step work (seconds) ----
    // analyze_s: symbolic analysis — pattern freeze, ordering selection,
    // stamp-program compile (previously unattributed, so the printed
    // split under-counted the first step); eval_s: device-model
    // evaluation (chord conductances / rates); stamp_s: in-place
    // restamps + step-bound diagonals; factor_s: LU factorisations/
    // refactorisations; solve_s: triangular solves.
    double analyze_s = 0.0;
    double eval_s = 0.0;
    double stamp_s = 0.0;
    double factor_s = 0.0;
    double solve_s = 0.0;
    /// Chord tables built during this run (0 = reused or disabled).
    std::size_t tables_built = 0;
    // ---- parallel-refactor shape (sparse flat path; defaults on dense).
    // Counts, not deltas: the schedule is a property of the factoriser,
    // not work accumulated during the run.
    std::size_t factor_threads = 1;    ///< workers on the factor path
    std::size_t factor_supernodes = 0; ///< supernodes in the level schedule
    std::size_t factor_levels = 0;     ///< levels in the schedule
    // ---- trial-batched Monte-Carlo (engines/mc_batch.hpp) ----
    std::size_t mc_batch_width = 0;      ///< frontier width (0 = not batched)
    std::size_t batched_solves = 0;      ///< steps solved via solve_batch
    std::size_t shared_factor_solves = 0; ///< solves that reused a lane factor
};

/// Uniform result header shared by every analysis kind.
struct AnalysisHeader {
    std::string name;          ///< spec name (echoed back)
    AnalysisKind kind = AnalysisKind::op;
    std::string engine;        ///< engine display name
    double elapsed_s = 0.0;    ///< wall-clock time of this run
    bool aborted = false;      ///< observer cancelled mid-run
    SolverWork solver;         ///< cache work spent in this run
    std::uint64_t cache_signature = 0; ///< stamp-pattern signature used
};

/// Typed response: uniform header + engine-native payload.  The typed
/// accessors throw AnalysisError when the payload kind does not match —
/// a misrouted result should fail loudly, not decay to a default.
struct AnalysisResult {
    using Payload =
        std::variant<engines::DcResult, engines::SweepResult,
                     engines::TranResult, engines::McResult,
                     engines::EmEnsembleResult>;

    AnalysisHeader header;
    Payload payload;
    /// Aggregated per-run diagnostics (obs/report.hpp): step-control
    /// outcomes, solver-cache work, time attribution, pool pressure.
    /// Machine-readable via report.to_json(); the CLI `report` verb
    /// pretty-prints it.
    obs::RunReport report;

    [[nodiscard]] const engines::DcResult& dc() const {
        return get<engines::DcResult>("DcResult");
    }
    [[nodiscard]] const engines::SweepResult& sweep() const {
        return get<engines::SweepResult>("SweepResult");
    }
    [[nodiscard]] const engines::TranResult& tran() const {
        return get<engines::TranResult>("TranResult");
    }
    [[nodiscard]] const engines::McResult& monte_carlo() const {
        return get<engines::McResult>("McResult");
    }
    [[nodiscard]] const engines::EmEnsembleResult& ensemble() const {
        return get<engines::EmEnsembleResult>("EmEnsembleResult");
    }

private:
    template <typename T>
    [[nodiscard]] const T& get(const char* what) const {
        if (const T* p = std::get_if<T>(&payload)) {
            return *p;
        }
        throw AnalysisError("AnalysisResult '" + header.name +
                            "' does not hold a " + what + " (kind is " +
                            analysis_kind_name(header.kind) + ")");
    }
};

} // namespace nanosim

#endif // NANOSIM_CORE_ANALYSIS_SPEC_HPP
