// Nano-Sim — umbrella header.
//
// Include this to get the whole public API: device models, netlist
// parser, MNA assembly, every engine, the stochastic toolkit, analysis
// utilities and the Simulator facade.
#ifndef NANOSIM_CORE_NANOSIM_HPP
#define NANOSIM_CORE_NANOSIM_HPP

#include "analysis/ascii_plot.hpp"
#include "analysis/csv.hpp"
#include "analysis/table.hpp"
#include "analysis/waveform.hpp"
#include "core/simulator.hpp"
#include "core/version.hpp"
#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/nanowire.hpp"
#include "devices/passives.hpp"
#include "devices/rtd.hpp"
#include "devices/rtt.hpp"
#include "devices/sources.hpp"
#include "devices/tv_conductor.hpp"
#include "devices/waveform.hpp"
#include "engines/dc_mla.hpp"
#include "engines/dc_nr.hpp"
#include "engines/dc_swec.hpp"
#include "engines/em_engine.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/ou_exact.hpp"
#include "engines/step_control.hpp"
#include "engines/tran_nr.hpp"
#include "engines/tran_pwl.hpp"
#include "engines/tran_swec.hpp"
#include "linalg/dense.hpp"
#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "linalg/vecops.hpp"
#include "mna/mna.hpp"
#include "netlist/circuit.hpp"
#include "netlist/parser.hpp"
#include "stochastic/ito.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"
#include "stochastic/wiener.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"
#include "util/log.hpp"

#endif // NANOSIM_CORE_NANOSIM_HPP
