#include "core/ref_circuits.hpp"

#include <cmath>
#include <numbers>
#include <string>

#include "devices/mosfet.hpp"
#include "devices/passives.hpp"
#include "devices/sources.hpp"
#include "devices/tv_conductor.hpp"

namespace nanosim::refckt {

namespace {

/// Scale an RTD's area: both current terms scale with device area.
RtdParams scaled_area(RtdParams p, double area) {
    p.a *= area;
    p.h *= area;
    return p;
}

/// Sinusoidally modulated conductance waveform for the Fig. 10 device.
class ModulatedG final : public Waveform {
public:
    ModulatedG(double g0, double depth, double freq)
        : g0_(g0), depth_(depth), freq_(freq) {}

    [[nodiscard]] double value(double t) const override {
        const double w = 2.0 * std::numbers::pi * freq_;
        return g0_ * (1.0 + depth_ * std::sin(w * t));
    }
    [[nodiscard]] double slope(double t) const override {
        const double w = 2.0 * std::numbers::pi * freq_;
        return g0_ * depth_ * w * std::cos(w * t);
    }
    [[nodiscard]] std::string describe() const override {
        return "G(t) modulated";
    }

private:
    double g0_, depth_, freq_;
};

} // namespace

Circuit rtd_divider(double r, const RtdParams& rtd) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, 0.0);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Rtd>("RTD1", out, k_ground, rtd);
    return ckt;
}

Circuit nanowire_divider(double r, const NanowireParams& nw) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, 0.0);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Nanowire>("NW1", out, k_ground, nw);
    return ckt;
}

Circuit fet_rtd_inverter(const InverterSpec& spec) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");

    ckt.add<VSource>("VDD", vdd, k_ground, spec.v_dd);
    ckt.add<VSource>(
        "VIN", in, k_ground,
        std::make_shared<PulseWave>(0.0, spec.v_dd, spec.period / 4.0,
                                    spec.edge, spec.edge,
                                    spec.period / 2.0 - spec.edge,
                                    spec.period));
    ckt.add<Rtd>("RTDL", vdd, out, scaled_area(spec.rtd, spec.load_area));
    ckt.add<Rtd>("RTDD", out, k_ground, spec.rtd);

    MosfetParams mos;
    mos.vth = 1.0;
    mos.k = 2e-3; // strong pull-down: sinks well past the RTD peak current
    mos.w = 20e-6;
    mos.l = 1e-6;
    ckt.add<Mosfet>("M1", out, in, k_ground, mos);
    ckt.add<Capacitor>("COUT", out, k_ground, spec.c_out);
    // Gate loading keeps the input node well-posed for all engines.
    ckt.add<Capacitor>("CIN", in, k_ground, spec.c_out / 10.0);
    return ckt;
}

Circuit rtd_dff(const DffSpec& spec) {
    Circuit ckt;
    const NodeId clk = ckt.node("clk");
    const NodeId d = ckt.node("d");
    const NodeId q = ckt.node("q");

    // Clock: rising edge completes at clock_delay + edge (~55 ns), then
    // every clock_period.
    const double width = spec.clock_period / 2.0 - spec.edge;
    ckt.add<VSource>("VCLK", clk, k_ground,
                     std::make_shared<PulseWave>(0.0, spec.v_high,
                                                 spec.clock_delay, spec.edge,
                                                 spec.edge, width,
                                                 spec.clock_period));
    // Data: low, switching high at d_switch_time.
    ckt.add<VSource>(
        "VD", d, k_ground,
        std::make_shared<PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0},
            {spec.d_switch_time, 0.0},
            {spec.d_switch_time + spec.edge, spec.v_high}}));

    // MOBILE pair biased by the clock: load RTD clk->q, drive RTD q->gnd.
    ckt.add<Rtd>("RTDL", clk, q, scaled_area(spec.rtd, spec.load_area));
    ckt.add<Rtd>("RTDD", q, k_ground, spec.rtd);

    // Data transistor unbalances the pair at the latching moment.
    MosfetParams mos;
    mos.vth = 1.0;
    mos.k = 2e-3; // strong pull-down: sinks well past the RTD peak current
    mos.w = 20e-6;
    mos.l = 1e-6;
    ckt.add<Mosfet>("M1", q, d, k_ground, mos);
    ckt.add<Capacitor>("CQ", q, k_ground, spec.c_q);
    ckt.add<Capacitor>("CD", d, k_ground, spec.c_q / 10.0);
    return ckt;
}

Circuit fig10_noisy_transistor(const Fig10Spec& spec) {
    Circuit ckt;
    const NodeId n1 = ckt.node("n1");
    ckt.add<ISource>("IDRV", k_ground, n1, spec.i_drive); // inject into n1
    ckt.add<Capacitor>("C1", n1, k_ground, spec.c);
    ckt.add<TimeVaryingConductor>(
        "GTV", n1, k_ground,
        std::make_shared<ModulatedG>(spec.g0, spec.depth, spec.freq));
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, n1, spec.sigma);
    return ckt;
}

Circuit noisy_rc(double r, double c, double i_dc, double sigma) {
    Circuit ckt;
    const NodeId n1 = ckt.node("n1");
    ckt.add<ISource>("I1", k_ground, n1, i_dc); // inject into n1
    ckt.add<Resistor>("R1", n1, k_ground, r);
    ckt.add<Capacitor>("C1", n1, k_ground, c);
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, n1, sigma);
    return ckt;
}

Circuit rtd_chain(const ChainSpec& spec) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>(
        "V1", in, k_ground,
        std::make_shared<PulseWave>(0.0, spec.v_high, spec.period / 4.0,
                                    spec.edge, spec.edge,
                                    spec.period / 2.0 - spec.edge,
                                    spec.period));
    NodeId prev = in;
    for (int i = 1; i <= spec.stages; ++i) {
        const std::string tag = std::to_string(i);
        const NodeId node = ckt.node("n" + tag);
        ckt.add<Resistor>("R" + tag, prev, node, spec.r);
        ckt.add<Rtd>("RTD" + tag, node, k_ground, spec.rtd);
        ckt.add<Capacitor>("C" + tag, node, k_ground, spec.c);
        prev = node;
    }
    return ckt;
}

Circuit rc_lowpass(double r, double c, double v_step) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, v_step);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Capacitor>("C1", out, k_ground, c);
    return ckt;
}

} // namespace nanosim::refckt
