#include "core/ref_circuits.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>
#include <vector>

#include "devices/mosfet.hpp"
#include "devices/passives.hpp"
#include "devices/sources.hpp"
#include "devices/tv_conductor.hpp"
#include "util/error.hpp"

namespace nanosim::refckt {

namespace {

/// Scale an RTD's area: both current terms scale with device area.
RtdParams scaled_area(RtdParams p, double area) {
    p.a *= area;
    p.h *= area;
    return p;
}

/// Sinusoidally modulated conductance waveform for the Fig. 10 device.
class ModulatedG final : public Waveform {
public:
    ModulatedG(double g0, double depth, double freq)
        : g0_(g0), depth_(depth), freq_(freq) {}

    [[nodiscard]] double value(double t) const override {
        const double w = 2.0 * std::numbers::pi * freq_;
        return g0_ * (1.0 + depth_ * std::sin(w * t));
    }
    [[nodiscard]] double slope(double t) const override {
        const double w = 2.0 * std::numbers::pi * freq_;
        return g0_ * depth_ * w * std::cos(w * t);
    }
    [[nodiscard]] std::string describe() const override {
        return "G(t) modulated";
    }

private:
    double g0_, depth_, freq_;
};

} // namespace

Circuit rtd_divider(double r, const RtdParams& rtd) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, 0.0);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Rtd>("RTD1", out, k_ground, rtd);
    return ckt;
}

Circuit nanowire_divider(double r, const NanowireParams& nw) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, 0.0);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Nanowire>("NW1", out, k_ground, nw);
    return ckt;
}

Circuit fet_rtd_inverter(const InverterSpec& spec) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");

    ckt.add<VSource>("VDD", vdd, k_ground, spec.v_dd);
    ckt.add<VSource>(
        "VIN", in, k_ground,
        std::make_shared<PulseWave>(0.0, spec.v_dd, spec.period / 4.0,
                                    spec.edge, spec.edge,
                                    spec.period / 2.0 - spec.edge,
                                    spec.period));
    ckt.add<Rtd>("RTDL", vdd, out, scaled_area(spec.rtd, spec.load_area));
    ckt.add<Rtd>("RTDD", out, k_ground, spec.rtd);

    MosfetParams mos;
    mos.vth = 1.0;
    mos.k = 2e-3; // strong pull-down: sinks well past the RTD peak current
    mos.w = 20e-6;
    mos.l = 1e-6;
    ckt.add<Mosfet>("M1", out, in, k_ground, mos);
    ckt.add<Capacitor>("COUT", out, k_ground, spec.c_out);
    // Gate loading keeps the input node well-posed for all engines.
    ckt.add<Capacitor>("CIN", in, k_ground, spec.c_out / 10.0);
    return ckt;
}

Circuit rtd_dff(const DffSpec& spec) {
    Circuit ckt;
    const NodeId clk = ckt.node("clk");
    const NodeId d = ckt.node("d");
    const NodeId q = ckt.node("q");

    // Clock: rising edge completes at clock_delay + edge (~55 ns), then
    // every clock_period.
    const double width = spec.clock_period / 2.0 - spec.edge;
    ckt.add<VSource>("VCLK", clk, k_ground,
                     std::make_shared<PulseWave>(0.0, spec.v_high,
                                                 spec.clock_delay, spec.edge,
                                                 spec.edge, width,
                                                 spec.clock_period));
    // Data: low, switching high at d_switch_time.
    ckt.add<VSource>(
        "VD", d, k_ground,
        std::make_shared<PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0},
            {spec.d_switch_time, 0.0},
            {spec.d_switch_time + spec.edge, spec.v_high}}));

    // MOBILE pair biased by the clock: load RTD clk->q, drive RTD q->gnd.
    ckt.add<Rtd>("RTDL", clk, q, scaled_area(spec.rtd, spec.load_area));
    ckt.add<Rtd>("RTDD", q, k_ground, spec.rtd);

    // Data transistor unbalances the pair at the latching moment.
    MosfetParams mos;
    mos.vth = 1.0;
    mos.k = 2e-3; // strong pull-down: sinks well past the RTD peak current
    mos.w = 20e-6;
    mos.l = 1e-6;
    ckt.add<Mosfet>("M1", q, d, k_ground, mos);
    ckt.add<Capacitor>("CQ", q, k_ground, spec.c_q);
    ckt.add<Capacitor>("CD", d, k_ground, spec.c_q / 10.0);
    return ckt;
}

Circuit fig10_noisy_transistor(const Fig10Spec& spec) {
    Circuit ckt;
    const NodeId n1 = ckt.node("n1");
    ckt.add<ISource>("IDRV", k_ground, n1, spec.i_drive); // inject into n1
    ckt.add<Capacitor>("C1", n1, k_ground, spec.c);
    ckt.add<TimeVaryingConductor>(
        "GTV", n1, k_ground,
        std::make_shared<ModulatedG>(spec.g0, spec.depth, spec.freq));
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, n1, spec.sigma);
    return ckt;
}

Circuit noisy_rc(double r, double c, double i_dc, double sigma) {
    Circuit ckt;
    const NodeId n1 = ckt.node("n1");
    ckt.add<ISource>("I1", k_ground, n1, i_dc); // inject into n1
    ckt.add<Resistor>("R1", n1, k_ground, r);
    ckt.add<Capacitor>("C1", n1, k_ground, c);
    ckt.add<NoiseCurrentSource>("NOISE1", k_ground, n1, sigma);
    return ckt;
}

Circuit rtd_chain(const ChainSpec& spec) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>(
        "V1", in, k_ground,
        std::make_shared<PulseWave>(0.0, spec.v_high, spec.period / 4.0,
                                    spec.edge, spec.edge,
                                    spec.period / 2.0 - spec.edge,
                                    spec.period));
    NodeId prev = in;
    for (int i = 1; i <= spec.stages; ++i) {
        const std::string tag = std::to_string(i);
        const NodeId node = ckt.node("n" + tag);
        ckt.add<Resistor>("R" + tag, prev, node, spec.r);
        ckt.add<Rtd>("RTD" + tag, node, k_ground, spec.rtd);
        ckt.add<Capacitor>("C" + tag, node, k_ground, spec.c);
        prev = node;
    }
    return ckt;
}

namespace {

/// Grid node name "n<r>_<c>".
std::string mesh_node(int r, int c) {
    return "n" + std::to_string(r) + "_" + std::to_string(c);
}

void require_grid_shape(const char* who, int rows, int cols) {
    if (rows < 1 || cols < 1) {
        throw NetlistError(std::string(who) +
                           ": rows and cols must be >= 1");
    }
}

} // namespace

Circuit rc_mesh(const MeshSpec& spec) {
    require_grid_shape("rc_mesh", spec.rows, spec.cols);
    Circuit ckt;
    const NodeId in = ckt.node("in");
    ckt.add<VSource>(
        "VIN", in, k_ground,
        std::make_shared<PulseWave>(0.0, spec.v_high, spec.period / 4.0,
                                    spec.edge, spec.edge,
                                    spec.period / 2.0 - spec.edge,
                                    spec.period));

    // Nodes first (row-major) so the NATURAL MNA order interleaves the
    // two grid directions — the worst case fill-reducing orderings fix.
    std::vector<NodeId> node(static_cast<std::size_t>(spec.rows) *
                             static_cast<std::size_t>(spec.cols));
    for (int r = 0; r < spec.rows; ++r) {
        for (int c = 0; c < spec.cols; ++c) {
            node[static_cast<std::size_t>(r * spec.cols + c)] =
                ckt.node(mesh_node(r, c));
        }
    }
    auto at = [&](int r, int c) {
        return node[static_cast<std::size_t>(r * spec.cols + c)];
    };

    ckt.add<Resistor>("RDRV", in, at(0, 0), spec.r);
    for (int r = 0; r < spec.rows; ++r) {
        for (int c = 0; c < spec.cols; ++c) {
            const std::string tag =
                std::to_string(r) + "_" + std::to_string(c);
            if (c + 1 < spec.cols) {
                ckt.add<Resistor>("RH" + tag, at(r, c), at(r, c + 1),
                                  spec.r);
            }
            if (r + 1 < spec.rows) {
                ckt.add<Resistor>("RV" + tag, at(r, c), at(r + 1, c),
                                  spec.r);
            }
            ckt.add<Capacitor>("C" + tag, at(r, c), k_ground, spec.c);
            const int flat = r * spec.cols + c;
            if (spec.rtd_stride > 0 && flat % spec.rtd_stride == 0) {
                ckt.add<Rtd>("RTD" + tag, at(r, c), k_ground, spec.rtd);
            }
        }
    }
    return ckt;
}

Circuit rc_mesh(int rows, int cols) {
    MeshSpec spec;
    spec.rows = rows;
    spec.cols = cols;
    return rc_mesh(spec);
}

Circuit power_grid(const PowerGridSpec& spec) {
    require_grid_shape("power_grid", spec.rows, spec.cols);
    if (spec.vias < 1) {
        throw NetlistError("power_grid: need >= 1 via");
    }
    if (spec.load_stride < 1) {
        throw NetlistError("power_grid: load_stride must be >= 1");
    }
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    ckt.add<VSource>("VDD", vdd, k_ground, spec.v_dd);

    std::vector<NodeId> node(static_cast<std::size_t>(spec.rows) *
                             static_cast<std::size_t>(spec.cols));
    for (int r = 0; r < spec.rows; ++r) {
        for (int c = 0; c < spec.cols; ++c) {
            node[static_cast<std::size_t>(r * spec.cols + c)] =
                ckt.node(mesh_node(r, c));
        }
    }
    auto at = [&](int r, int c) {
        return node[static_cast<std::size_t>(r * spec.cols + c)];
    };

    const int total = spec.rows * spec.cols;
    for (int r = 0; r < spec.rows; ++r) {
        for (int c = 0; c < spec.cols; ++c) {
            const std::string tag =
                std::to_string(r) + "_" + std::to_string(c);
            if (c + 1 < spec.cols) {
                ckt.add<Resistor>("RH" + tag, at(r, c), at(r, c + 1),
                                  spec.r_grid);
            }
            if (r + 1 < spec.rows) {
                ckt.add<Resistor>("RV" + tag, at(r, c), at(r + 1, c),
                                  spec.r_grid);
            }
            const int flat = r * spec.cols + c;
            if (flat % spec.load_stride == 0) {
                ckt.add<Rtd>("RTD" + tag, at(r, c), k_ground, spec.rtd);
                ckt.add<Capacitor>("C" + tag, at(r, c), k_ground, spec.c);
            }
        }
    }
    // Vias: evenly spread over the flat node index range.
    const int vias = std::min(spec.vias, total);
    for (int i = 0; i < vias; ++i) {
        const int flat = static_cast<int>(
            (static_cast<long long>(i) * total) / vias);
        ckt.add<Resistor>("RVIA" + std::to_string(i), vdd,
                          node[static_cast<std::size_t>(flat)], spec.r_via);
    }
    return ckt;
}

Circuit power_grid(int rows, int cols, int vias) {
    PowerGridSpec spec;
    spec.rows = rows;
    spec.cols = cols;
    spec.vias = vias;
    return power_grid(spec);
}

Circuit rc_lowpass(double r, double c, double v_step) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VSource>("V1", in, k_ground, v_step);
    ckt.add<Resistor>("R1", in, out, r);
    ckt.add<Capacitor>("C1", out, k_ground, c);
    return ckt;
}

namespace {

/// Parse "<R>x<C>[:extra]" grid dimensions; returns {rows, cols, extra}
/// with extra = -1 when absent.  Throws NetlistError on malformed specs.
struct GridDims {
    int rows = 0;
    int cols = 0;
    int extra = -1;
};

GridDims parse_grid_dims(const std::string& spec, const std::string& body) {
    GridDims d;
    try {
        const auto x = body.find('x');
        if (x == std::string::npos || x == 0) {
            throw std::invalid_argument("no 'x'");
        }
        std::size_t used = 0;
        d.rows = std::stoi(body.substr(0, x), &used);
        if (used != x) {
            throw std::invalid_argument("rows");
        }
        std::string rest = body.substr(x + 1);
        const auto colon = rest.find(':');
        if (colon != std::string::npos) {
            d.extra = std::stoi(rest.substr(colon + 1), &used);
            if (used != rest.size() - colon - 1 || d.extra < 0) {
                // Negative values would collide with the absent-field
                // sentinel (-1) and silently select the default.
                throw std::invalid_argument("extra");
            }
            rest = rest.substr(0, colon);
        }
        d.cols = std::stoi(rest, &used);
        if (used != rest.size()) {
            throw std::invalid_argument("cols");
        }
    } catch (const std::exception&) {
        throw NetlistError("bad circuit spec '" + spec +
                           "' (want mesh:RxC or grid:RxC[:vias])");
    }
    if (d.rows < 1 || d.cols < 1) {
        throw NetlistError("circuit spec " + spec + ": grid must be >= 1x1");
    }
    return d;
}

} // namespace

Circuit builtin_circuit(const std::string& spec) {
    const auto colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    if (colon == std::string::npos) {
        throw NetlistError("bad circuit spec '" + spec +
                           "' (want mesh:RxC or grid:RxC[:vias])");
    }
    const std::string body = spec.substr(colon + 1);
    if (kind == "mesh") {
        const GridDims d = parse_grid_dims(spec, body);
        if (d.extra != -1) {
            // A third field is a grid:RxC:vias spec typed with the wrong
            // kind; running a default mesh instead would be silent.
            throw NetlistError("circuit spec mesh takes RxC only (did you "
                               "mean grid:" + body + "?)");
        }
        return rc_mesh(d.rows, d.cols);
    }
    if (kind == "grid" || kind == "power_grid") {
        const GridDims d = parse_grid_dims(spec, body);
        // An explicit via count is passed through verbatim so an invalid
        // one (0, negative) is rejected by power_grid instead of being
        // silently replaced; only an ABSENT count defaults to 4.
        return power_grid(d.rows, d.cols, d.extra != -1 ? d.extra : 4);
    }
    throw NetlistError("unknown circuit kind '" + kind +
                       "' (have: mesh, grid)");
}

} // namespace nanosim::refckt
