// Nano-Sim — reference circuits from the paper's evaluation (Sec. 5).
//
// Every experiment circuit is built here exactly once and reused by the
// test suite, the bench harness and the examples:
//
//   * rtd_divider        — series R + RTD across a voltage source; the
//                          DC test vehicle of Fig. 7(a) and Table I.
//   * nanowire_divider   — series R + nanowire; Fig. 7(b).
//   * fet_rtd_inverter   — MOBILE-style inverter: two series RTDs with a
//                          parallel NMOS driver; Fig. 8.
//   * rtd_dff            — clocked MOBILE latch used as a D flip-flop;
//                          Fig. 9 (D switches at 300 ns, Q at the next
//                          rising clock edge, 350 ns).
//   * fig10_noisy_transistor — time-variant transistor conductance with
//                          parasitic RC and a white-noise input; the EM
//                          vs analytic experiment of Fig. 10 (0-1 ns,
//                          peak ~0.6 V).
//   * noisy_rc           — minimal RC + white-noise current (test bed for
//                          the stochastic engines; exact OU reference).
//   * rtd_chain          — ladder of N RC-loaded RTD stages driven by a
//                          pulse; the scaling workload of the speedup
//                          claim (Sec. 1: "20-30 times speedup").
//   * rc_lowpass         — plain RC divider for linear-engine validation.
#ifndef NANOSIM_CORE_REF_CIRCUITS_HPP
#define NANOSIM_CORE_REF_CIRCUITS_HPP

#include "devices/nanowire.hpp"
#include "devices/rtd.hpp"
#include "netlist/circuit.hpp"

namespace nanosim::refckt {

/// Series R + RTD divider: V1 drives "in"; the RTD sits between "out"
/// and ground.  Sweep V1 to trace the RTD I-V (Fig. 7(a)).
[[nodiscard]] Circuit rtd_divider(double r = 50.0,
                                  const RtdParams& rtd = RtdParams::date05());

/// Series R + nanowire divider (Fig. 7(b)); nanowire between "out" and
/// ground.
[[nodiscard]] Circuit nanowire_divider(double r = 1e3,
                                       const NanowireParams& nw = {});

/// MOBILE-style FET-RTD inverter (Fig. 8).  Nodes: "in", "out", "vdd".
/// The load RTD (vdd->out) has `load_area` times the drive RTD's area;
/// the NMOS pulls "out" low when "in" is high.  `v_dd` is the supply,
/// the input source "VIN" is a 0<->v_dd pulse with the given period.
struct InverterSpec {
    double v_dd = 5.0;
    double load_area = 3.0;
    double c_out = 100e-12;   ///< output node capacitance [F]
    double period = 200e-9;   ///< input pulse period [s]
    double edge = 5e-9;       ///< input rise/fall [s]
    RtdParams rtd = RtdParams::date05();
};
[[nodiscard]] Circuit fet_rtd_inverter(const InverterSpec& spec = {});

/// Clocked MOBILE latch / D flip-flop (Fig. 9).  Nodes: "clk", "d", "q".
/// Clock rising edges at 50 ns + k*100 ns; the D source switches at
/// `d_switch_time`.  Q is valid while the clock is high (return-to-zero
/// MOBILE logic) and INVERTS D, switching only on a rising clock edge.
struct DffSpec {
    double v_high = 5.0;
    double clock_period = 100e-9;
    double clock_delay = 45e-9;  ///< first rising edge ~50 ns
    double edge = 10e-9;
    double d_switch_time = 300e-9;
    double load_area = 3.0;
    double c_q = 100e-12;
    RtdParams rtd = RtdParams::date05();
};
[[nodiscard]] Circuit rtd_dff(const DffSpec& spec = {});

/// Fig. 10: node "n1" with parasitic C to ground, driven by a DC current,
/// loaded by a *time-variant* transistor conductance
/// G(t) = g0 (1 + depth sin(2 pi f t)) and perturbed by a white-noise
/// current of intensity sigma.  Defaults give a ~0.6 V peak in 0-1 ns.
struct Fig10Spec {
    double c = 0.4e-12;      ///< parasitic capacitance [F] (tau = 0.4 ns)
    double g0 = 1e-3;        ///< mean channel conductance [S]
    double depth = 0.35;     ///< conductance modulation depth
    double freq = 1.5e9;     ///< modulation frequency [Hz]
    double i_drive = 0.55e-3;///< drive current [A]
    double sigma = 2.5e-9;   ///< noise intensity [A sqrt(s)]
};
[[nodiscard]] Circuit fig10_noisy_transistor(const Fig10Spec& spec = {});

/// Minimal stochastic test bed: I_DC + R + C + white noise on node "n1".
[[nodiscard]] Circuit noisy_rc(double r = 1e3, double c = 1e-12,
                               double i_dc = 1e-3, double sigma = 5e-9);

/// Pulse-driven ladder of `stages` RTD stages ("n1".."n<stages>"), each
/// with a series resistor, an RTD to ground and a node capacitor — the
/// scaling workload for the speedup benchmarks.
struct ChainSpec {
    int stages = 8;
    double r = 100.0;
    double c = 100e-12;
    double v_high = 5.0;
    double period = 200e-9;
    double edge = 5e-9;
    RtdParams rtd = RtdParams::date05();
};
[[nodiscard]] Circuit rtd_chain(const ChainSpec& spec = {});

/// V1 -> R -> "out" -> C -> gnd; the canonical linear validation vehicle.
[[nodiscard]] Circuit rc_lowpass(double r = 1e3, double c = 1e-9,
                                 double v_step = 1.0);

// ---- 2-D mesh workloads (fill-reduction / ordering benchmarks) --------
//
// The RTD chains above are 1-D ladders whose MNA matrices are tridiagonal-
// ish; natural node order is already near-optimal for them.  Nanotech
// fabrics and power-distribution networks are 2-D meshes, where natural
// order costs O(n^1.5)+ LU fill and the fill-reducing orderings of
// linalg/ordering.hpp pay off.  Node naming: "n<row>_<col>", row-major.

/// rows x cols RC mesh: edge resistors along both grid directions, a
/// grounded capacitor at every node, an RTD load at every `rtd_stride`-th
/// node (0 disables), pulse-driven into the (0,0) corner through a series
/// resistor from node "in".
struct MeshSpec {
    int rows = 8;
    int cols = 8;
    double r = 100.0;        ///< edge resistance [ohm]
    double c = 10e-12;       ///< per-node grounded capacitance [F]
    int rtd_stride = 3;      ///< RTD load every k-th node (0 = none)
    double v_high = 2.0;     ///< pulse amplitude [V]
    double period = 200e-9;  ///< pulse period [s]
    double edge = 5e-9;      ///< pulse rise/fall [s]
    RtdParams rtd = RtdParams::date05();
};
[[nodiscard]] Circuit rc_mesh(const MeshSpec& spec = {});
[[nodiscard]] Circuit rc_mesh(int rows, int cols);

/// rows x cols power-distribution grid: low-resistance mesh, `vias`
/// connections from an ideal VDD rail ("vdd") down to evenly spaced grid
/// nodes, and an RTD load + decoupling capacitor at every
/// `load_stride`-th node (the nanotech fabric drawing current).
struct PowerGridSpec {
    int rows = 8;
    int cols = 8;
    int vias = 4;            ///< VDD-to-grid via count (clamped to nodes)
    double r_grid = 10.0;    ///< mesh segment resistance [ohm]
    double r_via = 1.0;      ///< via resistance [ohm]
    double v_dd = 2.0;       ///< supply [V]
    double c = 1e-12;        ///< decoupling capacitance per loaded node [F]
    int load_stride = 3;     ///< RTD load every k-th node (>= 1)
    RtdParams rtd = RtdParams::date05();
};
[[nodiscard]] Circuit power_grid(const PowerGridSpec& spec = {});
[[nodiscard]] Circuit power_grid(int rows, int cols, int vias);

/// Built-in workload generators by textual spec — "mesh:RxC" (RTD-loaded
/// RC mesh) and "grid:RxC[:vias]" / "power_grid:RxC[:vias]" (power-
/// distribution grid).  The one parser behind the CLI's --circuit flag
/// and the service wire protocol's "builtin" circuit source, so both
/// agree on what a spec string means.  Throws NetlistError on malformed
/// specs or unknown kinds.
[[nodiscard]] Circuit builtin_circuit(const std::string& spec);

} // namespace nanosim::refckt

#endif // NANOSIM_CORE_REF_CIRCUITS_HPP
