#include "core/sim_session.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "devices/sources.hpp"
#include "engines/dc_mla.hpp"
#include "engines/dc_nr.hpp"
#include "engines/dc_swec.hpp"
#include "engines/mc_batch.hpp"
#include "engines/parallel.hpp"
#include "engines/tran_nr.hpp"
#include "engines/tran_pwl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim {

namespace {

/// Keep the registry bounded: a session alternating between a handful of
/// circuit variants retains each variant's symbolic analysis, but a
/// topology explorer must not accumulate caches without limit.
constexpr std::size_t k_max_cached_patterns = 8;

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Apply the spec-level NR-family tolerance overrides onto a per-engine
/// options struct (zero = keep the engine's own default) — the one place
/// the CommonOptions contract maps onto abstol/reltol fields.
template <typename EngineOptions>
void apply_tolerances(const CommonOptions& common, EngineOptions& options) {
    if (common.abstol > 0.0) {
        options.abstol = common.abstol;
    }
    if (common.reltol > 0.0) {
        options.reltol = common.reltol;
    }
}

} // namespace

// ---- SourceWaveGuard --------------------------------------------------

SourceWaveGuard::SourceWaveGuard(Circuit& circuit, const std::string& source)
    : circuit_(&circuit), source_(source) {
    if (const Device* d = circuit.find(source); d != nullptr) {
        if (d->kind() == DeviceKind::vsource) {
            saved_ = circuit.get_mutable<VSource>(source).wave_ptr();
            is_vsource_ = true;
            return;
        }
        if (d->kind() == DeviceKind::isource) {
            saved_ = circuit.get_mutable<ISource>(source).wave_ptr();
            return;
        }
    }
    throw NetlistError("dc sweep: '" + source +
                       "' is not a V or I source");
}

SourceWaveGuard::~SourceWaveGuard() {
    if (is_vsource_) {
        circuit_->get_mutable<VSource>(source_).set_wave(saved_);
    } else {
        circuit_->get_mutable<ISource>(source_).set_wave(saved_);
    }
}

// ---- SimSession -------------------------------------------------------

namespace {

/// One stamp dry-run serving both the registry key and (via the stored
/// coords) the first SystemCache built for this assembly.
[[nodiscard]] std::uint64_t compute_signature(
    const mna::MnaAssembler& assembler,
    std::vector<std::pair<std::size_t, std::size_t>>& coords_out) {
    coords_out = mna::union_stamp_pattern(assembler);
    return mna::stamp_pattern_signature(
        static_cast<std::size_t>(assembler.unknowns()), coords_out);
}

} // namespace

SimSession::SimSession(Circuit circuit)
    : circuit_(std::make_unique<Circuit>(std::move(circuit))) {
    assembler_ = std::make_unique<mna::MnaAssembler>(*circuit_);
    signature_ = compute_signature(*assembler_, pattern_coords_);
}

SimSession::SimSession(ParsedDeck deck)
    : circuit_(std::make_unique<Circuit>(std::move(deck.circuit))),
      deck_analyses_(std::move(deck.analyses)) {
    assembler_ = std::make_unique<mna::MnaAssembler>(*circuit_);
    signature_ = compute_signature(*assembler_, pattern_coords_);
}

SimSession SimSession::from_deck(const std::string& deck_text) {
    SimSession session(parse_deck(deck_text));
    session.deck_text_ = deck_text;
    return session;
}

SimSession SimSession::from_deck_file(const std::string& path) {
    // Read the text ourselves (rather than parse_deck_file) so sweep()
    // can re-parse it for per-job circuits.
    std::ifstream in(path);
    if (!in) {
        throw IoError("cannot open deck file '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return from_deck(text.str());
}

void SimSession::reassemble() {
    const std::lock_guard<std::mutex> lock(*run_mutex_);
    assembler_ = std::make_unique<mna::MnaAssembler>(*circuit_);
    signature_ = compute_signature(*assembler_, pattern_coords_);
    // Caches for other signatures stay filed (their stale assembler
    // pointer is never dereferenced until solver_cache() rebinds them);
    // the current signature's cache is rebound eagerly so its next solve
    // is a numeric refactor against the fresh assembly.
    if (const auto it = caches_.find(signature_); it != caches_.end()) {
        if (it->second->unknowns() ==
            static_cast<std::size_t>(assembler_->unknowns())) {
            it->second->rebind(*assembler_);
        } else {
            caches_.erase(it); // signature collision across sizes
        }
    }
}

mna::SystemCache& SimSession::solver_cache() {
    const auto it = caches_.find(signature_);
    if (it != caches_.end()) {
        if (it->second->bound_assembler() != assembler_.get()) {
            it->second->rebind(*assembler_);
        }
        return *it->second;
    }
    if (caches_.size() >= k_max_cached_patterns) {
        // Evict an arbitrary non-current entry (map order is as good as
        // any here: evictions only happen to topology explorers).
        caches_.erase(caches_.begin());
    }
    // Hand the precomputed union pattern to the new cache when it is
    // still on hand for this assembly; the rare re-creation after an
    // eviction falls back to the cache's own dry-run.
    mna::SystemCache::Options options{};
    options.factor_threads = factor_threads_;
    auto cache =
        pattern_coords_.empty()
            ? std::make_unique<mna::SystemCache>(*assembler_, options)
            : std::make_unique<mna::SystemCache>(
                  *assembler_, options, std::move(pattern_coords_),
                  signature_);
    pattern_coords_.clear();
    mna::SystemCache& ref = *cache;
    caches_.emplace(signature_, std::move(cache));
    return ref;
}

void SimSession::set_factor_threads(int threads) {
    const std::lock_guard<std::mutex> lock(*run_mutex_);
    factor_threads_ = threads > 0 ? threads : 1;
    for (auto& [sig, cache] : caches_) {
        cache->set_factor_threads(factor_threads_);
    }
}

// ---- execution --------------------------------------------------------

AnalysisResult SimSession::run(const AnalysisSpec& spec,
                               const engines::AnalysisObserver* observer) {
    // Wall-clock deadline (CommonOptions::deadline_s): folded into the
    // observer's cancel slot BEFORE taking the session lock, so time
    // spent queueing behind another analysis counts against the budget.
    const double deadline_s =
        std::visit([](const auto& s) { return s.common.deadline_s; }, spec);
    engines::AnalysisObserver deadline_observer;
    if (deadline_s > 0.0) {
        deadline_observer = engines::with_deadline(
            observer,
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(deadline_s)));
        observer = &deadline_observer;
    }
    // Re-entrant run() from an observer callback would self-deadlock on
    // the non-recursive session mutex — fail loudly instead.
    if (running_thread_->load(std::memory_order_relaxed) ==
        std::this_thread::get_id()) {
        throw AnalysisError(
            "SimSession::run is not re-entrant: called again from the "
            "thread already running an analysis (observer callback?)");
    }
    const std::lock_guard<std::mutex> lock(*run_mutex_);
    running_thread_->store(std::this_thread::get_id(),
                           std::memory_order_relaxed);
    struct RunningReset {
        std::atomic<std::thread::id>* owner;
        ~RunningReset() {
            owner->store(std::thread::id{}, std::memory_order_relaxed);
        }
    } running_reset{running_thread_.get()};
    // One span per analysis — the root of the trace hierarchy (analysis
    // -> trial -> step -> eval/stamp/factor/solve).  Owned-name form:
    // the label carries the spec name.
    const obs::Span analysis_span(
        "analysis:" +
            std::visit([](const auto& s) { return s.name; }, spec),
        "session");
    const auto t0 = Clock::now();
    mna::SystemCache::Stats before{};
    if (const auto it = caches_.find(signature_); it != caches_.end()) {
        before = it->second->stats();
    }
    // Pool queue-wait deltas survive the short-lived pools the parallel
    // drivers own because the workers also bill the global registry.
    std::uint64_t pool_tasks0 = 0;
    std::uint64_t pool_wait_ns0 = 0;
    if (obs::metrics_enabled()) {
        pool_tasks0 = obs::metrics().counter("pool.tasks").value();
        pool_wait_ns0 = obs::metrics().counter("pool.queue_wait_ns").value();
    }

    AnalysisResult result = std::visit(
        [&](const auto& s) {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, OpSpec>) {
                return run_op(s, observer);
            } else if constexpr (std::is_same_v<T, DcSweepSpec>) {
                return run_dc_sweep(s, observer);
            } else if constexpr (std::is_same_v<T, TranSpec>) {
                return run_tran(s, observer);
            } else if constexpr (std::is_same_v<T, MonteCarloSpec>) {
                return run_monte_carlo(s, observer);
            } else {
                return run_ensemble(s, observer);
            }
        },
        spec);

    if (const auto it = caches_.find(signature_); it != caches_.end()) {
        const mna::SystemCache::Stats& after = it->second->stats();
        result.header.solver.full_factors =
            after.full_factors - before.full_factors;
        result.header.solver.fast_refactors =
            after.fast_refactors - before.fast_refactors;
        result.header.solver.dense_solves =
            after.dense_solves - before.dense_solves;
        result.header.solver.pivot_fallbacks =
            after.pivot_fallbacks - before.pivot_fallbacks;
        result.header.solver.pattern_rebuilds =
            after.pattern_rebuilds - before.pattern_rebuilds;
        result.header.solver.analyze_s = after.analyze_s - before.analyze_s;
        result.header.solver.eval_s = after.eval_s - before.eval_s;
        result.header.solver.stamp_s = after.stamp_s - before.stamp_s;
        result.header.solver.factor_s = after.factor_s - before.factor_s;
        result.header.solver.solve_s = after.solve_s - before.solve_s;
        result.header.solver.tables_built =
            after.tables_built - before.tables_built;
        result.header.solver.batched_solves =
            after.batched_solves - before.batched_solves;
        result.header.solver.shared_factor_solves =
            after.shared_factor_solves - before.shared_factor_solves;
        // Schedule shape: current values, not deltas (properties of the
        // factoriser, not accumulated work).
        result.header.solver.factor_threads = after.factor_threads;
        result.header.solver.factor_supernodes = after.factor_supernodes;
        result.header.solver.factor_levels = after.factor_levels;
    }
    result.header.cache_signature = signature_;
    result.header.elapsed_s = seconds_since(t0);

    // ---- RunReport: header + payload diagnostics in one flat record ---
    obs::RunReport& report = result.report;
    report.analysis = result.header.name;
    report.kind = analysis_kind_name(result.header.kind);
    report.engine = result.header.engine;
    report.elapsed_s = result.header.elapsed_s;
    report.aborted = result.header.aborted;
    const SolverWork& work = result.header.solver;
    report.full_factors = work.full_factors;
    report.fast_refactors = work.fast_refactors;
    report.dense_solves = work.dense_solves;
    report.pivot_fallbacks = work.pivot_fallbacks;
    report.pattern_rebuilds = work.pattern_rebuilds;
    report.tables_built = work.tables_built;
    report.analyze_s = work.analyze_s;
    report.eval_s = work.eval_s;
    report.stamp_s = work.stamp_s;
    report.factor_s = work.factor_s;
    report.solve_s = work.solve_s;
    report.factor_threads = work.factor_threads;
    report.factor_supernodes = work.factor_supernodes;
    report.factor_levels = work.factor_levels;
    report.mc_batch_width = work.mc_batch_width;
    report.batched_solves = work.batched_solves;
    report.shared_factor_solves = work.shared_factor_solves;
    report.cache_signature = result.header.cache_signature;
    std::visit(
        [&report](const auto& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, engines::DcResult>) {
                report.steps_accepted =
                    static_cast<std::uint64_t>(payload.iterations);
            } else if constexpr (std::is_same_v<T, engines::SweepResult>) {
                report.trials = payload.values.size();
                report.nr_iterations =
                    static_cast<std::uint64_t>(payload.total_iterations);
            } else if constexpr (std::is_same_v<T, engines::TranResult>) {
                report.steps_accepted =
                    static_cast<std::uint64_t>(payload.steps_accepted);
                report.steps_rejected =
                    static_cast<std::uint64_t>(payload.steps_rejected);
                report.nr_iterations =
                    static_cast<std::uint64_t>(payload.nr_iterations);
                report.nonconverged_steps =
                    static_cast<std::uint64_t>(payload.nonconverged_steps);
                report.bounds = payload.step_bounds;
                report.min_dt = payload.min_dt_used;
                report.max_dt = payload.max_dt_used;
                report.rescues = payload.rescues;
            } else if constexpr (std::is_same_v<T, engines::McResult>) {
                report.trials = payload.stats.paths();
                report.rescues = payload.rescues;
                report.failed_trials =
                    static_cast<std::uint64_t>(payload.failed_trials.size());
            } else {
                // EmEnsembleResult: completed paths.
                report.trials = payload.stats.paths();
            }
        },
        result.payload);
    if (obs::metrics_enabled()) {
        report.pool_tasks =
            obs::metrics().counter("pool.tasks").value() - pool_tasks0;
        report.pool_queue_wait_s =
            static_cast<double>(
                obs::metrics().counter("pool.queue_wait_ns").value() -
                pool_wait_ns0) *
            1e-9;
    }
    return result;
}

std::vector<AnalysisResult>
SimSession::run_all(const std::vector<AnalysisSpec>& specs,
                    const engines::AnalysisObserver* observer) {
    std::vector<AnalysisResult> results;
    results.reserve(specs.size());
    for (const AnalysisSpec& spec : specs) {
        results.push_back(run(spec, observer));
        if (results.back().header.aborted ||
            (observer != nullptr && observer->cancelled())) {
            break; // the partial result is the last element
        }
    }
    return results;
}

std::vector<AnalysisResult>
SimSession::run_deck(const engines::AnalysisObserver* observer) {
    return run_all(specs_from_deck(deck_analyses_), observer);
}

std::vector<AnalysisSpec>
SimSession::specs_from_deck(const std::vector<AnalysisCard>& cards,
                            DcEngine dc_engine, TranEngine tran_engine) {
    std::vector<AnalysisSpec> specs;
    specs.reserve(cards.size());
    for (const AnalysisCard& card : cards) {
        if (std::holds_alternative<OpCard>(card)) {
            OpSpec spec;
            spec.engine = dc_engine;
            specs.emplace_back(std::move(spec));
        } else if (const auto* dc = std::get_if<DcCard>(&card)) {
            DcSweepSpec spec;
            spec.engine = dc_engine;
            spec.source = dc->source;
            spec.start = dc->start;
            spec.stop = dc->stop;
            spec.step = dc->step;
            specs.emplace_back(std::move(spec));
        } else if (const auto* tran = std::get_if<TranCard>(&card)) {
            TranSpec spec;
            spec.engine = tran_engine;
            spec.t_stop = tran->tstop;
            spec.common.dt_init = tran->tstep;
            specs.emplace_back(std::move(spec));
        }
    }
    return specs;
}

AnalysisResult SimSession::run_op(const OpSpec& spec,
                                  const engines::AnalysisObserver* observer) {
    AnalysisResult out;
    out.header.name = spec.name;
    out.header.kind = AnalysisKind::op;
    out.header.engine = engine_name(spec.engine);

    engines::DcResult dc;
    switch (spec.engine) {
    case DcEngine::swec: {
        engines::SwecDcOptions o;
        if (spec.common.abstol > 0.0) {
            o.settle_tol = spec.common.abstol;
        }
        o.tables.enabled = spec.common.tabulate;
        dc = engines::solve_op_swec(*assembler_, o, 0.0, 1.0,
                                    &solver_cache(), observer);
        break;
    }
    case DcEngine::newton_raphson: {
        engines::NrOptions o;
        apply_tolerances(spec.common, o);
        dc = engines::solve_op_nr(*assembler_, o);
        break;
    }
    case DcEngine::mla: {
        engines::MlaOptions o;
        apply_tolerances(spec.common, o);
        dc = engines::solve_op_mla(*assembler_, o);
        break;
    }
    }
    out.header.aborted = dc.aborted;
    out.payload = std::move(dc);
    return out;
}

AnalysisResult
SimSession::run_dc_sweep(const DcSweepSpec& spec,
                         const engines::AnalysisObserver* observer) {
    AnalysisResult out;
    out.header.name = spec.name;
    out.header.kind = AnalysisKind::dc_sweep;
    out.header.engine = engine_name(spec.engine);

    const linalg::Vector values = spec.values();
    // Exception-safe restore of the swept stimulus: the engines park the
    // source at the last applied level; the guard puts the exact original
    // waveform object back on every exit path.
    const SourceWaveGuard guard(*circuit_, spec.source);

    engines::SweepResult sweep;
    switch (spec.engine) {
    case DcEngine::swec: {
        engines::SwecDcOptions o;
        if (spec.common.abstol > 0.0) {
            o.settle_tol = spec.common.abstol;
        }
        o.tables.enabled = spec.common.tabulate;
        sweep = engines::dc_sweep_swec(*circuit_, *assembler_, spec.source,
                                       values, o, observer, &solver_cache());
        break;
    }
    case DcEngine::newton_raphson: {
        engines::NrOptions o;
        apply_tolerances(spec.common, o);
        sweep = engines::dc_sweep_nr(*circuit_, *assembler_, spec.source,
                                     values, o, observer);
        break;
    }
    case DcEngine::mla: {
        engines::MlaOptions o;
        apply_tolerances(spec.common, o);
        sweep = engines::dc_sweep_mla(*circuit_, *assembler_, spec.source,
                                      values, o, observer);
        break;
    }
    }
    out.header.aborted = sweep.aborted;
    out.payload = std::move(sweep);
    return out;
}

AnalysisResult SimSession::run_tran(const TranSpec& spec,
                                    const engines::AnalysisObserver* observer) {
    AnalysisResult out;
    out.header.name = spec.name;
    out.header.kind = AnalysisKind::tran;
    out.header.engine = engine_name(spec.engine);

    engines::TranResult tran;
    switch (spec.engine) {
    case TranEngine::swec: {
        engines::SwecTranOptions o;
        o.t_stop = spec.t_stop;
        o.dt_init = spec.common.dt_init;
        o.dt_min = spec.common.dt_min;
        o.dt_max = spec.common.dt_max;
        o.eps = spec.eps;
        o.adaptive = spec.adaptive;
        o.use_predictor = spec.use_predictor;
        o.growth_limit = spec.growth_limit;
        o.geq_floor = spec.geq_floor;
        o.start_from_dc = spec.start_from_dc;
        o.initial = spec.initial;
        o.noise = spec.noise;
        o.tables.enabled = spec.common.tabulate;
        tran = engines::run_tran_swec(*assembler_, o, observer,
                                      &solver_cache());
        break;
    }
    case TranEngine::newton_raphson: {
        engines::NrTranOptions o;
        o.t_stop = spec.t_stop;
        o.dt_init = spec.common.dt_init;
        o.dt_min = spec.common.dt_min;
        o.dt_max = spec.common.dt_max;
        apply_tolerances(spec.common, o);
        o.start_from_dc = spec.start_from_dc;
        o.initial = spec.initial;
        o.noise = spec.noise;
        tran = engines::run_tran_nr(*assembler_, o, observer,
                                    &solver_cache());
        break;
    }
    case TranEngine::pwl: {
        engines::PwlTranOptions o;
        o.t_stop = spec.t_stop;
        o.dt_init = spec.common.dt_init;
        o.dt_min = spec.common.dt_min;
        o.dt_max = spec.common.dt_max;
        o.start_from_dc = spec.start_from_dc;
        o.initial = spec.initial;
        o.noise = spec.noise;
        tran = engines::run_tran_pwl(*assembler_, o, observer,
                                     &solver_cache());
        break;
    }
    }
    out.header.aborted = tran.aborted;
    out.payload = std::move(tran);
    return out;
}

AnalysisResult
SimSession::run_monte_carlo(const MonteCarloSpec& spec,
                            const engines::AnalysisObserver* observer) {
    AnalysisResult out;
    out.header.name = spec.name;
    out.header.kind = AnalysisKind::monte_carlo;
    out.header.engine = "swec"; // per-trial deterministic engine

    engines::McOptions mc;
    mc.runs = spec.runs;
    mc.t_stop = spec.t_stop;
    mc.noise_dt = spec.noise_dt;
    mc.grid_points = spec.grid_points;
    mc.tran = spec.tran;
    if (spec.common.dt_init > 0.0) {
        mc.tran.dt_init = spec.common.dt_init;
    }
    if (spec.common.dt_min > 0.0) {
        mc.tran.dt_min = spec.common.dt_min;
    }
    if (spec.common.dt_max > 0.0) {
        mc.tran.dt_max = spec.common.dt_max;
    }
    if (spec.common.tabulate) {
        mc.tran.tables.enabled = true;
    }
    mc.checkpoint_every = spec.checkpoint_every;
    mc.resume = spec.resume;
    const NodeId node = circuit_->find_node(spec.node);
    for (const std::string& probe : spec.probes) {
        mc.probe_nodes.push_back(circuit_->find_node(probe));
    }

    // Serial: every trial's transient refactors through the ONE session
    // cache — the symbolic analysis is never repeated.
    auto serial = [&] {
        stochastic::Rng rng(spec.seed);
        return engines::run_monte_carlo(*assembler_, mc, rng, node, observer,
                                        &solver_cache());
    };
    // Batched: a frontier of spec.batch trials through the session cache,
    // bit-identical to serial (takes precedence over `parallel`).
    auto batched = [&] {
        stochastic::Rng rng(spec.seed);
        return engines::run_monte_carlo_batched(*assembler_, mc, rng, node,
                                                spec.batch, observer,
                                                &solver_cache());
    };
    auto parallel = [&] {
        runtime::ExecutionPolicy policy;
        policy.threads = spec.threads;
        return engines::run_monte_carlo_parallel(*assembler_, mc, spec.seed,
                                                 node, policy, observer);
    };
    engines::McResult res = spec.batch > 1  ? batched()
                            : spec.parallel ? parallel()
                                            : serial();
    if (spec.batch > 1) {
        out.header.solver.mc_batch_width =
            static_cast<std::size_t>(std::min(spec.batch, spec.runs));
    }
    out.header.aborted = res.aborted;
    out.payload = std::move(res);
    return out;
}

AnalysisResult
SimSession::run_ensemble(const EnsembleSpec& spec,
                         const engines::AnalysisObserver* observer) {
    AnalysisResult out;
    out.header.name = spec.name;
    out.header.kind = AnalysisKind::ensemble;
    out.header.engine = spec.scheme == engines::EmScheme::explicit_em
                            ? "em-explicit"
                            : "em-implicit";

    engines::EmOptions o;
    o.t_stop = spec.t_stop;
    o.dt = spec.dt;
    o.scheme = spec.scheme;
    o.swec_update = spec.swec_update;
    o.start_from_dc = spec.start_from_dc;
    o.initial = spec.initial;
    const engines::EmEngine engine(*assembler_, o);
    const NodeId node = circuit_->find_node(spec.node);

    auto serial = [&] {
        stochastic::Rng rng(spec.seed);
        return engine.run_ensemble(spec.paths, rng, node, observer);
    };
    auto parallel = [&] {
        runtime::ExecutionPolicy policy;
        policy.threads = spec.threads;
        return engines::run_em_ensemble_parallel(engine, spec.paths,
                                                 spec.seed, node, policy,
                                                 observer);
    };
    engines::EmEnsembleResult res = spec.parallel ? parallel() : serial();
    out.header.aborted = res.aborted;
    out.payload = std::move(res);
    return out;
}

runtime::CampaignResult
SimSession::sweep(const runtime::JobPlan& plan,
                  const runtime::CampaignOptions& options) const {
    if (!deck_text_) {
        throw AnalysisError(
            "SimSession::sweep: needs a deck-constructed session "
            "(use runtime::run_sweep_campaign with a circuit factory "
            "for programmatic circuits)");
    }
    const std::string text = *deck_text_;
    return runtime::run_sweep_campaign(
        plan, [text]() { return parse_deck(text).circuit; }, deck_analyses_,
        options);
}

} // namespace nanosim
