// Nano-Sim — persistent simulation session: ONE circuit, MANY analyses,
// one solver cache.
//
// Nano-Sim's value proposition is running many analyses over one circuit
// (SWEC transients, DC sweeps, Monte-Carlo/EM ensembles — paper
// Secs. 3-5).  The engines each know how to reuse a frozen stamp pattern
// *within* an analysis (mna::SystemCache); SimSession extends that reuse
// *across* analyses: it owns the assembler plus persistent SystemCache
// instances keyed by stamp-pattern signature, so a DC sweep followed by
// a transient followed by 500 Monte-Carlo trials performs the symbolic
// LU analysis exactly once instead of re-freezing per call.
//
//     SimSession session = SimSession::from_deck_file("x.cir");
//     auto op   = session.run(OpSpec{});
//     auto dc   = session.run(DcSweepSpec{.source = "V1",
//                                         .start = 0, .stop = 5, .step = .1});
//     auto tran = session.run(TranSpec{.t_stop = 1e-6});   // same symbolic LU
//     auto all  = session.run_deck();                      // parsed cards
//
// Every run accepts an engines::AnalysisObserver for progress reporting
// and cooperative cancellation.  run()/run_all()/run_deck() are the
// single execution path shared by the Simulator facade (a thin shim),
// the CLI, and the sweep-campaign jobs.
#ifndef NANOSIM_CORE_SIM_SESSION_HPP
#define NANOSIM_CORE_SIM_SESSION_HPP

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_spec.hpp"
#include "engines/observer.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"
#include "netlist/parser.hpp"
#include "runtime/sweep.hpp"

namespace nanosim {

/// RAII restore of a named V/I source's stimulus: saves the shared
/// waveform handle at construction and puts the exact original object
/// back on destruction — on both success and throw.  This is what makes
/// SimSession's DC sweeps side-effect free on the circuit (the historic
/// facade left the source parked at the final sweep value).
class SourceWaveGuard {
public:
    /// Throws NetlistError when `source` is not a V or I source.
    SourceWaveGuard(Circuit& circuit, const std::string& source);
    ~SourceWaveGuard();

    SourceWaveGuard(const SourceWaveGuard&) = delete;
    SourceWaveGuard& operator=(const SourceWaveGuard&) = delete;

    /// The saved original stimulus (for tests).
    [[nodiscard]] const WaveformPtr& saved() const noexcept { return saved_; }

private:
    Circuit* circuit_;
    std::string source_;
    WaveformPtr saved_;
    bool is_vsource_ = false;
};

/// Persistent analysis session over one circuit.
class SimSession {
public:
    /// Take ownership of a programmatically built circuit.
    explicit SimSession(Circuit circuit);

    /// Build from deck text / file (see netlist/parser.hpp).  The deck's
    /// analysis cards become run_deck()'s work list; the deck text is
    /// kept so sweep() can mint per-job circuits.
    [[nodiscard]] static SimSession from_deck(const std::string& deck_text);
    [[nodiscard]] static SimSession from_deck_file(const std::string& path);

    [[nodiscard]] const Circuit& circuit() const noexcept {
        return *circuit_;
    }
    [[nodiscard]] Circuit& circuit() noexcept { return *circuit_; }
    [[nodiscard]] const mna::MnaAssembler& assembler() const {
        return *assembler_;
    }
    [[nodiscard]] const std::vector<AnalysisCard>& deck_analyses() const {
        return deck_analyses_;
    }

    /// Re-assemble after mutating the circuit.  A cache whose
    /// stamp-pattern signature still matches is rebound in place — its
    /// symbolic LU analysis survives a parameter tweak; caches for a
    /// changed pattern are dropped (their assembler is gone).
    void reassemble();

    // ---- the single execution path ----

    /// Run one analysis.  The observer (optional) receives progress /
    /// per-step / per-trial callbacks and may cancel cooperatively — a
    /// cancelled run returns its partial result with header.aborted set.
    /// When the spec's CommonOptions::deadline_s is positive the observer
    /// is additionally wrapped with engines::with_deadline, so a run that
    /// outlives its wall-clock budget (measured from this call, including
    /// any wait for the session lock) aborts through the same cooperative
    /// path.
    ///
    /// CONCURRENCY CONTRACT: run()/run_all()/run_deck()/reassemble()/
    /// set_factor_threads() serialize on an internal mutex — concurrent
    /// calls from DIFFERENT threads are safe (they share the persistent
    /// solver cache and block each other; the service worker pool relies
    /// on exactly this).  A RE-ENTRANT run() from the same thread (e.g.
    /// from inside an observer callback) would self-deadlock and throws
    /// AnalysisError instead.  Note dc-sweep specs swap the source
    /// stimulus under the same lock.
    [[nodiscard]] AnalysisResult
    run(const AnalysisSpec& spec,
        const engines::AnalysisObserver* observer = nullptr);

    /// Run a batch in order, sharing the session cache throughout.  A
    /// cancel stops after the current analysis (its partial result is the
    /// last element returned).
    [[nodiscard]] std::vector<AnalysisResult>
    run_all(const std::vector<AnalysisSpec>& specs,
            const engines::AnalysisObserver* observer = nullptr);

    /// Run the deck's analysis cards (.op/.dc/.tran) with default
    /// engines — run_all(specs_from_deck(deck_analyses())).
    [[nodiscard]] std::vector<AnalysisResult>
    run_deck(const engines::AnalysisObserver* observer = nullptr);

    /// Map parsed deck cards onto specs; the engine arguments let the
    /// CLI apply its --engine override uniformly.
    [[nodiscard]] static std::vector<AnalysisSpec>
    specs_from_deck(const std::vector<AnalysisCard>& cards,
                    DcEngine dc_engine = DcEngine::swec,
                    TranEngine tran_engine = TranEngine::swec);

    // ---- batch / parallel orchestration (runtime subsystem) ----

    /// Parameter-sweep campaign over the deck this session was parsed
    /// from (each grid point re-parses the deck and runs its cards in a
    /// per-job SimSession).  Requires deck-based construction; throws
    /// AnalysisError for programmatic circuits — use
    /// runtime::run_sweep_campaign with your own factory there.
    [[nodiscard]] runtime::CampaignResult
    sweep(const runtime::JobPlan& plan,
          const runtime::CampaignOptions& options = {}) const;

    // ---- solver-cache registry ----

    /// The persistent cache for the CURRENT stamp-pattern signature,
    /// created on first use.  Engines reached through run() all share it.
    [[nodiscard]] mna::SystemCache& solver_cache();

    /// Signature of the current assembly's union stamp pattern.
    [[nodiscard]] std::uint64_t pattern_signature() const noexcept {
        return signature_;
    }
    /// Number of live cached patterns (1 after any run; kept for tests).
    [[nodiscard]] std::size_t cache_count() const noexcept {
        return caches_.size();
    }

    /// Worker threads for the sparse numeric refactor (the CLI's
    /// --threads).  Applies to every live cache and to caches created
    /// later; 1 (the default) keeps the factor path serial.  Results
    /// are bit-identical at any value — the level schedule fixes the
    /// arithmetic, threads only change who executes it.
    void set_factor_threads(int threads);
    [[nodiscard]] int factor_threads() const noexcept {
        return factor_threads_;
    }

private:
    explicit SimSession(ParsedDeck deck);

    // Per-kind executors (all funnel through the shared cache).
    [[nodiscard]] AnalysisResult
    run_op(const OpSpec& spec, const engines::AnalysisObserver* observer);
    [[nodiscard]] AnalysisResult
    run_dc_sweep(const DcSweepSpec& spec,
                 const engines::AnalysisObserver* observer);
    [[nodiscard]] AnalysisResult
    run_tran(const TranSpec& spec, const engines::AnalysisObserver* observer);
    [[nodiscard]] AnalysisResult
    run_monte_carlo(const MonteCarloSpec& spec,
                    const engines::AnalysisObserver* observer);
    [[nodiscard]] AnalysisResult
    run_ensemble(const EnsembleSpec& spec,
                 const engines::AnalysisObserver* observer);

    /// Behind a stable pointer: the assembler and the cached solvers hold
    /// raw pointers into the circuit/assembler, so moving a SimSession
    /// must not relocate either object.
    std::unique_ptr<Circuit> circuit_;
    std::vector<AnalysisCard> deck_analyses_;
    /// Deck source text when parsed from a deck — sweep()'s factory
    /// re-parses it to mint per-job circuits.
    std::optional<std::string> deck_text_;
    std::unique_ptr<mna::MnaAssembler> assembler_;
    std::uint64_t signature_ = 0;
    /// Union pattern of the CURRENT assembly, computed alongside
    /// signature_ and handed to the first SystemCache built for it — the
    /// stamp dry-run is paid once per assembly, not once per consumer.
    std::vector<std::pair<std::size_t, std::size_t>> pattern_coords_;
    /// Persistent solver caches keyed by stamp-pattern signature.
    std::map<std::uint64_t, std::unique_ptr<mna::SystemCache>> caches_;
    /// Factor-path worker count applied to every cache (see
    /// set_factor_threads).
    int factor_threads_ = 1;
    /// Serializes run()/reassemble(): analyses share the caches above.
    /// Behind a pointer so sessions stay movable.
    std::unique_ptr<std::mutex> run_mutex_ = std::make_unique<std::mutex>();
    /// Thread currently inside run() (default id = none) — detects the
    /// self-deadlocking re-entrant call the concurrency contract forbids.
    std::unique_ptr<std::atomic<std::thread::id>> running_thread_ =
        std::make_unique<std::atomic<std::thread::id>>();
};

} // namespace nanosim

#endif // NANOSIM_CORE_SIM_SESSION_HPP
