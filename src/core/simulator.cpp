#include "core/simulator.hpp"

#include <fstream>
#include <sstream>

#include "linalg/vecops.hpp"
#include "util/error.hpp"

namespace nanosim {

Simulator::Simulator(Circuit circuit) : circuit_(std::move(circuit)) {
    assembler_ = std::make_unique<mna::MnaAssembler>(circuit_);
}

Simulator::Simulator(ParsedDeck deck)
    : circuit_(std::move(deck.circuit)),
      deck_analyses_(std::move(deck.analyses)) {
    assembler_ = std::make_unique<mna::MnaAssembler>(circuit_);
}

Simulator Simulator::from_deck(const std::string& deck_text) {
    Simulator sim(parse_deck(deck_text));
    sim.deck_text_ = deck_text;
    return sim;
}

Simulator Simulator::from_deck_file(const std::string& path) {
    // Read the text ourselves (rather than parse_deck_file) so sweep()
    // can re-parse it for per-job circuits.
    std::ifstream in(path);
    if (!in) {
        throw IoError("cannot open deck file '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return from_deck(text.str());
}

void Simulator::reassemble() {
    assembler_ = std::make_unique<mna::MnaAssembler>(circuit_);
}

engines::DcResult Simulator::operating_point(DcEngine engine) const {
    switch (engine) {
    case DcEngine::swec:
        return engines::solve_op_swec(*assembler_);
    case DcEngine::newton_raphson:
        return engines::solve_op_nr(*assembler_);
    case DcEngine::mla:
        return engines::solve_op_mla(*assembler_);
    }
    throw AnalysisError("operating_point: unknown engine");
}

engines::SweepResult Simulator::dc_sweep(const std::string& source,
                                         double start, double stop,
                                         double step, DcEngine engine) {
    if (step == 0.0 || (stop - start) * step < 0.0) {
        throw AnalysisError("dc_sweep: inconsistent start/stop/step");
    }
    const auto count =
        static_cast<std::size_t>(std::abs((stop - start) / step)) + 1;
    const linalg::Vector values = linalg::linspace(start, stop, count);
    switch (engine) {
    case DcEngine::swec:
        return engines::dc_sweep_swec(circuit_, source, values);
    case DcEngine::newton_raphson:
        return engines::dc_sweep_nr(circuit_, source, values);
    case DcEngine::mla:
        return engines::dc_sweep_mla(circuit_, source, values);
    }
    throw AnalysisError("dc_sweep: unknown engine");
}

engines::TranResult
Simulator::transient(const engines::SwecTranOptions& options,
                     TranEngine engine) const {
    switch (engine) {
    case TranEngine::swec:
        return engines::run_tran_swec(*assembler_, options);
    case TranEngine::newton_raphson: {
        engines::NrTranOptions nr;
        nr.t_stop = options.t_stop;
        nr.dt_init = options.dt_init;
        nr.dt_min = options.dt_min;
        nr.dt_max = options.dt_max;
        nr.start_from_dc = options.start_from_dc;
        nr.initial = options.initial;
        nr.noise = options.noise;
        return engines::run_tran_nr(*assembler_, nr);
    }
    case TranEngine::pwl: {
        engines::PwlTranOptions pwl;
        pwl.t_stop = options.t_stop;
        pwl.dt_init = options.dt_init;
        pwl.dt_min = options.dt_min;
        pwl.dt_max = options.dt_max;
        pwl.start_from_dc = options.start_from_dc;
        pwl.initial = options.initial;
        pwl.noise = options.noise;
        return engines::run_tran_pwl(*assembler_, pwl);
    }
    }
    throw AnalysisError("transient: unknown engine");
}

engines::EmEnsembleResult
Simulator::stochastic_ensemble(const engines::EmOptions& options, int paths,
                               const std::string& node,
                               std::uint64_t seed) const {
    const engines::EmEngine engine(*assembler_, options);
    stochastic::Rng rng(seed);
    return engine.run_ensemble(paths, rng, circuit_.find_node(node));
}

engines::McResult Simulator::monte_carlo(const engines::McOptions& options,
                                         const std::string& node,
                                         std::uint64_t seed) const {
    stochastic::Rng rng(seed);
    return engines::run_monte_carlo(*assembler_, options, rng,
                                    circuit_.find_node(node));
}

runtime::CampaignResult
Simulator::sweep(const runtime::JobPlan& plan,
                 const runtime::CampaignOptions& options) const {
    if (!deck_text_) {
        throw AnalysisError(
            "Simulator::sweep: needs a deck-constructed simulator "
            "(use runtime::run_sweep_campaign with a circuit factory "
            "for programmatic circuits)");
    }
    const std::string text = *deck_text_;
    return runtime::run_sweep_campaign(
        plan, [text]() { return parse_deck(text).circuit; }, deck_analyses_,
        options);
}

engines::EmEnsembleResult
Simulator::ensemble(const engines::EmOptions& options, int paths,
                    const std::string& node, std::uint64_t seed,
                    const runtime::ExecutionPolicy& policy) const {
    const engines::EmEngine engine(*assembler_, options);
    return engines::run_em_ensemble_parallel(engine, paths, seed,
                                             circuit_.find_node(node), policy);
}

engines::McResult
Simulator::monte_carlo_parallel(const engines::McOptions& options,
                                const std::string& node, std::uint64_t seed,
                                const runtime::ExecutionPolicy& policy) const {
    return engines::run_monte_carlo_parallel(
        *assembler_, options, seed, circuit_.find_node(node), policy);
}

} // namespace nanosim
