#include "core/simulator.hpp"

#include <utility>
#include <variant>

#include "util/error.hpp"

namespace nanosim {

namespace {

/// Move the typed payload out of an AnalysisResult (facade callers get
/// engine-native types; copying a mesh transient's waveforms would be
/// wasteful).
template <typename T>
[[nodiscard]] T take(AnalysisResult&& result) {
    if (T* p = std::get_if<T>(&result.payload)) {
        return std::move(*p);
    }
    throw AnalysisError("Simulator: unexpected analysis payload kind");
}

} // namespace

engines::DcResult Simulator::operating_point(DcEngine engine) const {
    OpSpec spec;
    spec.engine = engine;
    return take<engines::DcResult>(session_.run(spec));
}

engines::SweepResult Simulator::dc_sweep(const std::string& source,
                                         double start, double stop,
                                         double step, DcEngine engine) {
    DcSweepSpec spec;
    spec.engine = engine;
    spec.source = source;
    spec.start = start;
    spec.stop = stop;
    spec.step = step;
    return take<engines::SweepResult>(session_.run(spec));
}

engines::TranResult
Simulator::transient(const engines::SwecTranOptions& options,
                     TranEngine engine) const {
    TranSpec spec;
    spec.engine = engine;
    spec.t_stop = options.t_stop;
    spec.common.dt_init = options.dt_init;
    spec.common.dt_min = options.dt_min;
    spec.common.dt_max = options.dt_max;
    spec.eps = options.eps;
    spec.adaptive = options.adaptive;
    spec.use_predictor = options.use_predictor;
    spec.growth_limit = options.growth_limit;
    spec.geq_floor = options.geq_floor;
    spec.start_from_dc = options.start_from_dc;
    spec.initial = options.initial;
    spec.noise = options.noise;
    return take<engines::TranResult>(session_.run(spec));
}

engines::EmEnsembleResult
Simulator::stochastic_ensemble(const engines::EmOptions& options, int paths,
                               const std::string& node,
                               std::uint64_t seed) const {
    EnsembleSpec spec;
    spec.node = node;
    spec.t_stop = options.t_stop;
    spec.dt = options.dt;
    spec.scheme = options.scheme;
    spec.swec_update = options.swec_update;
    spec.start_from_dc = options.start_from_dc;
    spec.initial = options.initial;
    spec.paths = paths;
    spec.seed = seed;
    spec.parallel = false; // serial: the historical facade contract
    return take<engines::EmEnsembleResult>(session_.run(spec));
}

engines::McResult Simulator::monte_carlo(const engines::McOptions& options,
                                         const std::string& node,
                                         std::uint64_t seed) const {
    MonteCarloSpec spec;
    spec.node = node;
    spec.t_stop = options.t_stop;
    spec.runs = options.runs;
    spec.noise_dt = options.noise_dt;
    spec.grid_points = options.grid_points;
    spec.tran = options.tran;
    spec.seed = seed;
    spec.parallel = false; // serial: one shared solver cache across trials
    return take<engines::McResult>(session_.run(spec));
}

engines::EmEnsembleResult
Simulator::ensemble(const engines::EmOptions& options, int paths,
                    const std::string& node, std::uint64_t seed,
                    const runtime::ExecutionPolicy& policy) const {
    EnsembleSpec spec;
    spec.node = node;
    spec.t_stop = options.t_stop;
    spec.dt = options.dt;
    spec.scheme = options.scheme;
    spec.swec_update = options.swec_update;
    spec.start_from_dc = options.start_from_dc;
    spec.initial = options.initial;
    spec.paths = paths;
    spec.seed = seed;
    spec.parallel = true;
    spec.threads = policy.threads;
    return take<engines::EmEnsembleResult>(session_.run(spec));
}

engines::McResult
Simulator::monte_carlo_parallel(const engines::McOptions& options,
                                const std::string& node, std::uint64_t seed,
                                const runtime::ExecutionPolicy& policy) const {
    MonteCarloSpec spec;
    spec.node = node;
    spec.t_stop = options.t_stop;
    spec.runs = options.runs;
    spec.noise_dt = options.noise_dt;
    spec.grid_points = options.grid_points;
    spec.tran = options.tran;
    spec.seed = seed;
    spec.parallel = true;
    spec.threads = policy.threads;
    return take<engines::McResult>(session_.run(spec));
}

} // namespace nanosim
