#include "core/simulator.hpp"

#include "linalg/vecops.hpp"
#include "util/error.hpp"

namespace nanosim {

Simulator::Simulator(Circuit circuit) : circuit_(std::move(circuit)) {
    assembler_ = std::make_unique<mna::MnaAssembler>(circuit_);
}

Simulator::Simulator(ParsedDeck deck)
    : circuit_(std::move(deck.circuit)),
      deck_analyses_(std::move(deck.analyses)) {
    assembler_ = std::make_unique<mna::MnaAssembler>(circuit_);
}

Simulator Simulator::from_deck(const std::string& deck_text) {
    return Simulator(parse_deck(deck_text));
}

Simulator Simulator::from_deck_file(const std::string& path) {
    return Simulator(parse_deck_file(path));
}

void Simulator::reassemble() {
    assembler_ = std::make_unique<mna::MnaAssembler>(circuit_);
}

engines::DcResult Simulator::operating_point(DcEngine engine) const {
    switch (engine) {
    case DcEngine::swec:
        return engines::solve_op_swec(*assembler_);
    case DcEngine::newton_raphson:
        return engines::solve_op_nr(*assembler_);
    case DcEngine::mla:
        return engines::solve_op_mla(*assembler_);
    }
    throw AnalysisError("operating_point: unknown engine");
}

engines::SweepResult Simulator::dc_sweep(const std::string& source,
                                         double start, double stop,
                                         double step, DcEngine engine) {
    if (step == 0.0 || (stop - start) * step < 0.0) {
        throw AnalysisError("dc_sweep: inconsistent start/stop/step");
    }
    const auto count =
        static_cast<std::size_t>(std::abs((stop - start) / step)) + 1;
    const linalg::Vector values = linalg::linspace(start, stop, count);
    switch (engine) {
    case DcEngine::swec:
        return engines::dc_sweep_swec(circuit_, source, values);
    case DcEngine::newton_raphson:
        return engines::dc_sweep_nr(circuit_, source, values);
    case DcEngine::mla:
        return engines::dc_sweep_mla(circuit_, source, values);
    }
    throw AnalysisError("dc_sweep: unknown engine");
}

engines::TranResult
Simulator::transient(const engines::SwecTranOptions& options,
                     TranEngine engine) const {
    switch (engine) {
    case TranEngine::swec:
        return engines::run_tran_swec(*assembler_, options);
    case TranEngine::newton_raphson: {
        engines::NrTranOptions nr;
        nr.t_stop = options.t_stop;
        nr.dt_init = options.dt_init;
        nr.dt_min = options.dt_min;
        nr.dt_max = options.dt_max;
        nr.start_from_dc = options.start_from_dc;
        nr.initial = options.initial;
        nr.noise = options.noise;
        return engines::run_tran_nr(*assembler_, nr);
    }
    case TranEngine::pwl: {
        engines::PwlTranOptions pwl;
        pwl.t_stop = options.t_stop;
        pwl.dt_init = options.dt_init;
        pwl.dt_min = options.dt_min;
        pwl.dt_max = options.dt_max;
        pwl.start_from_dc = options.start_from_dc;
        pwl.initial = options.initial;
        pwl.noise = options.noise;
        return engines::run_tran_pwl(*assembler_, pwl);
    }
    }
    throw AnalysisError("transient: unknown engine");
}

engines::EmEnsembleResult
Simulator::stochastic_ensemble(const engines::EmOptions& options, int paths,
                               const std::string& node,
                               std::uint64_t seed) const {
    const engines::EmEngine engine(*assembler_, options);
    stochastic::Rng rng(seed);
    return engine.run_ensemble(paths, rng, circuit_.find_node(node));
}

engines::McResult Simulator::monte_carlo(const engines::McOptions& options,
                                         const std::string& node,
                                         std::uint64_t seed) const {
    stochastic::Rng rng(seed);
    return engines::run_monte_carlo(*assembler_, options, rng,
                                    circuit_.find_node(node));
}

} // namespace nanosim
