// Nano-Sim — top-level simulator facade.
//
// One object that owns a circuit (built programmatically or parsed from a
// SPICE-like deck), assembles it once, and exposes every analysis the
// library implements behind a single engine-selection enum:
//
//     nanosim::Simulator sim = nanosim::Simulator::from_deck_file("x.cir");
//     auto tran = sim.transient({.t_stop = 1e-6});             // SWEC
//     auto tran_spice = sim.transient({.t_stop = 1e-6},
//                                     nanosim::DcEngine::newton_raphson);
//
// The facade is a convenience layer: everything it does is available from
// the engines directly, and power users (the benches) use those APIs.
#ifndef NANOSIM_CORE_SIMULATOR_HPP
#define NANOSIM_CORE_SIMULATOR_HPP

#include <memory>
#include <optional>
#include <string>

#include "engines/dc_mla.hpp"
#include "engines/dc_nr.hpp"
#include "engines/dc_swec.hpp"
#include "engines/em_engine.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/results.hpp"
#include "engines/parallel.hpp"
#include "engines/tran_nr.hpp"
#include "engines/tran_pwl.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"
#include "netlist/parser.hpp"
#include "runtime/sweep.hpp"

namespace nanosim {

/// DC solver selection.
enum class DcEngine {
    swec,           ///< pseudo-transient SWEC (default; paper Sec. 5.1)
    newton_raphson, ///< plain NR (SPICE behaviour, incl. NDR failures)
    mla,            ///< Bhattacharya-Mazumder limited NR baseline
};

/// Transient solver selection.
enum class TranEngine {
    swec,           ///< SWEC (default; paper Sec. 3)
    newton_raphson, ///< SPICE3-like companion-model NR
    pwl,            ///< ACES-like piecewise linear
};

/// Facade over circuit + assembler + engines.
class Simulator {
public:
    /// Take ownership of a programmatically built circuit.
    explicit Simulator(Circuit circuit);

    /// Build from deck text / file (see netlist/parser.hpp for grammar).
    [[nodiscard]] static Simulator from_deck(const std::string& deck_text);
    [[nodiscard]] static Simulator from_deck_file(const std::string& path);

    [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }
    [[nodiscard]] Circuit& circuit() noexcept { return circuit_; }
    [[nodiscard]] const mna::MnaAssembler& assembler() const {
        return *assembler_;
    }

    /// Analyses requested by the deck (.op/.dc/.tran cards), if parsed.
    [[nodiscard]] const std::vector<AnalysisCard>& deck_analyses() const {
        return deck_analyses_;
    }

    /// Re-assemble after mutating the circuit (source swaps etc.).
    void reassemble();

    // ---- analyses ----

    /// DC operating point with the selected engine.
    [[nodiscard]] engines::DcResult
    operating_point(DcEngine engine = DcEngine::swec) const;

    /// DC sweep of a named V/I source.
    [[nodiscard]] engines::SweepResult
    dc_sweep(const std::string& source, double start, double stop,
             double step, DcEngine engine = DcEngine::swec);

    /// Transient with the selected engine.  For non-SWEC engines the
    /// SWEC-specific options map onto the equivalents (dt limits, IC).
    [[nodiscard]] engines::TranResult
    transient(const engines::SwecTranOptions& options,
              TranEngine engine = TranEngine::swec) const;

    /// Euler-Maruyama stochastic ensemble on a node.
    [[nodiscard]] engines::EmEnsembleResult
    stochastic_ensemble(const engines::EmOptions& options, int paths,
                        const std::string& node,
                        std::uint64_t seed = 1) const;

    /// Monte-Carlo baseline on a node.
    [[nodiscard]] engines::McResult
    monte_carlo(const engines::McOptions& options, const std::string& node,
                std::uint64_t seed = 1) const;

    // ---- batch / parallel orchestration (runtime subsystem) ----

    /// Parameter-sweep campaign over the deck this simulator was parsed
    /// from: each grid point re-parses the deck, applies the plan's
    /// overrides and runs the deck's .op/.tran cards on the policy's
    /// worker threads.  Requires deck-based construction (from_deck /
    /// from_deck_file); throws AnalysisError for programmatic circuits —
    /// use runtime::run_sweep_campaign with your own factory there.
    [[nodiscard]] runtime::CampaignResult
    sweep(const runtime::JobPlan& plan,
          const runtime::CampaignOptions& options = {}) const;

    /// Parallel Euler-Maruyama ensemble (bit-reproducible for any thread
    /// count; see engines/parallel.hpp for the seed contract).
    [[nodiscard]] engines::EmEnsembleResult
    ensemble(const engines::EmOptions& options, int paths,
             const std::string& node, std::uint64_t seed = 1,
             const runtime::ExecutionPolicy& policy = {}) const;

    /// Parallel Monte-Carlo baseline (same determinism contract).
    [[nodiscard]] engines::McResult
    monte_carlo_parallel(const engines::McOptions& options,
                         const std::string& node, std::uint64_t seed = 1,
                         const runtime::ExecutionPolicy& policy = {}) const;

private:
    Simulator(ParsedDeck deck);

    Circuit circuit_;
    std::vector<AnalysisCard> deck_analyses_;
    std::unique_ptr<mna::MnaAssembler> assembler_;
    /// Deck source text when parsed from a deck — the sweep() factory
    /// re-parses it to mint per-job circuits.
    std::optional<std::string> deck_text_;
};

} // namespace nanosim

#endif // NANOSIM_CORE_SIMULATOR_HPP
