// Nano-Sim — top-level simulator facade (back-compat shim).
//
// Historically the one-object entry point; since the AnalysisSpec API
// redesign it is a thin veneer over SimSession: every call builds the
// equivalent spec and executes it through the session's single execution
// path, so facade users share the session's persistent solver cache —
// an operating point followed by a sweep followed by a transient runs
// ONE symbolic LU analysis.
//
//     nanosim::Simulator sim = nanosim::Simulator::from_deck_file("x.cir");
//     auto tran = sim.transient({.t_stop = 1e-6});             // SWEC
//     auto tran_spice = sim.transient({.t_stop = 1e-6},
//                                     nanosim::TranEngine::newton_raphson);
//
// New code should prefer SimSession + AnalysisSpec directly (observer
// support, uniform result headers, run_deck); see core/sim_session.hpp
// and the README migration table.
#ifndef NANOSIM_CORE_SIMULATOR_HPP
#define NANOSIM_CORE_SIMULATOR_HPP

#include <string>

#include "core/analysis_spec.hpp"
#include "core/sim_session.hpp"
#include "engines/dc_mla.hpp"
#include "engines/dc_nr.hpp"
#include "engines/dc_swec.hpp"
#include "engines/em_engine.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/parallel.hpp"
#include "engines/results.hpp"
#include "engines/tran_nr.hpp"
#include "engines/tran_pwl.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"
#include "netlist/parser.hpp"
#include "runtime/sweep.hpp"

namespace nanosim {

/// Facade over SimSession, returning engine-native result types.
class Simulator {
public:
    /// Take ownership of a programmatically built circuit.
    explicit Simulator(Circuit circuit) : session_(std::move(circuit)) {}

    /// Build from deck text / file (see netlist/parser.hpp for grammar).
    [[nodiscard]] static Simulator from_deck(const std::string& deck_text) {
        return Simulator(SimSession::from_deck(deck_text));
    }
    [[nodiscard]] static Simulator from_deck_file(const std::string& path) {
        return Simulator(SimSession::from_deck_file(path));
    }

    [[nodiscard]] const Circuit& circuit() const noexcept {
        return session_.circuit();
    }
    [[nodiscard]] Circuit& circuit() noexcept { return session_.circuit(); }
    [[nodiscard]] const mna::MnaAssembler& assembler() const {
        return session_.assembler();
    }

    /// Analyses requested by the deck (.op/.dc/.tran cards), if parsed.
    [[nodiscard]] const std::vector<AnalysisCard>& deck_analyses() const {
        return session_.deck_analyses();
    }

    /// The underlying session (specs, observers, cache registry).
    [[nodiscard]] SimSession& session() noexcept { return session_; }
    [[nodiscard]] const SimSession& session() const noexcept {
        return session_;
    }

    /// Re-assemble after mutating the circuit (source swaps etc.).
    void reassemble() { session_.reassemble(); }

    // ---- analyses ----

    /// DC operating point with the selected engine.
    [[nodiscard]] engines::DcResult
    operating_point(DcEngine engine = DcEngine::swec) const;

    /// DC sweep of a named V/I source.  The source's stimulus is
    /// restored afterwards (exception-safe) — see SourceWaveGuard.
    [[nodiscard]] engines::SweepResult
    dc_sweep(const std::string& source, double start, double stop,
             double step, DcEngine engine = DcEngine::swec);

    /// Transient with the selected engine.  For non-SWEC engines the
    /// SWEC-specific options map onto the equivalents (dt limits, IC).
    [[nodiscard]] engines::TranResult
    transient(const engines::SwecTranOptions& options,
              TranEngine engine = TranEngine::swec) const;

    /// Euler-Maruyama stochastic ensemble on a node.
    [[nodiscard]] engines::EmEnsembleResult
    stochastic_ensemble(const engines::EmOptions& options, int paths,
                        const std::string& node,
                        std::uint64_t seed = 1) const;

    /// Monte-Carlo baseline on a node.
    [[nodiscard]] engines::McResult
    monte_carlo(const engines::McOptions& options, const std::string& node,
                std::uint64_t seed = 1) const;

    // ---- batch / parallel orchestration (runtime subsystem) ----

    /// Parameter-sweep campaign over the deck this simulator was parsed
    /// from (see SimSession::sweep).
    [[nodiscard]] runtime::CampaignResult
    sweep(const runtime::JobPlan& plan,
          const runtime::CampaignOptions& options = {}) const {
        return session_.sweep(plan, options);
    }

    /// Parallel Euler-Maruyama ensemble (bit-reproducible for any thread
    /// count; see engines/parallel.hpp for the seed contract).
    [[nodiscard]] engines::EmEnsembleResult
    ensemble(const engines::EmOptions& options, int paths,
             const std::string& node, std::uint64_t seed = 1,
             const runtime::ExecutionPolicy& policy = {}) const;

    /// Parallel Monte-Carlo baseline (same determinism contract).
    [[nodiscard]] engines::McResult
    monte_carlo_parallel(const engines::McOptions& options,
                         const std::string& node, std::uint64_t seed = 1,
                         const runtime::ExecutionPolicy& policy = {}) const;

private:
    explicit Simulator(SimSession session) : session_(std::move(session)) {}

    /// Mutable: the session's persistent solver cache is a memoization
    /// detail — the facade keeps its historical const signatures (only
    /// dc_sweep, which swaps the source stimulus, stays non-const).
    mutable SimSession session_;
};

} // namespace nanosim

#endif // NANOSIM_CORE_SIMULATOR_HPP
