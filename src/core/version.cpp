#include "core/version.hpp"

namespace nanosim {

const char* version_string() noexcept { return "1.0.0"; }

} // namespace nanosim
