// Nano-Sim — version information.
#ifndef NANOSIM_CORE_VERSION_HPP
#define NANOSIM_CORE_VERSION_HPP

namespace nanosim {

inline constexpr int k_version_major = 1;
inline constexpr int k_version_minor = 0;
inline constexpr int k_version_patch = 0;

/// "1.0.0"
[[nodiscard]] const char* version_string() noexcept;

} // namespace nanosim

#endif // NANOSIM_CORE_VERSION_HPP
