#include "devices/device.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

namespace {

/// Voltage window below which the chord I(V)/V switches to its analytic
/// limit dI/dV(0) to avoid 0/0.  Device voltages of interest are O(1) V.
constexpr double k_chord_v_eps = 1e-9;

} // namespace

const char* to_string(DeviceKind kind) noexcept {
    switch (kind) {
    case DeviceKind::resistor: return "resistor";
    case DeviceKind::capacitor: return "capacitor";
    case DeviceKind::inductor: return "inductor";
    case DeviceKind::vsource: return "vsource";
    case DeviceKind::isource: return "isource";
    case DeviceKind::noise_source: return "noise_source";
    case DeviceKind::diode: return "diode";
    case DeviceKind::mosfet: return "mosfet";
    case DeviceKind::rtd: return "rtd";
    case DeviceKind::rtt: return "rtt";
    case DeviceKind::nanowire: return "nanowire";
    case DeviceKind::tv_conductor: return "tv_conductor";
    }
    return "unknown";
}

void Device::stamp_static(Stamper&, int) const {}
void Device::stamp_reactive(Stamper&, int) const {}
void Device::stamp_rhs(Stamper&, int, double) const {}
void Device::stamp_time_varying(Stamper&, int, double) const {}

void Device::stamp_nr(Stamper&, int, const NodeVoltages&) const {
    throw SimError("device '" + name() + "': stamp_nr not supported");
}

void Device::stamp_swec(Stamper&, int, double) const {
    throw SimError("device '" + name() + "': stamp_swec not supported");
}

double Device::swec_conductance(const NodeVoltages&) const {
    throw SimError("device '" + name() + "': swec_conductance not supported");
}

double Device::swec_conductance_rate(const NodeVoltages&,
                                     const NodeVoltages&) const {
    throw SimError("device '" + name() +
                   "': swec_conductance_rate not supported");
}

double Device::step_limit(const NodeVoltages&, const NodeVoltages&,
                          double) const {
    return std::numeric_limits<double>::infinity();
}

double Device::branch_current(const NodeVoltages&) const {
    throw SimError("device '" + name() + "': branch_current not supported");
}

// ---------------------------------------------------------------------------
// TwoTerminalNonlinear
// ---------------------------------------------------------------------------

double TwoTerminalNonlinear::chord_conductance(double v) const {
    if (std::abs(v) < k_chord_v_eps) {
        // lim_{V->0} I(V)/V = dI/dV(0) by l'Hopital (I(0)=0 for all our
        // two-terminal models).
        return didv(0.0);
    }
    count_div();
    return current(v) / v;
}

double TwoTerminalNonlinear::chord_conductance_dv(double v) const {
    if (std::abs(v) < k_chord_v_eps) {
        // lim_{V->0} d/dV [I/V] = I''(0)/2; estimate I''(0) by central
        // difference of the (analytic) first derivative, then halve.
        const double h = 1e-6;
        count_div(2);
        return (didv(h) - didv(-h)) / (4.0 * h);
    }
    // d/dV [I(V)/V] = (V I'(V) - I(V)) / V^2     (paper eq. 8 in closed
    // form for the RTD; this generic quotient rule is its model-agnostic
    // equivalent).
    count_mul(2);
    count_add(1);
    count_div(1);
    return (v * didv(v) - current(v)) / (v * v);
}

void TwoTerminalNonlinear::stamp_nr(Stamper& stamper, int,
                                    const NodeVoltages& nv) const {
    const double v = nv(pos_) - nv(neg_);
    const double g = didv(v);
    const double i0 = current(v);
    // Norton companion: I ~ g*V + (I0 - g*V0).
    const double ieq = i0 - g * v;
    stamper.conductance(pos_, neg_, g);
    stamper.rhs_current(pos_, -ieq);
    stamper.rhs_current(neg_, +ieq);
    count_mul(2);
    count_add(2);
}

void TwoTerminalNonlinear::stamp_swec(Stamper& stamper, int,
                                      double geq) const {
    stamper.conductance(pos_, neg_, geq);
}

double TwoTerminalNonlinear::swec_conductance(const NodeVoltages& nv) const {
    return chord_conductance(nv(pos_) - nv(neg_));
}

double
TwoTerminalNonlinear::swec_conductance_rate(const NodeVoltages& nv,
                                            const NodeVoltages& dvdt) const {
    const double v = nv(pos_) - nv(neg_);
    const double vdot = dvdt(pos_) - dvdt(neg_);
    count_mul(1);
    count_add(2);
    return chord_conductance_dv(v) * vdot; // paper eq. 7
}

double TwoTerminalNonlinear::step_limit(const NodeVoltages& nv,
                                        const NodeVoltages& dvdt,
                                        double eps) const {
    // Bound the per-step relative change of the chord conductance:
    //   h <= eps * G_eq / |dG_eq/dt|
    // — the RTD/nanowire analogue of the paper's MOSFET bound (eq. 12),
    // derived from the same requirement that the equivalent conductance
    // stay representative across the step.
    const double g = swec_conductance(nv);
    const double gdot = std::abs(swec_conductance_rate(nv, dvdt));
    if (gdot <= 0.0 || g <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    count_div();
    count_mul();
    return eps * g / gdot;
}

double TwoTerminalNonlinear::branch_current(const NodeVoltages& nv) const {
    return current(nv(pos_) - nv(neg_));
}

} // namespace nanosim
