// Nano-Sim — abstract device interface.
//
// Devices are *stateless evaluators*: all simulation state (previous
// voltages, predicted SWEC conductances, ...) lives in the engines, keyed
// by device index.  This keeps a single Circuit safely shareable by many
// engines at once — the Monte-Carlo wrapper runs hundreds of transients
// over one netlist.
//
// A device participates in up to four views of the circuit:
//  * static      — time-invariant conductances (resistors, branch rows),
//  * reactive    — C-matrix entries (capacitors, inductor -L terms),
//  * rhs(t)      — independent source values at time t,
//  * nonlinear   — either a Newton-Raphson linearisation at a trial point
//                  (stamp_nr) or a SWEC chord conductance (stamp_swec).
#ifndef NANOSIM_DEVICES_DEVICE_HPP
#define NANOSIM_DEVICES_DEVICE_HPP

#include <limits>
#include <string>
#include <vector>

#include "devices/stamp.hpp"

namespace nanosim {

/// Broad device classification (used by parsers, engines and reports).
enum class DeviceKind {
    resistor,
    capacitor,
    inductor,
    vsource,
    isource,
    noise_source,
    diode,
    mosfet,
    rtd,
    rtt,
    nanowire,
    tv_conductor,
};

/// Printable name of a DeviceKind.
[[nodiscard]] const char* to_string(DeviceKind kind) noexcept;

/// Base class of every circuit element.
class Device {
public:
    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    /// Instance name, unique within a Circuit (enforced by Circuit).
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    [[nodiscard]] virtual DeviceKind kind() const noexcept = 0;

    /// The node ids this device touches (for connectivity checks).
    [[nodiscard]] virtual std::vector<NodeId> terminals() const = 0;

    /// Number of extra MNA unknowns (branch currents) this device needs.
    [[nodiscard]] virtual int branch_count() const noexcept { return 0; }

    /// True for devices whose I-V relation is nonlinear (diode, MOSFET,
    /// RTD, RTT, nanowire).  Engines iterate only over these.
    [[nodiscard]] virtual bool nonlinear() const noexcept { return false; }

    /// True for linear devices whose G entries depend on (known) time —
    /// e.g. the "time-variant nanoscale transistor" of paper Fig. 10.
    /// Engines re-stamp them each step via stamp_time_varying().
    [[nodiscard]] virtual bool time_varying() const noexcept { return false; }

    // ---- stamping (see file comment).  branch_base is the index of this
    //      device's first branch unknown (ignored when branch_count()==0).
    virtual void stamp_static(Stamper& stamper, int branch_base) const;
    virtual void stamp_reactive(Stamper& stamper, int branch_base) const;
    virtual void stamp_rhs(Stamper& stamper, int branch_base, double t) const;

    /// Time-dependent G entries (only when time_varying()).
    virtual void stamp_time_varying(Stamper& stamper, int branch_base,
                                    double t) const;

    /// Newton-Raphson linearisation about operating point `v`
    /// (tangent/differential conductance + Norton current).  Only
    /// meaningful when nonlinear().
    virtual void stamp_nr(Stamper& stamper, int branch_base,
                          const NodeVoltages& v) const;

    /// SWEC stamp: the engine supplies the (predicted) chord conductance
    /// for this device; the device knows which nodes it spans.
    virtual void stamp_swec(Stamper& stamper, int branch_base,
                            double geq) const;

    // ---- SWEC evaluation (paper eqs. 3, 5-9) ----

    /// Chord (secant-through-origin) equivalent conductance at the
    /// operating point `v`:  G_eq = I(V)/V (paper eq. 6); always >= 0 for
    /// devices whose current shares the sign of the branch voltage.
    [[nodiscard]] virtual double swec_conductance(const NodeVoltages& v) const;

    /// Time derivative of the chord conductance, dG_eq/dt =
    /// dG_eq/dV * dV/dt (paper eq. 7), given the node-voltage slopes.
    [[nodiscard]] virtual double
    swec_conductance_rate(const NodeVoltages& v,
                          const NodeVoltages& dvdt) const;

    /// Device-specific time-step bound for the adaptive controller
    /// (paper eqs. 11-12).  Default: no constraint.
    [[nodiscard]] virtual double step_limit(const NodeVoltages& v,
                                            const NodeVoltages& dvdt,
                                            double eps) const;

    /// Current through the device's principal branch at `v` (for
    /// measurement/plotting; positive from first to second terminal).
    [[nodiscard]] virtual double branch_current(const NodeVoltages& v) const;

private:
    std::string name_;
};

/// Convenience base for two-terminal nonlinear elements (diode, RTD,
/// nanowire).  Derived classes implement `current(v)` and `didv(v)`; this
/// base supplies numerically-safe chord conductance, its derivatives, and
/// the generic NR / SWEC stamps.
class TwoTerminalNonlinear : public Device {
public:
    TwoTerminalNonlinear(std::string name, NodeId pos, NodeId neg)
        : Device(std::move(name)), pos_(pos), neg_(neg) {}

    [[nodiscard]] NodeId pos() const noexcept { return pos_; }
    [[nodiscard]] NodeId neg() const noexcept { return neg_; }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {pos_, neg_};
    }
    [[nodiscard]] bool nonlinear() const noexcept override { return true; }

    /// Branch current I(V) with V the pos-to-neg voltage.
    [[nodiscard]] virtual double current(double v) const = 0;

    /// Differential (tangent) conductance dI/dV — the quantity SPICE uses,
    /// which goes NEGATIVE inside an NDR region.
    [[nodiscard]] virtual double didv(double v) const = 0;

    /// Chord conductance I(V)/V, with the analytic V->0 limit dI/dV(0).
    [[nodiscard]] double chord_conductance(double v) const;

    /// d(chord conductance)/dV = (V dI/dV - I)/V^2, with its V->0 limit.
    /// Overridable where an analytic closed form exists (RTD, eq. 8).
    [[nodiscard]] virtual double chord_conductance_dv(double v) const;

    // Device interface:
    void stamp_nr(Stamper& stamper, int branch_base,
                  const NodeVoltages& v) const override;
    void stamp_swec(Stamper& stamper, int branch_base,
                    double geq) const override;
    [[nodiscard]] double
    swec_conductance(const NodeVoltages& v) const override;
    [[nodiscard]] double
    swec_conductance_rate(const NodeVoltages& v,
                          const NodeVoltages& dvdt) const override;
    [[nodiscard]] double step_limit(const NodeVoltages& v,
                                    const NodeVoltages& dvdt,
                                    double eps) const override;
    [[nodiscard]] double
    branch_current(const NodeVoltages& v) const override;

private:
    NodeId pos_;
    NodeId neg_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_DEVICE_HPP
