#include "devices/diode.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

Diode::Diode(std::string name, NodeId pos, NodeId neg,
             const DiodeParams& params)
    : TwoTerminalNonlinear(std::move(name), pos, neg), params_(params) {
    if (params_.i_sat <= 0.0 || params_.emission <= 0.0 ||
        params_.temp <= 0.0) {
        throw AnalysisError("diode '" + this->name() +
                            "': i_sat, emission and temp must be positive");
    }
    // Continue the exponential linearly once it exceeds ~1 kA-equivalent
    // slope; keeps Newton iterates finite without changing the physical
    // operating region of any test circuit.
    v_crit_ = params_.vt() * std::log(1e3 / params_.i_sat);
}

double Diode::current(double v) const {
    const double vt = params_.vt();
    current_flops().device_eval += 5;
    count_special();
    if (v <= v_crit_) {
        return params_.i_sat * std::expm1(v / vt);
    }
    const double i_crit = params_.i_sat * std::expm1(v_crit_ / vt);
    const double g_crit = params_.i_sat / vt * std::exp(v_crit_ / vt);
    return i_crit + g_crit * (v - v_crit_);
}

double Diode::didv(double v) const {
    const double vt = params_.vt();
    current_flops().device_eval += 5;
    count_special();
    const double vc = std::min(v, v_crit_);
    return params_.i_sat / vt * std::exp(vc / vt);
}

} // namespace nanosim
