// Nano-Sim — junction diode (ideal exponential law).
//
// Not a nanodevice, but a standard nonlinear element used by the test
// suite to validate the Newton-Raphson engine against closed-form
// solutions, and by decks that need clamps.  Current is limited by a
// linearised continuation above `v_crit` to keep NR iterates finite
// (the classic SPICE junction-limiting trick).
#ifndef NANOSIM_DEVICES_DIODE_HPP
#define NANOSIM_DEVICES_DIODE_HPP

#include "devices/device.hpp"
#include "util/constants.hpp"

namespace nanosim {

/// Diode model parameters.
struct DiodeParams {
    double i_sat = 1e-14;         ///< saturation current [A]
    double emission = 1.0;        ///< ideality factor n
    double temp = phys::t_room;   ///< junction temperature [K]

    [[nodiscard]] double vt() const noexcept {
        return emission * phys::thermal_voltage(temp);
    }
};

/// Exponential diode, anode = pos, cathode = neg.
class Diode : public TwoTerminalNonlinear {
public:
    Diode(std::string name, NodeId pos, NodeId neg,
          const DiodeParams& params = {});

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::diode;
    }
    [[nodiscard]] const DiodeParams& params() const noexcept {
        return params_;
    }

    [[nodiscard]] double current(double v) const override;
    [[nodiscard]] double didv(double v) const override;

private:
    DiodeParams params_;
    double v_crit_; ///< voltage beyond which I(V) continues linearly
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_DIODE_HPP
