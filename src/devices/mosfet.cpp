#include "devices/mosfet.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

namespace {

constexpr double k_vds_eps = 1e-9;

} // namespace

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               const MosfetParams& params)
    : Device(std::move(name)),
      drain_(drain),
      gate_(gate),
      source_(source),
      params_(params) {
    if (params_.k <= 0.0 || params_.w <= 0.0 || params_.l <= 0.0) {
        throw AnalysisError("mosfet '" + this->name() +
                            "': k, W and L must be positive");
    }
    if (params_.lambda < 0.0) {
        throw AnalysisError("mosfet '" + this->name() +
                            "': lambda must be non-negative");
    }
}

double Mosfet::ids_normalised(double v_gs, double v_ds) const {
    // Pre-condition: v_ds >= 0, NMOS orientation.
    const double vov = v_gs - params_.vth;
    current_flops().device_eval += 6;
    if (vov <= 0.0) {
        return 0.0; // cutoff
    }
    const double kp = params_.kp();
    const double clm = 1.0 + params_.lambda * v_ds;
    count_mul(4);
    count_add(3);
    if (v_ds < vov) {
        return kp * (vov * v_ds - 0.5 * v_ds * v_ds) * clm; // triode
    }
    return 0.5 * kp * vov * vov * clm; // saturation
}

double Mosfet::drain_current(double v_gs, double v_ds) const {
    double sign = 1.0;
    double g = v_gs;
    double d = v_ds;
    if (params_.polarity == MosPolarity::pmos) {
        g = -g;
        d = -d;
        sign = -sign;
    }
    if (d < 0.0) { // symmetric device: exchange drain and source
        g = g - d;
        d = -d;
        sign = -sign;
    }
    return sign * ids_normalised(g, d);
}

Mosfet::Derivs Mosfet::derivatives(double v_gs, double v_ds) const {
    // Track the linear fold g = alpha v_gs + beta v_ds, d = gamma v_ds so
    // the chain rule back to (v_gs, v_ds) stays exact.
    double sign = 1.0;
    double alpha = 1.0;
    double beta = 0.0;
    double gamma = 1.0;
    double g = v_gs;
    double d = v_ds;
    if (params_.polarity == MosPolarity::pmos) {
        g = -g;
        d = -d;
        sign = -sign;
        alpha = -alpha;
        gamma = -gamma;
    }
    if (d < 0.0) {
        g = g - d;
        beta = beta - gamma; // dg/dv_ds picks up -dd/dv_ds
        d = -d;
        gamma = -gamma;
        sign = -sign;
    }

    // Partials of the normalised current wrt its own (g, d).
    const double vov = g - params_.vth;
    double f1 = 0.0;
    double f2 = 0.0;
    if (vov > 0.0) {
        const double kp = params_.kp();
        const double clm = 1.0 + params_.lambda * d;
        if (d < vov) { // triode
            const double ids0 = kp * (vov * d - 0.5 * d * d);
            f1 = kp * d * clm;
            f2 = kp * (vov - d) * clm + ids0 * params_.lambda;
        } else { // saturation
            const double ids0 = 0.5 * kp * vov * vov;
            f1 = kp * vov * clm;
            f2 = ids0 * params_.lambda;
        }
    }
    count_mul(10);
    count_add(6);
    current_flops().device_eval += 16;
    return Derivs{sign * f1 * alpha, sign * (f1 * beta + f2 * gamma)};
}

double Mosfet::chord_conductance(double v_gs, double v_ds) const {
    if (std::abs(v_ds) < k_vds_eps) {
        // lim_{V_DS -> 0} I_D / V_DS = dI_D/dV_DS at the origin.
        return derivatives(v_gs, 0.0).gds;
    }
    count_div();
    return drain_current(v_gs, v_ds) / v_ds;
}

void Mosfet::stamp_nr(Stamper& stamper, int, const NodeVoltages& nv) const {
    const double v_gs = nv(gate_) - nv(source_);
    const double v_ds = nv(drain_) - nv(source_);
    const double i0 = drain_current(v_gs, v_ds);
    const auto [gm, gds] = derivatives(v_gs, v_ds);

    // KCL row drain: +I_D; row source: -I_D, with
    // I_D ~ i0 + gm (v_gs - v_gs0) + gds (v_ds - v_ds0).
    stamper.conductance_entry(drain_, gate_, gm);
    stamper.conductance_entry(drain_, source_, -gm - gds);
    stamper.conductance_entry(drain_, drain_, gds);
    stamper.conductance_entry(source_, gate_, -gm);
    stamper.conductance_entry(source_, source_, gm + gds);
    stamper.conductance_entry(source_, drain_, -gds);

    const double ieq = i0 - gm * v_gs - gds * v_ds;
    stamper.rhs_current(drain_, -ieq);
    stamper.rhs_current(source_, +ieq);
    count_mul(2);
    count_add(4);
}

void Mosfet::stamp_swec(Stamper& stamper, int, double geq) const {
    stamper.conductance(drain_, source_, geq);
}

double Mosfet::swec_conductance(const NodeVoltages& nv) const {
    const double v_gs = nv(gate_) - nv(source_);
    const double v_ds = nv(drain_) - nv(source_);
    return chord_conductance(v_gs, v_ds);
}

double Mosfet::swec_conductance_rate(const NodeVoltages& nv,
                                     const NodeVoltages& dvdt) const {
    const double v_gs = nv(gate_) - nv(source_);
    const double v_ds = nv(drain_) - nv(source_);
    const double dgs = dvdt(gate_) - dvdt(source_);
    const double dds = dvdt(drain_) - dvdt(source_);

    // dG/dt = dG/dv_gs * dv_gs/dt + dG/dv_ds * dv_ds/dt.  The chord
    // G = I/V_DS is fold-invariant (I and V_DS flip sign together), so
    // with the normalised current f(g, d) and the linear fold
    // g = alpha v_gs + beta v_ds, d = gamma v_ds (see derivatives()):
    //   G = f/d,   dG/dg = f1/d,   dG/dd = (f2 d - f) / d^2.
    if (std::abs(v_ds) < 1e-6) {
        // Near the fold kink at V_DS = 0 the analytic quotient loses
        // digits; fall back to a one-sided difference (rarely hit, and
        // the rate only feeds the eq. 5 predictor).
        const double h = 1e-6;
        const double dg_dvgs = (chord_conductance(v_gs + h, v_ds) -
                                chord_conductance(v_gs - h, v_ds)) /
                               (2.0 * h);
        const double dg_dvds = (chord_conductance(v_gs, v_ds + h) -
                                chord_conductance(v_gs, v_ds - h)) /
                               (2.0 * h);
        return dg_dvgs * dgs + dg_dvds * dds;
    }

    double sign = 1.0;
    double alpha = 1.0;
    double beta = 0.0;
    double gamma = 1.0;
    double g = v_gs;
    double d = v_ds;
    if (params_.polarity == MosPolarity::pmos) {
        g = -g;
        d = -d;
        sign = -sign;
        alpha = -alpha;
        gamma = -gamma;
    }
    if (d < 0.0) {
        g = g - d;
        beta = beta - gamma;
        d = -d;
        gamma = -gamma;
        sign = -sign;
    }
    (void)sign; // the chord is fold-invariant; sign cancels in f/d

    const double f = ids_normalised(g, d);
    const double vov = g - params_.vth;
    double f1 = 0.0;
    double f2 = 0.0;
    if (vov > 0.0) {
        const double kp = params_.kp();
        const double clm = 1.0 + params_.lambda * d;
        if (d < vov) {
            const double ids0 = kp * (vov * d - 0.5 * d * d);
            f1 = kp * d * clm;
            f2 = kp * (vov - d) * clm + ids0 * params_.lambda;
        } else {
            const double ids0 = 0.5 * kp * vov * vov;
            f1 = kp * vov * clm;
            f2 = ids0 * params_.lambda;
        }
    }
    const double dg_chord = f1 / d;                 // dG/dg
    const double dd_chord = (f2 * d - f) / (d * d); // dG/dd
    const double dg_dvgs = dg_chord * alpha;
    const double dg_dvds = dg_chord * beta + dd_chord * gamma;
    count_mul(10);
    count_add(8);
    count_div(3);
    current_flops().device_eval += 20;
    return dg_dvgs * dgs + dg_dvds * dds;
}

double Mosfet::step_limit(const NodeVoltages& nv, const NodeVoltages& dvdt,
                          double eps) const {
    // Paper eq. (12), transistor term: h <= eps * 2 (V_GS - V_th) / alpha
    // with alpha = |dV_GS/dt|, applied to conducting transistors only.
    double v_gs = nv(gate_) - nv(source_);
    double slope = dvdt(gate_) - dvdt(source_);
    if (params_.polarity == MosPolarity::pmos) {
        v_gs = -v_gs;
        slope = -slope;
    }
    const double vov = v_gs - params_.vth;
    const double alpha = std::abs(slope);
    if (vov <= 0.0 || alpha <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    count_mul(2);
    count_div(1);
    return eps * 2.0 * vov / alpha;
}

double Mosfet::branch_current(const NodeVoltages& nv) const {
    return drain_current(nv(gate_) - nv(source_), nv(drain_) - nv(source_));
}

} // namespace nanosim
