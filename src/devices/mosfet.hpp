// Nano-Sim — MOSFET, Shichman-Hodges level-1 square-law model.
//
// This is the model the paper quotes (eq. 2) and whose step-wise
// equivalent conductance it derives (eq. 3):
//
//   triode (V_DS <= V_GS - V_th):
//       I_D = k W/L [ (V_GS - V_th) V_DS - V_DS^2 / 2 ]
//       G_eq = I_D / V_DS = k W/L (V_GS - V_th - V_DS/2)
//   saturation (V_DS > V_GS - V_th):
//       I_D = k W/(2L) (V_GS - V_th)^2
//       G_eq = I_D / V_DS
//   cutoff (V_GS <= V_th): I_D = 0, G_eq = 0.
//
// The device is symmetric: for V_DS < 0 the roles of drain and source are
// exchanged.  PMOS is the usual polarity mirror.  An optional
// channel-length-modulation term (lambda) is included for realistic
// output conductance in the NR baseline; the paper's equations correspond
// to lambda = 0.
#ifndef NANOSIM_DEVICES_MOSFET_HPP
#define NANOSIM_DEVICES_MOSFET_HPP

#include "devices/device.hpp"

namespace nanosim {

/// N- or P-channel.
enum class MosPolarity { nmos, pmos };

/// Level-1 parameters.
struct MosfetParams {
    MosPolarity polarity = MosPolarity::nmos;
    double vth = 1.0;     ///< threshold voltage [V] (positive for both types)
    double k = 2e-5;      ///< transconductance k' = mu Cox [A/V^2]
    double w = 10e-6;     ///< channel width [m]
    double l = 1e-6;      ///< channel length [m]
    double lambda = 0.0;  ///< channel-length modulation [1/V]

    /// k W / L, the factor in eq. (2).
    [[nodiscard]] double kp() const noexcept { return k * w / l; }
};

/// Three-terminal MOSFET (drain, gate, source; bulk tied to source).
class Mosfet : public Device {
public:
    Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
           const MosfetParams& params = {});

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::mosfet;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {drain_, gate_, source_};
    }
    [[nodiscard]] bool nonlinear() const noexcept override { return true; }
    [[nodiscard]] const MosfetParams& params() const noexcept {
        return params_;
    }
    [[nodiscard]] NodeId drain() const noexcept { return drain_; }
    [[nodiscard]] NodeId gate() const noexcept { return gate_; }
    [[nodiscard]] NodeId source() const noexcept { return source_; }

    /// Drain current I_D(v_gs, v_ds); handles both V_DS signs and both
    /// polarities.  Positive current flows drain -> source.
    [[nodiscard]] double drain_current(double v_gs, double v_ds) const;

    /// Partial derivatives (gm, gds) of drain_current.
    struct Derivs {
        double gm;   ///< dI_D/dV_GS
        double gds;  ///< dI_D/dV_DS
    };
    [[nodiscard]] Derivs derivatives(double v_gs, double v_ds) const;

    /// Chord conductance of eq. (3): I_D / V_DS, with V_DS -> 0 limit.
    [[nodiscard]] double chord_conductance(double v_gs, double v_ds) const;

    // Device interface.
    void stamp_nr(Stamper& stamper, int branch_base,
                  const NodeVoltages& v) const override;
    void stamp_swec(Stamper& stamper, int branch_base,
                    double geq) const override;
    [[nodiscard]] double
    swec_conductance(const NodeVoltages& v) const override;
    [[nodiscard]] double
    swec_conductance_rate(const NodeVoltages& v,
                          const NodeVoltages& dvdt) const override;
    /// Paper eq. (12) first bound: eps * 2 (V_GS - V_th) / |dV_GS/dt|
    /// for a conducting transistor.
    [[nodiscard]] double step_limit(const NodeVoltages& v,
                                    const NodeVoltages& dvdt,
                                    double eps) const override;
    [[nodiscard]] double
    branch_current(const NodeVoltages& v) const override;

private:
    /// Normalised (NMOS-with-vds>=0) current and derivatives; the public
    /// functions fold polarity and V_DS sign.
    [[nodiscard]] double ids_normalised(double v_gs, double v_ds) const;

    NodeId drain_;
    NodeId gate_;
    NodeId source_;
    MosfetParams params_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_MOSFET_HPP
