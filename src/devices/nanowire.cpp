#include "devices/nanowire.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

namespace {

double logistic(double x) noexcept {
    if (x >= 0.0) {
        return 1.0 / (1.0 + std::exp(-x));
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

/// softplus(x) = integral of logistic; overflow-safe.
double softplus(double x) noexcept {
    if (x > 0.0) {
        return x + std::log1p(std::exp(-x));
    }
    return std::log1p(std::exp(x));
}

} // namespace

Nanowire::Nanowire(std::string name, NodeId pos, NodeId neg,
                   const NanowireParams& params)
    : TwoTerminalNonlinear(std::move(name), pos, neg), params_(params) {
    if (params_.channels < 1) {
        throw AnalysisError("nanowire '" + this->name() +
                            "': needs at least one channel");
    }
    if (params_.v_step <= 0.0 || params_.smear <= 0.0 || params_.g0 <= 0.0) {
        throw AnalysisError("nanowire '" + this->name() +
                            "': v_step, smear and g0 must be positive");
    }
}

double Nanowire::current(double v) const {
    const double sign = v < 0.0 ? -1.0 : 1.0;
    const double va = std::abs(v);
    // integral_0^{va} g = G0 [ va + sum_k smear (softplus((va - Vk)/s)
    //                                            - softplus(-Vk/s)) ].
    double acc = va;
    for (int k = 1; k < params_.channels; ++k) {
        const double vk = params_.v_step * k;
        acc += params_.smear * (softplus((va - vk) / params_.smear) -
                                softplus(-vk / params_.smear));
        count_special(2);
        count_mul(2);
        count_add(3);
        count_div(2);
    }
    current_flops().device_eval += 6 * static_cast<std::uint64_t>(
                                           params_.channels);
    return sign * params_.g0 * acc;
}

double Nanowire::didv(double v) const {
    const double va = std::abs(v);
    double g = 1.0; // first subband always open
    for (int k = 1; k < params_.channels; ++k) {
        const double vk = params_.v_step * k;
        g += logistic((va - vk) / params_.smear);
        count_special(1);
        count_add(2);
        count_div(1);
    }
    current_flops().device_eval += 4 * static_cast<std::uint64_t>(
                                           params_.channels);
    return params_.g0 * g;
}

} // namespace nanosim
