// Nano-Sim — nanowire / carbon-nanotube quantum wire.
//
// A ballistic 1-D conductor carries current in discrete conduction
// channels, each contributing one conductance quantum G0 = 2e^2/h.  As
// the bias opens successive channels the conductance climbs a staircase —
// the behaviour of paper Fig. 1(b) ("the staircase characteristics of the
// conductance signal confirms that the carbon nanotubes behave as quantum
// wires").
//
// Model: channel k >= 1 opens around |V| = k * v_step with thermal
// smearing width `smear`;  channel 0 (the first subband) is always open:
//
//   g(V)  = G0 * [ 1 + sum_{k=1..channels-1} sigma((|V| - k v_step)/smear) ]
//   I(V)  = sign(V) * integral_0^{|V|} g  — odd in V, so I and V share
//           sign and the SWEC chord conductance is strictly positive.
#ifndef NANOSIM_DEVICES_NANOWIRE_HPP
#define NANOSIM_DEVICES_NANOWIRE_HPP

#include "devices/device.hpp"
#include "util/constants.hpp"

namespace nanosim {

/// Quantum-wire parameters.
struct NanowireParams {
    int channels = 4;        ///< total conduction channels (incl. k = 0)
    double v_step = 0.5;     ///< channel opening spacing [V]
    double smear = 0.05;     ///< thermal smearing width [V]
    double g0 = phys::g0_quantum; ///< per-channel conductance [S]
};

/// Two-terminal quantum wire element.
class Nanowire : public TwoTerminalNonlinear {
public:
    Nanowire(std::string name, NodeId pos, NodeId neg,
             const NanowireParams& params = {});

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::nanowire;
    }
    [[nodiscard]] const NanowireParams& params() const noexcept {
        return params_;
    }

    [[nodiscard]] double current(double v) const override;
    /// Differential conductance = the staircase g(V); never negative.
    [[nodiscard]] double didv(double v) const override;

private:
    NanowireParams params_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_NANOWIRE_HPP
