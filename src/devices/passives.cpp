#include "devices/passives.hpp"

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
    if (!(resistance > 0.0)) {
        throw AnalysisError("resistor '" + this->name() +
                            "': resistance must be positive");
    }
}

void Resistor::set_resistance(double resistance) {
    if (!(resistance > 0.0)) {
        throw AnalysisError("resistor '" + name() +
                            "': resistance must be positive");
    }
    resistance_ = resistance;
}

void Resistor::stamp_static(Stamper& stamper, int) const {
    stamper.conductance(a_, b_, conductance());
}

double Resistor::branch_current(const NodeVoltages& v) const {
    count_div();
    return (v(a_) - v(b_)) / resistance_;
}

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
    if (!(capacitance > 0.0)) {
        throw AnalysisError("capacitor '" + this->name() +
                            "': capacitance must be positive");
    }
}

void Capacitor::set_capacitance(double capacitance) {
    if (!(capacitance > 0.0)) {
        throw AnalysisError("capacitor '" + name() +
                            "': capacitance must be positive");
    }
    capacitance_ = capacitance;
}

void Capacitor::stamp_reactive(Stamper& stamper, int) const {
    stamper.capacitance(a_, b_, capacitance_);
}

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance) {
    if (!(inductance > 0.0)) {
        throw AnalysisError("inductor '" + this->name() +
                            "': inductance must be positive");
    }
}

void Inductor::set_inductance(double inductance) {
    if (!(inductance > 0.0)) {
        throw AnalysisError("inductor '" + name() +
                            "': inductance must be positive");
    }
    inductance_ = inductance;
}

void Inductor::stamp_static(Stamper& stamper, int branch_base) const {
    // KCL: branch current leaves a, enters b.
    stamper.branch_incidence(a_, branch_base, +1.0);
    stamper.branch_incidence(b_, branch_base, -1.0);
    // Branch row: V(a) - V(b) - L dI/dt = 0 (the -L dI/dt part is
    // reactive, stamped below).
    stamper.branch_voltage_coeff(branch_base, a_, +1.0);
    stamper.branch_voltage_coeff(branch_base, b_, -1.0);
}

void Inductor::stamp_reactive(Stamper& stamper, int branch_base) const {
    stamper.branch_reactive(branch_base, branch_base, -inductance_);
}

} // namespace nanosim
