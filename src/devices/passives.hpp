// Nano-Sim — linear passive elements: resistor, capacitor, inductor.
#ifndef NANOSIM_DEVICES_PASSIVES_HPP
#define NANOSIM_DEVICES_PASSIVES_HPP

#include "devices/device.hpp"

namespace nanosim {

/// Linear resistor between nodes a and b.
class Resistor : public Device {
public:
    /// Throws AnalysisError for non-positive resistance.
    Resistor(std::string name, NodeId a, NodeId b, double resistance);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::resistor;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {a_, b_};
    }
    [[nodiscard]] double resistance() const noexcept { return resistance_; }
    [[nodiscard]] double conductance() const noexcept {
        return 1.0 / resistance_;
    }

    /// Change the resistance between runs (parameter sweeps).  Throws
    /// AnalysisError for non-positive values; callers must reassemble.
    void set_resistance(double resistance);

    void stamp_static(Stamper& stamper, int branch_base) const override;
    [[nodiscard]] double
    branch_current(const NodeVoltages& v) const override;

private:
    NodeId a_;
    NodeId b_;
    double resistance_;
};

/// Linear capacitor between nodes a and b.
class Capacitor : public Device {
public:
    /// Throws AnalysisError for non-positive capacitance.
    Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::capacitor;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {a_, b_};
    }
    [[nodiscard]] double capacitance() const noexcept { return capacitance_; }

    /// Change the capacitance between runs (parameter sweeps).  Throws
    /// AnalysisError for non-positive values; callers must reassemble.
    void set_capacitance(double capacitance);

    void stamp_reactive(Stamper& stamper, int branch_base) const override;

private:
    NodeId a_;
    NodeId b_;
    double capacitance_;
};

/// Linear inductor between nodes a and b.  Introduces one branch unknown
/// (the inductor current) with branch equation V(a) - V(b) - L dI/dt = 0.
class Inductor : public Device {
public:
    /// Throws AnalysisError for non-positive inductance.
    Inductor(std::string name, NodeId a, NodeId b, double inductance);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::inductor;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {a_, b_};
    }
    [[nodiscard]] int branch_count() const noexcept override { return 1; }
    [[nodiscard]] double inductance() const noexcept { return inductance_; }

    /// Change the inductance between runs (parameter sweeps).  Throws
    /// AnalysisError for non-positive values; callers must reassemble.
    void set_inductance(double inductance);

    void stamp_static(Stamper& stamper, int branch_base) const override;
    void stamp_reactive(Stamper& stamper, int branch_base) const override;

private:
    NodeId a_;
    NodeId b_;
    double inductance_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_PASSIVES_HPP
