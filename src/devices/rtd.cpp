#include "devices/rtd.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

namespace rtd_math {

namespace {

/// ln(1 + e^x) without overflow: for large x it is x + log1p(e^{-x}).
double softplus(double x) noexcept {
    if (x > 0.0) {
        return x + std::log1p(std::exp(-x));
    }
    return std::log1p(std::exp(x));
}

/// Logistic sigma(x) = 1/(1+e^{-x}) = d softplus/dx, overflow-safe.
double logistic(double x) noexcept {
    if (x >= 0.0) {
        return 1.0 / (1.0 + std::exp(-x));
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

constexpr double k_v_eps = 1e-9;

} // namespace

double j1(const RtdParams& p, double v) noexcept {
    const double beta = p.beta();
    const double a_plus = beta * (p.b - p.c + p.n1 * v);
    const double a_minus = beta * (p.b - p.c - p.n1 * v);
    // ln[(1+e^{a+})/(1+e^{a-})] = softplus(a+) - softplus(a-).
    const double log_ratio = softplus(a_plus) - softplus(a_minus);
    const double bracket =
        std::numbers::pi / 2.0 + std::atan((p.c - p.n1 * v) / p.d);
    count_special(3);
    count_mul(6);
    count_add(6);
    return p.a * log_ratio * bracket;
}

double j2(const RtdParams& p, double v) noexcept {
    count_special(1);
    count_mul(3);
    return p.h * std::expm1(p.n2 * p.beta() * v);
}

double current(const RtdParams& p, double v) noexcept {
    current_flops().device_eval += 20;
    return j1(p, v) + j2(p, v);
}

double didv(const RtdParams& p, double v) noexcept {
    const double beta = p.beta();
    const double a_plus = beta * (p.b - p.c + p.n1 * v);
    const double a_minus = beta * (p.b - p.c - p.n1 * v);
    const double log_ratio = softplus(a_plus) - softplus(a_minus);
    const double u = (p.c - p.n1 * v) / p.d;
    const double bracket = std::numbers::pi / 2.0 + std::atan(u);

    // d(log_ratio)/dV = beta n1 (sigma(a+) + sigma(a-)).
    const double dlog = beta * p.n1 * (logistic(a_plus) + logistic(a_minus));
    // d(bracket)/dV = (-n1/D) / (1 + u^2).
    const double dbr = (-p.n1 / p.d) / (1.0 + u * u);

    const double dj1 = p.a * (dlog * bracket + log_ratio * dbr);
    const double dj2 = p.h * p.n2 * beta * std::exp(p.n2 * beta * v);
    count_special(6);
    count_mul(14);
    count_add(8);
    count_div(2);
    current_flops().device_eval += 30;
    return dj1 + dj2;
}

double chord(const RtdParams& p, double v) noexcept {
    if (std::abs(v) < k_v_eps) {
        return didv(p, 0.0);
    }
    count_div();
    return current(p, v) / v;
}

double chord_dv(const RtdParams& p, double v) noexcept {
    if (std::abs(v) < k_v_eps) {
        // lim_{V->0} d/dV [J/V] = J''(0)/2 via central difference of J'.
        const double h = 1e-6;
        return (didv(p, h) - didv(p, -h)) / (4.0 * h);
    }
    // Paper eq. (8) is the expansion of the quotient rule
    //   dG_eq/dV = (V J'(V) - J(V)) / V^2;
    // we evaluate it in this compact form with the analytic J'.
    count_mul(2);
    count_add(1);
    count_div(1);
    return (v * didv(p, v) - current(p, v)) / (v * v);
}

void current_and_didv(const RtdParams& p, double v, double& current_out,
                      double& didv_out) noexcept {
    // One evaluation of the subterms j1()/j2()/didv() share.  Each line
    // reproduces the corresponding expression of those functions exactly
    // (same operand order), so reusing a subterm instead of recomputing
    // it cannot change a single bit of either result.
    const double beta = p.beta();
    const double a_plus = beta * (p.b - p.c + p.n1 * v);
    const double a_minus = beta * (p.b - p.c - p.n1 * v);
    const double log_ratio = softplus(a_plus) - softplus(a_minus);
    const double u = (p.c - p.n1 * v) / p.d;
    const double bracket = std::numbers::pi / 2.0 + std::atan(u);

    const double j1v = p.a * log_ratio * bracket;                // j1()
    const double j2v = p.h * std::expm1(p.n2 * p.beta() * v);    // j2()

    const double dlog = beta * p.n1 * (logistic(a_plus) + logistic(a_minus));
    const double dbr = (-p.n1 / p.d) / (1.0 + u * u);
    const double dj1 = p.a * (dlog * bracket + log_ratio * dbr);
    const double dj2 = p.h * p.n2 * beta * std::exp(p.n2 * beta * v);

    count_special(7); // 2 softplus + atan + expm1 + 2 logistic + exp
    count_mul(20);
    count_add(14);
    count_div(2);
    current_flops().device_eval += 34;
    current_out = j1v + j2v;
    didv_out = dj1 + dj2;
}

void chord_and_dv(const RtdParams& p, double v, double& chord_out,
                  double& chord_dv_out) noexcept {
    if (std::abs(v) < k_v_eps) {
        chord_out = chord(p, v);
        chord_dv_out = chord_dv(p, v);
        return;
    }
    double j = 0.0;
    double dj = 0.0;
    current_and_didv(p, v, j, dj);
    count_div();
    chord_out = j / v;                       // == chord()
    count_mul(2);
    count_add(1);
    count_div(1);
    chord_dv_out = (v * dj - j) / (v * v);   // == chord_dv()
}

PeakValley find_peak_valley(const RtdParams& p, double v_max) {
    if (v_max <= 0.0) {
        throw AnalysisError("find_peak_valley: v_max must be positive");
    }
    // Coarse scan for the first sign change of dJ/dV (+ -> -) and the
    // following (- -> +).
    constexpr int n_scan = 2000;
    const double dv = v_max / n_scan;
    double v_peak = v_max;
    double v_valley = v_max;
    double prev_g = didv(p, 0.0);
    double prev_v = 0.0;
    bool have_peak = false;

    auto refine = [&p](double lo, double hi) {
        // Bisection on dJ/dV (monotone through a simple extremum's
        // neighbourhood at this resolution).
        for (int i = 0; i < 60; ++i) {
            const double mid = 0.5 * (lo + hi);
            if ((didv(p, lo) > 0.0) == (didv(p, mid) > 0.0)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        return 0.5 * (lo + hi);
    };

    for (int i = 1; i <= n_scan; ++i) {
        const double v = dv * i;
        const double g = didv(p, v);
        if (!have_peak && prev_g > 0.0 && g <= 0.0) {
            v_peak = refine(prev_v, v);
            have_peak = true;
        } else if (have_peak && prev_g < 0.0 && g >= 0.0) {
            v_valley = refine(prev_v, v);
            break;
        }
        prev_g = g;
        prev_v = v;
    }
    return {v_peak, v_valley};
}

} // namespace rtd_math

Rtd::Rtd(std::string name, NodeId pos, NodeId neg, const RtdParams& params)
    : TwoTerminalNonlinear(std::move(name), pos, neg), params_(params) {
    if (params_.a <= 0.0 || params_.d <= 0.0 || params_.n1 <= 0.0 ||
        params_.temp <= 0.0) {
        throw AnalysisError("rtd '" + this->name() +
                            "': A, D, n1 and temp must be positive");
    }
}

double Rtd::current(double v) const { return rtd_math::current(params_, v); }

double Rtd::didv(double v) const { return rtd_math::didv(params_, v); }

double Rtd::chord_conductance_dv(double v) const {
    return rtd_math::chord_dv(params_, v);
}

} // namespace nanosim
