// Nano-Sim — resonant tunneling diode (RTD).
//
// Physics-based I-V equation of Schulman, De Los Santos and Chow
// ("Physics-based RTD Current-Voltage Equations", IEEE EDL 1996), as used
// by the paper (eq. 4):
//
//   J1(V) = A * ln[ (1 + e^{q(B - C + n1 V)/kT}) /
//                   (1 + e^{q(B - C - n1 V)/kT}) ]
//              * [ pi/2 + atan((C - n1 V)/D) ]
//   J2(V) = H * (e^{q n2 V / kT} - 1)
//   J(V)  = J1(V) + J2(V)
//
// The curve has a first positive-differential-resistance region (PDR1), a
// negative-differential-resistance region (NDR) past the resonance peak,
// and a second rise (PDR2) where J2 takes over — the non-monotonic shape
// that breaks Newton-Raphson in SPICE-like simulators.
//
// SWEC view (paper eqs. 6-8): the chord conductance G_eq = J(V)/V is
// strictly positive for V != 0 because J and V share sign; its voltage
// derivative dG_eq/dV (eq. 8) is implemented in closed form.
#ifndef NANOSIM_DEVICES_RTD_HPP
#define NANOSIM_DEVICES_RTD_HPP

#include "devices/device.hpp"
#include "util/constants.hpp"

namespace nanosim {

/// Parameters of the Schulman RTD equation.  Units: A in amperes (the
/// device is treated as a lumped element: J is the device current), B, C,
/// D in volts, n1/n2 dimensionless, H in amperes, temp in kelvin.
struct RtdParams {
    double a = 1e-4;
    double b = 2.0;
    double c = 1.5;
    double d = 0.3;
    double n1 = 0.35;
    double n2 = 0.0172;
    double h = 1.43e-8;
    double temp = phys::t_room;

    /// The exact parameter set the paper lists for its transient
    /// experiments (Sec. 5.2).
    [[nodiscard]] static RtdParams date05() noexcept { return {}; }

    /// Demo set whose PDR1/NDR/PDR2 regions all fall inside 0..7 V, used
    /// to render the textbook three-region curve of Fig. 4 (the paper's
    /// own n2/H keep J2 negligible below ~10 V).  Documented in DESIGN.md.
    [[nodiscard]] static RtdParams three_region_demo() noexcept {
        RtdParams p;
        p.n2 = 0.06;
        return p;
    }

    /// q/kT for this device temperature [1/V].
    [[nodiscard]] double beta() const noexcept {
        return 1.0 / phys::thermal_voltage(temp);
    }
};

/// Free-function evaluation of the Schulman equation (shared with the RTT
/// model, which sums several resonance terms).
namespace rtd_math {

/// Resonance term J1(V).
[[nodiscard]] double j1(const RtdParams& p, double v) noexcept;

/// Thermionic/excess term J2(V).
[[nodiscard]] double j2(const RtdParams& p, double v) noexcept;

/// Total current J(V) = J1 + J2.
[[nodiscard]] double current(const RtdParams& p, double v) noexcept;

/// Differential conductance dJ/dV (analytic).
[[nodiscard]] double didv(const RtdParams& p, double v) noexcept;

/// Chord conductance J(V)/V with the analytic V->0 limit.
[[nodiscard]] double chord(const RtdParams& p, double v) noexcept;

/// d(chord)/dV in closed form (paper eq. 8): (V J' - J)/V^2.
[[nodiscard]] double chord_dv(const RtdParams& p, double v) noexcept;

/// J(V) and dJ/dV in one pass, sharing every transcendental subterm the
/// two closed forms have in common (softplus pair, resonance bracket).
/// Every shared value is a pure function of the same inputs, so the
/// results are BIT-IDENTICAL to current() / didv() called separately —
/// the SWEC fast path relies on that contract.
void current_and_didv(const RtdParams& p, double v, double& current_out,
                      double& didv_out) noexcept;

/// G_eq(V) and dG_eq/dV in one pass via current_and_didv; bit-identical
/// to chord() / chord_dv() called separately.
void chord_and_dv(const RtdParams& p, double v, double& chord_out,
                  double& chord_dv_out) noexcept;

/// Locate the resonance peak (first local max of J) and valley (following
/// local min) by golden-section refinement of a coarse scan over
/// [0, v_max].  Returns {v_peak, v_valley}; the valley equals v_max when
/// no NDR region exists below v_max.
struct PeakValley {
    double v_peak;
    double v_valley;
};
[[nodiscard]] PeakValley find_peak_valley(const RtdParams& p, double v_max);

} // namespace rtd_math

/// Two-terminal RTD circuit element.
class Rtd : public TwoTerminalNonlinear {
public:
    Rtd(std::string name, NodeId pos, NodeId neg,
        const RtdParams& params = RtdParams::date05());

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::rtd;
    }
    [[nodiscard]] const RtdParams& params() const noexcept { return params_; }

    /// Replace the parameter set between runs (parameter sweeps).
    void set_params(const RtdParams& params) noexcept { params_ = params; }

    [[nodiscard]] double current(double v) const override;
    [[nodiscard]] double didv(double v) const override;
    /// Closed-form eq. (8) instead of the generic quotient rule.
    [[nodiscard]] double chord_conductance_dv(double v) const override;

private:
    RtdParams params_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_RTD_HPP
