#include "devices/rtt.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

namespace {

double logistic(double x) noexcept {
    if (x >= 0.0) {
        return 1.0 / (1.0 + std::exp(-x));
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

constexpr double k_vce_eps = 1e-9;

} // namespace

Rtt::Rtt(std::string name, NodeId collector, NodeId base, NodeId emitter,
         const RttParams& params)
    : Device(std::move(name)),
      collector_(collector),
      base_(base),
      emitter_(emitter),
      params_(params) {
    if (params_.levels < 1) {
        throw AnalysisError("rtt '" + this->name() +
                            "': needs at least one level");
    }
    if (params_.level_spacing <= 0.0 || params_.v_gate_width <= 0.0) {
        throw AnalysisError(
            "rtt '" + this->name() +
            "': level_spacing and v_gate_width must be positive");
    }
    level_params_.reserve(static_cast<std::size_t>(params_.levels));
    for (int k = 0; k < params_.levels; ++k) {
        RtdParams lp = params_.base;
        // Only the resonance centre C shifts per level; B stays fixed, so
        // level k's term switches ON near V = (C_k - B)/n1 and dies near
        // V = C_k/n1 — a localized resonance bump.  The sum of bumps is
        // the multi-peak staircase of Fig. 1(a).
        lp.c = params_.base.c + params_.level_spacing * k;
        level_params_.push_back(lp);
    }
}

double Rtt::gate(double v_be) const {
    count_special();
    return logistic((v_be - params_.v_on) / params_.v_gate_width);
}

double Rtt::collector_current(double v_ce, double v_be) const {
    double sum = 0.0;
    for (const auto& lp : level_params_) {
        sum += rtd_math::current(lp, v_ce);
    }
    count_add(level_params_.size());
    count_mul(1);
    return gate(v_be) * sum;
}

double Rtt::gce(double v_ce, double v_be) const {
    double sum = 0.0;
    for (const auto& lp : level_params_) {
        sum += rtd_math::didv(lp, v_ce);
    }
    count_add(level_params_.size());
    count_mul(1);
    return gate(v_be) * sum;
}

double Rtt::chord(double v_ce, double v_be) const {
    if (std::abs(v_ce) < k_vce_eps) {
        return gce(0.0, v_be);
    }
    count_div();
    return collector_current(v_ce, v_be) / v_ce;
}

void Rtt::stamp_nr(Stamper& stamper, int, const NodeVoltages& nv) const {
    const double v_ce = nv(collector_) - nv(emitter_);
    const double v_be = nv(base_) - nv(emitter_);
    const double i0 = collector_current(v_ce, v_be);
    const double g_ce = gce(v_ce, v_be);
    // Transconductance wrt the base drive: dI/dV_BE = gate'(v_be) * sum.
    const double h = 1e-7;
    const double g_m =
        (collector_current(v_ce, v_be + h) - collector_current(v_ce, v_be - h)) /
        (2.0 * h);

    stamper.conductance_entry(collector_, collector_, g_ce);
    stamper.conductance_entry(collector_, emitter_, -g_ce - g_m);
    stamper.conductance_entry(collector_, base_, g_m);
    stamper.conductance_entry(emitter_, collector_, -g_ce);
    stamper.conductance_entry(emitter_, emitter_, g_ce + g_m);
    stamper.conductance_entry(emitter_, base_, -g_m);

    const double ieq = i0 - g_ce * v_ce - g_m * v_be;
    stamper.rhs_current(collector_, -ieq);
    stamper.rhs_current(emitter_, +ieq);
    count_mul(3);
    count_add(5);
    count_div(1);
}

void Rtt::stamp_swec(Stamper& stamper, int, double geq) const {
    stamper.conductance(collector_, emitter_, geq);
}

double Rtt::swec_conductance(const NodeVoltages& nv) const {
    return chord(nv(collector_) - nv(emitter_), nv(base_) - nv(emitter_));
}

double Rtt::swec_conductance_rate(const NodeVoltages& nv,
                                  const NodeVoltages& dvdt) const {
    const double v_ce = nv(collector_) - nv(emitter_);
    const double v_be = nv(base_) - nv(emitter_);
    const double dce = dvdt(collector_) - dvdt(emitter_);
    const double dbe = dvdt(base_) - dvdt(emitter_);
    const double h = 1e-7;
    const double dg_dvce =
        (chord(v_ce + h, v_be) - chord(v_ce - h, v_be)) / (2.0 * h);
    const double dg_dvbe =
        (chord(v_ce, v_be + h) - chord(v_ce, v_be - h)) / (2.0 * h);
    count_mul(2);
    count_add(5);
    count_div(2);
    return dg_dvce * dce + dg_dvbe * dbe;
}

double Rtt::step_limit(const NodeVoltages& nv, const NodeVoltages& dvdt,
                       double eps) const {
    // Same conductance-rate bound as two-terminal devices:
    // h <= eps * G_eq / |dG_eq/dt|.
    const double g = swec_conductance(nv);
    const double gdot = std::abs(swec_conductance_rate(nv, dvdt));
    if (g <= 0.0 || gdot <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    count_mul(1);
    count_div(1);
    return eps * g / gdot;
}

double Rtt::branch_current(const NodeVoltages& nv) const {
    return collector_current(nv(collector_) - nv(emitter_),
                             nv(base_) - nv(emitter_));
}

} // namespace nanosim
