// Nano-Sim — resonant tunneling transistor (RTT).
//
// Three-terminal device for paper Fig. 1(a): the collector current versus
// collector-emitter voltage exhibits *multiple* resonance peaks with a
// staircase contour ("the different discrete energy levels of each
// material within the transistor terminals act as barriers to current
// flow.  Current flows only when a modulated voltage aligns these energy
// levels").
//
// Model: a sum of Schulman-type resonance terms, one per quantised energy
// level, with resonance centres C_k = c0 + k * level_spacing, all gated by
// the base-emitter drive through a logistic turn-on:
//
//   I_C(V_CE, V_BE) = gate(V_BE) * sum_k J_schulman(V_CE; C_k)
//   gate(V_BE)      = sigma((V_BE - v_on) / v_gate_width)
//
// Reuses rtd_math for each resonance term, so the per-term I-V and its
// derivative inherit the validated RTD implementation.
#ifndef NANOSIM_DEVICES_RTT_HPP
#define NANOSIM_DEVICES_RTT_HPP

#include <vector>

#include "devices/device.hpp"
#include "devices/rtd.hpp"

namespace nanosim {

/// RTT parameters: base Schulman set plus level structure and gate.
/// Defaults place the first resonance peaks near 2 V and 4 V of V_CE so
/// the multi-peak staircase is visible in a 0-5 V sweep (Fig. 1(a)).
struct RttParams {
    RttParams() {
        base.b = 1.2;
        base.c = 0.7;
    }
    RtdParams base = RtdParams::date05(); ///< per-level resonance template
    int levels = 3;              ///< number of resonance peaks
    double level_spacing = 0.7;  ///< spacing of resonance centres C_k [V]
    double v_on = 0.7;           ///< base-emitter turn-on voltage [V]
    double v_gate_width = 0.1;   ///< gate transition width [V]
};

/// Three-terminal RTT (collector, base, emitter).
class Rtt : public Device {
public:
    Rtt(std::string name, NodeId collector, NodeId base, NodeId emitter,
        const RttParams& params = {});

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::rtt;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {collector_, base_, emitter_};
    }
    [[nodiscard]] bool nonlinear() const noexcept override { return true; }
    [[nodiscard]] const RttParams& params() const noexcept { return params_; }

    /// Collector current for given terminal voltages.
    [[nodiscard]] double collector_current(double v_ce, double v_be) const;

    /// d I_C / d V_CE (analytic, from rtd_math::didv per level).
    [[nodiscard]] double gce(double v_ce, double v_be) const;

    /// Base-emitter gate factor in [0, 1].
    [[nodiscard]] double gate(double v_be) const;

    // Device interface.
    void stamp_nr(Stamper& stamper, int branch_base,
                  const NodeVoltages& v) const override;
    void stamp_swec(Stamper& stamper, int branch_base,
                    double geq) const override;
    [[nodiscard]] double
    swec_conductance(const NodeVoltages& v) const override;
    [[nodiscard]] double
    swec_conductance_rate(const NodeVoltages& v,
                          const NodeVoltages& dvdt) const override;
    [[nodiscard]] double step_limit(const NodeVoltages& v,
                                    const NodeVoltages& dvdt,
                                    double eps) const override;
    [[nodiscard]] double
    branch_current(const NodeVoltages& v) const override;

private:
    [[nodiscard]] double chord(double v_ce, double v_be) const;

    NodeId collector_;
    NodeId base_;
    NodeId emitter_;
    RttParams params_;
    std::vector<RtdParams> level_params_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_RTT_HPP
