#include "devices/sources.hpp"

#include "util/error.hpp"

namespace nanosim {

VSource::VSource(std::string name, NodeId pos, NodeId neg, WaveformPtr wave)
    : Device(std::move(name)), pos_(pos), neg_(neg), wave_(std::move(wave)) {
    if (wave_ == nullptr) {
        throw AnalysisError("vsource '" + this->name() + "': null waveform");
    }
}

VSource::VSource(std::string name, NodeId pos, NodeId neg, double dc_value)
    : VSource(std::move(name), pos, neg,
              std::make_shared<DcWave>(dc_value)) {}

void VSource::set_wave(WaveformPtr wave) {
    if (wave == nullptr) {
        throw AnalysisError("vsource '" + name() + "': null waveform");
    }
    wave_ = std::move(wave);
}

void VSource::stamp_static(Stamper& stamper, int branch_base) const {
    // Branch current leaves pos, enters neg.
    stamper.branch_incidence(pos_, branch_base, +1.0);
    stamper.branch_incidence(neg_, branch_base, -1.0);
    // Branch row: V(pos) - V(neg) = E(t)  (rhs filled in stamp_rhs).
    stamper.branch_voltage_coeff(branch_base, pos_, +1.0);
    stamper.branch_voltage_coeff(branch_base, neg_, -1.0);
}

void VSource::stamp_rhs(Stamper& stamper, int branch_base, double t) const {
    stamper.branch_rhs(branch_base, wave_->value(t));
}

ISource::ISource(std::string name, NodeId pos, NodeId neg, WaveformPtr wave)
    : Device(std::move(name)), pos_(pos), neg_(neg), wave_(std::move(wave)) {
    if (wave_ == nullptr) {
        throw AnalysisError("isource '" + this->name() + "': null waveform");
    }
}

ISource::ISource(std::string name, NodeId pos, NodeId neg, double dc_value)
    : ISource(std::move(name), pos, neg,
              std::make_shared<DcWave>(dc_value)) {}

void ISource::set_wave(WaveformPtr wave) {
    if (wave == nullptr) {
        throw AnalysisError("isource '" + name() + "': null waveform");
    }
    wave_ = std::move(wave);
}

void ISource::stamp_rhs(Stamper& stamper, int, double t) const {
    const double i = wave_->value(t);
    // Current drawn out of pos, injected into neg.
    stamper.rhs_current(pos_, -i);
    stamper.rhs_current(neg_, +i);
}

NoiseCurrentSource::NoiseCurrentSource(std::string name, NodeId pos,
                                       NodeId neg, double sigma)
    : Device(std::move(name)), pos_(pos), neg_(neg), sigma_(sigma) {
    if (sigma < 0.0) {
        throw AnalysisError("noise source '" + this->name() +
                            "': sigma must be non-negative");
    }
}

} // namespace nanosim
