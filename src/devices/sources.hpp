// Nano-Sim — independent sources: voltage, current, and white-noise
// current (the stochastic input of paper Sec. 4, modelled as dW/dt).
#ifndef NANOSIM_DEVICES_SOURCES_HPP
#define NANOSIM_DEVICES_SOURCES_HPP

#include "devices/device.hpp"
#include "devices/waveform.hpp"

namespace nanosim {

/// Independent voltage source between pos and neg.  Adds one branch
/// unknown: the source current, flowing pos -> (through source) -> neg.
class VSource : public Device {
public:
    VSource(std::string name, NodeId pos, NodeId neg, WaveformPtr wave);

    /// Convenience DC constructor.
    VSource(std::string name, NodeId pos, NodeId neg, double dc_value);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::vsource;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {pos_, neg_};
    }
    [[nodiscard]] int branch_count() const noexcept override { return 1; }

    [[nodiscard]] const Waveform& wave() const noexcept { return *wave_; }
    /// Shared handle to the stimulus — what a sweep's restore guard saves
    /// so the exact original waveform object comes back afterwards.
    [[nodiscard]] const WaveformPtr& wave_ptr() const noexcept {
        return wave_;
    }
    [[nodiscard]] NodeId pos() const noexcept { return pos_; }
    [[nodiscard]] NodeId neg() const noexcept { return neg_; }

    /// Replace the stimulus (used by source-stepping and sweeps).
    void set_wave(WaveformPtr wave);

    void stamp_static(Stamper& stamper, int branch_base) const override;
    void stamp_rhs(Stamper& stamper, int branch_base,
                   double t) const override;

private:
    NodeId pos_;
    NodeId neg_;
    WaveformPtr wave_;
};

/// Independent current source; positive current flows pos -> (through
/// source) -> neg, i.e. it is drawn out of `pos` and injected into `neg`
/// (SPICE convention).
class ISource : public Device {
public:
    ISource(std::string name, NodeId pos, NodeId neg, WaveformPtr wave);
    ISource(std::string name, NodeId pos, NodeId neg, double dc_value);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::isource;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {pos_, neg_};
    }
    [[nodiscard]] const Waveform& wave() const noexcept { return *wave_; }
    /// Shared handle to the stimulus (see VSource::wave_ptr).
    [[nodiscard]] const WaveformPtr& wave_ptr() const noexcept {
        return wave_;
    }
    [[nodiscard]] NodeId pos() const noexcept { return pos_; }
    [[nodiscard]] NodeId neg() const noexcept { return neg_; }

    void set_wave(WaveformPtr wave);

    void stamp_rhs(Stamper& stamper, int branch_base,
                   double t) const override;

private:
    NodeId pos_;
    NodeId neg_;
    WaveformPtr wave_;
};

/// White-noise current source of intensity `sigma`: i(t) = sigma dW/dt.
///
/// Deterministic engines see it as an open circuit (zero mean); the
/// Euler-Maruyama engine reads `sigma()` to build the B matrix of
/// C dx = -G x dt + B dW (paper eq. 13), and the Monte-Carlo wrapper
/// synthesises band-limited sample paths from it.  Injection direction
/// matches ISource.
class NoiseCurrentSource : public Device {
public:
    /// sigma in A*sqrt(s) (intensity of the Wiener increment).
    NoiseCurrentSource(std::string name, NodeId pos, NodeId neg,
                       double sigma);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::noise_source;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {pos_, neg_};
    }
    [[nodiscard]] double sigma() const noexcept { return sigma_; }
    [[nodiscard]] NodeId pos() const noexcept { return pos_; }
    [[nodiscard]] NodeId neg() const noexcept { return neg_; }

    /// Change the noise intensity between runs (parameter sweeps).
    void set_sigma(double sigma) noexcept { sigma_ = sigma; }

private:
    NodeId pos_;
    NodeId neg_;
    double sigma_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_SOURCES_HPP
