// Nano-Sim — the stamping interface devices write their MNA entries into.
//
// Devices know *what* they contribute (conductances, capacitances, branch
// equations, source currents); the MNA assembler (src/mna) knows *where*
// those contributions live in the matrix.  Keeping the interface here in
// devices/ lets the device library stay independent of the assembler.
//
// Conventions (classic MNA):
//  * NodeId 0 is ground; non-ground nodes are 1..N and map to matrix
//    rows/columns 0..N-1.
//  * Extra unknowns ("branches": voltage-source and inductor currents)
//    occupy rows/columns N..N+B-1; devices address them by a branch index
//    passed to them at stamp time.
//  * KCL rows are written as  sum(currents leaving node) = rhs injection,
//    i.e. G x = b with b collecting source currents INTO each node.
#ifndef NANOSIM_DEVICES_STAMP_HPP
#define NANOSIM_DEVICES_STAMP_HPP

#include <cstddef>
#include <span>

namespace nanosim {

/// Circuit node identifier.  0 is ground.
using NodeId = int;

/// The ground node.
inline constexpr NodeId k_ground = 0;

/// Sink for device stamps.  Implemented by mna::MnaBuilder; tests may
/// implement it directly to verify individual device stamps.
class Stamper {
public:
    virtual ~Stamper() = default;

    /// Two-terminal conductance g between nodes a and b:
    /// +g at (a,a) and (b,b), -g at (a,b) and (b,a); ground rows dropped.
    virtual void conductance(NodeId a, NodeId b, double g) = 0;

    /// Single G-matrix entry at (row_node, col_node) — needed for
    /// non-reciprocal elements such as a MOSFET's transconductance.
    virtual void conductance_entry(NodeId row, NodeId col, double g) = 0;

    /// Two-terminal capacitance between a and b (stamped into the C
    /// matrix with the same +/- pattern as conductance()).
    virtual void capacitance(NodeId a, NodeId b, double c) = 0;

    /// Current injection `i` INTO `node` on the right-hand side.
    virtual void rhs_current(NodeId node, double i) = 0;

    // ---- branch (extra-unknown) support ----

    /// KCL coupling of branch current `branch` into `node`:
    /// +sign * i_branch leaves `node`.
    virtual void branch_incidence(NodeId node, int branch, double sign) = 0;

    /// Branch-row voltage coefficient: row `branch`, column `node`.
    virtual void branch_voltage_coeff(int branch, NodeId node,
                                      double coeff) = 0;

    /// Reactive entry on a branch row (inductor: -L on the branch
    /// current's own column of the C matrix).
    virtual void branch_reactive(int branch_row, int branch_col,
                                 double value) = 0;

    /// Right-hand side of a branch row (voltage source value).
    virtual void branch_rhs(int branch, double value) = 0;
};

/// Read-only view of the MNA unknown vector with ground folded in:
/// `v(node)` is the node voltage (0 for ground), `branch(i)` a branch
/// current.  Cheap to copy; does not own the data.
class NodeVoltages {
public:
    NodeVoltages() = default;

    /// `x` is the unknown vector [node voltages; branch currents];
    /// `num_nodes` the count of non-ground nodes.
    NodeVoltages(std::span<const double> x, std::size_t num_nodes)
        : x_(x), num_nodes_(num_nodes) {}

    /// Voltage of `node` (ground reads as exactly 0).
    [[nodiscard]] double operator()(NodeId node) const noexcept {
        if (node == k_ground) {
            return 0.0;
        }
        return x_[static_cast<std::size_t>(node - 1)];
    }

    /// Branch current for branch index `i`.
    [[nodiscard]] double branch(int i) const noexcept {
        return x_[num_nodes_ + static_cast<std::size_t>(i)];
    }

    [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
    [[nodiscard]] bool valid() const noexcept { return !x_.empty(); }

    /// The wrapped unknown vector itself (node voltages first, then
    /// branch currents) — lets vectorised consumers build a ground-
    /// padded copy and gather by slot index instead of calling the
    /// branchy operator() per terminal (mna::StampProgram::eval_chords).
    [[nodiscard]] std::span<const double> raw() const noexcept { return x_; }

private:
    std::span<const double> x_;
    std::size_t num_nodes_ = 0;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_STAMP_HPP
