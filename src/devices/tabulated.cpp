#include "devices/tabulated.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <typeinfo>

#include "devices/diode.hpp"
#include "devices/nanowire.hpp"
#include "devices/rtd.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim {

namespace {

std::atomic<std::uint64_t> g_build_count{0};

/// Append the raw bytes of a scalar to a key string (params are plain
/// doubles/ints; field-by-field append avoids struct padding bytes).
template <typename T>
void append_bytes(std::string& key, const T& v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    key.append(p, sizeof(T));
}

} // namespace

std::uint64_t chord_table_build_count() noexcept {
    return g_build_count.load(std::memory_order_relaxed);
}

ChordTable::ChordTable(const Model& model, double v_min, double v_max,
                       std::size_t points) {
    if (!(v_max > v_min) || points < 2 || !std::isfinite(v_min) ||
        !std::isfinite(v_max)) {
        throw AnalysisError("ChordTable: need finite v_min < v_max and "
                            "points >= 2");
    }
    v_min_ = v_min;
    v_max_ = v_max;
    h_ = (v_max - v_min) / static_cast<double>(points - 1);
    inv_h_ = 1.0 / h_;
    i_.resize(points);
    di_.resize(points);
    g_.resize(points);
    dg_.resize(points);
    for (std::size_t k = 0; k < points; ++k) {
        const double v =
            v_min + (v_max - v_min) * static_cast<double>(k) /
                        static_cast<double>(points - 1);
        i_[k] = model.current(v);
        di_[k] = model.didv(v);
        g_[k] = model.chord(v);
        dg_[k] = model.chord_dv(v);
    }
    g_build_count.fetch_add(1, std::memory_order_relaxed);

    // Self-measure the chord accuracy at the interval midpoints — the
    // maxima of the cubic-Hermite interpolation error.
    double g_scale = 0.0;
    for (const double g : g_) {
        g_scale = std::max(g_scale, std::abs(g));
    }
    const double floor = std::max(k_error_floor_frac * g_scale,
                                  std::numeric_limits<double>::min());
    for (std::size_t k = 0; k + 1 < points; ++k) {
        const double v = v_min + h_ * (static_cast<double>(k) + 0.5);
        const double exact = model.chord(v);
        const double err = std::abs(chord(v) - exact);
        max_rel_error_ = std::max(
            max_rel_error_, err / std::max(std::abs(exact), floor));
    }
}

ChordTable::Segment ChordTable::segment(double v) const noexcept {
    const double f = (v - v_min_) * inv_h_;
    auto i = static_cast<std::size_t>(f);
    i = std::min(i, g_.size() - 2); // v == v_max lands in the last segment
    return Segment{i, (v - (v_min_ + h_ * static_cast<double>(i))) * inv_h_};
}

namespace {

/// Cubic Hermite basis evaluation on one segment: value from node values
/// (y0, y1) and node slopes (d0, d1), with h the segment width.
inline double hermite(double t, double y0, double y1, double d0, double d1,
                      double h) noexcept {
    const double t2 = t * t;
    const double t3 = t2 * t;
    count_fma(8);
    return (2.0 * t3 - 3.0 * t2 + 1.0) * y0 + (t3 - 2.0 * t2 + t) * h * d0 +
           (-2.0 * t3 + 3.0 * t2) * y1 + (t3 - t2) * h * d1;
}

/// Exact derivative (d/dv) of the Hermite patch above.
inline double hermite_dv(double t, double y0, double y1, double d0,
                         double d1, double h) noexcept {
    const double t2 = t * t;
    count_fma(8);
    return (6.0 * t2 - 6.0 * t) * (y0 - y1) / h +
           (3.0 * t2 - 4.0 * t + 1.0) * d0 + (3.0 * t2 - 2.0 * t) * d1;
}

} // namespace

double ChordTable::chord(double v) const noexcept {
    const Segment s = segment(v);
    return hermite(s.t, g_[s.i], g_[s.i + 1], dg_[s.i], dg_[s.i + 1], h_);
}

double ChordTable::chord_dv(double v) const noexcept {
    const Segment s = segment(v);
    return hermite_dv(s.t, g_[s.i], g_[s.i + 1], dg_[s.i], dg_[s.i + 1], h_);
}

double ChordTable::current(double v) const noexcept {
    const Segment s = segment(v);
    return hermite(s.t, i_[s.i], i_[s.i + 1], di_[s.i], di_[s.i + 1], h_);
}

std::string chord_table_key(const Device& dev, const TableConfig& cfg) {
    std::string key;
    if (typeid(dev) == typeid(Rtd)) {
        const auto& p = static_cast<const Rtd&>(dev).params();
        key = "rtd:";
        append_bytes(key, p.a);
        append_bytes(key, p.b);
        append_bytes(key, p.c);
        append_bytes(key, p.d);
        append_bytes(key, p.n1);
        append_bytes(key, p.n2);
        append_bytes(key, p.h);
        append_bytes(key, p.temp);
    } else if (typeid(dev) == typeid(Diode)) {
        const auto& p = static_cast<const Diode&>(dev).params();
        key = "diode:";
        append_bytes(key, p.i_sat);
        append_bytes(key, p.emission);
        append_bytes(key, p.temp);
    } else if (typeid(dev) == typeid(Nanowire)) {
        const auto& p = static_cast<const Nanowire&>(dev).params();
        key = "nanowire:";
        append_bytes(key, p.channels);
        append_bytes(key, p.v_step);
        append_bytes(key, p.smear);
        append_bytes(key, p.g0);
    } else {
        return {}; // not tabulatable (multi-control or unknown class)
    }
    append_bytes(key, cfg.v_min);
    append_bytes(key, cfg.v_max);
    append_bytes(key, cfg.points);
    // rel_tol is part of the identity: acquire() caches accept/REJECT
    // decisions, and the same grid can pass one tolerance while failing
    // a stricter one requested by a later analysis.
    append_bytes(key, cfg.rel_tol);
    return key;
}

std::shared_ptr<const ChordTable>
TableStore::acquire(const Device& dev, const TableConfig& cfg,
                    std::size_t& builds_out) {
    const std::string key = chord_table_key(dev, cfg);
    if (key.empty()) {
        return nullptr;
    }
    if (const auto it = tables_.find(key); it != tables_.end()) {
        return it->second; // may be a cached rejection (nullptr)
    }

    // All tabulatable classes are TwoTerminalNonlinear; the virtual
    // closed forms resolve any per-class overrides (e.g. the RTD's
    // analytic eq. (8) chord derivative).
    const auto& tt = dynamic_cast<const TwoTerminalNonlinear&>(dev);
    ChordTable::Model model;
    model.current = [&tt](double v) { return tt.current(v); };
    model.didv = [&tt](double v) { return tt.didv(v); };
    model.chord = [&tt](double v) { return tt.chord_conductance(v); };
    model.chord_dv = [&tt](double v) { return tt.chord_conductance_dv(v); };

    auto table = std::make_shared<const ChordTable>(model, cfg.v_min,
                                                    cfg.v_max, cfg.points);
    ++builds_out;
    std::shared_ptr<const ChordTable> result;
    if (table->max_rel_error() <= cfg.rel_tol) {
        result = std::move(table);
    } // else: accuracy gate failed; cache the rejection as nullptr

    if (tables_.size() >= k_max_tables) {
        tables_.erase(tables_.begin());
    }
    tables_.emplace(key, result);
    return result;
}

} // namespace nanosim
