// Nano-Sim — tabulated chord-conductance device models.
//
// The SWEC inner loop spends most of its device-model time in the
// closed-form transcendentals of the Schulman RTD equation (exp / ln /
// atan per device, per step, per trial).  The paper's own SWEC
// formulation is table-driven in spirit — the chord conductance is a
// scalar function of one branch voltage — so this module captures each
// two-terminal model's
//
//     I(V),  G_eq(V) = I(V)/V,  dG_eq/dV
//
// once into a uniform-grid cubic-Hermite table over a configured voltage
// range.  Inside the range a lookup is a handful of FMAs; outside it the
// engines fall back to the exact closed form, so the table can never
// change which operating branch a circuit settles on.
//
// Accuracy gating: a freshly built table measures its own worst relative
// chord error against the closed form on the interval midpoints (the
// maxima of the Hermite error).  A table that misses TableConfig::rel_tol
// is rejected at build time and the device stays closed-form — enabling
// tables can therefore trade at most `rel_tol` of accuracy.
//
// Sharing: tables are keyed by (device class, parameter set, grid
// config) in a TableStore, so the 1024 identical RTDs of a mesh share
// ONE table, and a SimSession's persistent solver cache shares that
// table across every Monte-Carlo trial and sweep point
// (chord_table_build_count() lets tests assert the reuse).
//
// Tabulatable classes: Rtd, Diode, Nanowire — two-terminal models whose
// chord depends on a single branch voltage.  Mosfet/Rtt chords depend on
// a second controlling voltage and always evaluate closed-form.
#ifndef NANOSIM_DEVICES_TABULATED_HPP
#define NANOSIM_DEVICES_TABULATED_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "devices/device.hpp"

namespace nanosim {

/// Configuration of the tabulated-model layer (engine option block; a
/// default-constructed config leaves every model closed-form).
struct TableConfig {
    bool enabled = false;
    double v_min = -2.0;    ///< table range lower bound [V]
    double v_max = 8.0;     ///< table range upper bound [V]
    std::size_t points = 4097; ///< grid nodes (>= 2)
    /// Build-time accuracy gate: a table whose measured max relative
    /// chord error exceeds this is rejected (device stays closed-form).
    double rel_tol = 1e-6;

    [[nodiscard]] bool operator==(const TableConfig&) const = default;
};

/// Uniform-grid cubic-Hermite tabulation of one two-terminal model:
/// current I(V) (with exact dI/dV node slopes) and chord conductance
/// G_eq(V) (with exact dG/dV node slopes).  chord_dv() is the analytic
/// derivative of the chord's Hermite patch, so the tabulated model is a
/// self-consistent C1 function — the eq. (5) predictor sees exactly the
/// slope of the conductance the stamp uses.
class ChordTable {
public:
    /// Closed-form callbacks of the model being tabulated.
    struct Model {
        std::function<double(double)> current;  ///< I(V)
        std::function<double(double)> didv;     ///< dI/dV
        std::function<double(double)> chord;    ///< I(V)/V (with V->0 limit)
        std::function<double(double)> chord_dv; ///< d(chord)/dV
    };

    /// Sample the model on `points` uniform nodes over [v_min, v_max] and
    /// measure the worst-case midpoint chord error.  Throws AnalysisError
    /// on a degenerate range or points < 2.
    ChordTable(const Model& model, double v_min, double v_max,
               std::size_t points);

    [[nodiscard]] double v_min() const noexcept { return v_min_; }
    [[nodiscard]] double v_max() const noexcept { return v_max_; }
    [[nodiscard]] std::size_t points() const noexcept { return g_.size(); }

    /// True when v is inside the tabulated range (callers must fall back
    /// to the closed form outside it).
    [[nodiscard]] bool contains(double v) const noexcept {
        return v >= v_min_ && v <= v_max_;
    }

    /// Chord conductance G_eq(v); only valid when contains(v).
    [[nodiscard]] double chord(double v) const noexcept;
    /// dG_eq/dV — exact derivative of the chord() Hermite patch.
    [[nodiscard]] double chord_dv(double v) const noexcept;
    /// Branch current I(v); only valid when contains(v).
    [[nodiscard]] double current(double v) const noexcept;

    /// Worst midpoint |table - closed form| / max(|closed form|, floor)
    /// measured at build time, where floor is k_error_floor_frac of the
    /// model's conductance scale over the range (errors in conductances
    /// a thousand times below the device's own scale are circuit noise).
    [[nodiscard]] double max_rel_error() const noexcept {
        return max_rel_error_;
    }

    /// Fraction of the range's max |chord| below which absolute error is
    /// measured against the floor instead of the (vanishing) local value.
    static constexpr double k_error_floor_frac = 1e-3;

private:
    struct Segment {
        std::size_t i;  ///< left node
        double t;       ///< normalised position in [0, 1]
    };
    [[nodiscard]] Segment segment(double v) const noexcept;

    double v_min_ = 0.0;
    double v_max_ = 0.0;
    double inv_h_ = 0.0; ///< 1 / node spacing
    double h_ = 0.0;     ///< node spacing
    std::vector<double> i_;  ///< current at nodes
    std::vector<double> di_; ///< dI/dV at nodes
    std::vector<double> g_;  ///< chord at nodes
    std::vector<double> dg_; ///< d(chord)/dV at nodes
    double max_rel_error_ = 0.0;
};

/// Process-wide count of ChordTable builds — lets tests assert that a
/// Monte-Carlo batch built its tables once, not once per trial.
[[nodiscard]] std::uint64_t chord_table_build_count() noexcept;

/// Registry of built tables keyed by (device class, parameters, grid
/// config).  acquire() is get-or-build; devices of an untabulatable
/// class, and tables failing the config's accuracy gate, yield nullptr
/// (the nullptr is cached too, so a rejected build is not repeated).
class TableStore {
public:
    [[nodiscard]] std::shared_ptr<const ChordTable>
    acquire(const Device& dev, const TableConfig& cfg,
            std::size_t& builds_out);

    [[nodiscard]] std::size_t size() const noexcept {
        return tables_.size();
    }

private:
    /// Bounded: a parameter-sweep session retains recent tables without
    /// accumulating one per sweep point forever.
    static constexpr std::size_t k_max_tables = 64;

    std::map<std::string, std::shared_ptr<const ChordTable>> tables_;
};

/// Identity key of a device's tabulated model: class tag + parameter
/// bytes + grid config.  Empty when the device class is not tabulatable.
[[nodiscard]] std::string chord_table_key(const Device& dev,
                                          const TableConfig& cfg);

} // namespace nanosim

#endif // NANOSIM_DEVICES_TABULATED_HPP
