#include "devices/tv_conductor.hpp"

#include "util/error.hpp"

namespace nanosim {

TimeVaryingConductor::TimeVaryingConductor(std::string name, NodeId a,
                                           NodeId b, WaveformPtr g_of_t)
    : Device(std::move(name)), a_(a), b_(b), g_of_t_(std::move(g_of_t)) {
    if (g_of_t_ == nullptr) {
        throw AnalysisError("tv_conductor '" + this->name() +
                            "': null conductance waveform");
    }
}

void TimeVaryingConductor::stamp_time_varying(Stamper& stamper, int,
                                              double t) const {
    const double g = g_of_t_->value(t);
    if (g < 0.0) {
        throw AnalysisError("tv_conductor '" + name() +
                            "': negative conductance at t=" +
                            std::to_string(t));
    }
    stamper.conductance(a_, b_, g);
}

} // namespace nanosim
