// Nano-Sim — time-varying linear conductor.
//
// A two-terminal element whose conductance is a *known* function of time
// G(t) — the reduced model of the "time-variant nanoscale transistor"
// in the paper's Fig. 10 experiment: the transistor's channel conductance
// follows its (deterministic) gate drive while the node equation is
// driven by stochastic inputs.  Because G(t) does not depend on the
// circuit state the element is linear, so the stochastic state equation
// (paper eq. 13) stays a linear SDE and admits an exact reference
// solution to compare Euler-Maruyama against.
#ifndef NANOSIM_DEVICES_TV_CONDUCTOR_HPP
#define NANOSIM_DEVICES_TV_CONDUCTOR_HPP

#include "devices/device.hpp"
#include "devices/waveform.hpp"

namespace nanosim {

/// G(t) conductor between two nodes; g_of_t supplies siemens vs seconds.
class TimeVaryingConductor : public Device {
public:
    /// g_of_t must be positive for all queried times (checked at stamp
    /// time; throws AnalysisError).
    TimeVaryingConductor(std::string name, NodeId a, NodeId b,
                         WaveformPtr g_of_t);

    [[nodiscard]] DeviceKind kind() const noexcept override {
        return DeviceKind::tv_conductor;
    }
    [[nodiscard]] std::vector<NodeId> terminals() const override {
        return {a_, b_};
    }
    [[nodiscard]] bool time_varying() const noexcept override { return true; }

    /// Conductance at time t.
    [[nodiscard]] double conductance(double t) const {
        return g_of_t_->value(t);
    }

    void stamp_time_varying(Stamper& stamper, int branch_base,
                            double t) const override;

private:
    NodeId a_;
    NodeId b_;
    WaveformPtr g_of_t_;
};

} // namespace nanosim

#endif // NANOSIM_DEVICES_TV_CONDUCTOR_HPP
