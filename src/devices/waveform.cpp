#include "devices/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "util/error.hpp"

namespace nanosim {

namespace {

/// Minimum edge time: a zero rise/fall would make the SWEC input-slope
/// bound (eq. 11) collapse to zero step size.
constexpr double k_min_edge = 1e-12;

} // namespace

double Waveform::slope(double t) const {
    const double h = 1e-12;
    return (value(t + h) - value(t - h)) / (2.0 * h);
}

std::vector<double> Waveform::breakpoints(double, double) const { return {}; }

std::string DcWave::describe() const {
    std::ostringstream os;
    os << "DC(" << level_ << ")";
    return os.str();
}

PulseWave::PulseWave(double v1, double v2, double delay, double rise,
                     double fall, double width, double period)
    : v1_(v1),
      v2_(v2),
      delay_(delay),
      rise_(std::max(rise, k_min_edge)),
      fall_(std::max(fall, k_min_edge)),
      width_(width),
      period_(period) {
    if (period_ <= 0.0) {
        throw AnalysisError("PulseWave: period must be positive");
    }
    if (rise_ + width_ + fall_ > period_) {
        throw AnalysisError("PulseWave: rise+width+fall exceeds period");
    }
}

double PulseWave::value(double t) const {
    if (t < delay_) {
        return v1_;
    }
    const double tp = std::fmod(t - delay_, period_);
    if (tp < rise_) {
        return v1_ + (v2_ - v1_) * (tp / rise_);
    }
    if (tp < rise_ + width_) {
        return v2_;
    }
    if (tp < rise_ + width_ + fall_) {
        return v2_ + (v1_ - v2_) * ((tp - rise_ - width_) / fall_);
    }
    return v1_;
}

double PulseWave::slope(double t) const {
    if (t < delay_) {
        return 0.0;
    }
    const double tp = std::fmod(t - delay_, period_);
    if (tp < rise_) {
        return (v2_ - v1_) / rise_;
    }
    if (tp < rise_ + width_) {
        return 0.0;
    }
    if (tp < rise_ + width_ + fall_) {
        return (v1_ - v2_) / fall_;
    }
    return 0.0;
}

std::vector<double> PulseWave::breakpoints(double t0, double t1) const {
    std::vector<double> bp;
    if (t1 <= delay_) {
        return bp;
    }
    // Corners within each period: 0, rise, rise+width, rise+width+fall.
    const double corners[4] = {0.0, rise_, rise_ + width_,
                               rise_ + width_ + fall_};
    const double first_period =
        std::floor(std::max(0.0, t0 - delay_) / period_);
    for (double k = first_period;; k += 1.0) {
        const double base = delay_ + k * period_;
        if (base > t1) {
            break;
        }
        for (const double c : corners) {
            const double tc = base + c;
            if (tc >= t0 && tc < t1) {
                bp.push_back(tc);
            }
        }
    }
    return bp;
}

std::string PulseWave::describe() const {
    std::ostringstream os;
    os << "PULSE(" << v1_ << " " << v2_ << " " << delay_ << " " << rise_
       << " " << fall_ << " " << width_ << " " << period_ << ")";
    return os.str();
}

PwlWave::PwlWave(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
    if (points_.empty()) {
        throw AnalysisError("PwlWave: needs at least one point");
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first <= points_[i - 1].first) {
            throw AnalysisError(
                "PwlWave: time points must be strictly increasing");
        }
    }
}

std::size_t PwlWave::segment_of(double t) const {
    // Cursor fast path: the hinted segment, then its successor (the
    // forward-marching transient pattern); binary search on a miss.
    // Selection is identical to upper_bound: segment s holds
    // points_[s].t <= t < points_[s+1].t, so interpolation is bit-equal
    // to the pre-cursor implementation.
    const std::size_t n = points_.size();
    auto in_segment = [&](std::size_t s) {
        return s + 1 < n && points_[s].first <= t && t < points_[s + 1].first;
    };
    std::size_t s = cursor_.load(std::memory_order_relaxed);
    if (in_segment(s)) {
        return s;
    }
    if (in_segment(s + 1)) {
        cursor_.store(s + 1, std::memory_order_relaxed);
        return s + 1;
    }
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](double tt, const auto& p) { return tt < p.first; });
    s = static_cast<std::size_t>(it - points_.begin()) - 1;
    cursor_.store(s, std::memory_order_relaxed);
    return s;
}

double PwlWave::value(double t) const {
    if (t <= points_.front().first) {
        return points_.front().second;
    }
    if (t >= points_.back().first) {
        return points_.back().second;
    }
    const std::size_t s = segment_of(t);
    const auto& lo = points_[s];
    const auto& hi = points_[s + 1];
    const double f = (t - lo.first) / (hi.first - lo.first);
    return lo.second + f * (hi.second - lo.second);
}

double PwlWave::slope(double t) const {
    if (t < points_.front().first || t >= points_.back().first) {
        // Outside the record the waveform holds constant; at the exact
        // last point the legacy upper_bound hit end() and returned 0.
        return 0.0;
    }
    if (points_.size() < 2) {
        return 0.0;
    }
    const std::size_t s = segment_of(t);
    const auto& lo = points_[s];
    const auto& hi = points_[s + 1];
    return (hi.second - lo.second) / (hi.first - lo.first);
}

std::vector<double> PwlWave::breakpoints(double t0, double t1) const {
    std::vector<double> bp;
    for (const auto& [t, v] : points_) {
        (void)v;
        if (t >= t0 && t < t1) {
            bp.push_back(t);
        }
    }
    return bp;
}

std::string PwlWave::describe() const {
    std::ostringstream os;
    os << "PWL(" << points_.size() << " points)";
    return os.str();
}

SinWave::SinWave(double offset, double ampl, double freq, double delay,
                 double theta)
    : offset_(offset), ampl_(ampl), freq_(freq), delay_(delay),
      theta_(theta) {
    if (freq_ <= 0.0) {
        throw AnalysisError("SinWave: frequency must be positive");
    }
}

double SinWave::value(double t) const {
    if (t < delay_) {
        return offset_;
    }
    const double tau = t - delay_;
    const double w = 2.0 * std::numbers::pi * freq_;
    return offset_ + ampl_ * std::sin(w * tau) * std::exp(-theta_ * tau);
}

double SinWave::slope(double t) const {
    if (t < delay_) {
        return 0.0;
    }
    const double tau = t - delay_;
    const double w = 2.0 * std::numbers::pi * freq_;
    const double e = std::exp(-theta_ * tau);
    return ampl_ * e * (w * std::cos(w * tau) - theta_ * std::sin(w * tau));
}

std::string SinWave::describe() const {
    std::ostringstream os;
    os << "SIN(" << offset_ << " " << ampl_ << " " << freq_ << " " << delay_
       << " " << theta_ << ")";
    return os.str();
}

WaveformPtr make_clock(double v_low, double v_high, double period,
                       double rise_fall, double delay) {
    const double edge = std::max(rise_fall, k_min_edge);
    const double width = period / 2.0 - edge;
    return std::make_shared<PulseWave>(v_low, v_high, delay, edge, edge,
                                       width, period);
}

} // namespace nanosim
