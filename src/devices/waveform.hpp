// Nano-Sim — time-domain stimulus waveforms for independent sources.
//
// The set mirrors the SPICE stimulus cards the paper's experiments need:
// DC, PULSE (the 0<->5 V input of the FET-RTD inverter and the flip-flop
// clock), PWL, and SIN.  Waveform is a small value-semantics hierarchy
// held by sources through a shared_ptr<const Waveform> so that decks can
// share one definition across sources.
#ifndef NANOSIM_DEVICES_WAVEFORM_HPP
#define NANOSIM_DEVICES_WAVEFORM_HPP

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nanosim {

/// A scalar function of time, v(t), plus an analytic-when-possible slope
/// dv/dt used by the SWEC step controller (alpha = dV_in/dt in eq. 11).
class Waveform {
public:
    virtual ~Waveform() = default;

    /// Value at time t (seconds).
    [[nodiscard]] virtual double value(double t) const = 0;

    /// Slope dv/dt at time t.  Defaults to a central finite difference.
    [[nodiscard]] virtual double slope(double t) const;

    /// Times at which the waveform has a corner/discontinuity inside
    /// [t0, t1); transient engines place time points on these so that
    /// sharp edges are never stepped over.  Default: none.
    [[nodiscard]] virtual std::vector<double> breakpoints(double t0,
                                                          double t1) const;

    /// Debug description ("PULSE(0 5 ...)").
    [[nodiscard]] virtual std::string describe() const = 0;
};

using WaveformPtr = std::shared_ptr<const Waveform>;

/// Constant value.
class DcWave : public Waveform {
public:
    explicit DcWave(double level) : level_(level) {}
    [[nodiscard]] double value(double) const override { return level_; }
    [[nodiscard]] double slope(double) const override { return 0.0; }
    [[nodiscard]] std::string describe() const override;

private:
    double level_;
};

/// SPICE-style periodic trapezoidal pulse.
class PulseWave : public Waveform {
public:
    /// v1: initial level, v2: pulsed level, delay, rise, fall, width
    /// (time at v2), period.  rise/fall of 0 are clamped to 1 ps to keep
    /// slopes finite.
    PulseWave(double v1, double v2, double delay, double rise, double fall,
              double width, double period);

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double slope(double t) const override;
    [[nodiscard]] std::vector<double> breakpoints(double t0,
                                                  double t1) const override;
    [[nodiscard]] std::string describe() const override;

private:
    double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// Piece-wise linear waveform through (t, v) points; constant before the
/// first and after the last point.
///
/// value()/slope() are called once per source per accepted step; segment
/// lookup keeps a last-segment cursor (transient time marches forward,
/// so the next query almost always lands in the same or the following
/// segment) and only binary-searches on a miss.  The cursor is a relaxed
/// atomic: waveforms are shared across parallel Monte-Carlo trials
/// through shared_ptr<const Waveform>, and a stale hint only costs the
/// fallback search, never a wrong value.
class PwlWave : public Waveform {
public:
    /// Points must be strictly increasing in time (throws AnalysisError).
    explicit PwlWave(std::vector<std::pair<double, double>> points);

    PwlWave(const PwlWave& other) : points_(other.points_) {}
    PwlWave& operator=(const PwlWave& other) {
        points_ = other.points_;
        cursor_.store(0, std::memory_order_relaxed);
        return *this;
    }

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double slope(double t) const override;
    [[nodiscard]] std::vector<double> breakpoints(double t0,
                                                  double t1) const override;
    [[nodiscard]] std::string describe() const override;

private:
    /// Segment index s with points_[s].time <= t < points_[s+1].time;
    /// only valid for t inside (front, back).
    [[nodiscard]] std::size_t segment_of(double t) const;

    std::vector<std::pair<double, double>> points_;
    mutable std::atomic<std::size_t> cursor_{0};
};

/// Damped sine: offset + ampl * sin(2 pi freq (t - delay)) * e^{-theta (t-delay)}.
class SinWave : public Waveform {
public:
    SinWave(double offset, double ampl, double freq, double delay = 0.0,
            double theta = 0.0);

    [[nodiscard]] double value(double t) const override;
    [[nodiscard]] double slope(double t) const override;
    [[nodiscard]] std::string describe() const override;

private:
    double offset_, ampl_, freq_, delay_, theta_;
};

/// Square clock built on PulseWave: 50% duty, given period and levels —
/// convenience for the RTD flip-flop experiment (Fig. 9).
[[nodiscard]] WaveformPtr make_clock(double v_low, double v_high,
                                     double period, double rise_fall,
                                     double delay = 0.0);

} // namespace nanosim

#endif // NANOSIM_DEVICES_WAVEFORM_HPP
