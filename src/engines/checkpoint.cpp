#include "engines/checkpoint.hpp"

#include <utility>

#include "util/error.hpp"

namespace nanosim::engines {

namespace {

[[nodiscard]] McStatState capture_stat(const stochastic::RunningStats& s) {
    return McStatState{s.count(), s.mean(), s.m2(), s.min(), s.max()};
}

[[nodiscard]] stochastic::RunningStats restore_stat(const McStatState& st) {
    stochastic::RunningStats s;
    s.restore(static_cast<std::size_t>(st.n), st.mean, st.m2, st.min, st.max);
    return s;
}

} // namespace

McEnsembleState capture_ensemble(const stochastic::EnsembleStats& stats) {
    McEnsembleState out;
    out.per_point.reserve(stats.points());
    for (std::size_t i = 0; i < stats.points(); ++i) {
        out.per_point.push_back(capture_stat(stats.at(i)));
    }
    out.peak = capture_stat(stats.peak_stats());
    out.peaks = stats.peaks();
    out.paths = stats.paths();
    return out;
}

void restore_ensemble(stochastic::EnsembleStats& stats,
                      const McEnsembleState& state) {
    if (state.per_point.size() != stats.points()) {
        throw AnalysisError(
            "mc checkpoint: ensemble state has " +
            std::to_string(state.per_point.size()) + " points, grid has " +
            std::to_string(stats.points()));
    }
    std::vector<stochastic::RunningStats> per_point;
    per_point.reserve(state.per_point.size());
    for (const McStatState& st : state.per_point) {
        per_point.push_back(restore_stat(st));
    }
    stats.restore(std::move(per_point), restore_stat(state.peak), state.peaks,
                  static_cast<std::size_t>(state.paths));
}

} // namespace nanosim::engines
