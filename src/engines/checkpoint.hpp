// Nano-Sim — deterministic Monte-Carlo campaign checkpoints.
//
// A McCheckpoint is the complete resumable state of a Monte-Carlo
// campaign after `next_trial` trials have been folded in: the base seed
// every trial's noise paths are keyed from, the RAW Welford accumulator
// state of every ensemble statistic (summaries are lossy — resume needs
// the exact n/mean/m2/min/max of each point), per-trial bookkeeping, the
// quarantined-trial ledger, and the flop tally.  Because trial noise is
// counter-keyed by (base_seed, trial) and Welford accumulation is
// order-deterministic, restoring this state and continuing at
// `next_trial` reproduces the uninterrupted campaign BIT-IDENTICALLY —
// the contract bench_robustness gates.
//
// Deliberately std-only below engines/ internals (plus the std-only
// obs::RescueCounts / FlopCounter value types): observer.hpp and the
// service wire layer both embed it.
#ifndef NANOSIM_ENGINES_CHECKPOINT_HPP
#define NANOSIM_ENGINES_CHECKPOINT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "stochastic/stats.hpp"
#include "util/flops.hpp"

namespace nanosim::engines {

/// One quarantined Monte-Carlo trial: the trial index, the campaign base
/// seed its noise paths were keyed from (trial noise = f(seed, trial), so
/// the pair pins the exact realization for replay), and the diagnostic
/// from the exhausted rescue ladder.
struct McFailedTrial {
    int trial = 0;
    std::uint64_t seed = 0;
    std::string diagnostic;
};

/// Raw Welford accumulator state (stochastic::RunningStats).
struct McStatState {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/// Raw state of one stochastic::EnsembleStats.
struct McEnsembleState {
    std::vector<McStatState> per_point;
    McStatState peak;
    std::vector<double> peaks;
    std::uint64_t paths = 0;
};

/// Resumable Monte-Carlo campaign state (see file comment).
struct McCheckpoint {
    std::uint64_t base_seed = 0; ///< NoisePathSet key for every trial
    int next_trial = 0;          ///< first trial NOT yet accumulated
    int runs = 0;                ///< campaign size (validated on resume)
    std::size_t grid_points = 0; ///< sample grid width (validated)

    McEnsembleState primary;               ///< the spec node's ensemble
    std::vector<McEnsembleState> probes;   ///< one per probe node
    std::vector<int> trial_steps;          ///< accepted steps per trial
    std::vector<McFailedTrial> failed_trials;
    FlopCounter flops;                     ///< campaign flop tally so far
    obs::RescueCounts rescues;             ///< ladder outcomes so far
};

/// Snapshot the raw accumulator state of an EnsembleStats.
[[nodiscard]] McEnsembleState
capture_ensemble(const stochastic::EnsembleStats& stats);

/// Rebuild an EnsembleStats from a snapshot.  Throws AnalysisError when
/// the point counts disagree (checkpoint from a different grid).
void restore_ensemble(stochastic::EnsembleStats& stats,
                      const McEnsembleState& state);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_CHECKPOINT_HPP
