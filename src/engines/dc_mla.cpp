#include "engines/dc_mla.hpp"

#include <algorithm>
#include <cmath>

#include "devices/sources.hpp"
#include "engines/options_common.hpp"
#include "linalg/vecops.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// Largest per-device terminal-voltage change implied by an update, over
/// the nonlinear devices (the quantities MLA limits).
double max_device_voltage_move(const mna::MnaAssembler& assembler,
                               const linalg::Vector& x_old,
                               const linalg::Vector& x_new) {
    const NodeVoltages vo = assembler.view(x_old);
    const NodeVoltages vn = assembler.view(x_new);
    double worst = 0.0;
    for (const Device* dev : assembler.nonlinear_devices()) {
        const auto terms = dev->terminals();
        for (std::size_t a = 0; a + 1 < terms.size(); ++a) {
            for (std::size_t b = a + 1; b < terms.size(); ++b) {
                const double before = vo(terms[a]) - vo(terms[b]);
                const double after = vn(terms[a]) - vn(terms[b]);
                worst = std::max(worst, std::abs(after - before));
            }
        }
    }
    return worst;
}

/// Limited-NR inner loop: plain NR, but each update is scaled so that no
/// nonlinear device's branch voltage moves more than v_limit.
DcResult limited_nr(const mna::MnaAssembler& assembler,
                    const MlaOptions& options, double t,
                    double source_scale,
                    const linalg::Vector& initial) {
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    DcResult result;
    result.x = initial.empty() ? linalg::Vector(n, 0.0) : initial;

    for (int it = 0; it < options.max_iterations; ++it) {
        linalg::Triplets g = assembler.static_g();
        assembler.add_time_varying_stamps(t, g);
        linalg::Vector rhs = assembler.rhs(t);
        if (source_scale != 1.0) {
            for (double& v : rhs) {
                v *= source_scale;
            }
        }
        assembler.add_nr_stamps(result.x, g, rhs);
        linalg::Vector x_new = mna::solve_system(g, rhs);

        // Device-voltage limiting.
        const double move =
            max_device_voltage_move(assembler, result.x, x_new);
        if (move > options.v_limit) {
            const double scale = options.v_limit / move;
            for (std::size_t i = 0; i < n; ++i) {
                x_new[i] = result.x[i] + scale * (x_new[i] - result.x[i]);
            }
        }

        const double delta = linalg::max_abs_diff(x_new, result.x);
        const double scale = std::max(linalg::norm_inf(x_new), 1.0);
        result.x = std::move(x_new);
        result.iterations = it + 1;
        result.residual = delta;
        if (delta < options.abstol + options.reltol * scale) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace

DcResult solve_op_mla(const mna::MnaAssembler& assembler,
                      const MlaOptions& options, double t,
                      double source_scale) {
    constexpr const char* who = "solve_op_mla";
    require_at_least(who, "max_iterations", options.max_iterations, 1);
    require_positive(who, "abstol", options.abstol);
    require_non_negative(who, "reltol", options.reltol);
    require_positive(who, "v_limit", options.v_limit);
    require_at_least(who, "ramp_initial_steps", options.ramp_initial_steps, 1);
    require_at_least(who, "ramp_max_halvings", options.ramp_max_halvings, 0);
    const FlopScope scope;
    // Phase 1: voltage-limited NR from the supplied guess.
    DcResult result =
        limited_nr(assembler, options, t, source_scale,
                   options.initial_guess);
    if (result.converged) {
        result.flops = scope.counter();
        return result;
    }

    // Phase 2: source stepping with automatic ramp-step reduction.
    double lambda = 0.0;
    double dlambda = 1.0 / std::max(options.ramp_initial_steps, 1);
    int halvings = 0;
    int total_iterations = result.iterations;
    linalg::Vector warm(static_cast<std::size_t>(assembler.unknowns()), 0.0);

    while (lambda < 1.0) {
        const double target = std::min(1.0, lambda + dlambda);
        DcResult step = limited_nr(assembler, options, t,
                                   source_scale * target, warm);
        total_iterations += step.iterations;
        if (step.converged) {
            lambda = target;
            warm = step.x;
            result = std::move(step);
            dlambda = std::min(dlambda * 1.5, 1.0 - lambda + 1e-12);
        } else {
            dlambda /= 2.0;
            if (++halvings > options.ramp_max_halvings) {
                result.converged = false;
                break;
            }
        }
    }
    result.iterations = total_iterations;
    result.flops = scope.counter();
    return result;
}

SweepResult dc_sweep_mla(Circuit& circuit,
                         const mna::MnaAssembler& assembler,
                         const std::string& source_name,
                         const linalg::Vector& values,
                         const MlaOptions& options,
                         const AnalysisObserver* observer) {
    const FlopScope scope;
    if (values.empty()) {
        throw AnalysisError("dc_sweep_mla: empty sweep");
    }
    SweepResult result;
    // Reuse the NR sweep's source plumbing by setting DC levels directly.
    auto set_level = [&](double v) {
        if (const Device* d = circuit.find(source_name); d != nullptr) {
            if (d->kind() == DeviceKind::vsource) {
                circuit.get_mutable<VSource>(source_name)
                    .set_wave(std::make_shared<DcWave>(v));
                return;
            }
            if (d->kind() == DeviceKind::isource) {
                circuit.get_mutable<ISource>(source_name)
                    .set_wave(std::make_shared<DcWave>(v));
                return;
            }
        }
        throw NetlistError("dc_sweep_mla: '" + source_name +
                           "' is not a V or I source");
    };

    MlaOptions opt = options;
    const int total = static_cast<int>(values.size());
    for (const double v : values) {
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        set_level(v);
        const DcResult point = solve_op_mla(assembler, opt);
        result.values.push_back(v);
        result.solutions.push_back(point.x);
        result.converged.push_back(point.converged);
        result.total_iterations += point.iterations;
        opt.initial_guess = point.x;
        if (observer != nullptr) {
            const int done = static_cast<int>(result.values.size());
            observer->trial(done, total);
            observer->progress(static_cast<double>(done) / total);
        }
    }
    result.flops = scope.counter();
    return result;
}

SweepResult dc_sweep_mla(Circuit& circuit, const std::string& source_name,
                         const linalg::Vector& values,
                         const MlaOptions& options,
                         const AnalysisObserver* observer) {
    if (values.empty()) {
        throw AnalysisError("dc_sweep_mla: empty sweep");
    }
    const mna::MnaAssembler assembler(circuit);
    return dc_sweep_mla(circuit, assembler, source_name, values, options,
                        observer);
}

} // namespace nanosim::engines
