// Nano-Sim — Modified Limiting Algorithm (MLA) DC solver.
//
// Re-implementation of the approach of Bhattacharya & Mazumder,
// "Augmentation of SPICE for Simulation of Circuits Containing Resonant
// Tunneling Diodes" (IEEE TCAD 2001) — the baseline the paper's Table I
// compares against.  As in the paper itself ("Due to the unavailability
// of the MLA code, we present the comparison between SWEC and the
// implementation of the MLA done by us"), this is our own implementation
// of the published algorithm family:
//
//  * Newton-Raphson with *device voltage limiting*: the update is damped
//    so no RTD's terminal voltage moves more than `v_limit` per
//    iteration, preventing the iterate from vaulting across the NDR
//    region (the RTD analogue of SPICE junction limiting);
//  * *current/source stepping* with automatic step reduction when the
//    limited NR still fails: the source is ramped, each ramp point warm
//    started, the ramp step halved on failure.
#ifndef NANOSIM_ENGINES_DC_MLA_HPP
#define NANOSIM_ENGINES_DC_MLA_HPP

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"

namespace nanosim::engines {

/// MLA tuning knobs.
struct MlaOptions {
    int max_iterations = 200;     ///< NR budget per solve
    double abstol = 1e-9;
    double reltol = 1e-6;
    double v_limit = 0.1;         ///< max per-iteration device-voltage move [V]
    int ramp_initial_steps = 4;   ///< source-stepping start resolution
    int ramp_max_halvings = 12;
    /// Optional initial guess (warm start across sweep points).
    linalg::Vector initial_guess;
};

/// Operating point with the MLA (limited NR; falls back to the adaptive
/// source ramp when limiting alone stalls).
[[nodiscard]] DcResult solve_op_mla(const mna::MnaAssembler& assembler,
                                    const MlaOptions& options = {},
                                    double t = 0.0,
                                    double source_scale = 1.0);

/// DC sweep with the MLA, warm-starting each point (the configuration
/// Table I measures).  `observer` gets per-point trial callbacks and may
/// cancel between points (partial SweepResult flagged `aborted`).
[[nodiscard]] SweepResult dc_sweep_mla(Circuit& circuit,
                                       const std::string& source_name,
                                       const linalg::Vector& values,
                                       const MlaOptions& options = {},
                                       const AnalysisObserver* observer = nullptr);

/// DC sweep against a caller-owned assembler built from `circuit` (the
/// SimSession path; the session's SourceWaveGuard owns the restore).
[[nodiscard]] SweepResult dc_sweep_mla(Circuit& circuit,
                                       const mna::MnaAssembler& assembler,
                                       const std::string& source_name,
                                       const linalg::Vector& values,
                                       const MlaOptions& options,
                                       const AnalysisObserver* observer);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_DC_MLA_HPP
