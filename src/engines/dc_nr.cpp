#include "engines/dc_nr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "devices/sources.hpp"
#include "engines/options_common.hpp"
#include "linalg/vecops.hpp"
#include "util/error.hpp"
#include "util/failpoints.hpp"
#include "util/log.hpp"

namespace nanosim::engines {

namespace {

/// Replace a named V/I source's stimulus with a DC level, returning the
/// previous waveform so the caller can restore it.
WaveformPtr swap_source_level(Circuit& circuit, const std::string& name,
                              double level) {
    if (const Device* d = circuit.find(name); d != nullptr) {
        if (d->kind() == DeviceKind::vsource) {
            auto& vs = circuit.get_mutable<VSource>(name);
            // Remember the previous stimulus as its t=0 DC level — sweeps
            // only ever replace DC levels, so this restores faithfully.
            auto prev = std::make_shared<DcWave>(vs.wave().value(0.0));
            vs.set_wave(std::make_shared<DcWave>(level));
            return prev;
        }
        if (d->kind() == DeviceKind::isource) {
            auto& is = circuit.get_mutable<ISource>(name);
            auto prev = std::make_shared<DcWave>(is.wave().value(0.0));
            is.set_wave(std::make_shared<DcWave>(level));
            return prev;
        }
    }
    throw NetlistError("dc sweep: '" + name + "' is not a V or I source");
}

void restore_source(Circuit& circuit, const std::string& name,
                    WaveformPtr wave) {
    if (const Device* d = circuit.find(name); d != nullptr) {
        if (d->kind() == DeviceKind::vsource) {
            circuit.get_mutable<VSource>(name).set_wave(std::move(wave));
            return;
        }
        if (d->kind() == DeviceKind::isource) {
            circuit.get_mutable<ISource>(name).set_wave(std::move(wave));
            return;
        }
    }
}

} // namespace

DcResult solve_op_nr(const mna::MnaAssembler& assembler,
                     const NrOptions& options, double t,
                     double source_scale) {
    constexpr const char* who = "solve_op_nr";
    require_at_least(who, "max_iterations", options.max_iterations, 1);
    require_positive(who, "abstol", options.abstol);
    require_non_negative(who, "reltol", options.reltol);
    require_non_negative(who, "gmin", options.gmin);
    require_in_unit(who, "damping", options.damping);
    const FlopScope scope;
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    DcResult result;
    result.x.assign(n, 0.0);
    if (!options.initial_guess.empty()) {
        if (options.initial_guess.size() != n) {
            throw AnalysisError("solve_op_nr: initial guess size mismatch");
        }
        result.x = options.initial_guess;
    }
    if (options.record_trace) {
        result.trace.push_back(result.x);
    }

    linalg::Vector prev2; // iterate two steps back, for cycle detection
    for (int it = 0; it < options.max_iterations; ++it) {
        linalg::Triplets g = assembler.static_g();
        assembler.add_time_varying_stamps(t, g);
        linalg::Vector rhs = assembler.rhs(t);
        if (source_scale != 1.0) {
            for (double& v : rhs) {
                v *= source_scale;
            }
        }
        assembler.add_nr_stamps(result.x, g, rhs);
        if (options.gmin > 0.0) {
            for (int k = 0; k < assembler.num_nodes(); ++k) {
                g.add(static_cast<std::size_t>(k),
                      static_cast<std::size_t>(k), options.gmin);
            }
        }

        linalg::Vector x_new;
        bool solved = false;
        try {
            if (failpoints::enabled()) {
                static auto& fp = failpoints::site("dc.singular");
                if (fp.fire()) {
                    throw SingularMatrixError("fail-point dc.singular fired");
                }
            }
            x_new = mna::solve_system(g, rhs);
            solved = true;
        } catch (const SingularMatrixError&) {
            // gmin rescue: retry with an escalating diagonal
            // regularisation — a structurally singular operating point
            // (floating node) solves at a tiny leak, and a diagnosed
            // AnalysisError replaces the raw pivot failure otherwise.
            for (const double gmin : {1e-9, 1e-6, 1e-3}) {
                linalg::Triplets g2 = g;
                for (int k = 0; k < assembler.num_nodes(); ++k) {
                    g2.add(static_cast<std::size_t>(k),
                           static_cast<std::size_t>(k), gmin);
                }
                try {
                    x_new = mna::solve_system(g2, rhs);
                    solved = true;
                    break;
                } catch (const SingularMatrixError&) {
                }
            }
            if (!solved) {
                throw AnalysisError(
                    "solve_op_nr: singular system at iteration " +
                    std::to_string(it) + "; gmin rescue exhausted");
            }
        }
        if (options.damping < 1.0) {
            for (std::size_t i = 0; i < n; ++i) {
                x_new[i] = result.x[i] +
                           options.damping * (x_new[i] - result.x[i]);
            }
        }

        // A NaN/Inf iterate (poisoned RHS, overflowed companion model)
        // must read as divergence — max_abs_diff's max() quietly drops
        // NaN operands, so an unchecked iterate could "converge" on
        // garbage.
        if (!std::all_of(x_new.begin(), x_new.end(),
                         [](double v) { return std::isfinite(v); })) {
            result.x = std::move(x_new);
            result.iterations = it + 1;
            result.residual = std::numeric_limits<double>::infinity();
            break; // converged stays false: diagnosed non-convergence
        }

        const double delta = linalg::max_abs_diff(x_new, result.x);
        const double scale = std::max(linalg::norm_inf(x_new), 1.0);
        result.iterations = it + 1;
        result.residual = delta;

        // Cycle (period-2 oscillation) detection: the NDR signature of
        // paper Fig. 2 — iterates bounce between two distant points.
        if (!prev2.empty()) {
            const double back = linalg::max_abs_diff(x_new, prev2);
            if (back < options.abstol + options.reltol * scale &&
                delta > 100.0 * (options.abstol + options.reltol * scale)) {
                result.oscillation_detected = true;
            }
        }
        prev2 = result.x;
        result.x = std::move(x_new);
        if (options.record_trace) {
            result.trace.push_back(result.x);
        }

        if (delta < options.abstol + options.reltol * scale) {
            result.converged = true;
            break;
        }
        if (result.oscillation_detected) {
            break; // further iterations just repeat the cycle
        }
    }
    result.flops = scope.counter();
    return result;
}

DcResult solve_op_source_stepping(const mna::MnaAssembler& assembler,
                                  const SourceSteppingOptions& options) {
    const FlopScope scope;
    NrOptions nr = options.nr;
    nr.record_trace = false;

    double lambda = 0.0;
    double dlambda = 1.0 / std::max(options.initial_steps, 1);
    DcResult last;
    last.x.assign(static_cast<std::size_t>(assembler.unknowns()), 0.0);
    int halvings = 0;
    int total_iterations = 0;

    while (lambda < 1.0) {
        const double target = std::min(1.0, lambda + dlambda);
        nr.initial_guess = last.x;
        DcResult step = solve_op_nr(assembler, nr, 0.0, target);
        total_iterations += step.iterations;
        if (step.converged) {
            lambda = target;
            last = std::move(step);
            // Gentle ramp acceleration after a success.
            dlambda = std::min(dlambda * 1.5, 1.0 - lambda + 1e-12);
        } else {
            dlambda /= 2.0;
            if (++halvings > options.max_halvings) {
                last.converged = false;
                last.iterations = total_iterations;
                last.flops = scope.counter();
                return last;
            }
        }
    }
    last.iterations = total_iterations;
    last.converged = true;
    last.flops = scope.counter();
    return last;
}

SweepResult dc_sweep_nr(Circuit& circuit,
                        const mna::MnaAssembler& assembler,
                        const std::string& source_name,
                        const linalg::Vector& values,
                        const NrOptions& options,
                        const AnalysisObserver* observer) {
    const FlopScope scope;
    SweepResult result;
    if (values.empty()) {
        throw AnalysisError("dc_sweep_nr: empty sweep");
    }
    NrOptions nr = options;
    const int total = static_cast<int>(values.size());
    for (const double v : values) {
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        swap_source_level(circuit, source_name, v);
        const DcResult point = solve_op_nr(assembler, nr);
        result.values.push_back(v);
        result.solutions.push_back(point.x);
        result.converged.push_back(point.converged);
        result.total_iterations += point.iterations;
        nr.initial_guess = point.x; // warm start the next point
        if (observer != nullptr) {
            const int done = static_cast<int>(result.values.size());
            observer->trial(done, total);
            observer->progress(static_cast<double>(done) / total);
        }
    }
    result.flops = scope.counter();
    return result;
}

SweepResult dc_sweep_nr(Circuit& circuit, const std::string& source_name,
                        const linalg::Vector& values,
                        const NrOptions& options,
                        const AnalysisObserver* observer) {
    if (values.empty()) {
        throw AnalysisError("dc_sweep_nr: empty sweep");
    }
    WaveformPtr saved = swap_source_level(circuit, source_name,
                                          values.front());
    SweepResult result;
    try {
        const mna::MnaAssembler assembler(circuit);
        result = dc_sweep_nr(circuit, assembler, source_name, values,
                             options, observer);
    } catch (...) {
        restore_source(circuit, source_name, std::move(saved));
        throw;
    }
    restore_source(circuit, source_name, std::move(saved));
    return result;
}

} // namespace nanosim::engines
