// Nano-Sim — Newton-Raphson DC analysis (the SPICE baseline).
//
// Solves G(x) x = b with damped Newton iterations on the MNA system,
// using each device's *differential* (tangent) conductance — the
// linearisation that malfunctions on non-monotonic I-V curves: inside an
// NDR region the tangent is negative and iterates can cycle between two
// points (paper Fig. 2) or walk to a wrong branch.  Failure modes are
// reported, not hidden, because reproducing them IS part of the paper.
//
// Convergence aids (options): gmin loading, source stepping
// (continuation in a 0->1 source scale), per-iteration update damping.
#ifndef NANOSIM_ENGINES_DC_NR_HPP
#define NANOSIM_ENGINES_DC_NR_HPP

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"

namespace nanosim::engines {

/// Options for the NR operating-point solver.
struct NrOptions {
    int max_iterations = 200;
    double abstol = 1e-9;  ///< absolute voltage tolerance [V]
    double reltol = 1e-6;  ///< relative tolerance vs iterate norm
    double gmin = 0.0;     ///< conductance loaded on every node diagonal
    double damping = 1.0;  ///< update scale in (0, 1]
    bool record_trace = false; ///< keep full iterate history (Fig. 2)
    /// Optional initial guess (size must equal unknowns; empty = zeros).
    linalg::Vector initial_guess;
};

/// Options for source-stepping continuation.
struct SourceSteppingOptions {
    NrOptions nr;
    int initial_steps = 10;    ///< first ramp resolution
    int max_halvings = 10;     ///< adaptive lambda-step reductions
};

/// One NR operating-point solve at time t (sources evaluated at t;
/// capacitors open, inductors short).  `source_scale` multiplies all
/// independent sources (used by continuation).
[[nodiscard]] DcResult solve_op_nr(const mna::MnaAssembler& assembler,
                                   const NrOptions& options = {},
                                   double t = 0.0,
                                   double source_scale = 1.0);

/// Operating point via source stepping: ramp sources from 0 to 100%,
/// warm-starting each solve, halving the ramp step on failure.
[[nodiscard]] DcResult
solve_op_source_stepping(const mna::MnaAssembler& assembler,
                         const SourceSteppingOptions& options = {});

/// DC sweep: set `source_name` (a VSource or ISource) to each value in
/// turn and solve with NR, warm-starting from the previous point.
/// The circuit is mutated (source waveform replaced) and restored after.
/// `observer` gets per-point trial callbacks and may cancel between
/// points (partial SweepResult flagged `aborted`).
[[nodiscard]] SweepResult dc_sweep_nr(Circuit& circuit,
                                      const std::string& source_name,
                                      const linalg::Vector& values,
                                      const NrOptions& options = {},
                                      const AnalysisObserver* observer = nullptr);

/// DC sweep against a caller-owned assembler built from `circuit` (the
/// SimSession path; the session's SourceWaveGuard owns the restore).
[[nodiscard]] SweepResult dc_sweep_nr(Circuit& circuit,
                                      const mna::MnaAssembler& assembler,
                                      const std::string& source_name,
                                      const linalg::Vector& values,
                                      const NrOptions& options,
                                      const AnalysisObserver* observer);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_DC_NR_HPP
