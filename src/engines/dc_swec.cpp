#include "engines/dc_swec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "devices/sources.hpp"
#include "engines/options_common.hpp"
#include "linalg/vecops.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

void validate(const SwecDcOptions& o) {
    constexpr const char* who = "solve_op_swec";
    require_positive(who, "c_pseudo", o.c_pseudo);
    require_positive(who, "dt_init", o.dt_init);
    require_at_least(who, "dt_max", o.dt_max, o.dt_init);
    require_at_least(who, "growth", o.growth, 1.0);
    require_positive(who, "settle_tol", o.settle_tol);
    require_at_least(who, "settle_checks", o.settle_checks, 1);
    require_at_least(who, "max_steps", o.max_steps, 1);
}

} // namespace

DcResult solve_op_swec(const mna::MnaAssembler& assembler,
                       const SwecDcOptions& options, double t,
                       double source_scale, mna::SystemCache* cache,
                       const AnalysisObserver* observer) {
    validate(options);
    const FlopScope scope;
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    const auto& nonlinear = assembler.nonlinear_devices();

    std::optional<mna::SystemCache> local_cache;
    if (cache == nullptr) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }
    const mna::SystemCache::Stats stats_before = cache->stats();
    cache->configure_tables(options.tables);

    DcResult result;
    result.x = options.initial_guess.empty()
                   ? linalg::Vector(n, 0.0)
                   : options.initial_guess;
    if (result.x.size() != n) {
        throw AnalysisError("solve_op_swec: initial guess size mismatch");
    }

    linalg::Vector rhs0 = cache->rhs(t);
    if (source_scale != 1.0) {
        for (double& v : rhs0) {
            v *= source_scale;
        }
    }

    std::vector<double> geq(nonlinear.size(), 0.0);
    double h = options.dt_init;
    int settled = 0;

    for (int step = 0; step < options.max_steps; ++step) {
        // Cooperative cancellation at pseudo-step granularity: the last
        // iterate is returned unconverged with `aborted` set.
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        const obs::Span step_span("step", "engine");
        // Chord conductances at the current state — the SWEC step needs
        // no prediction here because the march only has to *end* right.
        cache->eval_chords(result.x, {}, false, geq, {});
        for (std::size_t k = 0; k < nonlinear.size(); ++k) {
            geq[k] = std::max(geq[k], 0.0);
        }

        // (G_swec + C_pt/h) x_next = C_pt/h x + b  — backward Euler with
        // the artificial node capacitance C_pt on every node, restamped
        // in place through the cached system (node-diagonal slots
        // precomputed — no per-node slot search).
        linalg::Vector rhs = rhs0;
        cache->begin(0.0, rhs);
        cache->restamp_time_varying(t);
        cache->restamp_swec(geq);
        const double cg = options.c_pseudo / h;
        for (int node = 0; node < assembler.num_nodes(); ++node) {
            const auto r = static_cast<std::size_t>(node);
            cache->add_node_diag(r, cg);
            rhs[r] += cg * result.x[r];
        }

        linalg::Vector x_next = cache->solve(rhs);
        const double delta = linalg::max_abs_diff(x_next, result.x);
        result.x = std::move(x_next);
        result.iterations = step + 1;
        result.residual = delta;

        // A non-finite iterate cannot settle and cannot recover — the
        // pseudo-transient history term re-injects it forever.  Stop the
        // march immediately as diagnosed non-convergence.
        if (!std::isfinite(delta)) {
            result.residual = std::numeric_limits<double>::infinity();
            break;
        }

        if (delta < options.settle_tol) {
            if (++settled >= options.settle_checks) {
                result.converged = true;
                break;
            }
        } else {
            settled = 0;
        }
        h = std::min(h * options.growth, options.dt_max);
    }
    const mna::SystemCache::Stats& stats_after = cache->stats();
    result.solver_full_factors =
        stats_after.full_factors - stats_before.full_factors;
    result.solver_fast_refactors =
        stats_after.fast_refactors - stats_before.fast_refactors;
    result.solver_dense_solves =
        stats_after.dense_solves - stats_before.dense_solves;
    result.solver_ordering = make_ordering_stats(stats_after);
    result.solver_factor = make_factor_stats(stats_after);
    result.flops = scope.counter();
    return result;
}

SweepResult dc_sweep_swec(Circuit& circuit,
                          const mna::MnaAssembler& assembler,
                          const std::string& source_name,
                          const linalg::Vector& values,
                          const SwecDcOptions& options,
                          const AnalysisObserver* observer,
                          mna::SystemCache* cache) {
    const FlopScope scope;
    if (values.empty()) {
        throw AnalysisError("dc_sweep_swec: empty sweep");
    }
    auto set_level = [&](double v) {
        if (const Device* d = circuit.find(source_name); d != nullptr) {
            if (d->kind() == DeviceKind::vsource) {
                circuit.get_mutable<VSource>(source_name)
                    .set_wave(std::make_shared<DcWave>(v));
                return;
            }
            if (d->kind() == DeviceKind::isource) {
                circuit.get_mutable<ISource>(source_name)
                    .set_wave(std::make_shared<DcWave>(v));
                return;
            }
        }
        throw NetlistError("dc_sweep_swec: '" + source_name +
                           "' is not a V or I source");
    };

    SweepResult result;
    set_level(values.front());
    // One cache for the whole sweep: it re-solves the same structure at
    // every point, so the symbolic analysis is paid for exactly once —
    // or zero times when the caller shares an already-frozen one.
    std::optional<mna::SystemCache> local_cache;
    if (cache == nullptr) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }
    SwecDcOptions opt = options;
    const int total = static_cast<int>(values.size());
    for (const double v : values) {
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        const obs::Span point_span("sweep-point", "engine");
        set_level(v);
        const DcResult point = solve_op_swec(assembler, opt, 0.0, 1.0, cache);
        result.values.push_back(v);
        result.solutions.push_back(point.x);
        result.converged.push_back(point.converged);
        result.total_iterations += point.iterations;
        opt.initial_guess = point.x;
        // A warm-started continuation settles fast; start the next march
        // with a larger pseudo-step (clamped so the options stay valid).
        opt.dt_init = std::min(options.dt_init * 10.0, opt.dt_max);
        if (observer != nullptr) {
            const int done = static_cast<int>(result.values.size());
            observer->trial(done, total);
            observer->progress(static_cast<double>(done) / total);
        }
    }
    result.flops = scope.counter();
    return result;
}

SweepResult dc_sweep_swec(Circuit& circuit, const std::string& source_name,
                          const linalg::Vector& values,
                          const SwecDcOptions& options,
                          const AnalysisObserver* observer) {
    if (values.empty()) {
        throw AnalysisError("dc_sweep_swec: empty sweep");
    }
    // The assembler only caches structure (the swept DC level lives in
    // the source waveform, read per rhs evaluation), so building it once
    // up front is safe for the whole sweep.
    const mna::MnaAssembler assembler(circuit);
    return dc_sweep_swec(circuit, assembler, source_name, values, options,
                         observer, nullptr);
}

} // namespace nanosim::engines
