#include "engines/dc_swec.hpp"

#include <algorithm>
#include <cmath>

#include "devices/sources.hpp"
#include "linalg/vecops.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

DcResult solve_op_swec(const mna::MnaAssembler& assembler,
                       const SwecDcOptions& options, double t,
                       double source_scale) {
    const FlopScope scope;
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    const auto& nonlinear = assembler.nonlinear_devices();

    DcResult result;
    result.x = options.initial_guess.empty()
                   ? linalg::Vector(n, 0.0)
                   : options.initial_guess;
    if (result.x.size() != n) {
        throw AnalysisError("solve_op_swec: initial guess size mismatch");
    }

    linalg::Vector rhs0 = assembler.rhs(t);
    if (source_scale != 1.0) {
        for (double& v : rhs0) {
            v *= source_scale;
        }
    }

    std::vector<double> geq(nonlinear.size(), 0.0);
    double h = options.dt_init;
    int settled = 0;

    for (int step = 0; step < options.max_steps; ++step) {
        // Chord conductances at the current state — the SWEC step needs
        // no prediction here because the march only has to *end* right.
        const NodeVoltages v = assembler.view(result.x);
        for (std::size_t k = 0; k < nonlinear.size(); ++k) {
            geq[k] = std::max(nonlinear[k]->swec_conductance(v), 0.0);
        }

        // (G_swec + C_pt/h) x_next = C_pt/h x + b  — backward Euler with
        // the artificial node capacitance C_pt on every node.
        linalg::Triplets g = assembler.static_g();
        assembler.add_time_varying_stamps(t, g);
        assembler.add_swec_stamps(geq, g);
        const double cg = options.c_pseudo / h;
        linalg::Vector rhs = rhs0;
        for (int node = 0; node < assembler.num_nodes(); ++node) {
            const auto r = static_cast<std::size_t>(node);
            g.add(r, r, cg);
            rhs[r] += cg * result.x[r];
        }

        linalg::Vector x_next = mna::solve_system(g, rhs);
        const double delta = linalg::max_abs_diff(x_next, result.x);
        result.x = std::move(x_next);
        result.iterations = step + 1;
        result.residual = delta;

        if (delta < options.settle_tol) {
            if (++settled >= options.settle_checks) {
                result.converged = true;
                break;
            }
        } else {
            settled = 0;
        }
        h = std::min(h * options.growth, options.dt_max);
    }
    result.flops = scope.counter();
    return result;
}

SweepResult dc_sweep_swec(Circuit& circuit, const std::string& source_name,
                          const linalg::Vector& values,
                          const SwecDcOptions& options) {
    const FlopScope scope;
    if (values.empty()) {
        throw AnalysisError("dc_sweep_swec: empty sweep");
    }
    auto set_level = [&](double v) {
        if (const Device* d = circuit.find(source_name); d != nullptr) {
            if (d->kind() == DeviceKind::vsource) {
                circuit.get_mutable<VSource>(source_name)
                    .set_wave(std::make_shared<DcWave>(v));
                return;
            }
            if (d->kind() == DeviceKind::isource) {
                circuit.get_mutable<ISource>(source_name)
                    .set_wave(std::make_shared<DcWave>(v));
                return;
            }
        }
        throw NetlistError("dc_sweep_swec: '" + source_name +
                           "' is not a V or I source");
    };

    SweepResult result;
    set_level(values.front());
    const mna::MnaAssembler assembler(circuit);
    SwecDcOptions opt = options;
    for (const double v : values) {
        set_level(v);
        const DcResult point = solve_op_swec(assembler, opt);
        result.values.push_back(v);
        result.solutions.push_back(point.x);
        result.converged.push_back(point.converged);
        result.total_iterations += point.iterations;
        opt.initial_guess = point.x;
        // A warm-started continuation settles fast; start the next march
        // with a larger pseudo-step.
        opt.dt_init = options.dt_init * 10.0;
    }
    result.flops = scope.counter();
    return result;
}

} // namespace nanosim::engines
