// Nano-Sim — SWEC DC analysis (pseudo-transient).
//
// The paper's Sec. 5.1 DC experiments apply SWEC to operating-point
// computation.  SWEC has no nonlinear solve to run, so the operating
// point is reached by *pseudo-transient continuation*: an artificial
// capacitor is attached to every node, the circuit is marched in time
// with the SWEC transient update (one linear solve per step, chord
// conductances refreshed each step), and the march ends when the state
// stops moving.  Each step is non-iterative; the chord conductance is
// positive even across the NDR region, so the march cannot oscillate the
// way Newton-Raphson does (paper Fig. 7).
#ifndef NANOSIM_ENGINES_DC_SWEC_HPP
#define NANOSIM_ENGINES_DC_SWEC_HPP

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"

namespace nanosim::engines {

/// Pseudo-transient tuning.
struct SwecDcOptions {
    double c_pseudo = 1e-9;   ///< artificial node capacitance [F]
    double dt_init = 1e-6;    ///< initial pseudo-time step [s]
    double dt_max = 1e-2;
    double growth = 1.8;      ///< step growth per settled step
    double settle_tol = 1e-9; ///< |dx| threshold for steady state [V]
    int settle_checks = 3;    ///< consecutive settled steps required
    int max_steps = 2000;
    /// Opt-in tabulated chord models for the pseudo-transient march (see
    /// SwecTranOptions::tables); disabled = exact closed forms.
    TableConfig tables;
    /// Optional warm start (previous sweep point).
    linalg::Vector initial_guess;
};

/// Operating point by SWEC pseudo-transient.  `source_scale` multiplies
/// independent sources.  iterations in the result counts pseudo-steps.
/// `cache` optionally reuses a caller-owned SystemCache (and its symbolic
/// LU analysis) across calls — dc_sweep_swec passes one for the whole
/// sweep, SimSession its persistent one; nullptr makes the solve
/// self-contained.  `observer` may cancel the march at pseudo-step
/// granularity (the result carries the last iterate, `aborted` set).
[[nodiscard]] DcResult solve_op_swec(const mna::MnaAssembler& assembler,
                                     const SwecDcOptions& options = {},
                                     double t = 0.0,
                                     double source_scale = 1.0,
                                     mna::SystemCache* cache = nullptr,
                                     const AnalysisObserver* observer = nullptr);

/// DC sweep with SWEC, warm-starting every point from the previous
/// solution (the configuration of paper Fig. 7 / Table I).  Builds its
/// own assembler + cache for the circuit.
[[nodiscard]] SweepResult dc_sweep_swec(Circuit& circuit,
                                        const std::string& source_name,
                                        const linalg::Vector& values,
                                        const SwecDcOptions& options = {},
                                        const AnalysisObserver* observer = nullptr);

/// DC sweep against a caller-owned assembler (which must have been built
/// from `circuit`) and, optionally, a caller-owned SystemCache — the
/// SimSession path: the symbolic LU analysis is shared with every other
/// analysis on the same stamp pattern.  The swept source's waveform is
/// replaced per point; the caller owns restoring it (SimSession wraps
/// this in a SourceWaveGuard).  `observer` gets per-point trial
/// callbacks and may cancel between points.
[[nodiscard]] SweepResult dc_sweep_swec(Circuit& circuit,
                                        const mna::MnaAssembler& assembler,
                                        const std::string& source_name,
                                        const linalg::Vector& values,
                                        const SwecDcOptions& options,
                                        const AnalysisObserver* observer,
                                        mna::SystemCache* cache);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_DC_SWEC_HPP
