#include "engines/em_engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "devices/sources.hpp"
#include "engines/dc_swec.hpp"
#include "linalg/lu.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// B * dW accumulated into a vector (ISource sign convention: the noise
/// current is drawn out of pos and injected into neg).
void add_noise_injection(const mna::MnaAssembler& assembler,
                         std::span<const double> dw, linalg::Vector& out,
                         double gain) {
    const auto& noise = assembler.noise_sources();
    for (std::size_t k = 0; k < noise.size(); ++k) {
        const auto* src = static_cast<const NoiseCurrentSource*>(noise[k]);
        const double amp = gain * src->sigma() * dw[k];
        if (src->pos() != k_ground) {
            out[static_cast<std::size_t>(src->pos() - 1)] -= amp;
        }
        if (src->neg() != k_ground) {
            out[static_cast<std::size_t>(src->neg() - 1)] += amp;
        }
    }
}

} // namespace

EmEngine::EmEngine(const mna::MnaAssembler& assembler,
                   const EmOptions& options)
    : assembler_(&assembler), options_(options) {
    if (options_.t_stop <= 0.0 || options_.dt <= 0.0) {
        throw AnalysisError("EmEngine: t_stop and dt must be positive");
    }
    if (options_.dt > options_.t_stop) {
        throw AnalysisError("EmEngine: dt exceeds t_stop");
    }
    steps_ = static_cast<std::size_t>(
        std::llround(options_.t_stop / options_.dt));
    if (steps_ == 0) {
        steps_ = 1;
    }
    if (assembler.noise_sources().empty()) {
        throw AnalysisError(
            "EmEngine: circuit has no noise sources (nothing stochastic)");
    }
    if (options_.scheme == EmScheme::explicit_em) {
        check_explicit_feasible();
    }
}

void EmEngine::check_explicit_feasible() const {
    if (assembler_->num_branches() != 0) {
        throw AnalysisError(
            "EmEngine(explicit): branch unknowns (V sources / inductors) "
            "make C singular; use EmScheme::implicit_be");
    }
    // Every node needs capacitance for C to be invertible.
    const auto& c = assembler_->c_csr();
    for (int j = 0; j < assembler_->num_nodes(); ++j) {
        const auto r = static_cast<std::size_t>(j);
        if (c.at(r, r) == 0.0) {
            throw AnalysisError(
                "EmEngine(explicit): node '" +
                assembler_->circuit().node_name(j + 1) +
                "' carries no capacitance; C is singular — use "
                "EmScheme::implicit_be");
        }
    }
}

linalg::Vector EmEngine::initial_state() const {
    const auto n = static_cast<std::size_t>(assembler_->unknowns());
    if (!options_.initial.empty()) {
        if (options_.initial.size() != n) {
            throw AnalysisError("EmEngine: initial size mismatch");
        }
        return options_.initial;
    }
    if (options_.start_from_dc) {
        return solve_op_swec(*assembler_).x;
    }
    return linalg::Vector(n, 0.0);
}

EmPathResult EmEngine::run_path(stochastic::Rng& rng) const {
    std::vector<stochastic::WienerPath> paths;
    paths.reserve(assembler_->noise_sources().size());
    for (std::size_t k = 0; k < assembler_->noise_sources().size(); ++k) {
        paths.emplace_back(rng, options_.t_stop, steps_);
    }
    return run_path(paths);
}

EmPathResult
EmEngine::run_path(std::span<const stochastic::WienerPath> paths) const {
    const FlopScope scope;
    if (paths.size() != assembler_->noise_sources().size()) {
        throw AnalysisError("EmEngine: need one Wiener path per source");
    }
    for (const auto& p : paths) {
        if (p.steps() != steps_) {
            throw AnalysisError(
                "EmEngine: Wiener path grid does not match engine grid");
        }
    }
    const auto n = static_cast<std::size_t>(assembler_->unknowns());
    const auto& nonlinear = assembler_->nonlinear_devices();
    const double dt = options_.t_stop / static_cast<double>(steps_);

    linalg::Vector x = initial_state();

    EmPathResult result;
    for (int i = 0; i < assembler_->num_nodes(); ++i) {
        result.node_waves.emplace_back(
            "v(" + assembler_->circuit().node_name(i + 1) + ")");
    }
    auto record = [&](double t, const linalg::Vector& state) {
        for (int i = 0; i < assembler_->num_nodes(); ++i) {
            result.node_waves[static_cast<std::size_t>(i)].append(
                t, state[static_cast<std::size_t>(i)]);
        }
    };
    record(0.0, x);

    // Explicit scheme: factor C once.
    std::unique_ptr<linalg::DenseLu> c_lu;
    if (options_.scheme == EmScheme::explicit_em) {
        c_lu = std::make_unique<linalg::DenseLu>(
            assembler_->c_triplets().to_dense());
    }

    std::vector<double> geq(nonlinear.size(), 0.0);
    std::vector<double> dw(paths.size(), 0.0);

    for (std::size_t j = 0; j < steps_; ++j) {
        const double t = dt * static_cast<double>(j);
        const double t_next = t + dt;
        for (std::size_t k = 0; k < paths.size(); ++k) {
            dw[k] = paths[k].increment(j);
        }

        // Assemble G(t): static + time-varying + SWEC chords at X_j.
        linalg::Triplets g = assembler_->static_g();
        assembler_->add_time_varying_stamps(t, g);
        if (!nonlinear.empty()) {
            const NodeVoltages v = assembler_->view(x);
            for (std::size_t k = 0; k < nonlinear.size(); ++k) {
                geq[k] = options_.swec_update
                             ? std::max(nonlinear[k]->swec_conductance(v),
                                        0.0)
                             : geq[k];
            }
            assembler_->add_swec_stamps(geq, g);
        }

        if (options_.scheme == EmScheme::explicit_em) {
            // z solves C z = dt (b - G x) + B dW;  x += z   (eq. 18).
            const linalg::CsrMatrix g_csr(g);
            const linalg::Vector gx = g_csr.multiply(x);
            linalg::Vector rhs = assembler_->rhs(t);
            for (std::size_t i = 0; i < n; ++i) {
                rhs[i] = dt * (rhs[i] - gx[i]);
            }
            add_noise_injection(*assembler_, dw, rhs, 1.0);
            const linalg::Vector z = c_lu->solve(rhs);
            for (std::size_t i = 0; i < n; ++i) {
                x[i] += z[i];
            }
        } else {
            // (C/dt + G) x' = (C/dt) x + b + B dW/dt.
            linalg::Triplets a = g;
            linalg::Vector rhs = assembler_->rhs(t_next);
            const linalg::Vector cx = assembler_->c_csr().multiply(x);
            for (std::size_t i = 0; i < n; ++i) {
                rhs[i] += cx[i] / dt;
            }
            for (const auto& e : assembler_->c_triplets().entries()) {
                a.add(e.row, e.col, e.value / dt);
            }
            add_noise_injection(*assembler_, dw, rhs, 1.0 / dt);
            x = mna::solve_system(a, rhs);
        }
        record(t_next, x);
    }

    result.flops = scope.counter();
    return result;
}

EmEnsembleResult EmEngine::run_ensemble(int num_paths, stochastic::Rng& rng,
                                        NodeId node,
                                        const AnalysisObserver* observer) const {
    const FlopScope scope;
    if (num_paths < 1) {
        throw AnalysisError("EmEngine::run_ensemble: need >= 1 path");
    }
    if (node == k_ground || node > assembler_->num_nodes()) {
        throw AnalysisError("EmEngine::run_ensemble: bad node");
    }
    const double dt = options_.t_stop / static_cast<double>(steps_);

    EmEnsembleResult out{.grid = {},
                         .mean = analysis::Waveform("mean"),
                         .stddev = analysis::Waveform("stddev"),
                         .stats = stochastic::EnsembleStats(steps_ + 1),
                         .aborted = false,
                         .flops = {}};
    out.grid.resize(steps_ + 1);
    for (std::size_t j = 0; j <= steps_; ++j) {
        out.grid[j] = dt * static_cast<double>(j);
    }

    const auto node_idx = static_cast<std::size_t>(node - 1);
    std::vector<double> samples(steps_ + 1);
    for (int p = 0; p < num_paths; ++p) {
        if (observer != nullptr && observer->cancelled()) {
            out.aborted = true;
            break;
        }
        const obs::Span path_span("trial", "em");
        const EmPathResult path = run_path(rng);
        const auto& w = path.node_waves[node_idx];
        for (std::size_t j = 0; j <= steps_; ++j) {
            samples[j] = w.value_at(j);
        }
        out.stats.add_path(samples);
        if (observer != nullptr) {
            observer->trial(p + 1, num_paths);
            observer->progress(static_cast<double>(p + 1) / num_paths);
        }
    }

    for (std::size_t j = 0; j <= steps_; ++j) {
        out.mean.append(out.grid[j], out.stats.at(j).mean());
        out.stddev.append(out.grid[j], out.stats.at(j).stddev());
    }
    out.flops = scope.counter();
    return out;
}

} // namespace nanosim::engines
