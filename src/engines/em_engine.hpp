// Nano-Sim — Euler-Maruyama stochastic transient engine (paper Sec. 4).
//
// Integrates the circuit SDE (paper eqs. 13/17)
//
//     C dX = (b(t) - G(t) X) dt + B dW(t)
//
// with the Euler-Maruyama update (eq. 18, Ito convention):
//
//     X_{j+1} = X_j + dt C^{-1} (b - G X_j) + C^{-1} B  dW_j ,
//
// where B has one column per white-noise current source (entries follow
// the ISource injection convention) and dW_j ~ N(0, dt) are Wiener
// increments.  G(t) is refreshed each step: time-varying linear devices
// by their known G(t), nonlinear devices by their SWEC chord conductance
// at the current state — this is how the paper's two contributions
// compose ("Since G is time variant, Equation (13) also includes cases
// with the nonlinear nanodevices").
//
// Schemes:
//  * explicit  — the paper's eq. (18).  Requires an invertible C (every
//    node must carry capacitance and the circuit must have no branch
//    unknowns); C is factored once.
//  * implicit  — stochastic backward Euler,
//        (C/dt + G) X_{j+1} = (C/dt) X_j + b + B dW_j / dt,
//    unconditionally stable and tolerant of singular C.  Offered as the
//    production default and as the ablation contrast for the stability
//    study of the explicit scheme.
#ifndef NANOSIM_ENGINES_EM_ENGINE_HPP
#define NANOSIM_ENGINES_EM_ENGINE_HPP

#include <span>

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"
#include "stochastic/wiener.hpp"

namespace nanosim::engines {

/// Integration scheme for the SDE.
enum class EmScheme {
    explicit_em, ///< paper eq. (18)
    implicit_be, ///< stochastic backward Euler
};

/// EM engine options.
struct EmOptions {
    double t_stop = 0.0; ///< horizon [s] (required)
    double dt = 0.0;     ///< uniform step [s] (required)
    EmScheme scheme = EmScheme::explicit_em;
    bool swec_update = true; ///< refresh chord conductances per step
    bool start_from_dc = false;
    linalg::Vector initial; ///< explicit IC (size = unknowns)
};

/// One sample path result: per-node waveforms on the uniform grid.
struct EmPathResult {
    std::vector<analysis::Waveform> node_waves;
    FlopCounter flops;
};

/// Ensemble result for one observed node.
struct EmEnsembleResult {
    std::vector<double> grid;          ///< time samples (L+1 points)
    analysis::Waveform mean;           ///< E[V_node(t)]
    analysis::Waveform stddev;         ///< sqrt(Var[V_node(t)])
    stochastic::EnsembleStats stats;   ///< full per-point + peak stats
    /// True when an AnalysisObserver cancelled the ensemble; statistics
    /// cover the paths completed before the abort.
    bool aborted = false;
    FlopCounter flops;
};

/// Euler-Maruyama engine bound to one assembled circuit.
class EmEngine {
public:
    /// Validates options and (for the explicit scheme) that C is usable.
    EmEngine(const mna::MnaAssembler& assembler, const EmOptions& options);

    /// Number of grid steps L = t_stop / dt.
    [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

    /// The validated options this engine was built with.
    [[nodiscard]] const EmOptions& options() const noexcept {
        return options_;
    }

    /// Run one path, sampling Wiener increments from `rng`.
    [[nodiscard]] EmPathResult run_path(stochastic::Rng& rng) const;

    /// Run one path against SUPPLIED Wiener paths (one per noise source,
    /// each with exactly steps() increments) — the hook for strong
    /// (path-wise) comparison against a reference solution.
    [[nodiscard]] EmPathResult
    run_path(std::span<const stochastic::WienerPath> paths) const;

    /// Run an ensemble and aggregate the voltage of `node`.  `observer`
    /// gets per-path trial callbacks and may cancel between paths.
    [[nodiscard]] EmEnsembleResult
    run_ensemble(int num_paths, stochastic::Rng& rng, NodeId node,
                 const AnalysisObserver* observer = nullptr) const;

private:
    [[nodiscard]] linalg::Vector initial_state() const;
    void check_explicit_feasible() const;

    const mna::MnaAssembler* assembler_;
    EmOptions options_;
    std::size_t steps_ = 0;
};

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_EM_ENGINE_HPP
