#include "engines/mc_batch.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "engines/swec_stepper.hpp"
#include "mna/system_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// One trial in flight: its stepper plus the round-local solve slot.
struct Lane {
    int trial = -1;
    std::unique_ptr<SwecStepper> stepper;
    std::chrono::steady_clock::time_point t0;
};

} // namespace

McResult run_monte_carlo_batched(const mna::MnaAssembler& assembler,
                                 const McOptions& options_in,
                                 stochastic::Rng& rng, NodeId node, int batch,
                                 const AnalysisObserver* observer,
                                 mna::SystemCache* cache) {
    const FlopScope scope;
    const McOptions options = normalize_mc_options(assembler, options_in, node);
    const int width = std::clamp(batch, 1, options.runs);

    // Same base-seed derivation and shared path set as the serial driver:
    // trial k's noise is identical no matter which driver runs it.
    const std::uint64_t base = rng.engine()();
    const stochastic::NoisePathSet noise =
        mc_noise_paths(assembler, options, base);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .probes = {},
                 .trial_steps = {},
                 .aborted = false,
                 .flops = {}};
    for (const NodeId probe : options.probe_nodes) {
        const std::string name = assembler.circuit().node_name(probe);
        out.probes.push_back(McNodeStats{
            .node = probe,
            .name = name,
            .mean = analysis::Waveform("mean(v(" + name + "))"),
            .stddev = analysis::Waveform("stddev(v(" + name + "))"),
            .stats = stochastic::EnsembleStats(options.grid_points)});
    }

    // The lanes need one shared solver cache (it is what the plane
    // capture snapshots).  Without a caller-owned one, own one here —
    // the serial-equivalent of run_monte_carlo with a shared cache.
    std::optional<mna::SystemCache> local_cache;
    if (cache == nullptr) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }

    obs::Histogram* trial_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& th = obs::metrics().histogram(
            "mc.trial_s", obs::time_buckets());
        trial_hist = &th;
    }

    // Sample one finished transient on the statistics grid — the exact
    // epilogue of mc_realization.
    auto finish = [&](TranResult res) {
        McTrial t;
        t.steps_accepted = res.steps_accepted;
        auto sample = [&](NodeId n) {
            const auto& wave = res.node_waves[static_cast<std::size_t>(n - 1)];
            std::vector<double> samples(out.grid.size());
            for (std::size_t j = 0; j < out.grid.size(); ++j) {
                samples[j] = wave.at(out.grid[j]);
            }
            return samples;
        };
        t.samples = sample(node);
        t.probe_samples.reserve(options.probe_nodes.size());
        for (const NodeId probe : options.probe_nodes) {
            t.probe_samples.push_back(sample(probe));
        }
        return t;
    };

    // Cancellation is forwarded to the lane steppers' observer slots at
    // the serial driver's step granularity (trial/progress stay here).
    const AnalysisObserver inner = cancel_only(observer);
    const AnalysisObserver* inner_ptr = observer != nullptr ? &inner : nullptr;

    std::vector<Lane> lanes;
    lanes.reserve(static_cast<std::size_t>(width));
    int next_trial = 0; ///< next trial to admit to the frontier
    int next_emit = 0;  ///< next trial to fold into the statistics
    std::map<int, McTrial> finished; ///< completed, awaiting prefix emission
    bool cancelled = false;

    // Admit trials in order: trial 0 enters first, so the cold cache's
    // symbolic analysis and full factor see the same first operands as
    // under the serial driver.
    auto admit = [&]() {
        while (!cancelled && next_trial < options.runs &&
               lanes.size() < static_cast<std::size_t>(width)) {
            Lane lane;
            lane.trial = next_trial++;
            lane.t0 = std::chrono::steady_clock::now();
            SwecTranOptions tran = options.tran;
            tran.noise = mc_noise_waves(noise, lane.trial);
            lane.stepper = std::make_unique<SwecStepper>(
                assembler, resolve_swec_tran_options(tran), *cache,
                /*dc_through_cache=*/true);
            lanes.push_back(std::move(lane));
        }
    };
    admit();

    std::vector<mna::SystemCache::EvalLane> eval_reqs;
    std::vector<mna::SystemCache::SolveLane> round;
    std::vector<std::size_t> round_lane; // lane index per round slot

    while (!lanes.empty()) {
        if (observer != nullptr && observer->cancelled()) {
            // Active lanes are partial trials — discarding them is what
            // the serial driver does with its one in-flight transient.
            cancelled = true;
            out.aborted = true;
            break;
        }
        const obs::Span round_span("mc_round", "mc");

        // (a) Chord evaluation, batched across the frontier.
        eval_reqs.clear();
        for (Lane& lane : lanes) {
            eval_reqs.push_back(lane.stepper->eval_request());
        }
        cache->eval_chords_batch(eval_reqs);
        for (Lane& lane : lanes) {
            lane.stepper->prepare();
        }

        // (b) Stamp each lane and snapshot its value plane.  Lanes the
        // cache cannot snapshot (pattern overflow) solve inline — the
        // stamped system is about to be overwritten by the next lane.
        round.clear();
        round_lane.clear();
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            SwecStepper& stepper = *lanes[i].stepper;
            stepper.stamp();
            mna::SystemCache::SolveLane slot;
            if (!cache->capture_plane(slot.values)) {
                stepper.accept(cache->solve(stepper.rhs()), inner_ptr);
                continue;
            }
            slot.rhs = stepper.rhs();
            round.push_back(std::move(slot));
            round_lane.push_back(i);
        }

        // (c) One batched refactor dispatch + grouped multi-RHS solves.
        cache->solve_batch(round);
        for (std::size_t k = 0; k < round.size(); ++k) {
            lanes[round_lane[k]].stepper->accept(std::move(round[k].x),
                                                 inner_ptr);
        }

        // Retire finished lanes into the emission buffer.
        for (std::size_t i = 0; i < lanes.size();) {
            if (!lanes[i].stepper->done()) {
                ++i;
                continue;
            }
            if (trial_hist != nullptr) {
                trial_hist->observe(std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() -
                                        lanes[i].t0)
                                        .count());
            }
            finished.emplace(lanes[i].trial,
                             finish(lanes[i].stepper->take_result()));
            lanes.erase(lanes.begin() + static_cast<std::ptrdiff_t>(i));
        }

        // Emit the completed prefix in strict trial order, re-checking
        // the cancel flag before each trial exactly like the serial
        // loop's per-trial gate — a cancel keeps the same trial prefix.
        while (true) {
            auto it = finished.find(next_emit);
            if (it == finished.end()) {
                break;
            }
            if (observer != nullptr && observer->cancelled()) {
                cancelled = true;
                out.aborted = true;
                break;
            }
            McTrial& t = it->second;
            out.stats.add_path(t.samples);
            out.trial_steps.push_back(t.steps_accepted);
            for (std::size_t k = 0; k < out.probes.size(); ++k) {
                out.probes[k].stats.add_path(t.probe_samples[k]);
            }
            finished.erase(it);
            ++next_emit;
            if (observer != nullptr) {
                observer->trial(next_emit, options.runs);
                observer->progress(static_cast<double>(next_emit) /
                                   options.runs);
            }
        }
        if (cancelled) {
            break;
        }
        admit();
    }

    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
        for (McNodeStats& probe : out.probes) {
            const auto& p = probe.stats.at(j);
            probe.mean.append(out.grid[j], p.mean());
            probe.stddev.append(out.grid[j], p.stddev());
        }
    }
    out.flops = scope.counter();
    return out;
}

} // namespace nanosim::engines
