#include "engines/mc_batch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "engines/swec_stepper.hpp"
#include "mna/system_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// One trial in flight: its stepper plus the round-local solve slot.
struct Lane {
    int trial = -1;
    std::unique_ptr<SwecStepper> stepper;
    std::chrono::steady_clock::time_point t0;
    bool failed = false; ///< rescue ladder exhausted — retire quarantined
    std::string diagnostic;
};

/// A retired trial awaiting prefix emission: either its samples or its
/// quarantine diagnostic.
struct Retired {
    McTrial trial;
    bool failed = false;
    std::string diagnostic;
};

[[nodiscard]] bool all_finite(const linalg::Vector& x) noexcept {
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (!std::isfinite(x[i])) {
            return false;
        }
    }
    return true;
}

} // namespace

McResult run_monte_carlo_batched(const mna::MnaAssembler& assembler,
                                 const McOptions& options_in,
                                 stochastic::Rng& rng, NodeId node, int batch,
                                 const AnalysisObserver* observer,
                                 mna::SystemCache* cache) {
    const FlopScope scope;
    const McOptions options = normalize_mc_options(assembler, options_in, node);
    const int width = std::clamp(batch, 1, options.runs);

    // Same base-seed derivation and shared path set as the serial driver:
    // trial k's noise is identical no matter which driver runs it.  A
    // resumed campaign reuses the checkpoint's base seed instead.
    const std::uint64_t base = options.resume != nullptr
                                   ? options.resume->base_seed
                                   : rng.engine()();
    const stochastic::NoisePathSet noise =
        mc_noise_paths(assembler, options, base);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .probes = {},
                 .trial_steps = {},
                 .aborted = false,
                 .flops = {}};
    for (const NodeId probe : options.probe_nodes) {
        const std::string name = assembler.circuit().node_name(probe);
        out.probes.push_back(McNodeStats{
            .node = probe,
            .name = name,
            .mean = analysis::Waveform("mean(v(" + name + "))"),
            .stddev = analysis::Waveform("stddev(v(" + name + "))"),
            .stats = stochastic::EnsembleStats(options.grid_points)});
    }

    // The lanes need one shared solver cache (it is what the plane
    // capture snapshots).  Without a caller-owned one, own one here —
    // the serial-equivalent of run_monte_carlo with a shared cache.
    std::optional<mna::SystemCache> local_cache;
    if (cache == nullptr) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }

    obs::Histogram* trial_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& th = obs::metrics().histogram(
            "mc.trial_s", obs::time_buckets());
        trial_hist = &th;
    }

    // Sample one finished transient on the statistics grid — the exact
    // epilogue of mc_realization.
    auto finish = [&](TranResult res) {
        McTrial t;
        t.steps_accepted = res.steps_accepted;
        t.rescues = res.rescues;
        auto sample = [&](NodeId n) {
            const auto& wave = res.node_waves[static_cast<std::size_t>(n - 1)];
            std::vector<double> samples(out.grid.size());
            for (std::size_t j = 0; j < out.grid.size(); ++j) {
                samples[j] = wave.at(out.grid[j]);
            }
            return samples;
        };
        t.samples = sample(node);
        t.probe_samples.reserve(options.probe_nodes.size());
        for (const NodeId probe : options.probe_nodes) {
            t.probe_samples.push_back(sample(probe));
        }
        return t;
    };

    // Cancellation is forwarded to the lane steppers' observer slots at
    // the serial driver's step granularity (trial/progress stay here).
    const AnalysisObserver inner = cancel_only(observer);
    const AnalysisObserver* inner_ptr = observer != nullptr ? &inner : nullptr;

    // Resume: restore the accumulators and start admission where the
    // checkpoint stopped, seeding the flop tally from it.
    FlopCounter flop_base;
    int first = 0;
    if (options.resume != nullptr) {
        first = restore_mc_checkpoint(*options.resume, options, out);
        flop_base = options.resume->flops;
    }

    std::vector<Lane> lanes;
    lanes.reserve(static_cast<std::size_t>(width));
    int next_trial = first; ///< next trial to admit to the frontier
    int next_emit = first;  ///< next trial to fold into the statistics
    int admit_limit = options.runs; ///< frontier cap (checkpoint chunking)
    std::map<int, Retired> finished; ///< retired, awaiting prefix emission
    bool cancelled = false;

    // Admit trials in order: trial 0 enters first, so the cold cache's
    // symbolic analysis and full factor see the same first operands as
    // under the serial driver.  A trial the `mc.trial_fail` site rejects
    // (evaluated here, in trial order — same decisions as the serial
    // driver) or whose initial-condition solve throws is quarantined
    // without ever occupying a lane.
    auto admit = [&]() {
        while (!cancelled && next_trial < admit_limit &&
               lanes.size() < static_cast<std::size_t>(width)) {
            Lane lane;
            lane.trial = next_trial++;
            lane.t0 = std::chrono::steady_clock::now();
            try {
                if (mc_trial_fail_injected()) {
                    throw AnalysisError("fail-point mc.trial_fail fired");
                }
                SwecTranOptions tran = options.tran;
                tran.noise = mc_noise_waves(noise, lane.trial);
                lane.stepper = std::make_unique<SwecStepper>(
                    assembler, resolve_swec_tran_options(tran), *cache,
                    /*dc_through_cache=*/true);
            } catch (const SimError& e) {
                finished.emplace(lane.trial,
                                 Retired{{}, true, e.what()});
                continue;
            }
            lanes.push_back(std::move(lane));
        }
    };

    std::vector<mna::SystemCache::EvalLane> eval_reqs;
    std::vector<mna::SystemCache::SolveLane> round;
    std::vector<std::size_t> round_lane; // lane index per round slot

    // A lane whose batched solve came back unusable re-stamps its own
    // system and walks the stepper's rescue ladder; exhaustion
    // quarantines just that lane.
    auto accept_or_rescue = [&](Lane& lane, linalg::Vector x) {
        if (all_finite(x)) {
            lane.stepper->accept(std::move(x), inner_ptr);
            return;
        }
        try {
            lane.stepper->stamp();
            lane.stepper->accept(lane.stepper->solve_rescued(), inner_ptr);
        } catch (const SimError& e) {
            lane.failed = true;
            lane.diagnostic = e.what();
        }
    };

    while (true) {
        // Checkpoint chunking: cap admission at the next checkpoint
        // boundary so the frontier drains there — with no trial in
        // flight the flop tally is exactly the emitted prefix's, and the
        // checkpoint matches the serial driver's field for field.
        if (options.checkpoint_every > 0) {
            const int every = options.checkpoint_every;
            admit_limit = std::min(options.runs,
                                   (next_emit / every + 1) * every);
        }
        admit();
        if (lanes.empty() && next_emit >= options.runs) {
            break;
        }
        if (observer != nullptr && observer->cancelled()) {
            // Active lanes are partial trials — discarding them is what
            // the serial driver does with its one in-flight transient.
            cancelled = true;
            out.aborted = true;
            break;
        }
        if (!lanes.empty()) {
            const obs::Span round_span("mc_round", "mc");

            // (a) Chord evaluation, batched across the frontier.
            eval_reqs.clear();
            for (Lane& lane : lanes) {
                eval_reqs.push_back(lane.stepper->eval_request());
            }
            cache->eval_chords_batch(eval_reqs);
            for (Lane& lane : lanes) {
                lane.stepper->prepare();
            }

            // (b) Stamp each lane and snapshot its value plane.  Lanes
            // the cache cannot snapshot (pattern overflow) solve inline
            // — the stamped system is about to be overwritten by the
            // next lane — through the stepper's rescue ladder.
            round.clear();
            round_lane.clear();
            for (std::size_t i = 0; i < lanes.size(); ++i) {
                Lane& lane = lanes[i];
                SwecStepper& stepper = *lane.stepper;
                stepper.stamp();
                mna::SystemCache::SolveLane slot;
                if (!cache->capture_plane(slot.values)) {
                    try {
                        stepper.accept(stepper.solve_rescued(), inner_ptr);
                    } catch (const SimError& e) {
                        lane.failed = true;
                        lane.diagnostic = e.what();
                    }
                    continue;
                }
                slot.rhs = stepper.rhs();
                round.push_back(std::move(slot));
                round_lane.push_back(i);
            }

            // (c) One batched refactor dispatch + grouped multi-RHS
            // solves.  A singular (or injected-failure) plane fails the
            // whole dispatch, so replay the round lane by lane through
            // the rescue ladder — only genuinely unsolvable lanes
            // quarantine.
            bool batch_failed = false;
            try {
                cache->solve_batch(round);
            } catch (const SimError&) {
                batch_failed = true;
            }
            if (batch_failed) {
                for (const std::size_t i : round_lane) {
                    Lane& lane = lanes[i];
                    try {
                        lane.stepper->stamp();
                        lane.stepper->accept(lane.stepper->solve_rescued(),
                                             inner_ptr);
                    } catch (const SimError& e) {
                        lane.failed = true;
                        lane.diagnostic = e.what();
                    }
                }
            } else {
                for (std::size_t k = 0; k < round.size(); ++k) {
                    accept_or_rescue(lanes[round_lane[k]],
                                     std::move(round[k].x));
                }
            }
        }

        // Retire finished (and quarantined) lanes into the emission
        // buffer.
        for (std::size_t i = 0; i < lanes.size();) {
            Lane& lane = lanes[i];
            if (lane.failed) {
                finished.emplace(lane.trial,
                                 Retired{{}, true, std::move(lane.diagnostic)});
                lanes.erase(lanes.begin() + static_cast<std::ptrdiff_t>(i));
                continue;
            }
            if (!lane.stepper->done()) {
                ++i;
                continue;
            }
            if (trial_hist != nullptr) {
                trial_hist->observe(std::chrono::duration<double>(
                                        std::chrono::steady_clock::now() -
                                        lane.t0)
                                        .count());
            }
            finished.emplace(lane.trial,
                             Retired{finish(lane.stepper->take_result()),
                                     false,
                                     {}});
            lanes.erase(lanes.begin() + static_cast<std::ptrdiff_t>(i));
        }

        // Emit the completed prefix in strict trial order, re-checking
        // the cancel flag before each trial exactly like the serial
        // loop's per-trial gate — a cancel keeps the same trial prefix.
        while (true) {
            auto it = finished.find(next_emit);
            if (it == finished.end()) {
                break;
            }
            if (observer != nullptr && observer->cancelled()) {
                cancelled = true;
                out.aborted = true;
                break;
            }
            Retired& r = it->second;
            if (r.failed) {
                out.failed_trials.push_back(
                    McFailedTrial{next_emit, base, std::move(r.diagnostic)});
            } else {
                out.stats.add_path(r.trial.samples);
                out.trial_steps.push_back(r.trial.steps_accepted);
                for (std::size_t k = 0; k < out.probes.size(); ++k) {
                    out.probes[k].stats.add_path(r.trial.probe_samples[k]);
                }
                out.rescues += r.trial.rescues;
            }
            finished.erase(it);
            ++next_emit;
            if (observer != nullptr) {
                observer->trial(next_emit, options.runs);
                observer->progress(static_cast<double>(next_emit) /
                                   options.runs);
            }
            if (options.checkpoint_every > 0 &&
                next_emit % options.checkpoint_every == 0 &&
                next_emit < options.runs && lanes.empty()) {
                FlopCounter so_far = flop_base;
                so_far += scope.counter();
                emit_mc_checkpoint(observer, base, next_emit, options, out,
                                   so_far);
            }
        }
        if (cancelled) {
            break;
        }
    }

    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
        for (McNodeStats& probe : out.probes) {
            const auto& p = probe.stats.at(j);
            probe.mean.append(out.grid[j], p.mean());
            probe.stddev.append(out.grid[j], p.stddev());
        }
    }
    out.flops = flop_base;
    out.flops += scope.counter();
    return out;
}

} // namespace nanosim::engines
