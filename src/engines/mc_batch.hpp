// Nano-Sim — trial-batched Monte-Carlo driver.
//
// The serial driver runs each realization's transient to completion
// before starting the next, so every step pays a lone numeric refactor
// and a lone pair of triangular solves.  This driver keeps a
// *time-frontier* of up to K trials in flight and advances them in
// rounds; per round it
//
//   (a) batches chord evaluation across the active lanes through the
//       StampProgram SoA path (SystemCache::eval_chords_batch),
//   (b) batches the due numeric refactors through one ThreadPool
//       dispatch (SparseLu::refactor_lanes), and
//   (c) solves lanes that share a value plane bit-for-bit — linear
//       circuits, RHS-only noise perturbations — under a single factor
//       with the blocked multi-RHS substitution (SparseLu::solve_multi).
//
// Hard contract: per-trial adaptive step sequences, waveforms, and
// ensemble statistics are bit-identical to run_monte_carlo at any batch
// width and factor thread count.  Batching changes *when* shared work
// executes, never its operands: every lane's step arithmetic is the
// exact serial SwecStepper cycle on that lane's state, lane factors
// reproduce the serial refactor per plane, and any degraded pivot drops
// the whole round back to the serial solve path in lane order.
#ifndef NANOSIM_ENGINES_MC_BATCH_HPP
#define NANOSIM_ENGINES_MC_BATCH_HPP

#include "engines/monte_carlo.hpp"

namespace nanosim::engines {

/// Run the Monte-Carlo analysis with up to `batch` trials in flight
/// (clamped to [1, runs]).  Same contract as run_monte_carlo: `rng`
/// seeds the shared noise-path set, `observer` gets per-trial callbacks
/// in trial order and may cancel (statistics then cover the exact trial
/// prefix the serial driver would keep), `cache` shares one caller-owned
/// SystemCache across the lanes.  Without `cache` the driver owns one
/// internal cache shared by every lane — equivalent to the serial driver
/// *with* a shared cache, not to serial per-trial caches.
[[nodiscard]] McResult
run_monte_carlo_batched(const mna::MnaAssembler& assembler,
                        const McOptions& options, stochastic::Rng& rng,
                        NodeId node, int batch,
                        const AnalysisObserver* observer = nullptr,
                        mna::SystemCache* cache = nullptr);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_MC_BATCH_HPP
