#include "engines/monte_carlo.hpp"

#include <chrono>
#include <cmath>
#include <memory>

#include "devices/sources.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// Piecewise-constant sample-and-hold waveform on a uniform grid —
/// band-limited white noise for the deterministic engines.
class StepNoiseWave final : public Waveform {
public:
    StepNoiseWave(std::vector<double> samples, double dt)
        : samples_(std::move(samples)), dt_(dt) {}

    [[nodiscard]] double value(double t) const override {
        if (t < 0.0 || samples_.empty()) {
            return 0.0;
        }
        auto idx = static_cast<std::size_t>(t / dt_);
        idx = std::min(idx, samples_.size() - 1);
        return samples_[idx];
    }

    [[nodiscard]] double slope(double) const override { return 0.0; }

    [[nodiscard]] std::string describe() const override {
        return "NOISE(" + std::to_string(samples_.size()) + " holds)";
    }

private:
    std::vector<double> samples_;
    double dt_;
};

} // namespace

McOptions normalize_mc_options(const mna::MnaAssembler& assembler,
                               const McOptions& options_in, NodeId node) {
    McOptions options = options_in;
    if (options.t_stop <= 0.0 || options.runs < 1) {
        throw AnalysisError("run_monte_carlo: need t_stop > 0, runs >= 1");
    }
    if (options.grid_points < 2) {
        throw AnalysisError("run_monte_carlo: need grid_points >= 2");
    }
    if (options.noise_dt <= 0.0) {
        options.noise_dt = options.t_stop / 200.0;
    }
    if (node == k_ground || node > assembler.num_nodes()) {
        throw AnalysisError("run_monte_carlo: bad node");
    }
    for (const NodeId probe : options.probe_nodes) {
        if (probe == k_ground || probe > assembler.num_nodes()) {
            throw AnalysisError("run_monte_carlo: bad node");
        }
    }
    if (assembler.noise_sources().empty()) {
        throw AnalysisError("run_monte_carlo: circuit has no noise sources");
    }
    options.tran.t_stop = options.t_stop;
    // The deterministic transient must resolve the realized noise
    // bandwidth: capping the step at noise_dt is what makes Monte-Carlo
    // pay the full per-step engine cost the paper's Sec. 1 describes
    // (and what keeps its variance estimate unbiased).
    if (options.tran.dt_max <= 0.0 || options.tran.dt_max > options.noise_dt) {
        options.tran.dt_max = options.noise_dt;
    }
    return options;
}

std::vector<double> mc_grid(const McOptions& normalized) {
    std::vector<double> grid(normalized.grid_points);
    for (std::size_t j = 0; j < normalized.grid_points; ++j) {
        grid[j] = normalized.t_stop * static_cast<double>(j) /
                  static_cast<double>(normalized.grid_points - 1);
    }
    return grid;
}

stochastic::NoisePathSet mc_noise_paths(const mna::MnaAssembler& assembler,
                                        const McOptions& normalized,
                                        std::uint64_t base_seed) {
    std::vector<double> sigmas;
    sigmas.reserve(assembler.noise_sources().size());
    for (const Device* dev : assembler.noise_sources()) {
        sigmas.push_back(static_cast<const NoiseCurrentSource*>(dev)->sigma());
    }
    const auto holds = static_cast<std::size_t>(
        std::ceil(normalized.t_stop / normalized.noise_dt));
    return stochastic::NoisePathSet(base_seed, std::move(sigmas), holds,
                                    normalized.noise_dt);
}

mna::MnaAssembler::NoiseRealization
mc_noise_waves(const stochastic::NoisePathSet& noise, int trial) {
    mna::MnaAssembler::NoiseRealization waves;
    waves.reserve(noise.num_sources());
    for (std::size_t s = 0; s < noise.num_sources(); ++s) {
        waves.push_back(std::make_shared<StepNoiseWave>(
            noise.samples(trial, s), noise.noise_dt()));
    }
    return waves;
}

McTrial mc_realization(const mna::MnaAssembler& assembler,
                       const McOptions& normalized,
                       const stochastic::NoisePathSet& noise, int trial,
                       NodeId node, const std::vector<double>& grid,
                       const AnalysisObserver* observer,
                       mna::SystemCache* cache) {
    SwecTranOptions tran = normalized.tran;
    tran.noise = mc_noise_waves(noise, trial);

    // Cancellation forwarded at the inner transient's step granularity;
    // progress/step callbacks stay with the outer per-trial scale.
    const AnalysisObserver inner = cancel_only(observer);
    const TranResult res = run_tran_swec(
        assembler, tran, observer != nullptr ? &inner : nullptr, cache);
    if (res.aborted) {
        return {}; // partial trial: no usable samples
    }
    McTrial out;
    out.steps_accepted = res.steps_accepted;
    auto sample = [&](NodeId n) {
        const auto& wave = res.node_waves[static_cast<std::size_t>(n - 1)];
        std::vector<double> samples(grid.size());
        for (std::size_t j = 0; j < grid.size(); ++j) {
            samples[j] = wave.at(grid[j]);
        }
        return samples;
    };
    out.samples = sample(node);
    out.probe_samples.reserve(normalized.probe_nodes.size());
    for (const NodeId probe : normalized.probe_nodes) {
        out.probe_samples.push_back(sample(probe));
    }
    return out;
}

McResult run_monte_carlo(const mna::MnaAssembler& assembler,
                         const McOptions& options_in, stochastic::Rng& rng,
                         NodeId node, const AnalysisObserver* observer,
                         mna::SystemCache* cache) {
    const FlopScope scope;
    const McOptions options = normalize_mc_options(assembler, options_in, node);
    // One base seed drawn from the caller's generator; every trial's
    // paths then come from counter-derived streams, so the parallel and
    // batched drivers reproduce this ensemble exactly.
    const std::uint64_t base = rng.engine()();
    const stochastic::NoisePathSet noise =
        mc_noise_paths(assembler, options, base);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .probes = {},
                 .trial_steps = {},
                 .aborted = false,
                 .flops = {}};
    for (const NodeId probe : options.probe_nodes) {
        const std::string name = assembler.circuit().node_name(probe);
        out.probes.push_back(McNodeStats{
            .node = probe,
            .name = name,
            .mean = analysis::Waveform("mean(v(" + name + "))"),
            .stddev = analysis::Waveform("stddev(v(" + name + "))"),
            .stats = stochastic::EnsembleStats(options.grid_points)});
    }

    // Trial wall-time distribution (metrics on only).
    obs::Histogram* trial_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& th = obs::metrics().histogram(
            "mc.trial_s", obs::time_buckets());
        trial_hist = &th;
    }

    for (int run = 0; run < options.runs; ++run) {
        if (observer != nullptr && observer->cancelled()) {
            out.aborted = true;
            break;
        }
        const obs::Span trial_span("trial", "mc");
        const auto trial_t0 = std::chrono::steady_clock::now();
        McTrial trial = mc_realization(assembler, options, noise, run, node,
                                       out.grid, observer, cache);
        if (trial_hist != nullptr) {
            trial_hist->observe(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    trial_t0)
                                    .count());
        }
        if (trial.samples.empty()) { // trial cancelled mid-transient
            out.aborted = true;
            break;
        }
        out.stats.add_path(trial.samples);
        out.trial_steps.push_back(trial.steps_accepted);
        for (std::size_t k = 0; k < out.probes.size(); ++k) {
            out.probes[k].stats.add_path(trial.probe_samples[k]);
        }
        if (observer != nullptr) {
            observer->trial(run + 1, options.runs);
            observer->progress(static_cast<double>(run + 1) / options.runs);
        }
    }

    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
        for (McNodeStats& probe : out.probes) {
            const auto& p = probe.stats.at(j);
            probe.mean.append(out.grid[j], p.mean());
            probe.stddev.append(out.grid[j], p.stddev());
        }
    }
    out.flops = scope.counter();
    return out;
}

} // namespace nanosim::engines
