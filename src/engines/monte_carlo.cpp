#include "engines/monte_carlo.hpp"

#include <cmath>
#include <memory>

#include "devices/sources.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// Piecewise-constant sample-and-hold waveform on a uniform grid —
/// band-limited white noise for the deterministic engines.
class StepNoiseWave final : public Waveform {
public:
    StepNoiseWave(std::vector<double> samples, double dt)
        : samples_(std::move(samples)), dt_(dt) {}

    [[nodiscard]] double value(double t) const override {
        if (t < 0.0 || samples_.empty()) {
            return 0.0;
        }
        auto idx = static_cast<std::size_t>(t / dt_);
        idx = std::min(idx, samples_.size() - 1);
        return samples_[idx];
    }

    [[nodiscard]] double slope(double) const override { return 0.0; }

    [[nodiscard]] std::string describe() const override {
        return "NOISE(" + std::to_string(samples_.size()) + " holds)";
    }

private:
    std::vector<double> samples_;
    double dt_;
};

} // namespace

McResult run_monte_carlo(const mna::MnaAssembler& assembler,
                         const McOptions& options_in, stochastic::Rng& rng,
                         NodeId node) {
    const FlopScope scope;
    McOptions options = options_in;
    if (options.t_stop <= 0.0 || options.runs < 1) {
        throw AnalysisError("run_monte_carlo: need t_stop > 0, runs >= 1");
    }
    if (options.noise_dt <= 0.0) {
        options.noise_dt = options.t_stop / 200.0;
    }
    if (node == k_ground || node > assembler.num_nodes()) {
        throw AnalysisError("run_monte_carlo: bad node");
    }
    const auto& noise_srcs = assembler.noise_sources();
    if (noise_srcs.empty()) {
        throw AnalysisError("run_monte_carlo: circuit has no noise sources");
    }

    const auto holds = static_cast<std::size_t>(
        std::ceil(options.t_stop / options.noise_dt));
    const double sqrt_dt = std::sqrt(options.noise_dt);

    McResult out{.grid = {},
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .flops = {}};
    out.grid.resize(options.grid_points);
    for (std::size_t j = 0; j < options.grid_points; ++j) {
        out.grid[j] = options.t_stop * static_cast<double>(j) /
                      static_cast<double>(options.grid_points - 1);
    }

    SwecTranOptions tran = options.tran;
    tran.t_stop = options.t_stop;
    // The deterministic transient must resolve the realized noise
    // bandwidth: capping the step at noise_dt is what makes Monte-Carlo
    // pay the full per-step engine cost the paper's Sec. 1 describes
    // (and what keeps its variance estimate unbiased).
    if (tran.dt_max <= 0.0 || tran.dt_max > options.noise_dt) {
        tran.dt_max = options.noise_dt;
    }

    std::vector<double> samples(options.grid_points);
    const auto node_idx = static_cast<std::size_t>(node - 1);
    for (int run = 0; run < options.runs; ++run) {
        // Realise every noise source: i_k = sigma * xi / sqrt(dt) so the
        // per-interval integral is sigma * xi * sqrt(dt) = sigma dW.
        tran.noise.clear();
        for (const Device* dev : noise_srcs) {
            const auto* src = static_cast<const NoiseCurrentSource*>(dev);
            std::vector<double> hold(holds);
            for (auto& v : hold) {
                v = src->sigma() * rng.gauss() / sqrt_dt;
            }
            tran.noise.push_back(std::make_shared<StepNoiseWave>(
                std::move(hold), options.noise_dt));
        }

        const TranResult res = run_tran_swec(assembler, tran);
        const auto& wave = res.node_waves[node_idx];
        for (std::size_t j = 0; j < options.grid_points; ++j) {
            samples[j] = wave.at(out.grid[j]);
        }
        out.stats.add_path(samples);
    }

    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
    }
    out.flops = scope.counter();
    return out;
}

} // namespace nanosim::engines
