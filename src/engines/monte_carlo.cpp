#include "engines/monte_carlo.hpp"

#include <chrono>
#include <cmath>
#include <memory>

#include "devices/sources.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/failpoints.hpp"

namespace nanosim::engines {

namespace {

/// Piecewise-constant sample-and-hold waveform on a uniform grid —
/// band-limited white noise for the deterministic engines.
class StepNoiseWave final : public Waveform {
public:
    StepNoiseWave(std::vector<double> samples, double dt)
        : samples_(std::move(samples)), dt_(dt) {}

    [[nodiscard]] double value(double t) const override {
        if (t < 0.0 || samples_.empty()) {
            return 0.0;
        }
        auto idx = static_cast<std::size_t>(t / dt_);
        idx = std::min(idx, samples_.size() - 1);
        return samples_[idx];
    }

    [[nodiscard]] double slope(double) const override { return 0.0; }

    [[nodiscard]] std::string describe() const override {
        return "NOISE(" + std::to_string(samples_.size()) + " holds)";
    }

private:
    std::vector<double> samples_;
    double dt_;
};

} // namespace

McOptions normalize_mc_options(const mna::MnaAssembler& assembler,
                               const McOptions& options_in, NodeId node) {
    McOptions options = options_in;
    if (options.t_stop <= 0.0 || options.runs < 1) {
        throw AnalysisError("run_monte_carlo: need t_stop > 0, runs >= 1");
    }
    if (options.grid_points < 2) {
        throw AnalysisError("run_monte_carlo: need grid_points >= 2");
    }
    if (options.noise_dt <= 0.0) {
        options.noise_dt = options.t_stop / 200.0;
    }
    if (node == k_ground || node > assembler.num_nodes()) {
        throw AnalysisError("run_monte_carlo: bad node");
    }
    for (const NodeId probe : options.probe_nodes) {
        if (probe == k_ground || probe > assembler.num_nodes()) {
            throw AnalysisError("run_monte_carlo: bad node");
        }
    }
    if (assembler.noise_sources().empty()) {
        throw AnalysisError("run_monte_carlo: circuit has no noise sources");
    }
    options.tran.t_stop = options.t_stop;
    // The deterministic transient must resolve the realized noise
    // bandwidth: capping the step at noise_dt is what makes Monte-Carlo
    // pay the full per-step engine cost the paper's Sec. 1 describes
    // (and what keeps its variance estimate unbiased).
    if (options.tran.dt_max <= 0.0 || options.tran.dt_max > options.noise_dt) {
        options.tran.dt_max = options.noise_dt;
    }
    return options;
}

std::vector<double> mc_grid(const McOptions& normalized) {
    std::vector<double> grid(normalized.grid_points);
    for (std::size_t j = 0; j < normalized.grid_points; ++j) {
        grid[j] = normalized.t_stop * static_cast<double>(j) /
                  static_cast<double>(normalized.grid_points - 1);
    }
    return grid;
}

stochastic::NoisePathSet mc_noise_paths(const mna::MnaAssembler& assembler,
                                        const McOptions& normalized,
                                        std::uint64_t base_seed) {
    std::vector<double> sigmas;
    sigmas.reserve(assembler.noise_sources().size());
    for (const Device* dev : assembler.noise_sources()) {
        sigmas.push_back(static_cast<const NoiseCurrentSource*>(dev)->sigma());
    }
    const auto holds = static_cast<std::size_t>(
        std::ceil(normalized.t_stop / normalized.noise_dt));
    return stochastic::NoisePathSet(base_seed, std::move(sigmas), holds,
                                    normalized.noise_dt);
}

mna::MnaAssembler::NoiseRealization
mc_noise_waves(const stochastic::NoisePathSet& noise, int trial) {
    mna::MnaAssembler::NoiseRealization waves;
    waves.reserve(noise.num_sources());
    for (std::size_t s = 0; s < noise.num_sources(); ++s) {
        waves.push_back(std::make_shared<StepNoiseWave>(
            noise.samples(trial, s), noise.noise_dt()));
    }
    return waves;
}

McTrial mc_realization(const mna::MnaAssembler& assembler,
                       const McOptions& normalized,
                       const stochastic::NoisePathSet& noise, int trial,
                       NodeId node, const std::vector<double>& grid,
                       const AnalysisObserver* observer,
                       mna::SystemCache* cache) {
    SwecTranOptions tran = normalized.tran;
    tran.noise = mc_noise_waves(noise, trial);

    // Cancellation forwarded at the inner transient's step granularity;
    // progress/step callbacks stay with the outer per-trial scale.
    const AnalysisObserver inner = cancel_only(observer);
    const TranResult res = run_tran_swec(
        assembler, tran, observer != nullptr ? &inner : nullptr, cache);
    if (res.aborted) {
        return {}; // partial trial: no usable samples
    }
    McTrial out;
    out.steps_accepted = res.steps_accepted;
    out.rescues = res.rescues;
    auto sample = [&](NodeId n) {
        const auto& wave = res.node_waves[static_cast<std::size_t>(n - 1)];
        std::vector<double> samples(grid.size());
        for (std::size_t j = 0; j < grid.size(); ++j) {
            samples[j] = wave.at(grid[j]);
        }
        return samples;
    };
    out.samples = sample(node);
    out.probe_samples.reserve(normalized.probe_nodes.size());
    for (const NodeId probe : normalized.probe_nodes) {
        out.probe_samples.push_back(sample(probe));
    }
    return out;
}

bool mc_trial_fail_injected() {
    if (!failpoints::enabled()) {
        return false;
    }
    static auto& fp = failpoints::site("mc.trial_fail");
    return fp.fire();
}

McCheckpoint make_mc_checkpoint(std::uint64_t base_seed, int next_trial,
                                const McOptions& normalized,
                                const McResult& partial,
                                const FlopCounter& flops_so_far) {
    McCheckpoint cp;
    cp.base_seed = base_seed;
    cp.next_trial = next_trial;
    cp.runs = normalized.runs;
    cp.grid_points = normalized.grid_points;
    cp.primary = capture_ensemble(partial.stats);
    cp.probes.reserve(partial.probes.size());
    for (const McNodeStats& probe : partial.probes) {
        cp.probes.push_back(capture_ensemble(probe.stats));
    }
    cp.trial_steps = partial.trial_steps;
    cp.failed_trials = partial.failed_trials;
    cp.flops = flops_so_far;
    cp.rescues = partial.rescues;
    return cp;
}

void emit_mc_checkpoint(const AnalysisObserver* observer,
                        std::uint64_t base_seed, int next_trial,
                        const McOptions& normalized, const McResult& partial,
                        const FlopCounter& flops_so_far) {
    if (observer == nullptr || !observer->on_checkpoint) {
        return;
    }
    if (failpoints::enabled()) {
        static auto& fp = failpoints::site("mc.checkpoint_drop");
        if (fp.fire()) {
            return; // lost checkpoint: resume falls back to an older one
        }
    }
    observer->checkpoint(make_mc_checkpoint(base_seed, next_trial, normalized,
                                            partial, flops_so_far));
}

int restore_mc_checkpoint(const McCheckpoint& checkpoint,
                          const McOptions& normalized, McResult& out) {
    if (checkpoint.runs != normalized.runs ||
        checkpoint.grid_points != normalized.grid_points) {
        throw AnalysisError(
            "mc resume: checkpoint describes a different campaign (runs " +
            std::to_string(checkpoint.runs) + " vs " +
            std::to_string(normalized.runs) + ", grid " +
            std::to_string(checkpoint.grid_points) + " vs " +
            std::to_string(normalized.grid_points) + ")");
    }
    if (checkpoint.probes.size() != out.probes.size()) {
        throw AnalysisError("mc resume: checkpoint has " +
                            std::to_string(checkpoint.probes.size()) +
                            " probes, request has " +
                            std::to_string(out.probes.size()));
    }
    if (checkpoint.next_trial < 0 || checkpoint.next_trial > checkpoint.runs) {
        throw AnalysisError("mc resume: bad next_trial " +
                            std::to_string(checkpoint.next_trial));
    }
    restore_ensemble(out.stats, checkpoint.primary);
    for (std::size_t k = 0; k < out.probes.size(); ++k) {
        restore_ensemble(out.probes[k].stats, checkpoint.probes[k]);
    }
    out.trial_steps = checkpoint.trial_steps;
    out.failed_trials = checkpoint.failed_trials;
    out.rescues = checkpoint.rescues;
    return checkpoint.next_trial;
}

McResult run_monte_carlo(const mna::MnaAssembler& assembler,
                         const McOptions& options_in, stochastic::Rng& rng,
                         NodeId node, const AnalysisObserver* observer,
                         mna::SystemCache* cache) {
    const FlopScope scope;
    const McOptions options = normalize_mc_options(assembler, options_in, node);
    // One base seed drawn from the caller's generator; every trial's
    // paths then come from counter-derived streams, so the parallel and
    // batched drivers reproduce this ensemble exactly.  A resumed
    // campaign reuses the checkpoint's base seed instead of drawing.
    const std::uint64_t base = options.resume != nullptr
                                   ? options.resume->base_seed
                                   : rng.engine()();
    const stochastic::NoisePathSet noise =
        mc_noise_paths(assembler, options, base);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .probes = {},
                 .trial_steps = {},
                 .aborted = false,
                 .flops = {}};
    for (const NodeId probe : options.probe_nodes) {
        const std::string name = assembler.circuit().node_name(probe);
        out.probes.push_back(McNodeStats{
            .node = probe,
            .name = name,
            .mean = analysis::Waveform("mean(v(" + name + "))"),
            .stddev = analysis::Waveform("stddev(v(" + name + "))"),
            .stats = stochastic::EnsembleStats(options.grid_points)});
    }

    // Trial wall-time distribution (metrics on only).
    obs::Histogram* trial_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& th = obs::metrics().histogram(
            "mc.trial_s", obs::time_buckets());
        trial_hist = &th;
    }

    // Resume: restore the accumulators and continue where the checkpoint
    // stopped.  flop_base seeds the tally so the final count matches the
    // uninterrupted campaign (setup is uninstrumented on both sides).
    FlopCounter flop_base;
    int first = 0;
    if (options.resume != nullptr) {
        first = restore_mc_checkpoint(*options.resume, options, out);
        flop_base = options.resume->flops;
    }

    for (int run = first; run < options.runs; ++run) {
        if (observer != nullptr && observer->cancelled()) {
            out.aborted = true;
            break;
        }
        const obs::Span trial_span("trial", "mc");
        const auto trial_t0 = std::chrono::steady_clock::now();
        bool cancelled_mid_trial = false;
        try {
            if (mc_trial_fail_injected()) {
                throw AnalysisError("fail-point mc.trial_fail fired");
            }
            McTrial trial = mc_realization(assembler, options, noise, run,
                                           node, out.grid, observer, cache);
            if (trial.samples.empty()) { // trial cancelled mid-transient
                cancelled_mid_trial = true;
            } else {
                out.stats.add_path(trial.samples);
                out.trial_steps.push_back(trial.steps_accepted);
                for (std::size_t k = 0; k < out.probes.size(); ++k) {
                    out.probes[k].stats.add_path(trial.probe_samples[k]);
                }
                out.rescues += trial.rescues;
            }
        } catch (const SimError& e) {
            // Rescue ladder exhausted: quarantine the trial (seed +
            // diagnostic replay the failure offline) and keep going —
            // one pathological realization must not abort the campaign.
            out.failed_trials.push_back(
                McFailedTrial{run, base, e.what()});
        }
        if (trial_hist != nullptr) {
            trial_hist->observe(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    trial_t0)
                                    .count());
        }
        if (cancelled_mid_trial) {
            out.aborted = true;
            break;
        }
        if (observer != nullptr) {
            observer->trial(run + 1, options.runs);
            observer->progress(static_cast<double>(run + 1) / options.runs);
        }
        if (options.checkpoint_every > 0 &&
            (run + 1) % options.checkpoint_every == 0 &&
            run + 1 < options.runs) {
            FlopCounter so_far = flop_base;
            so_far += scope.counter();
            emit_mc_checkpoint(observer, base, run + 1, options, out, so_far);
        }
    }

    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
        for (McNodeStats& probe : out.probes) {
            const auto& p = probe.stats.at(j);
            probe.mean.append(out.grid[j], p.mean());
            probe.stddev.append(out.grid[j], p.stddev());
        }
    }
    out.flops = flop_base;
    out.flops += scope.counter();
    return out;
}

} // namespace nanosim::engines
