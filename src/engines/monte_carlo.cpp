#include "engines/monte_carlo.hpp"

#include <chrono>
#include <cmath>
#include <memory>

#include "devices/sources.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// Piecewise-constant sample-and-hold waveform on a uniform grid —
/// band-limited white noise for the deterministic engines.
class StepNoiseWave final : public Waveform {
public:
    StepNoiseWave(std::vector<double> samples, double dt)
        : samples_(std::move(samples)), dt_(dt) {}

    [[nodiscard]] double value(double t) const override {
        if (t < 0.0 || samples_.empty()) {
            return 0.0;
        }
        auto idx = static_cast<std::size_t>(t / dt_);
        idx = std::min(idx, samples_.size() - 1);
        return samples_[idx];
    }

    [[nodiscard]] double slope(double) const override { return 0.0; }

    [[nodiscard]] std::string describe() const override {
        return "NOISE(" + std::to_string(samples_.size()) + " holds)";
    }

private:
    std::vector<double> samples_;
    double dt_;
};

} // namespace

McOptions normalize_mc_options(const mna::MnaAssembler& assembler,
                               const McOptions& options_in, NodeId node) {
    McOptions options = options_in;
    if (options.t_stop <= 0.0 || options.runs < 1) {
        throw AnalysisError("run_monte_carlo: need t_stop > 0, runs >= 1");
    }
    if (options.grid_points < 2) {
        throw AnalysisError("run_monte_carlo: need grid_points >= 2");
    }
    if (options.noise_dt <= 0.0) {
        options.noise_dt = options.t_stop / 200.0;
    }
    if (node == k_ground || node > assembler.num_nodes()) {
        throw AnalysisError("run_monte_carlo: bad node");
    }
    if (assembler.noise_sources().empty()) {
        throw AnalysisError("run_monte_carlo: circuit has no noise sources");
    }
    options.tran.t_stop = options.t_stop;
    // The deterministic transient must resolve the realized noise
    // bandwidth: capping the step at noise_dt is what makes Monte-Carlo
    // pay the full per-step engine cost the paper's Sec. 1 describes
    // (and what keeps its variance estimate unbiased).
    if (options.tran.dt_max <= 0.0 || options.tran.dt_max > options.noise_dt) {
        options.tran.dt_max = options.noise_dt;
    }
    return options;
}

std::vector<double> mc_grid(const McOptions& normalized) {
    std::vector<double> grid(normalized.grid_points);
    for (std::size_t j = 0; j < normalized.grid_points; ++j) {
        grid[j] = normalized.t_stop * static_cast<double>(j) /
                  static_cast<double>(normalized.grid_points - 1);
    }
    return grid;
}

std::vector<double> mc_realization(const mna::MnaAssembler& assembler,
                                   const McOptions& normalized,
                                   stochastic::Rng& rng, NodeId node,
                                   const std::vector<double>& grid,
                                   const AnalysisObserver* observer,
                                   mna::SystemCache* cache) {
    const auto holds = static_cast<std::size_t>(
        std::ceil(normalized.t_stop / normalized.noise_dt));
    const double sqrt_dt = std::sqrt(normalized.noise_dt);

    // Realise every noise source: i_k = sigma * xi / sqrt(dt) so the
    // per-interval integral is sigma * xi * sqrt(dt) = sigma dW.
    SwecTranOptions tran = normalized.tran;
    tran.noise.clear();
    for (const Device* dev : assembler.noise_sources()) {
        const auto* src = static_cast<const NoiseCurrentSource*>(dev);
        std::vector<double> hold(holds);
        for (auto& v : hold) {
            v = src->sigma() * rng.gauss() / sqrt_dt;
        }
        tran.noise.push_back(std::make_shared<StepNoiseWave>(
            std::move(hold), normalized.noise_dt));
    }

    // Cancellation forwarded at the inner transient's step granularity;
    // progress/step callbacks stay with the outer per-trial scale.
    const AnalysisObserver inner = cancel_only(observer);
    const TranResult res = run_tran_swec(
        assembler, tran, observer != nullptr ? &inner : nullptr, cache);
    if (res.aborted) {
        return {}; // partial trial: no usable samples
    }
    const auto& wave = res.node_waves[static_cast<std::size_t>(node - 1)];
    std::vector<double> samples(grid.size());
    for (std::size_t j = 0; j < grid.size(); ++j) {
        samples[j] = wave.at(grid[j]);
    }
    return samples;
}

McResult run_monte_carlo(const mna::MnaAssembler& assembler,
                         const McOptions& options_in, stochastic::Rng& rng,
                         NodeId node, const AnalysisObserver* observer,
                         mna::SystemCache* cache) {
    const FlopScope scope;
    const McOptions options = normalize_mc_options(assembler, options_in, node);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .aborted = false,
                 .flops = {}};

    // Trial wall-time distribution (metrics on only).
    obs::Histogram* trial_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& th = obs::metrics().histogram(
            "mc.trial_s", obs::time_buckets());
        trial_hist = &th;
    }

    for (int run = 0; run < options.runs; ++run) {
        if (observer != nullptr && observer->cancelled()) {
            out.aborted = true;
            break;
        }
        const obs::Span trial_span("trial", "mc");
        const auto trial_t0 = std::chrono::steady_clock::now();
        std::vector<double> samples =
            mc_realization(assembler, options, rng, node, out.grid,
                           observer, cache);
        if (trial_hist != nullptr) {
            trial_hist->observe(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    trial_t0)
                                    .count());
        }
        if (samples.empty()) { // trial cancelled mid-transient
            out.aborted = true;
            break;
        }
        out.stats.add_path(samples);
        if (observer != nullptr) {
            observer->trial(run + 1, options.runs);
            observer->progress(static_cast<double>(run + 1) / options.runs);
        }
    }

    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
    }
    out.flops = scope.counter();
    return out;
}

} // namespace nanosim::engines
