// Nano-Sim — Monte-Carlo noise analysis (the baseline EM replaces).
//
// The pre-SDE methodology for circuits with uncertain inputs: realise
// each white-noise source as a concrete band-limited sample path (a
// piecewise-constant current of value sigma * xi_k / sqrt(dt) on each
// interval, so its integral over a step is a true Wiener increment), run
// a full *deterministic* transient per realization, and build statistics
// over hundreds of runs.  This is the "several hundreds to over thousands
// of Monte Carlo simulations" cost of paper Sec. 1 that the EM engine
// amortises — for a matched path count, MC pays the deterministic
// engine's full machinery per run.
#ifndef NANOSIM_ENGINES_MONTE_CARLO_HPP
#define NANOSIM_ENGINES_MONTE_CARLO_HPP

#include "engines/results.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"

namespace nanosim::engines {

/// Monte-Carlo options.
struct McOptions {
    int runs = 200;          ///< deterministic transients to run
    double t_stop = 0.0;     ///< horizon [s]
    double noise_dt = 0.0;   ///< noise bandwidth grid; 0 = t_stop/200
    std::size_t grid_points = 201; ///< output sampling for statistics
    /// Base options for the per-run deterministic transient (t_stop and
    /// noise are overridden per run).
    SwecTranOptions tran;
};

/// Ensemble statistics of one node voltage over the MC runs.
struct McResult {
    std::vector<double> grid;
    analysis::Waveform mean;
    analysis::Waveform stddev;
    stochastic::EnsembleStats stats;
    FlopCounter flops;
};

/// Run the Monte-Carlo analysis, observing `node`.
[[nodiscard]] McResult run_monte_carlo(const mna::MnaAssembler& assembler,
                                       const McOptions& options,
                                       stochastic::Rng& rng, NodeId node);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_MONTE_CARLO_HPP
