// Nano-Sim — Monte-Carlo noise analysis (the baseline EM replaces).
//
// The pre-SDE methodology for circuits with uncertain inputs: realise
// each white-noise source as a concrete band-limited sample path (a
// piecewise-constant current of value sigma * xi_k / sqrt(dt) on each
// interval, so its integral over a step is a true Wiener increment), run
// a full *deterministic* transient per realization, and build statistics
// over hundreds of runs.  This is the "several hundreds to over thousands
// of Monte Carlo simulations" cost of paper Sec. 1 that the EM engine
// amortises — for a matched path count, MC pays the deterministic
// engine's full machinery per run.
//
// All three drivers — serial (here), parallel (parallel.hpp), and
// trial-batched (mc_batch.hpp) — draw their noise through one shared
// stochastic::NoisePathSet keyed by (trial, source), so their per-trial
// inputs are identical by construction and their outputs bit-identical.
#ifndef NANOSIM_ENGINES_MONTE_CARLO_HPP
#define NANOSIM_ENGINES_MONTE_CARLO_HPP

#include <memory>

#include "engines/checkpoint.hpp"
#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"
#include "stochastic/noise_paths.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"

namespace nanosim::engines {

/// Monte-Carlo options.
struct McOptions {
    int runs = 200;          ///< deterministic transients to run
    double t_stop = 0.0;     ///< horizon [s]
    double noise_dt = 0.0;   ///< noise bandwidth grid; 0 = t_stop/200
    std::size_t grid_points = 201; ///< output sampling for statistics
    /// Additional nodes to observe alongside the primary one; each gets
    /// its own mean/stddev/ensemble block in McResult::probes.
    std::vector<NodeId> probe_nodes;
    /// Emit a resumable McCheckpoint through the observer every N
    /// completed trials (0 = off).  All three drivers checkpoint at the
    /// same trial boundaries, so their checkpoints are interchangeable.
    int checkpoint_every = 0;
    /// Resume a checkpointed campaign: restore the accumulator state and
    /// continue at resume->next_trial.  The request must describe the
    /// same campaign (runs/grid/probes validated; same circuit and seed
    /// are the caller's contract — the checkpoint pins base_seed).
    std::shared_ptr<const McCheckpoint> resume;
    /// Base options for the per-run deterministic transient (t_stop and
    /// noise are overridden per run).
    SwecTranOptions tran;
};

/// Per-node observation block for McOptions::probe_nodes.
struct McNodeStats {
    NodeId node = 0;
    std::string name;
    analysis::Waveform mean;
    analysis::Waveform stddev;
    stochastic::EnsembleStats stats;
};

/// Ensemble statistics of one node voltage over the MC runs.
struct McResult {
    std::vector<double> grid;
    analysis::Waveform mean;
    analysis::Waveform stddev;
    stochastic::EnsembleStats stats;
    /// Optional extra observed nodes, in McOptions::probe_nodes order.
    std::vector<McNodeStats> probes;
    /// Accepted step count of each completed trial, in trial order —
    /// the adaptive-step fingerprint the batched driver must reproduce.
    std::vector<int> trial_steps;
    /// Trials quarantined after the rescue ladder was exhausted (seed +
    /// diagnostic for offline replay); the campaign continues without
    /// them and the surviving trials stay bit-identical.
    std::vector<McFailedTrial> failed_trials;
    /// Rescue-ladder outcomes aggregated over every surviving trial.
    obs::RescueCounts rescues;
    /// True when an AnalysisObserver cancelled the run; statistics cover
    /// the trials completed before the abort.
    bool aborted = false;
    FlopCounter flops;
};

/// Run the Monte-Carlo analysis, observing `node`.  `observer` gets
/// per-trial callbacks and may cancel (between trials, and mid-trial at
/// the inner transient's step granularity).  `cache` shares one
/// caller-owned SystemCache across every realization — without it each
/// trial's transient re-freezes its own pattern and re-runs the symbolic
/// analysis.
[[nodiscard]] McResult run_monte_carlo(const mna::MnaAssembler& assembler,
                                       const McOptions& options,
                                       stochastic::Rng& rng, NodeId node,
                                       const AnalysisObserver* observer = nullptr,
                                       mna::SystemCache* cache = nullptr);

// ---- realization-level API (shared with the parallel/batched drivers) ----

/// Validate the request and fill defaulted fields (noise_dt, the
/// transient horizon and its dt_max cap).  Throws AnalysisError exactly
/// like run_monte_carlo.
[[nodiscard]] McOptions normalize_mc_options(const mna::MnaAssembler& assembler,
                                             const McOptions& options,
                                             NodeId node);

/// The uniform statistics grid of `normalized` options.
[[nodiscard]] std::vector<double> mc_grid(const McOptions& normalized);

/// The shared noise-path set of a run: one sigma per noise source of
/// `assembler` (in noise_sources() order), holds/noise_dt from the
/// normalized options, streams seeded from `base_seed`.  Every driver
/// that starts from the same base seed draws identical per-trial paths.
[[nodiscard]] stochastic::NoisePathSet
mc_noise_paths(const mna::MnaAssembler& assembler, const McOptions& normalized,
               std::uint64_t base_seed);

/// Realise trial `trial`'s noise as sample-and-hold waveforms, one per
/// source in noise_sources() order — ready for SwecTranOptions::noise.
[[nodiscard]] mna::MnaAssembler::NoiseRealization
mc_noise_waves(const stochastic::NoisePathSet& noise, int trial);

/// Everything one realization produces.
struct McTrial {
    /// Primary node sampled on the statistics grid; empty = the inner
    /// transient was cancelled (a partial trial would bias the ensemble).
    std::vector<double> samples;
    /// Probe-node samples, McOptions::probe_nodes order.
    std::vector<std::vector<double>> probe_samples;
    int steps_accepted = 0;
    /// Rescue-ladder outcomes of the inner transient.
    obs::RescueCounts rescues;
};

/// One Monte-Carlo realization: look up trial `trial`'s noise paths, run
/// the deterministic transient, and sample the observed nodes on `grid`.
/// Options must come from normalize_mc_options.  `cache` is the shared
/// solver cache handed to the inner transient.
[[nodiscard]] McTrial
mc_realization(const mna::MnaAssembler& assembler, const McOptions& normalized,
               const stochastic::NoisePathSet& noise, int trial, NodeId node,
               const std::vector<double>& grid,
               const AnalysisObserver* observer = nullptr,
               mna::SystemCache* cache = nullptr);

// ---- checkpoint / fault-injection plumbing (shared by the drivers) ----

/// Deterministic `mc.trial_fail` admission decision.  Every driver
/// evaluates this exactly once per trial, in trial order (the parallel
/// driver pre-evaluates before dispatch), so an armed site quarantines
/// the same trials no matter which driver runs the campaign.
[[nodiscard]] bool mc_trial_fail_injected();

/// Snapshot a campaign in flight as a resumable checkpoint — shared by
/// the serial/parallel/batched drivers so their checkpoints are
/// field-for-field identical at the same trial boundary.
[[nodiscard]] McCheckpoint
make_mc_checkpoint(std::uint64_t base_seed, int next_trial,
                   const McOptions& normalized, const McResult& partial,
                   const FlopCounter& flops_so_far);

/// Emit a checkpoint through the observer (no-op without a slot).  The
/// `mc.checkpoint_drop` fail point suppresses the emission — a dropped
/// checkpoint may only cost resume progress, never correctness.
void emit_mc_checkpoint(const AnalysisObserver* observer,
                        std::uint64_t base_seed, int next_trial,
                        const McOptions& normalized, const McResult& partial,
                        const FlopCounter& flops_so_far);

/// Validate a resume checkpoint against the normalized options and
/// restore its state into `out` (ensembles, trial ledger, rescue
/// counts).  Flops are NOT restored — the driver seeds its tally with
/// checkpoint.flops itself.  Returns the trial index to continue from.
/// Throws AnalysisError when the checkpoint describes a different
/// campaign shape.
[[nodiscard]] int restore_mc_checkpoint(const McCheckpoint& checkpoint,
                                        const McOptions& normalized,
                                        McResult& out);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_MONTE_CARLO_HPP
