// Nano-Sim — progress / cancellation hooks for long-running analyses.
//
// Every engine entry point accepts an optional `const AnalysisObserver*`.
// The observer is a plain struct of std::function slots so callers wire
// only what they need (a CLI progress meter sets on_progress, a test
// that aborts mid-transient sets cancel, a notebook might set both):
//
//     engines::AnalysisObserver obs;
//     obs.on_progress = [](double f) { draw_meter(f); };
//     obs.cancel = [&] { return stop_requested.load(); };
//     auto res = engines::run_tran_swec(assembler, options, &obs);
//     if (res.aborted) { /* partial waveforms up to the abort point */ }
//
// Contract:
//  * `cancel` is polled at step granularity by the per-step engines
//    (SWEC/NR/PWL transients, the SWEC pseudo-transient DC march) and at
//    trial granularity by the batch drivers (DC sweeps, Monte-Carlo,
//    Euler-Maruyama ensembles).  Returning true makes the engine stop
//    cooperatively and return its partial result with `aborted = true` —
//    no exception, no leak, waveforms contain everything accepted so far.
//  * `on_progress` receives a completed fraction in [0, 1] (time-based
//    for transients, trial-based for batch drivers).
//  * `on_step` fires after every accepted step of a per-step engine;
//    `on_trial` after every completed trial of a batch driver.
//  * The serial engines invoke all hooks on the calling thread.  The
//    parallel drivers (engines/parallel.hpp) invoke `on_trial` /
//    `on_progress` from worker threads — hooks passed there must be
//    thread-safe.  `cancel` must always be safe to call concurrently.
#ifndef NANOSIM_ENGINES_OBSERVER_HPP
#define NANOSIM_ENGINES_OBSERVER_HPP

#include <functional>

namespace nanosim::engines {

/// Progress / cancellation hooks; every slot is optional.
struct AnalysisObserver {
    /// Completed fraction in [0, 1].
    std::function<void(double)> on_progress;
    /// One accepted step of a per-step engine: (time, accepted steps).
    std::function<void(double, int)> on_step;
    /// One completed trial of a batch driver: (done, total).
    std::function<void(int, int)> on_trial;
    /// Polled cooperatively; return true to abort with a partial result.
    std::function<bool()> cancel;

    [[nodiscard]] bool cancelled() const {
        return cancel && cancel();
    }
    void progress(double fraction) const {
        if (on_progress) {
            on_progress(fraction);
        }
    }
    void step(double t, int accepted) const {
        if (on_step) {
            on_step(t, accepted);
        }
    }
    void trial(int done, int total) const {
        if (on_trial) {
            on_trial(done, total);
        }
    }
};

/// Observer forwarding only the cancellation slot of `outer` — what a
/// batch driver hands to its inner per-step engine so a cancel request
/// aborts the current trial promptly without leaking the outer driver's
/// progress scale into the inner engine's callbacks.  Returns a
/// value-type observer; pass its address while `outer` outlives it.
[[nodiscard]] inline AnalysisObserver
cancel_only(const AnalysisObserver* outer) {
    AnalysisObserver inner;
    if (outer != nullptr && outer->cancel) {
        inner.cancel = outer->cancel;
    }
    return inner;
}

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_OBSERVER_HPP
