// Nano-Sim — progress / cancellation hooks for long-running analyses.
//
// Every engine entry point accepts an optional `const AnalysisObserver*`.
// The observer is a plain struct of std::function slots so callers wire
// only what they need (a CLI progress meter sets on_progress, a test
// that aborts mid-transient sets cancel, a notebook might set both):
//
//     engines::AnalysisObserver obs;
//     obs.on_progress = [](double f) { draw_meter(f); };
//     obs.cancel = [&] { return stop_requested.load(); };
//     auto res = engines::run_tran_swec(assembler, options, &obs);
//     if (res.aborted) { /* partial waveforms up to the abort point */ }
//
// Contract:
//  * `cancel` is polled at step granularity by the per-step engines
//    (SWEC/NR/PWL transients, the SWEC pseudo-transient DC march) and at
//    trial granularity by the batch drivers (DC sweeps, Monte-Carlo,
//    Euler-Maruyama ensembles).  Returning true makes the engine stop
//    cooperatively and return its partial result with `aborted = true` —
//    no exception, no leak, waveforms contain everything accepted so far.
//  * `on_progress` receives a completed fraction in [0, 1] (time-based
//    for transients, trial-based for batch drivers).
//  * `on_step` fires after every accepted step of a per-step engine;
//    `on_trial` after every completed trial of a batch driver.
//  * The serial engines invoke all hooks on the calling thread.  The
//    parallel drivers (engines/parallel.hpp) invoke `on_trial` /
//    `on_progress` from worker threads — hooks passed there must be
//    thread-safe.  `cancel` must always be safe to call concurrently.
#ifndef NANOSIM_ENGINES_OBSERVER_HPP
#define NANOSIM_ENGINES_OBSERVER_HPP

#include <chrono>
#include <functional>

#include "engines/checkpoint.hpp"
#include "util/failpoints.hpp"

namespace nanosim::engines {

/// Progress / cancellation hooks; every slot is optional.
struct AnalysisObserver {
    /// Completed fraction in [0, 1].
    std::function<void(double)> on_progress;
    /// One accepted step of a per-step engine: (time, accepted steps).
    std::function<void(double, int)> on_step;
    /// One completed trial of a batch driver: (done, total).
    std::function<void(int, int)> on_trial;
    /// One accepted sample of the observed solution: (time, node voltage
    /// vector, length).  Fires beside on_step with the engine's accepted
    /// iterate — the streaming-results hook (service subscribers); the
    /// pointer is only valid for the duration of the call.
    std::function<void(double, const double*, int)> on_sample;
    /// Periodic resumable campaign state from the Monte-Carlo drivers
    /// (every McOptions::checkpoint_every completed trials).  The
    /// reference is only valid for the duration of the call — copy it to
    /// persist.  Serial and batched drivers emit on the calling thread;
    /// chunked parallel campaigns emit between chunks on the calling
    /// thread as well.
    std::function<void(const McCheckpoint&)> on_checkpoint;
    /// Polled cooperatively; return true to abort with a partial result.
    std::function<bool()> cancel;

    [[nodiscard]] bool cancelled() const {
        return cancel && cancel();
    }
    void progress(double fraction) const {
        if (on_progress) {
            on_progress(fraction);
        }
    }
    void step(double t, int accepted) const {
        if (on_step) {
            on_step(t, accepted);
        }
    }
    void trial(int done, int total) const {
        if (on_trial) {
            on_trial(done, total);
        }
    }
    void sample(double t, const double* x, int n) const {
        if (on_sample) {
            on_sample(t, x, n);
        }
    }
    void checkpoint(const McCheckpoint& cp) const {
        if (on_checkpoint) {
            on_checkpoint(cp);
        }
    }
};

/// Observer forwarding only the cancellation slot of `outer` — what a
/// batch driver hands to its inner per-step engine so a cancel request
/// aborts the current trial promptly without leaking the outer driver's
/// progress scale into the inner engine's callbacks.  Returns a
/// value-type observer; pass its address while `outer` outlives it.
[[nodiscard]] inline AnalysisObserver
cancel_only(const AnalysisObserver* outer) {
    AnalysisObserver inner;
    if (outer != nullptr && outer->cancel) {
        inner.cancel = outer->cancel;
    }
    return inner;
}

/// Observer forwarding every slot of `outer` with an additional
/// wall-clock deadline folded into `cancel`: once steady_clock passes
/// `deadline`, the engine sees a cancel request and winds down with an
/// `aborted` partial result — exactly the client-initiated-cancel path,
/// so a deadline can never produce a result shape a cancel could not.
/// Returns a value-type observer; pass its address while `outer`
/// outlives it.  `outer` may be null (deadline only).
[[nodiscard]] inline AnalysisObserver
with_deadline(const AnalysisObserver* outer,
              std::chrono::steady_clock::time_point deadline) {
    AnalysisObserver inner;
    if (outer != nullptr) {
        inner = *outer;
    }
    std::function<bool()> base =
        outer != nullptr ? outer->cancel : std::function<bool()>{};
    inner.cancel = [base = std::move(base), deadline] {
        if (base && base()) {
            return true;
        }
        if (failpoints::enabled()) {
            static auto& fp = failpoints::site("engines.deadline_overrun");
            if (fp.fire()) {
                return true; // injected: pretend the budget is exhausted
            }
        }
        return std::chrono::steady_clock::now() >= deadline;
    };
    return inner;
}

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_OBSERVER_HPP
