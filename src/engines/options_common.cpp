#include "engines/options_common.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace nanosim::engines {

namespace {

[[noreturn]] void fail(const char* who, const char* what,
                       const char* must, double v) {
    std::ostringstream os;
    os << who << ": " << what << " must " << must << " (got " << v << ")";
    throw AnalysisError(os.str());
}

} // namespace

void require_positive(const char* who, const char* what, double v) {
    if (!std::isfinite(v) || v <= 0.0) {
        fail(who, what, "be positive", v);
    }
}

void require_non_negative(const char* who, const char* what, double v) {
    if (!std::isfinite(v) || v < 0.0) {
        fail(who, what, "be non-negative", v);
    }
}

void require_at_least(const char* who, const char* what, double v,
                      double bound) {
    if (!std::isfinite(v) || v < bound) {
        std::ostringstream os;
        os << who << ": " << what << " must be >= " << bound << " (got " << v
           << ")";
        throw AnalysisError(os.str());
    }
}

void require_at_least(const char* who, const char* what, int v, int bound) {
    if (v < bound) {
        std::ostringstream os;
        os << who << ": " << what << " must be >= " << bound << " (got " << v
           << ")";
        throw AnalysisError(os.str());
    }
}

void require_ordered(const char* who, const char* what_lo,
                     const char* what_hi, double lo, double hi) {
    if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi)) {
        std::ostringstream os;
        os << who << ": need " << what_lo << " < " << what_hi << " (got "
           << lo << " vs " << hi << ")";
        throw AnalysisError(os.str());
    }
}

void require_in_unit(const char* who, const char* what, double v, double hi) {
    if (!std::isfinite(v) || v <= 0.0 || v > hi) {
        std::ostringstream os;
        os << who << ": " << what << " must be in (0, " << hi << "] (got "
           << v << ")";
        throw AnalysisError(os.str());
    }
}

StepLimits resolve_step_limits(const char* who, double t_stop, double dt_init,
                               double dt_min, double dt_max) {
    require_positive(who, "t_stop", t_stop);
    require_non_negative(who, "dt_init", dt_init);
    require_non_negative(who, "dt_min", dt_min);
    require_non_negative(who, "dt_max", dt_max);

    const bool explicit_init = dt_init > 0.0;
    const bool explicit_min = dt_min > 0.0;
    const bool explicit_max = dt_max > 0.0;

    StepLimits s;
    s.t_stop = t_stop;
    s.dt_init = explicit_init ? dt_init : t_stop / 1000.0;
    // Defaulted bounds widen to bracket an explicit dt_init; explicit
    // bounds are taken at face value and checked below.
    s.dt_max = explicit_max ? dt_max : std::max(t_stop / 50.0, s.dt_init);
    s.dt_min = explicit_min ? dt_min : std::min(t_stop * 1e-9, s.dt_init);
    // Defaulted bounds also bracket the *other* explicit bound, so only
    // explicitly inconsistent combinations reach the checks below.
    if (!explicit_max && explicit_min) {
        s.dt_max = std::max(s.dt_max, s.dt_min);
    }
    if (!explicit_min && explicit_max) {
        s.dt_min = std::min(s.dt_min, s.dt_max);
    }

    // Ordering check must precede the clamp below: std::clamp with
    // lo > hi is undefined behaviour.
    if (s.dt_min > s.dt_max) {
        std::ostringstream os;
        os << who << ": need dt_min <= dt_max (got " << s.dt_min << " > "
           << s.dt_max << ")";
        throw AnalysisError(os.str());
    }
    if (!explicit_init) {
        s.dt_init = std::clamp(s.dt_init, s.dt_min, s.dt_max);
    }
    if (s.dt_init < s.dt_min || s.dt_init > s.dt_max) {
        std::ostringstream os;
        os << who << ": need dt_min <= dt_init <= dt_max (got dt_init "
           << s.dt_init << " outside [" << s.dt_min << ", " << s.dt_max
           << "])";
        throw AnalysisError(os.str());
    }
    return s;
}

} // namespace nanosim::engines
