// Nano-Sim — centralized validation of engine option structs.
//
// Every engine used to hand-roll its own option checks, and they drifted:
// SWEC validated eps but not geq_floor, NR validated nothing beyond
// t_stop, the DC engines validated nothing at all.  The helpers here give
// one vocabulary for range checks (throwing AnalysisError with a
// consistent "<who>: <what> ..." message) and one resolver for the
// dt_min <= dt_init <= dt_max block shared by all transient engines.
#ifndef NANOSIM_ENGINES_OPTIONS_COMMON_HPP
#define NANOSIM_ENGINES_OPTIONS_COMMON_HPP

namespace nanosim::engines {

/// Validated and defaulted transient step limits.
struct StepLimits {
    double t_stop = 0.0;
    double dt_init = 0.0;
    double dt_min = 0.0;
    double dt_max = 0.0;
};

/// Resolve the common transient time-step option block.
///
///  * t_stop must be finite and > 0;
///  * dt_init / dt_min / dt_max: 0 means "use the engine default"
///    (t_stop/1000, t_stop*1e-9, t_stop/50); negative or non-finite
///    values throw;
///  * defaulted bounds widen to bracket explicit values (an explicit
///    dt_init above the default ceiling raises the ceiling), but
///    *explicitly* inconsistent combinations (dt_min > dt_max,
///    dt_init outside [dt_min, dt_max]) throw AnalysisError.
[[nodiscard]] StepLimits resolve_step_limits(const char* who, double t_stop,
                                             double dt_init, double dt_min,
                                             double dt_max);

/// Throw AnalysisError unless v is finite and > 0.
void require_positive(const char* who, const char* what, double v);

/// Throw AnalysisError unless v is finite and >= 0.
void require_non_negative(const char* who, const char* what, double v);

/// Throw AnalysisError unless v is finite and >= bound.
void require_at_least(const char* who, const char* what, double v,
                      double bound);

/// Throw AnalysisError unless v >= bound.
void require_at_least(const char* who, const char* what, int v, int bound);

/// Throw AnalysisError unless finite lo < hi.
void require_ordered(const char* who, const char* what_lo,
                     const char* what_hi, double lo, double hi);

/// Throw AnalysisError unless v is finite and in (0, hi].
void require_in_unit(const char* who, const char* what, double v,
                     double hi = 1.0);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_OPTIONS_COMMON_HPP
