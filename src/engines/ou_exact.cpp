#include "engines/ou_exact.hpp"

#include <cmath>

#include "devices/sources.hpp"
#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

LtiDiscretization discretize_lti(const linalg::DenseMatrix& a,
                                 const linalg::DenseMatrix& q, double h) {
    if (!a.square() || !q.square() || a.rows() != q.rows()) {
        throw SimError("discretize_lti: A and Q must be square, same order");
    }
    const std::size_t n = a.rows();

    // Van Loan block for Qd:  H = [[-A, Q], [0, A^T]] h;
    // expm(H) = [[ *, G12 ], [0, G22 ]];  Phi = G22^T,  Qd = Phi G12.
    linalg::DenseMatrix block(2 * n, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            block(i, j) = -a(i, j) * h;
            block(i, n + j) = q(i, j) * h;
            block(n + i, n + j) = a(j, i) * h;
        }
    }
    const linalg::DenseMatrix eblock = linalg::expm(block);
    linalg::DenseMatrix phi(n, n);
    linalg::DenseMatrix g12(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            phi(i, j) = eblock(n + j, n + i); // G22^T
            g12(i, j) = eblock(i, n + j);
        }
    }
    LtiDiscretization out;
    out.qd = phi.multiply(g12);
    // Symmetrise away roundoff.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double s = 0.5 * (out.qd(i, j) + out.qd(j, i));
            out.qd(i, j) = s;
            out.qd(j, i) = s;
        }
    }
    out.phi = std::move(phi);

    // Gamma via the augmented block [[A, I], [0, 0]] h:
    // expm = [[ e^{Ah}, int_0^h e^{As} ds ], [0, I]].
    linalg::DenseMatrix aug(2 * n, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            aug(i, j) = a(i, j) * h;
        }
        aug(i, n + i) = h;
    }
    const linalg::DenseMatrix eaug = linalg::expm(aug);
    out.gamma.resize_zero(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            out.gamma(i, j) = eaug(i, n + j);
        }
    }
    return out;
}

ScalarOuMoments scalar_ou_moments(double a, double c, double sigma,
                                  double x0, double t) {
    if (a <= 0.0) {
        throw AnalysisError("scalar_ou_moments: need a > 0");
    }
    const double e = std::exp(-a * t);
    ScalarOuMoments m{};
    m.mean = x0 * e + (c / a) * (1.0 - e);
    m.variance = sigma * sigma / (2.0 * a) * (1.0 - e * e);
    return m;
}

OuMomentsResult exact_moments(const mna::MnaAssembler& assembler,
                              double t_stop, std::size_t steps,
                              const linalg::Vector& x0) {
    if (!assembler.nonlinear_devices().empty()) {
        throw AnalysisError("exact_moments: circuit must be linear");
    }
    if (assembler.num_branches() != 0) {
        throw AnalysisError(
            "exact_moments: branch unknowns make C singular; reduce the "
            "circuit to node form (current sources only)");
    }
    if (t_stop <= 0.0 || steps == 0) {
        throw AnalysisError("exact_moments: need t_stop > 0, steps > 0");
    }
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    const double h = t_stop / static_cast<double>(steps);

    // C^{-1} via one LU factorisation.
    const linalg::DenseLu c_lu(assembler.c_triplets().to_dense());

    // Noise intensity matrix Q = (C^{-1} B)(C^{-1} B)^T.
    linalg::DenseMatrix cinv_b(
        n, std::max<std::size_t>(assembler.noise_sources().size(), 1));
    {
        const auto& noise = assembler.noise_sources();
        for (std::size_t k = 0; k < noise.size(); ++k) {
            const auto* src =
                static_cast<const NoiseCurrentSource*>(noise[k]);
            linalg::Vector col(n, 0.0);
            if (src->pos() != k_ground) {
                col[static_cast<std::size_t>(src->pos() - 1)] -=
                    src->sigma();
            }
            if (src->neg() != k_ground) {
                col[static_cast<std::size_t>(src->neg() - 1)] +=
                    src->sigma();
            }
            const linalg::Vector solved = c_lu.solve(col);
            for (std::size_t i = 0; i < n; ++i) {
                cinv_b(i, k) = solved[i];
            }
        }
    }
    const linalg::DenseMatrix q =
        cinv_b.multiply(cinv_b.transposed());

    OuMomentsResult out;
    out.grid.resize(steps + 1);
    out.mean.reserve(steps + 1);
    out.variance.reserve(steps + 1);

    linalg::Vector m =
        x0.empty() ? linalg::Vector(n, 0.0) : x0;
    if (m.size() != n) {
        throw AnalysisError("exact_moments: x0 size mismatch");
    }
    linalg::DenseMatrix p(n, n); // covariance, starts at 0 (deterministic IC)

    auto diag_of = [&](const linalg::DenseMatrix& mat) {
        linalg::Vector d(n);
        for (std::size_t i = 0; i < n; ++i) {
            d[i] = mat(i, i);
        }
        return d;
    };

    out.grid[0] = 0.0;
    out.mean.push_back(m);
    out.variance.push_back(diag_of(p));

    for (std::size_t j = 0; j < steps; ++j) {
        const double t = h * static_cast<double>(j);
        // A(t) = -C^{-1} G(t), c(t) = C^{-1} b(t): piecewise constant
        // over the step.
        linalg::Triplets g_trip = assembler.static_g();
        assembler.add_time_varying_stamps(t, g_trip);
        const linalg::DenseMatrix g = g_trip.to_dense();
        linalg::DenseMatrix a_mat(n, n);
        for (std::size_t col = 0; col < n; ++col) {
            linalg::Vector gc(n);
            for (std::size_t row = 0; row < n; ++row) {
                gc[row] = g(row, col);
            }
            const linalg::Vector solved = c_lu.solve(gc);
            for (std::size_t row = 0; row < n; ++row) {
                a_mat(row, col) = -solved[row];
            }
        }
        const linalg::Vector b = assembler.rhs(t);
        const linalg::Vector c_vec = c_lu.solve(b);

        const LtiDiscretization d = discretize_lti(a_mat, q, h);
        // m' = Phi m + Gamma c.
        linalg::Vector m_next = d.phi.multiply(m);
        const linalg::Vector forced = d.gamma.multiply(c_vec);
        for (std::size_t i = 0; i < n; ++i) {
            m_next[i] += forced[i];
        }
        m = std::move(m_next);
        // P' = Phi P Phi^T + Qd.
        linalg::DenseMatrix p_next =
            d.phi.multiply(p).multiply(d.phi.transposed());
        p_next.add_scaled(d.qd, 1.0);
        p = std::move(p_next);

        out.grid[j + 1] = h * static_cast<double>(j + 1);
        out.mean.push_back(m);
        out.variance.push_back(diag_of(p));
    }
    return out;
}

} // namespace nanosim::engines
