// Nano-Sim — exact solutions of linear circuit SDEs (reference for EM).
//
// A linear (possibly time-varying-coefficient) circuit SDE
//     dX = (A(t) X + c(t)) dt + L dW
// is an (inhomogeneous) Ornstein-Uhlenbeck process.  For piecewise-
// constant coefficients its mean and covariance propagate EXACTLY:
//
//     m_{k+1} = Phi m_k + Gamma c,        Phi   = e^{A h},
//     P_{k+1} = Phi P_k Phi^T + Q_d,      Gamma = int_0^h e^{A s} ds,
//     Q_d     = int_0^h e^{A s} L L^T e^{A^T s} ds   (Van Loan 1978).
//
// This module provides those discretizations (built on linalg::expm), the
// scalar closed forms, and an exact *moment* reference path for a circuit
// — the "true solution"/analytic curve of paper Fig. 10.  For path-wise
// (strong) references against the SAME Brownian path, use the standard
// fine-grid EM reference (Higham 2001): EmEngine on WienerPath::refined
// grids.
#ifndef NANOSIM_ENGINES_OU_EXACT_HPP
#define NANOSIM_ENGINES_OU_EXACT_HPP

#include <vector>

#include "linalg/dense.hpp"
#include "mna/mna.hpp"

namespace nanosim::engines {

/// Exact one-step discretization of dX = A X dt + L dW over step h.
struct LtiDiscretization {
    linalg::DenseMatrix phi;   ///< e^{A h}
    linalg::DenseMatrix gamma; ///< int_0^h e^{A s} ds
    linalg::DenseMatrix qd;    ///< discrete noise covariance
};

/// Van Loan block-exponential discretization.  `q` = L L^T (noise
/// intensity matrix); throws SimError on shape mismatch.
[[nodiscard]] LtiDiscretization discretize_lti(const linalg::DenseMatrix& a,
                                               const linalg::DenseMatrix& q,
                                               double h);

/// Scalar OU closed forms for dX = -a X dt + c dt + sigma dW, X(0)=x0.
struct ScalarOuMoments {
    double mean;
    double variance;
};
[[nodiscard]] ScalarOuMoments scalar_ou_moments(double a, double c,
                                                double sigma, double x0,
                                                double t);

/// Exact mean/variance curves of a circuit's node voltages under its
/// white-noise sources, on a uniform grid.  The circuit must be linear
/// (no nonlinear devices); time-varying conductors are handled piecewise-
/// constantly per step (exact in the limit of the grid, and exactly what
/// the Fig. 10 "analytic solution" needs).  The circuit must satisfy the
/// same invertible-C condition as the explicit EM scheme.
struct OuMomentsResult {
    std::vector<double> grid;
    /// mean[j] / variance[j] are per-unknown vectors at grid[j].
    std::vector<linalg::Vector> mean;
    std::vector<linalg::Vector> variance;
};
[[nodiscard]] OuMomentsResult
exact_moments(const mna::MnaAssembler& assembler, double t_stop,
              std::size_t steps, const linalg::Vector& x0 = {});

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_OU_EXACT_HPP
