#include "engines/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "stochastic/seed_sequence.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// Flop tallies are thread-local, so each job measures itself and the
/// reduction sums in job order — the totals are scheduling-independent.
struct JobSample {
    std::vector<double> samples;
    std::vector<std::vector<double>> probe_samples;
    int steps_accepted = 0;
    FlopCounter flops;
    obs::RescueCounts rescues;
    /// mc.trial_fail decision, pre-evaluated in trial order before
    /// dispatch so the armed site hits the same trials as the serial
    /// driver regardless of worker scheduling.
    bool inject_fail = false;
    bool failed = false; ///< rescue ladder exhausted — quarantined
    std::string diagnostic;
};

/// Shared progress state for the parallel drivers: a completion counter
/// the workers bump, with the observer's (thread-safe) hooks invoked on
/// the worker that finishes each trial.
struct ParallelProgress {
    const AnalysisObserver* observer = nullptr;
    std::atomic<int> done{0};
    int total = 0;

    [[nodiscard]] bool cancelled() const {
        return observer != nullptr && observer->cancelled();
    }
    void completed() {
        const int k = done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (observer != nullptr) {
            observer->trial(k, total);
            observer->progress(static_cast<double>(k) / total);
        }
    }
};

} // namespace

McResult run_monte_carlo_parallel(const mna::MnaAssembler& assembler,
                                  const McOptions& options_in,
                                  std::uint64_t seed, NodeId node,
                                  const runtime::ExecutionPolicy& policy,
                                  const AnalysisObserver* observer) {
    const McOptions options = normalize_mc_options(assembler, options_in, node);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .probes = {},
                 .trial_steps = {},
                 .aborted = false,
                 .flops = {}};
    for (const NodeId probe : options.probe_nodes) {
        const std::string name = assembler.circuit().node_name(probe);
        out.probes.push_back(McNodeStats{
            .node = probe,
            .name = name,
            .mean = analysis::Waveform("mean(v(" + name + "))"),
            .stddev = analysis::Waveform("stddev(v(" + name + "))"),
            .stats = stochastic::EnsembleStats(options.grid_points)});
    }

    // Same base-seed derivation as the serial driver (which draws it
    // from the caller's Rng): one shared path set makes serial,
    // parallel, and batched runs consume identical noise per trial.  A
    // resumed campaign reuses the checkpoint's base seed instead.
    stochastic::Rng seeder(seed);
    const std::uint64_t base = options.resume != nullptr
                                   ? options.resume->base_seed
                                   : seeder.engine()();
    const stochastic::NoisePathSet noise =
        mc_noise_paths(assembler, options, base);

    // Resume: restore the accumulators, seed the flop tally from the
    // checkpoint, and only dispatch the remaining trials.
    int first = 0;
    if (options.resume != nullptr) {
        first = restore_mc_checkpoint(*options.resume, options, out);
        out.flops = options.resume->flops;
    }

    const auto runs = static_cast<std::size_t>(options.runs);
    std::vector<JobSample> jobs(runs);
    ParallelProgress progress{.observer = observer, .total = options.runs};
    progress.done.store(first, std::memory_order_relaxed);
    runtime::ThreadPool pool(policy.resolved());

    // Reduce a completed chunk in realization order: bit-identical for
    // any thread count.
    auto reduce = [&](std::size_t begin, std::size_t end) {
        for (std::size_t run = begin; run < end; ++run) {
            JobSample& job = jobs[run];
            if (job.failed) {
                out.failed_trials.push_back(McFailedTrial{
                    static_cast<int>(run), base, std::move(job.diagnostic)});
                out.flops += job.flops;
                continue;
            }
            if (job.samples.empty()) { // skipped after a cancel
                out.aborted = true;
                continue;
            }
            out.stats.add_path(job.samples);
            out.trial_steps.push_back(job.steps_accepted);
            for (std::size_t k = 0; k < out.probes.size(); ++k) {
                out.probes[k].stats.add_path(job.probe_samples[k]);
            }
            out.rescues += job.rescues;
            out.flops += job.flops;
        }
    };

    auto run_chunk = [&](std::size_t begin, std::size_t end) {
        // Pre-evaluate the admission fail point serially, in trial
        // order (see JobSample::inject_fail).
        for (std::size_t run = begin; run < end; ++run) {
            jobs[run].inject_fail = mc_trial_fail_injected();
        }
        runtime::parallel_for(pool, end - begin, [&](std::size_t i) {
            const std::size_t run = begin + i;
            if (progress.cancelled()) {
                return; // leave the job's samples empty — skipped
            }
            const obs::Span trial_span("trial", "mc");
            const FlopScope scope;
            try {
                if (jobs[run].inject_fail) {
                    throw AnalysisError("fail-point mc.trial_fail fired");
                }
                McTrial trial =
                    mc_realization(assembler, options, noise,
                                   static_cast<int>(run), node, out.grid);
                jobs[run].samples = std::move(trial.samples);
                jobs[run].probe_samples = std::move(trial.probe_samples);
                jobs[run].steps_accepted = trial.steps_accepted;
                jobs[run].rescues = trial.rescues;
            } catch (const SimError& e) {
                jobs[run].failed = true;
                jobs[run].diagnostic = e.what();
            }
            jobs[run].flops = scope.counter();
            progress.completed();
        });
        reduce(begin, end);
    };

    if (options.checkpoint_every > 0) {
        // Chunk at the checkpoint cadence: each chunk is a barrier, the
        // reduced prefix is snapshotted, and the checkpoint matches the
        // serial driver's at the same boundary field for field.
        const auto every = static_cast<std::size_t>(options.checkpoint_every);
        for (std::size_t begin = static_cast<std::size_t>(first);
             begin < runs; begin += every) {
            const std::size_t end = std::min(runs, begin + every);
            run_chunk(begin, end);
            if (out.aborted || end == runs) {
                break;
            }
            emit_mc_checkpoint(observer, base, static_cast<int>(end),
                               options, out, out.flops);
        }
    } else {
        run_chunk(static_cast<std::size_t>(first), runs);
    }
    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
        for (McNodeStats& probe : out.probes) {
            const auto& p = probe.stats.at(j);
            probe.mean.append(out.grid[j], p.mean());
            probe.stddev.append(out.grid[j], p.stddev());
        }
    }
    return out;
}

EmEnsembleResult run_em_ensemble_parallel(const EmEngine& engine,
                                          int num_paths, std::uint64_t seed,
                                          NodeId node,
                                          const runtime::ExecutionPolicy& policy,
                                          const AnalysisObserver* observer) {
    if (num_paths < 1) {
        throw AnalysisError("run_em_ensemble_parallel: need >= 1 path");
    }
    if (node == k_ground) {
        throw AnalysisError("run_em_ensemble_parallel: bad node");
    }
    const std::size_t steps = engine.steps();
    const double dt =
        engine.options().t_stop / static_cast<double>(steps);

    EmEnsembleResult out{.grid = {},
                         .mean = analysis::Waveform("mean"),
                         .stddev = analysis::Waveform("stddev"),
                         .stats = stochastic::EnsembleStats(steps + 1),
                         .aborted = false,
                         .flops = {}};
    out.grid.resize(steps + 1);
    for (std::size_t j = 0; j <= steps; ++j) {
        out.grid[j] = dt * static_cast<double>(j);
    }

    const stochastic::SeedSequence seq(seed);
    const auto paths = static_cast<std::size_t>(num_paths);
    const auto node_idx = static_cast<std::size_t>(node - 1);
    std::vector<JobSample> jobs(paths);
    ParallelProgress progress{.observer = observer, .total = num_paths};

    runtime::ThreadPool pool(policy.resolved());
    runtime::parallel_for(pool, paths, [&](std::size_t p) {
        if (progress.cancelled()) {
            return; // leave the job's samples empty — skipped in reduce
        }
        const obs::Span trial_span("trial", "em");
        stochastic::Rng rng = seq.stream(p);
        const EmPathResult path = engine.run_path(rng);
        if (node_idx >= path.node_waves.size()) {
            throw AnalysisError("run_em_ensemble_parallel: bad node");
        }
        const auto& w = path.node_waves[node_idx];
        jobs[p].samples.resize(steps + 1);
        for (std::size_t j = 0; j <= steps; ++j) {
            jobs[p].samples[j] = w.value_at(j);
        }
        jobs[p].flops = path.flops;
        progress.completed();
    });

    for (auto& job : jobs) {
        if (job.samples.empty()) { // skipped after a cancel
            out.aborted = true;
            continue;
        }
        out.stats.add_path(job.samples);
        out.flops += job.flops;
    }
    for (std::size_t j = 0; j <= steps; ++j) {
        out.mean.append(out.grid[j], out.stats.at(j).mean());
        out.stddev.append(out.grid[j], out.stats.at(j).stddev());
    }
    return out;
}

} // namespace nanosim::engines
