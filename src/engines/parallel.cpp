#include "engines/parallel.hpp"

#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "stochastic/seed_sequence.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

/// Flop tallies are thread-local, so each job measures itself and the
/// reduction sums in job order — the totals are scheduling-independent.
struct JobSample {
    std::vector<double> samples;
    FlopCounter flops;
};

} // namespace

McResult run_monte_carlo_parallel(const mna::MnaAssembler& assembler,
                                  const McOptions& options_in,
                                  std::uint64_t seed, NodeId node,
                                  const runtime::ExecutionPolicy& policy) {
    const McOptions options = normalize_mc_options(assembler, options_in, node);

    McResult out{.grid = mc_grid(options),
                 .mean = analysis::Waveform("mean"),
                 .stddev = analysis::Waveform("stddev"),
                 .stats = stochastic::EnsembleStats(options.grid_points),
                 .flops = {}};

    const stochastic::SeedSequence seq(seed);
    const auto runs = static_cast<std::size_t>(options.runs);
    std::vector<JobSample> jobs(runs);

    runtime::ThreadPool pool(policy.resolved());
    runtime::parallel_for(pool, runs, [&](std::size_t run) {
        const FlopScope scope;
        stochastic::Rng rng = seq.stream(run);
        jobs[run].samples =
            mc_realization(assembler, options, rng, node, out.grid);
        jobs[run].flops = scope.counter();
    });

    // Reduce in realization order: bit-identical for any thread count.
    for (auto& job : jobs) {
        out.stats.add_path(job.samples);
        out.flops += job.flops;
    }
    for (std::size_t j = 0; j < options.grid_points; ++j) {
        const auto& s = out.stats.at(j);
        out.mean.append(out.grid[j], s.mean());
        out.stddev.append(out.grid[j], s.stddev());
    }
    return out;
}

EmEnsembleResult run_em_ensemble_parallel(const EmEngine& engine,
                                          int num_paths, std::uint64_t seed,
                                          NodeId node,
                                          const runtime::ExecutionPolicy& policy) {
    if (num_paths < 1) {
        throw AnalysisError("run_em_ensemble_parallel: need >= 1 path");
    }
    if (node == k_ground) {
        throw AnalysisError("run_em_ensemble_parallel: bad node");
    }
    const std::size_t steps = engine.steps();
    const double dt =
        engine.options().t_stop / static_cast<double>(steps);

    EmEnsembleResult out{.grid = {},
                         .mean = analysis::Waveform("mean"),
                         .stddev = analysis::Waveform("stddev"),
                         .stats = stochastic::EnsembleStats(steps + 1),
                         .flops = {}};
    out.grid.resize(steps + 1);
    for (std::size_t j = 0; j <= steps; ++j) {
        out.grid[j] = dt * static_cast<double>(j);
    }

    const stochastic::SeedSequence seq(seed);
    const auto paths = static_cast<std::size_t>(num_paths);
    const auto node_idx = static_cast<std::size_t>(node - 1);
    std::vector<JobSample> jobs(paths);

    runtime::ThreadPool pool(policy.resolved());
    runtime::parallel_for(pool, paths, [&](std::size_t p) {
        stochastic::Rng rng = seq.stream(p);
        const EmPathResult path = engine.run_path(rng);
        if (node_idx >= path.node_waves.size()) {
            throw AnalysisError("run_em_ensemble_parallel: bad node");
        }
        const auto& w = path.node_waves[node_idx];
        jobs[p].samples.resize(steps + 1);
        for (std::size_t j = 0; j <= steps; ++j) {
            jobs[p].samples[j] = w.value_at(j);
        }
        jobs[p].flops = path.flops;
    });

    for (auto& job : jobs) {
        out.stats.add_path(job.samples);
        out.flops += job.flops;
    }
    for (std::size_t j = 0; j <= steps; ++j) {
        out.mean.append(out.grid[j], out.stats.at(j).mean());
        out.stddev.append(out.grid[j], out.stats.at(j).stddev());
    }
    return out;
}

} // namespace nanosim::engines
