// Nano-Sim — parallel ensemble drivers.
//
// Batch versions of the Monte-Carlo baseline and the Euler-Maruyama
// ensemble that fan realizations out over a runtime::ThreadPool.  Both
// are *deterministic in the thread count*: realization k draws from an
// independent counter-derived RNG stream and the ensemble statistics
// are reduced in realization order, so --threads 1 and --threads 64
// produce bit-identical McResult / EmEnsembleResult.
//
// The Monte-Carlo drivers further share one noise contract: serial,
// parallel, and trial-batched runs all derive a base seed the same way
// (the first engine() draw of Rng(seed)) and realise trial k's paths
// through mc_noise_paths / stochastic::NoisePathSet, so for the same
// seed a parallel run is bit-identical to the serial driver — not just
// to other parallel runs.  (The EM ensemble keeps the per-stream
// contract: parallel matches parallel for any thread count.)
#ifndef NANOSIM_ENGINES_PARALLEL_HPP
#define NANOSIM_ENGINES_PARALLEL_HPP

#include <cstdint>

#include "engines/em_engine.hpp"
#include "engines/monte_carlo.hpp"
#include "engines/observer.hpp"
#include "runtime/execution_policy.hpp"

namespace nanosim::engines {

/// Parallel Monte-Carlo baseline: options.runs independent realizations
/// on the policy's worker count.  Observer hooks fire from worker
/// threads (must be thread-safe); a cancel skips the realizations not
/// yet started and flags the result `aborted` — completed realizations
/// still reduce in index order, keeping the thread-count determinism.
[[nodiscard]] McResult
run_monte_carlo_parallel(const mna::MnaAssembler& assembler,
                         const McOptions& options, std::uint64_t seed,
                         NodeId node,
                         const runtime::ExecutionPolicy& policy = {},
                         const AnalysisObserver* observer = nullptr);

/// Parallel Euler-Maruyama ensemble over `engine`'s grid.  Same observer
/// contract as run_monte_carlo_parallel.
[[nodiscard]] EmEnsembleResult
run_em_ensemble_parallel(const EmEngine& engine, int num_paths,
                         std::uint64_t seed, NodeId node,
                         const runtime::ExecutionPolicy& policy = {},
                         const AnalysisObserver* observer = nullptr);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_PARALLEL_HPP
