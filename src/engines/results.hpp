// Nano-Sim — result types shared by the analysis engines.
#ifndef NANOSIM_ENGINES_RESULTS_HPP
#define NANOSIM_ENGINES_RESULTS_HPP

#include <string>
#include <vector>

#include "analysis/waveform.hpp"
#include "linalg/dense.hpp"
#include "linalg/ordering.hpp"
#include "netlist/circuit.hpp"
#include "obs/report.hpp"
#include "util/flops.hpp"

namespace nanosim::engines {

/// Fill-reducing-ordering decision of a cached solver (mna::SystemCache),
/// reported by every engine that runs through one.  All zero / natural on
/// the dense path.
struct SolverOrderingStats {
    linalg::Ordering ordering = linalg::Ordering::natural;
    std::size_t pattern_nnz = 0;            ///< frozen stamp pattern
    std::size_t predicted_fill_natural = 0; ///< symbolic L+U, natural order
    std::size_t predicted_fill_chosen = 0;  ///< symbolic L+U, chosen order
    std::size_t factor_nnz = 0;             ///< actual L+U of the sparse LU

    [[nodiscard]] const char* name() const noexcept {
        return linalg::ordering_name(ordering);
    }
};

/// Copy the ordering decision out of a cache's Stats (templated so this
/// header stays independent of mna/system_cache.hpp).
template <typename CacheStats>
[[nodiscard]] SolverOrderingStats make_ordering_stats(const CacheStats& s) {
    return SolverOrderingStats{s.ordering, s.pattern_nnz,
                               s.predicted_fill_natural,
                               s.predicted_fill_chosen, s.factor_nnz};
}

/// Shape of the cached solver's level-scheduled parallel refactor
/// (sparse flat path; defaults on the dense path or the legacy storage).
struct SolverFactorStats {
    std::size_t threads = 1;    ///< workers on the factor path
    std::size_t supernodes = 0; ///< supernodes in the schedule
    std::size_t levels = 0;     ///< elimination-tree levels
};

/// Copy the factor-schedule shape out of a cache's Stats.
template <typename CacheStats>
[[nodiscard]] SolverFactorStats make_factor_stats(const CacheStats& s) {
    return SolverFactorStats{s.factor_threads, s.factor_supernodes,
                             s.factor_levels};
}

/// Outcome of a single operating-point solve.
struct DcResult {
    linalg::Vector x;            ///< unknown vector [v_nodes; i_branches]
    bool converged = false;
    /// True when an AnalysisObserver cancelled the solve cooperatively;
    /// `x` is the last iterate reached before the abort.
    bool aborted = false;
    bool oscillation_detected = false; ///< NR cycling (the Fig. 2 failure)
    int iterations = 0;          ///< NR iterations (or SWEC pseudo-steps)
    double residual = 0.0;       ///< final update norm
    FlopCounter flops;           ///< work spent in this solve
    /// Cached-solver instrumentation (mna::SystemCache): full symbolic
    /// factorisations vs. pattern-reusing refactors vs. dense-path solves
    /// spent inside this analysis (all zero on non-cached engines).
    std::size_t solver_full_factors = 0;
    std::size_t solver_fast_refactors = 0;
    std::size_t solver_dense_solves = 0;
    /// Ordering chosen by the cached solver (natural on dense path).
    SolverOrderingStats solver_ordering;
    /// Factor-schedule shape of the cached solver.
    SolverFactorStats solver_factor;
    /// Iterate history (filled when options.record_trace is set);
    /// trace[k] is the unknown vector after iteration k.
    std::vector<linalg::Vector> trace;
};

/// Outcome of a DC sweep: one solution per sweep value.
struct SweepResult {
    std::vector<double> values;               ///< swept source values
    std::vector<linalg::Vector> solutions;    ///< per-point solutions
    std::vector<bool> converged;              ///< per-point status
    int total_iterations = 0;
    /// True when an AnalysisObserver cancelled the sweep; values/
    /// solutions/converged hold the points completed before the abort.
    bool aborted = false;
    FlopCounter flops;

    /// Number of sweep points that failed to converge.
    [[nodiscard]] int failures() const noexcept {
        int n = 0;
        for (const bool ok : converged) {
            n += ok ? 0 : 1;
        }
        return n;
    }
};

/// Outcome of a transient run.
struct TranResult {
    /// One waveform per non-ground node, label "v(<name>)", index
    /// = NodeId - 1.
    std::vector<analysis::Waveform> node_waves;
    /// True when an AnalysisObserver cancelled the run cooperatively; the
    /// waveforms hold every step accepted before the abort (t_end < t_stop).
    bool aborted = false;
    int steps_accepted = 0;
    int steps_rejected = 0;
    int nr_iterations = 0;       ///< total NR iterations (0 for SWEC)
    int nonconverged_steps = 0;  ///< steps accepted without convergence
    double min_dt_used = 0.0;
    double max_dt_used = 0.0;
    /// Max a-posteriori local error estimate seen (paper eq. 10).  The
    /// max spikes at regenerative switching events (the state
    /// accelerates beyond any history-based estimate for one step);
    /// avg_local_error tracks typical step-control quality.
    double max_local_error = 0.0;
    double avg_local_error = 0.0;
    /// Which bound limited each accepted step (sums to steps_accepted).
    /// Adaptive engines attribute the winning constraint per step; the
    /// fixed-step baselines count everything under `fixed`.
    obs::StepBoundCounts step_bounds;
    /// Rescue-ladder outcomes (dt-backoff -> gmin -> source stepping)
    /// taken when a step failed to solve; zero on a healthy run.
    obs::RescueCounts rescues;
    FlopCounter flops;
    /// Cached-solver instrumentation (mna::SystemCache): the accepted-step
    /// loop should show full_factors == 1 and fast_refactors ~ steps on
    /// the sparse path (dense_solves ~ steps below the dense threshold).
    std::size_t solver_full_factors = 0;
    std::size_t solver_fast_refactors = 0;
    std::size_t solver_dense_solves = 0;
    /// Ordering chosen by the cached solver (natural on dense path).
    SolverOrderingStats solver_ordering;
    /// Factor-schedule shape of the cached solver.
    SolverFactorStats solver_factor;

    /// Waveform of a node by name (throws NetlistError if unknown).
    [[nodiscard]] const analysis::Waveform&
    node(const Circuit& circuit, const std::string& name) const {
        const NodeId id = circuit.find_node(name);
        return node_waves.at(static_cast<std::size_t>(id - 1));
    }
};

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_RESULTS_HPP
