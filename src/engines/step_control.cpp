#include "engines/step_control.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nanosim::engines {

ClippedStep clip_step_to_events(double t, double h, double t_stop,
                                double dt_min,
                                std::span<const double> breakpoints,
                                std::size_t& next_bp,
                                bool floor_to_dt_min) {
    const double snap = breakpoint_snap_tol(t_stop);
    while (next_bp < breakpoints.size() &&
           breakpoints[next_bp] <= t + snap) {
        ++next_bp;
    }
    ClippedStep out;
    out.h = h;
    // Land on the next corner — unless it sits within dt_min of the
    // horizon, in which case it is absorbed into the final landing: a
    // separate corner landing would leave a closing sliver far below
    // dt_min whose C/h companion entries are ill-scaled, and sub-dt_min
    // timing detail is below the engine's resolution anyway (the NR/PWL
    // corner floor overshoots by the same bound).
    if (next_bp < breakpoints.size() &&
        t + out.h > breakpoints[next_bp] - snap &&
        breakpoints[next_bp] < t_stop - dt_min) {
        out.h = breakpoints[next_bp] - t;
        if (floor_to_dt_min) {
            out.h = std::max(out.h, dt_min);
        }
        out.hit_breakpoint = true;
    }
    // Exact-corner landings target < t_stop - dt_min and never reach the
    // sliver zone; anything else that does (plain steps, the dt_min
    // floor overshooting a corner) merges into the exact horizon
    // landing — unless the landing would stretch the caller's
    // accuracy-bounded proposal by more than 50%, in which case half the
    // remainder is taken now (>= 0.75 * dt_min, within the proposal) and
    // the landing happens next iteration.  SWEC accepts steps
    // unconditionally, so an unbounded merge would silently exceed its
    // eq. 12 error bound right at the t_stop sample this merge exists to
    // make exact.
    if (t + out.h >= t_stop - dt_min) {
        const double remain = t_stop - t;
        out.hit_breakpoint = false;
        if (remain > 1.5 * out.h) {
            out.h = 0.5 * remain;
            out.final_step = false;
        } else {
            out.h = remain;
            out.final_step = true;
        }
    }
    return out;
}

double swec_step_bound(const mna::MnaAssembler& assembler,
                       const linalg::Triplets& g_assembled,
                       std::span<const double> x,
                       std::span<const double> dvdt, double eps,
                       double v_floor) {
    const int nn = assembler.num_nodes();
    std::vector<double> gdiag(static_cast<std::size_t>(nn), 0.0);
    for (const auto& e : g_assembled.entries()) {
        if (e.row == e.col && e.row < static_cast<std::size_t>(nn)) {
            gdiag[e.row] += e.value;
        }
    }
    return swec_step_bound_diag(assembler, gdiag, x, dvdt, eps, v_floor);
}

double swec_step_bound_diag(const mna::MnaAssembler& assembler,
                            std::span<const double> node_gdiag,
                            std::span<const double> x,
                            std::span<const double> dvdt, double eps,
                            double v_floor) {
    double bound = std::numeric_limits<double>::infinity();

    // Device bounds (eq. 12, first argument of the MIN).
    const NodeVoltages v = assembler.view(x);
    const NodeVoltages rate = assembler.view(dvdt);
    for (const Device* dev : assembler.nonlinear_devices()) {
        bound = std::min(bound, dev->step_limit(v, rate, eps));
    }

    // Node RC bounds (eq. 12, second argument): eps * C_j / sum_k G_jk.
    const int nn = assembler.num_nodes();
    for (int j = 0; j < nn; ++j) {
        const auto r = static_cast<std::size_t>(j);
        const double cj = assembler.c_csr().at(r, r);
        const double gj = std::abs(node_gdiag[r]);
        if (cj <= 0.0 || gj <= 0.0) {
            continue;
        }
        const double h_j = eps * cj / gj;
        // Activity guard (see header): enforce only while the node moves.
        if (std::abs(dvdt[r]) * h_j > v_floor) {
            bound = std::min(bound, h_j);
        }
    }
    return bound;
}

double swec_node_step_bound(std::span<const double> c_node_diag,
                            std::span<const double> node_gdiag,
                            std::span<const double> dvdt, double eps,
                            double v_floor) {
    // Exactly the node loop of swec_step_bound_diag, reading the
    // precomputed C diagonal instead of c_csr().at per node.
    double bound = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < c_node_diag.size(); ++r) {
        const double cj = c_node_diag[r];
        const double gj = std::abs(node_gdiag[r]);
        if (cj <= 0.0 || gj <= 0.0) {
            continue;
        }
        const double h_j = eps * cj / gj;
        if (std::abs(dvdt[r]) * h_j > v_floor) {
            bound = std::min(bound, h_j);
        }
    }
    return bound;
}

double measured_local_error(std::span<const double> x_old,
                            std::span<const double> x_new,
                            std::span<const double> dvdt_prev, double h,
                            int num_nodes, double v_floor) {
    const auto nn = static_cast<std::size_t>(num_nodes);
    // Eq. (10) is defined "at the output" — the actively switching node.
    // Evaluate it on nodes moving comparably to the most active one;
    // nodes near a turning point (dV ~ 0 while the slope estimate is
    // finite) would otherwise blow the ratio up without saying anything
    // about step-control quality.
    double max_move = 0.0;
    for (std::size_t j = 0; j < nn && j < x_old.size(); ++j) {
        max_move = std::max(max_move, std::abs(x_new[j] - x_old[j]));
    }
    const double gate = std::max(v_floor, 0.25 * max_move);

    double worst = 0.0;
    for (std::size_t j = 0; j < nn && j < x_old.size(); ++j) {
        const double actual = x_new[j] - x_old[j];
        if (std::abs(actual) < gate) {
            continue;
        }
        const double estimated = h * dvdt_prev[j];
        worst = std::max(worst, std::abs(actual - estimated) /
                                    std::abs(actual));
    }
    return worst;
}

} // namespace nanosim::engines
