// Nano-Sim — adaptive time-step control for the SWEC engine
// (paper Sec. 3.4, eqs. 10-12).
//
// For a target local error ratio eps, the next step is the minimum over
//   * every conducting transistor:   eps * 2 (V_GS - V_th) / |dV_GS/dt|
//     and the analogous chord-rate bound for RTD/RTT/nanowire devices
//     (both supplied by Device::step_limit), and
//   * every node j with grounded capacitance C_j:
//                                    eps * C_j / sum_k G_jk(t_n)
// — eq. (12).  The a-posteriori error of a completed step is measured as
// eq. (10):  eps_meas = |dV_actual - dV_est| / |dV_actual|.
#ifndef NANOSIM_ENGINES_STEP_CONTROL_HPP
#define NANOSIM_ENGINES_STEP_CONTROL_HPP

#include <span>

#include "linalg/sparse.hpp"
#include "mna/mna.hpp"

namespace nanosim::engines {

/// Breakpoint snap tolerance shared by the transient engines: two time
/// points closer than this are the same source corner.  Relative to the
/// horizon — an absolute tolerance (the old 1e-18 s) misclassifies
/// corners on femtosecond-scale runs and never coalesces duplicates on
/// second-scale ones.  The ratio lives in mna (mna::k_breakpoint_snap_rel)
/// so MnaAssembler::breakpoints dedups with exactly the same tolerance.
[[nodiscard]] constexpr double breakpoint_snap_tol(double t_stop) noexcept {
    return mna::k_breakpoint_snap_rel * t_stop;
}

/// One proposed transient step after event clipping — shared by the
/// SWEC/NR/PWL accepted-step loops so the breakpoint-landing and
/// t_stop-landing rules cannot drift apart between engines.
struct ClippedStep {
    double h = 0.0;            ///< step to take
    bool hit_breakpoint = false; ///< h lands on a source corner
    bool final_step = false;   ///< h lands exactly on t_stop (the caller
                               ///< must then set t = t_stop, not t + h)
};

/// Clip a proposed step `h` from time `t` to the next source corner and
/// to the horizon.  Corners already behind t (within the snap tolerance)
/// are consumed from `next_bp`.  Rules:
///  * never step across a corner; with `floor_to_dt_min` (NR/PWL) the
///    corner step is floored at dt_min, accepting a < dt_min overshoot;
///  * any step reaching within dt_min of the horizon merges into an
///    exact t_stop landing (a trailing sliver step would make the C/h
///    companion ill-scaled for no informational gain); when the landing
///    would stretch the proposed step by more than 50% the remainder is
///    split in two bound-respecting halves instead, the second landing
///    exactly;
///  * a corner within dt_min of t_stop is absorbed by that merge rather
///    than landed on — sub-dt_min timing detail is below the engine's
///    resolution (the same bound as the NR/PWL corner-floor overshoot).
///    Accepted points therefore stay below t_stop - dt_min (or land
///    exactly on t_stop), except after an NR/PWL convergence retry that
///    deliberately lands short; the closing step still lands exactly.
[[nodiscard]] ClippedStep
clip_step_to_events(double t, double h, double t_stop, double dt_min,
                    std::span<const double> breakpoints,
                    std::size_t& next_bp, bool floor_to_dt_min);

/// Minimum step bound over all devices and nodes (eq. 12).
/// `g_assembled` must be the FULL conductance triplets of the current
/// time point (static + SWEC stamps) — its node-diagonal entries are the
/// sum-of-conductances term.  Returns +infinity when nothing constrains
/// the step.
///
/// Activity guard: the node bound eps * C_j / sum G_jk protects the
/// accuracy of a node that is *relaxing*; clamping a quiescent node to a
/// fraction of its (possibly picosecond) time constant only burns steps.
/// A node's bound is therefore applied only when the step it allows
/// would still move that node by more than `v_floor` at its current
/// slew rate — paper [4] applies the constraint to conducting/active
/// devices in the same spirit.
[[nodiscard]] double swec_step_bound(const mna::MnaAssembler& assembler,
                                     const linalg::Triplets& g_assembled,
                                     std::span<const double> x,
                                     std::span<const double> dvdt,
                                     double eps, double v_floor = 1e-6);

/// Same bound, but taking the node-diagonal conductance sums directly —
/// the hot-loop form used by the SWEC engine, which maintains the
/// diagonal incrementally instead of assembling G twice per step.
[[nodiscard]] double
swec_step_bound_diag(const mna::MnaAssembler& assembler,
                     std::span<const double> node_gdiag,
                     std::span<const double> x,
                     std::span<const double> dvdt, double eps,
                     double v_floor = 1e-6);

/// The node-capacitance half of eq. (12) alone: min over nodes of
/// eps * C_j / |G_jj| under the activity guard.  `c_node_diag` holds the
/// per-node grounded capacitance (the C-matrix diagonal, constant per
/// assembly — precompute it once per analysis instead of binary-
/// searching c_csr every step).  The SWEC engine combines this with the
/// device bounds it gets from the solver cache's compiled evaluation
/// plan, which reuses the chord/rate values of the current step instead
/// of re-evaluating every device model through Device::step_limit.
[[nodiscard]] double
swec_node_step_bound(std::span<const double> c_node_diag,
                     std::span<const double> node_gdiag,
                     std::span<const double> dvdt, double eps,
                     double v_floor = 1e-6);

/// A-posteriori local error of a step (eq. 10): worst over nodes of
/// |dv_actual - dv_estimated| / |dv_actual|, where dv_estimated =
/// h * dvdt_prev.  Nodes whose actual move is below `v_floor` are
/// skipped (the ratio is meaningless in the noise floor).
[[nodiscard]] double measured_local_error(std::span<const double> x_old,
                                          std::span<const double> x_new,
                                          std::span<const double> dvdt_prev,
                                          double h, int num_nodes,
                                          double v_floor = 1e-9);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_STEP_CONTROL_HPP
