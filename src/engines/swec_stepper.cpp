#include "engines/swec_stepper.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "engines/dc_swec.hpp"
#include "engines/options_common.hpp"
#include "engines/step_control.hpp"
#include "util/error.hpp"
#include "util/failpoints.hpp"

namespace nanosim::engines {

SwecTranOptions resolve_swec_tran_options(const SwecTranOptions& in) {
    constexpr const char* who = "run_tran_swec";
    SwecTranOptions o = in;
    const StepLimits s =
        resolve_step_limits(who, o.t_stop, o.dt_init, o.dt_min, o.dt_max);
    o.dt_init = s.dt_init;
    o.dt_min = s.dt_min;
    o.dt_max = s.dt_max;
    require_positive(who, "eps", o.eps);
    require_at_least(who, "growth_limit", o.growth_limit, 1.0);
    require_non_negative(who, "geq_floor", o.geq_floor);
    return o;
}

SwecStepper::SwecStepper(const mna::MnaAssembler& assembler,
                         SwecTranOptions options, mna::SystemCache& cache,
                         bool dc_through_cache)
    : assembler_(&assembler), cache_(&cache), options_(std::move(options)),
      n_(static_cast<std::size_t>(assembler.unknowns())),
      nl_(assembler.nonlinear_devices().size()),
      nn_(static_cast<std::size_t>(assembler.num_nodes())) {
    // --- Initial condition. ---
    if (!options_.initial.empty()) {
        if (options_.initial.size() != n_) {
            throw AnalysisError("run_tran_swec: initial size mismatch");
        }
        x_ = options_.initial;
    } else if (options_.start_from_dc) {
        // Through the shared cache when one was supplied (the DC march
        // restamps the same pattern); self-contained otherwise, matching
        // the historical per-call behaviour.
        x_ = solve_op_swec(assembler, {}, 0.0, 1.0,
                           dc_through_cache ? cache_ : nullptr)
                 .x;
    } else {
        x_.assign(n_, 0.0);
    }

    // Tabulated chord models (opt-in): bound after the DC solve so the
    // operating point keeps its own (closed-form by default) setting.
    cache_->configure_tables(options_.tables);

    result_.node_waves.reserve(nn_);
    for (int i = 0; i < assembler.num_nodes(); ++i) {
        result_.node_waves.emplace_back(
            "v(" + assembler.circuit().node_name(i + 1) + ")");
    }

    // --- Breakpoints (source corners) — never step across one. ---
    breakpoints_ = assembler.breakpoints(0.0, options_.t_stop);

    // Static part of the node-diagonal conductance sums, computed once;
    // the per-step diagonal adds the SWEC chords and time-varying
    // devices incrementally (see swec_node_step_bound).
    static_gdiag_.assign(nn_, 0.0);
    for (const auto& e : assembler.static_g().entries()) {
        if (e.row == e.col && e.row < nn_) {
            static_gdiag_[e.row] += e.value;
        }
    }
    // Grounded node capacitances (eq. 12 node bound) — the C diagonal is
    // fixed per assembly, so read it once instead of binary-searching
    // the CSR every step.
    c_node_diag_.assign(nn_, 0.0);
    for (std::size_t r = 0; r < nn_; ++r) {
        c_node_diag_[r] = assembler.c_csr().at(r, r);
    }

    record(0.0, x_);

    // Accepted-step-size distribution (metrics on only; registered once,
    // then two relaxed atomics per accepted step).
    if (obs::metrics_enabled()) {
        static obs::Histogram& sh = obs::metrics().histogram(
            "swec.step_size_s", obs::log_buckets(1e-15, 1.0, 2));
        h_hist_ = &sh;
    }

    dvdt_.assign(n_, 0.0); // eq. (9) backward difference
    geq_.assign(nl_, 0.0);
    geq_rate_.assign(nl_, 0.0);
    geq_pred_.assign(nl_, 0.0); // hoisted: no per-step alloc
    h_ = options_.dt_init;
    result_.min_dt_used = options_.dt_max;

    noise_ = options_.noise.empty() ? nullptr : &options_.noise;
}

void SwecStepper::record(double t, const linalg::Vector& state) {
    for (int i = 0; i < assembler_->num_nodes(); ++i) {
        result_.node_waves[static_cast<std::size_t>(i)].append(
            t, state[static_cast<std::size_t>(i)]);
    }
}

void SwecStepper::eval() {
    // 1. Chord conductances and their rates at t_n — one compiled
    // per-class evaluation pass (closed forms or tables) instead of a
    // virtual call per device.
    cache_->eval_chords(x_, dvdt_, h_prev_ > 0.0, geq_, geq_rate_);
}

mna::SystemCache::EvalLane SwecStepper::eval_request() noexcept {
    return mna::SystemCache::EvalLane{
        .x = x_, .dvdt = dvdt_, .with_rate = h_prev_ > 0.0,
        .geq = geq_, .geq_rate = geq_rate_};
}

void SwecStepper::prepare() {
    // Which constraint produced the step actually taken (RunReport
    // step-bound attribution); repointed as each clamp below wins.
    bound_src_ = &result_.step_bounds.fixed;

    // 2. Adaptive step (eq. 12) — needs the node-diagonal G sums at
    // t_n: static part cached, nonlinear/time-varying parts added
    // through the cache's compiled diagonal plan.
    if (options_.adaptive) {
        std::vector<double> gdiag = static_gdiag_;
        cache_->swec_gdiag(t_, geq_, gdiag);
        // Eq. (12): device bounds from the chords/rates evaluated in
        // step 1 (no model re-evaluation), node RC bounds from the
        // incremental diagonal.
        const double device_bound = cache_->device_step_bound(
            x_, dvdt_, geq_, geq_rate_, options_.eps);
        const double node_bound = swec_node_step_bound(
            c_node_diag_, gdiag, dvdt_, options_.eps);
        bound_src_ = device_bound <= node_bound
                         ? &result_.step_bounds.device
                         : &result_.step_bounds.node;
        h_ = std::min(device_bound, node_bound);
        if (options_.dt_max < h_) {
            h_ = options_.dt_max;
            bound_src_ = &result_.step_bounds.dt_max;
        }
        if (h_prev_ > 0.0 && options_.growth_limit * h_prev_ < h_) {
            h_ = options_.growth_limit * h_prev_;
            bound_src_ = &result_.step_bounds.growth;
        }
        if (h_ < options_.dt_min) {
            h_ = options_.dt_min;
            bound_src_ = &result_.step_bounds.dt_min;
        }
    } else {
        h_ = options_.dt_init;
    }
    // Land exactly on breakpoints and on t_stop; any trailing sliver
    // shorter than dt_min is merged into the final step (a ~1e-21 s
    // step would make (G + C/h) ill-scaled for no informational gain),
    // so the last recorded point is exactly t_stop — sweep metrics and
    // Monte-Carlo sample a solved state, not a clamped/held one.  See
    // clip_step_to_events for the landing rules shared with the NR/PWL
    // engines.
    const ClippedStep clip = clip_step_to_events(
        t_, h_, options_.t_stop, options_.dt_min, breakpoints_, next_bp_,
        /*floor_to_dt_min=*/false);
    if (clip.h != h_) {
        // The clip actually changed the step: an event, not a bound,
        // decided its size.
        bound_src_ = clip.hit_breakpoint ? &result_.step_bounds.breakpoint
                                         : &result_.step_bounds.horizon;
    }
    h_ = clip.h;
    hit_breakpoint_ = clip.hit_breakpoint;
    final_step_ = clip.final_step;

    // 3. Predict G_eq at t_{n+1} (eq. 5).
    for (std::size_t k = 0; k < nl_; ++k) {
        double g = geq_[k];
        if (options_.use_predictor) {
            g += 0.5 * h_ * geq_rate_[k];
        }
        geq_pred_[k] = std::max(g, options_.geq_floor);
    }
}

void SwecStepper::stamp() {
    // 4. One linear backward-Euler system through the cached pattern:
    // values restamped in place (no triplet rebuild), ready for a
    // pattern-reusing refactor instead of a fresh symbolic analysis.
    rhs_ = cache_->rhs(t_ + h_, noise_);
    {
        // rhs += (C/h) x  via the cached CSR C.
        linalg::Vector cx = assembler_->c_csr().multiply(x_);
        for (std::size_t i = 0; i < n_; ++i) {
            rhs_[i] += cx[i] / h_;
        }
    }
    restamp_system();
}

void SwecStepper::restamp_system() {
    cache_->begin(1.0 / h_, rhs_);
    cache_->restamp_time_varying(t_ + h_);
    cache_->restamp_swec(geq_pred_);
}

namespace {

bool all_finite(const linalg::Vector& x) noexcept {
    for (const double v : x) {
        if (!std::isfinite(v)) {
            return false;
        }
    }
    return true;
}

} // namespace

linalg::Vector SwecStepper::solve_rescued() {
    bool injected = false;
    if (failpoints::enabled()) {
        static auto& fp = failpoints::site("swec.solve_nan");
        injected = fp.fire();
    }
    try {
        linalg::Vector x = cache_->solve(rhs_);
        if (!injected && all_finite(x)) {
            return x; // healthy path: exactly the plain solve
        }
    } catch (const SingularMatrixError&) {
        // fall through to the ladder
    }
    return rescue_ladder();
}

linalg::Vector SwecStepper::rescue_ladder() {
    // Re-runs eq. 5 + stamp for the current h_, then solves; the ladder
    // mutates h_ / the diagonal / the rhs between attempts.
    const auto repredict_and_stamp = [this] {
        for (std::size_t k = 0; k < nl_; ++k) {
            double g = geq_[k];
            if (options_.use_predictor) {
                g += 0.5 * h_ * geq_rate_[k];
            }
            geq_pred_[k] = std::max(g, options_.geq_floor);
        }
        stamp();
    };
    const auto try_solve = [this](linalg::Vector* out) {
        try {
            linalg::Vector x = cache_->solve(rhs_);
            if (all_finite(x)) {
                *out = std::move(x);
                return true;
            }
        } catch (const SingularMatrixError&) {
        }
        return false;
    };

    linalg::Vector x;

    // Rung 1 — dt-backoff: a smaller step both improves (G + C/h)
    // conditioning and shrinks the eq. 5 extrapolation error.
    ++result_.rescues.dt_backoff_attempted;
    for (int k = 0; k < 4 && h_ > options_.dt_min; ++k) {
        h_ = std::max(0.5 * h_, options_.dt_min);
        // The shortened step no longer lands on the event prepare()
        // clipped to; later steps re-approach it through the normal clip.
        final_step_ = false;
        hit_breakpoint_ = false;
        repredict_and_stamp();
        if (try_solve(&x)) {
            ++result_.rescues.dt_backoff_succeeded;
            return x;
        }
    }

    // Rung 2 — gmin stepping: regularize the node diagonal with the
    // smallest conductance that makes the system solvable.
    ++result_.rescues.gmin_attempted;
    for (const double gmin : {1e-12, 1e-9, 1e-6, 1e-3}) {
        repredict_and_stamp();
        for (std::size_t row = 0; row < nn_; ++row) {
            cache_->add_node_diag(static_cast<int>(row), gmin);
        }
        if (try_solve(&x)) {
            ++result_.rescues.gmin_succeeded;
            return x;
        }
    }

    // Rung 3 — source stepping: solve against a scaled-down excitation
    // and rescale (exact for this linear step), with the largest gmin of
    // rung 2 keeping the matrix regular.  Catches overflow-driven
    // non-finite solves that no conditioning fix can.
    ++result_.rescues.source_attempted;
    for (const double alpha : {0.5, 0.25, 0.0625}) {
        repredict_and_stamp();
        for (double& b : rhs_) {
            b *= alpha;
        }
        restamp_system();
        for (std::size_t row = 0; row < nn_; ++row) {
            cache_->add_node_diag(static_cast<int>(row), 1e-3);
        }
        if (try_solve(&x)) {
            const double inv = 1.0 / alpha;
            for (double& v : x) {
                v *= inv;
            }
            ++result_.rescues.source_succeeded;
            return x;
        }
    }

    throw AnalysisError(
        "run_tran_swec: rescue ladder exhausted at t = " +
        std::to_string(t_) + " s (dt-backoff, gmin stepping, and source "
        "stepping all produced singular or non-finite solves)");
}

void SwecStepper::accept(linalg::Vector x_next,
                         const AnalysisObserver* observer) {
    // 5. Bookkeeping: eq. (10) a-posteriori error, eq. (9) slope.
    // Excluded: the first two steps (slope history not meaningful from a
    // possibly inconsistent IC) and the two steps following a source
    // corner (the slope is discontinuous there by design, so the
    // prediction-error ratio says nothing about step control).
    if (h_prev_ > 0.0 && result_.steps_accepted >= 2 &&
        steps_since_corner_ >= 2) {
        const double err = measured_local_error(
            x_, x_next, dvdt_, h_, assembler_->num_nodes());
        result_.max_local_error =
            std::max(result_.max_local_error, err);
        local_error_sum_ += err;
        ++local_error_count_;
    }
    for (std::size_t i = 0; i < n_; ++i) {
        dvdt_[i] = (x_next[i] - x_[i]) / h_;
    }
    x_ = std::move(x_next);
    // Land on t_stop bit-exactly: t + (t_stop - t) may round off.
    t_ = final_step_ ? options_.t_stop : t_ + h_;
    h_prev_ = h_;
    ++result_.steps_accepted;
    ++*bound_src_;
    if (h_hist_ != nullptr) {
        h_hist_->observe(h_);
    }
    result_.min_dt_used = std::min(result_.min_dt_used, h_);
    result_.max_dt_used = std::max(result_.max_dt_used, h_);
    record(t_, x_);
    if (observer != nullptr) {
        observer->step(t_, result_.steps_accepted);
        observer->sample(t_, x_.data(), static_cast<int>(x_.size()));
        observer->progress(t_ / options_.t_stop);
    }

    if (hit_breakpoint_) {
        // A source corner invalidates the slope history; restart the
        // ramp so the bound reacts to the new edge.
        h_prev_ = std::min(h_prev_, options_.dt_init);
        steps_since_corner_ = 0;
    } else {
        ++steps_since_corner_;
    }
}

TranResult SwecStepper::take_result() {
    if (local_error_count_ > 0) {
        result_.avg_local_error =
            local_error_sum_ / static_cast<double>(local_error_count_);
    }
    return std::move(result_);
}

} // namespace nanosim::engines
