// Nano-Sim — the SWEC transient stepper as a phased state machine.
//
// run_tran_swec's adaptive loop, split at its natural seams so drivers
// other than the serial transient can schedule the phases:
//
//   eval()     chord conductances + rates at t_n   (cache->eval_chords)
//   prepare()  eq. 12 adaptive bound, event clip, eq. 5 predictor
//   stamp()    rhs assembly + in-place value restamp of the cached system
//   <solve>    x_next = cache->solve(rhs())        (driver-owned)
//   accept()   eq. 10 error, eq. 9 slope, waveforms, step control
//
// The serial driver runs the phases back-to-back per step.  The
// trial-batched Monte-Carlo driver interleaves the phases of K lanes so
// evaluation, numeric refactorisation and triangular substitution batch
// across trials.  Either way every phase performs the exact arithmetic
// of the historical monolithic loop on this lane's state alone — shared
// scheduling changes *when* work runs, never its operands — which is
// what makes the batched drivers bit-identical to the serial one by
// construction.
#ifndef NANOSIM_ENGINES_SWEC_STEPPER_HPP
#define NANOSIM_ENGINES_SWEC_STEPPER_HPP

#include <cstdint>
#include <vector>

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "engines/tran_swec.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"
#include "obs/metrics.hpp"

namespace nanosim::engines {

/// Validate SwecTranOptions and fill the defaults derived from t_stop
/// (run_tran_swec's historical resolve step).  Throws AnalysisError.
[[nodiscard]] SwecTranOptions
resolve_swec_tran_options(const SwecTranOptions& options);

/// One transient integration in flight: owns the lane state (x, dvdt,
/// chord conductances, step controller, waveforms) and advances one
/// accepted step per eval/prepare/stamp/solve/accept cycle through the
/// caller's SystemCache.  Construction performs the initial condition
/// (explicit / DC operating point / zeros) and records t = 0.
class SwecStepper {
public:
    /// `options` must already be resolved (resolve_swec_tran_options).
    /// `dc_through_cache` routes the start_from_dc operating point
    /// through `cache` (shared SimSession-style caches); engine-local
    /// caches keep the historical self-contained DC solve.
    SwecStepper(const mna::MnaAssembler& assembler, SwecTranOptions options,
                mna::SystemCache& cache, bool dc_through_cache);

    /// True once the horizon is reached or the run was aborted.
    [[nodiscard]] bool done() const noexcept {
        return result_.aborted || t_ >= options_.t_stop;
    }
    /// Flag the run cancelled; the waveforms recorded so far stand.
    void abort() noexcept { result_.aborted = true; }

    /// Phase 1a: chord conductances/rates at t_n through the cache.
    void eval();
    /// Batched alternative to eval(): the lane's evaluation request, for
    /// SystemCache::eval_chords_batch.  The spans stay valid until the
    /// next accept().
    [[nodiscard]] mna::SystemCache::EvalLane eval_request() noexcept;
    /// Phase 1b: adaptive step bound (eq. 12), event clipping, and the
    /// eq. 5 conductance predictor.  Requires eval() this cycle.
    void prepare();
    /// Phase 2: assemble the backward-Euler rhs and restamp the cached
    /// system's values for this lane.  After stamp() the cache holds
    /// this lane's (G + C/h, rhs); the driver must solve (or capture the
    /// plane) before another lane stamps.
    void stamp();
    [[nodiscard]] const linalg::Vector& rhs() const noexcept { return rhs_; }
    /// Phase 2.5 (serial drivers): solve the stamped system with the
    /// numerical rescue ladder behind it.  The healthy path is exactly
    /// `cache->solve(rhs())` plus a finiteness scan — bit-identical
    /// results.  On a singular or non-finite solve it escalates
    /// dt-backoff -> gmin stepping -> source stepping (counting each rung
    /// in the result's RescueCounts) and throws AnalysisError only when
    /// every rung is exhausted.  Requires stamp() this cycle; on return
    /// the lane may have a smaller h_ than prepare() chose.
    [[nodiscard]] linalg::Vector solve_rescued();
    /// Phase 3: accept the solved step — error/slope bookkeeping, state
    /// and waveform update, step-control advance, observer callbacks.
    void accept(linalg::Vector x_next, const AnalysisObserver* observer);

    [[nodiscard]] double time() const noexcept { return t_; }
    [[nodiscard]] int steps_accepted() const noexcept {
        return result_.steps_accepted;
    }
    [[nodiscard]] const SwecTranOptions& options() const noexcept {
        return options_;
    }

    /// Finalise (average local error) and move the result out.
    [[nodiscard]] TranResult take_result();

private:
    void record(double t, const linalg::Vector& state);
    /// begin() + in-place restamps for the current rhs_/h_/geq_pred_ (the
    /// second half of stamp(); the rescue ladder re-runs it after
    /// mutating the step or the rhs).
    void restamp_system();
    /// The slow path of solve_rescued() (see its contract).
    [[nodiscard]] linalg::Vector rescue_ladder();

    const mna::MnaAssembler* assembler_;
    mna::SystemCache* cache_;
    SwecTranOptions options_;
    std::size_t n_ = 0;  ///< unknowns
    std::size_t nl_ = 0; ///< nonlinear devices
    std::size_t nn_ = 0; ///< non-ground nodes

    TranResult result_;
    std::vector<double> breakpoints_;
    std::size_t next_bp_ = 0;
    std::vector<double> static_gdiag_;
    std::vector<double> c_node_diag_;
    obs::Histogram* h_hist_ = nullptr;

    linalg::Vector x_;
    linalg::Vector dvdt_;
    std::vector<double> geq_;
    std::vector<double> geq_rate_;
    std::vector<double> geq_pred_;
    linalg::Vector rhs_;
    double t_ = 0.0;
    double h_ = 0.0;
    double h_prev_ = 0.0;
    int steps_since_corner_ = 0;
    double local_error_sum_ = 0.0;
    std::size_t local_error_count_ = 0;
    std::uint64_t* bound_src_ = nullptr;
    bool hit_breakpoint_ = false;
    bool final_step_ = false;
    const mna::MnaAssembler::NoiseRealization* noise_ = nullptr;
};

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_SWEC_STEPPER_HPP
