#include "engines/tran_nr.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "engines/dc_nr.hpp"
#include "engines/options_common.hpp"
#include "engines/step_control.hpp"
#include "linalg/vecops.hpp"
#include "mna/system_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/failpoints.hpp"
#include "util/log.hpp"

namespace nanosim::engines {

namespace {

NrTranOptions resolve(const NrTranOptions& in) {
    constexpr const char* who = "run_tran_nr";
    NrTranOptions o = in;
    const StepLimits s =
        resolve_step_limits(who, o.t_stop, o.dt_init, o.dt_min, o.dt_max);
    o.dt_init = s.dt_init;
    o.dt_min = s.dt_min;
    o.dt_max = s.dt_max;
    require_at_least(who, "max_nr_iterations", o.max_nr_iterations, 1);
    require_positive(who, "abstol", o.abstol);
    require_non_negative(who, "reltol", o.reltol);
    require_positive(who, "lte_tol", o.lte_tol);
    require_at_least(who, "max_halvings", o.max_halvings, 0);
    return o;
}

/// One NR solve of the companion system at time t with step h.
/// Returns {x, converged, iterations}.
struct StepSolve {
    linalg::Vector x;
    bool converged = false;
    int iterations = 0;
};

/// `gmin` > 0 regularizes every node diagonal (the gmin-stepping rescue
/// rung); `source_scale` < 1 scales the independent sources b(t) only —
/// the (C/h) x_n history term stays exact (source-stepping rung).
/// `allow_inject` lets the nr.divergence fail point force a
/// non-converged return; rescue-rung solves pass false so an armed site
/// cannot sabotage its own rescue.
StepSolve solve_companion(const mna::MnaAssembler& assembler,
                          mna::SystemCache& cache,
                          const NrTranOptions& options,
                          const linalg::Vector& x_n,
                          const linalg::Vector& x_guess, double t_next,
                          double h,
                          const mna::MnaAssembler::NoiseRealization* noise,
                          double gmin = 0.0, double source_scale = 1.0,
                          bool allow_inject = true) {
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    const auto nn = static_cast<std::size_t>(assembler.num_nodes());
    StepSolve out;
    out.x = x_guess;

    if (allow_inject && failpoints::enabled()) {
        static auto& fp = failpoints::site("nr.divergence");
        if (fp.fire()) {
            return out; // injected: report divergence without solving
        }
    }

    // Constant part of the rhs for this step: scale*b(t) + (C/h) x_n.
    linalg::Vector rhs_const = cache.rhs(t_next, noise);
    if (source_scale != 1.0) {
        for (double& b : rhs_const) {
            b *= source_scale;
        }
    }
    {
        linalg::Vector cx = assembler.c_csr().multiply(x_n);
        for (std::size_t i = 0; i < n; ++i) {
            rhs_const[i] += cx[i] / h;
        }
    }

    for (int it = 0; it < options.max_nr_iterations; ++it) {
        linalg::Vector rhs = rhs_const;
        cache.begin(1.0 / h, rhs);
        cache.restamp_time_varying(t_next);
        cache.restamp_nr(out.x);
        if (gmin > 0.0) {
            for (std::size_t row = 0; row < nn; ++row) {
                cache.add_node_diag(static_cast<int>(row), gmin);
            }
        }
        linalg::Vector x_new = cache.solve(rhs);
        const double delta = linalg::max_abs_diff(x_new, out.x);
        const double scale = std::max(linalg::norm_inf(x_new), 1.0);
        out.x = std::move(x_new);
        out.iterations = it + 1;
        if (!std::isfinite(delta)) {
            break; // NaN/Inf iterate: diverged, no further NR can help
        }
        if (delta < options.abstol + options.reltol * scale) {
            out.converged = true;
            break;
        }
    }
    return out;
}

/// Rescue rungs past dt-backoff: gmin stepping (solve with a ramped-down
/// diagonal regularization, warm-starting each stage from the previous
/// one) and then source stepping (ramp the independent sources up to
/// full strength, warm-started the same way).  Returns true with the
/// converged full-strength solve in `*out`; counts attempts/successes
/// and NR iterations into `result`.
bool rescue_step(const mna::MnaAssembler& assembler, mna::SystemCache& cache,
                 const NrTranOptions& options, const linalg::Vector& x_n,
                 const linalg::Vector& x_guess, double t_next, double h,
                 const mna::MnaAssembler::NoiseRealization* noise,
                 TranResult& result, StepSolve* out) {
    // Rung 2 — gmin stepping: 1e-3 S shunts make almost any Jacobian
    // diagonally dominant; each decade reuses the previous solution as
    // its guess until the regularization is gone entirely.
    ++result.rescues.gmin_attempted;
    {
        linalg::Vector guess = x_guess;
        bool ok = true;
        StepSolve stage;
        for (const double gmin : {1e-3, 1e-6, 1e-9, 0.0}) {
            try {
                stage = solve_companion(assembler, cache, options, x_n,
                                        guess, t_next, h, noise, gmin, 1.0,
                                        /*allow_inject=*/false);
            } catch (const SingularMatrixError&) {
                stage = StepSolve{};
            }
            result.nr_iterations += stage.iterations;
            if (!stage.converged) {
                ok = false;
                break;
            }
            guess = stage.x;
        }
        if (ok) {
            ++result.rescues.gmin_succeeded;
            *out = std::move(stage);
            return true;
        }
    }
    // Rung 3 — source stepping: ramp b(t) from quarter strength to full,
    // the classic SPICE continuation for steps the Newton basin cannot
    // reach directly.
    ++result.rescues.source_attempted;
    {
        linalg::Vector guess = x_n;
        bool ok = true;
        StepSolve stage;
        for (const double alpha : {0.25, 0.5, 0.75, 1.0}) {
            stage = solve_companion(assembler, cache, options, x_n, guess,
                                    t_next, h, noise, 0.0, alpha,
                                    /*allow_inject=*/false);
            result.nr_iterations += stage.iterations;
            if (!stage.converged) {
                ok = false;
                break;
            }
            guess = stage.x;
        }
        if (ok) {
            ++result.rescues.source_succeeded;
            *out = std::move(stage);
            return true;
        }
    }
    return false;
}

} // namespace

TranResult run_tran_nr(const mna::MnaAssembler& assembler,
                       const NrTranOptions& options_in,
                       const AnalysisObserver* observer,
                       mna::SystemCache* cache) {
    const NrTranOptions options = resolve(options_in);
    const FlopScope scope;
    const auto n = static_cast<std::size_t>(assembler.unknowns());

    if (options.method == Integration::trapezoidal &&
        (!assembler.nonlinear_devices().empty() ||
         !assembler.time_varying_devices().empty())) {
        throw AnalysisError("run_tran_nr: trapezoidal path supports "
                            "time-invariant linear circuits only");
    }

    // --- Initial condition. ---
    linalg::Vector x;
    if (!options.initial.empty()) {
        if (options.initial.size() != n) {
            throw AnalysisError("run_tran_nr: initial size mismatch");
        }
        x = options.initial;
    } else if (options.start_from_dc) {
        NrOptions dc;
        dc.gmin = 1e-12;
        DcResult op = solve_op_nr(assembler, dc);
        if (!op.converged) {
            op = solve_op_source_stepping(assembler);
        }
        // A failed DC op is itself a finding on NDR circuits; start from
        // the best iterate, as SPICE does after GMIN stepping gives up.
        x = std::move(op.x);
    } else {
        x.assign(n, 0.0);
    }

    TranResult result;
    for (int i = 0; i < assembler.num_nodes(); ++i) {
        result.node_waves.emplace_back(
            "v(" + assembler.circuit().node_name(i + 1) + ")");
    }
    auto record = [&](double t, const linalg::Vector& state) {
        for (int i = 0; i < assembler.num_nodes(); ++i) {
            result.node_waves[static_cast<std::size_t>(i)].append(
                t, state[static_cast<std::size_t>(i)]);
        }
    };

    const std::vector<double> breakpoints =
        assembler.breakpoints(0.0, options.t_stop);
    std::size_t next_bp = 0;

    const mna::MnaAssembler::NoiseRealization* noise =
        options.noise.empty() ? nullptr : &options.noise;

    // Cached per-step system shared by every NR iteration of every step:
    // the companion pattern is fixed, so only values are restamped and the
    // symbolic LU analysis is reused — across whole analyses when the
    // caller shares a SystemCache (SimSession).
    std::optional<mna::SystemCache> local_cache;
    if (cache == nullptr) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }
    const mna::SystemCache::Stats stats_before = cache->stats();
    // Static G compressed once for the trapezoidal (linear-only) rhs.
    const linalg::CsrMatrix static_g_csr(assembler.static_g());

    double t = 0.0;
    record(t, x);

    // Per-step NR-iteration distribution (metrics on only).
    obs::Histogram* it_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& ih = obs::metrics().histogram(
            "nr.iterations", obs::iteration_buckets());
        it_hist = &ih;
    }

    linalg::Vector x_older = x; // for the forward-Euler predictor
    double h = options.dt_init;
    double h_prev = 0.0;
    result.min_dt_used = options.dt_max;
    while (t < options.t_stop) {
        // Cooperative cancellation, polled once per step: the partial
        // waveforms recorded so far are the result.
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        const obs::Span step_span("step", "engine");
        // Clip to breakpoints / the horizon — shared landing rules
        // (breakpoint first, sliver merged into the final step, exact
        // t_stop landing); see clip_step_to_events.
        const ClippedStep clip = clip_step_to_events(
            t, h, options.t_stop, options.dt_min, breakpoints, next_bp,
            /*floor_to_dt_min=*/true);
        const bool clip_changed = clip.h != h;
        h = clip.h;
        bool final_step = clip.final_step;

        // Forward-Euler predictor from the last two accepted points.
        // Gated until two steps have been accepted: before that x_older
        // is the (possibly inconsistent) initial state and extrapolating
        // from it manufactures phantom LTE failures.
        const bool predictor_valid =
            h_prev > 0.0 && result.steps_accepted >= 2;
        linalg::Vector x_pred = x;
        if (predictor_valid) {
            for (std::size_t i = 0; i < n; ++i) {
                x_pred[i] += (x[i] - x_older[i]) * (h / h_prev);
            }
        }

        StepSolve step;
        int halvings = 0;
        bool accepted = false;
        // One rescue episode per time point: dt-backoff is attempted the
        // first time a solve DIVERGES (LTE-only halvings are ordinary
        // step control, not rescues) and succeeds when a shrunken step
        // converges.
        bool convergence_failed = false;
        while (true) {
            if (options.method == Integration::backward_euler ||
                !assembler.nonlinear_devices().empty()) {
                step = solve_companion(assembler, *cache, options, x, x_pred,
                                       t + h, h, noise);
            } else {
                // Trapezoidal (linear only):
                // (G + 2C/h) x_{n+1} = b(t_{n+1}) + b(t_n)
                //                      + (2C/h) x_n - G x_n.
                linalg::Vector rhs = cache->rhs(t + h, noise);
                const linalg::Vector rhs_n = cache->rhs(t, noise);
                const linalg::Vector gx = static_g_csr.multiply(x);
                const linalg::Vector cx = assembler.c_csr().multiply(x);
                for (std::size_t i = 0; i < n; ++i) {
                    rhs[i] += rhs_n[i] + 2.0 * cx[i] / h - gx[i];
                }
                (void)cache->begin(2.0 / h, rhs); // no dynamic stamps
                step.x = cache->solve(rhs);
                step.converged = true;
                step.iterations = 1;
            }
            result.nr_iterations += step.iterations;

            const bool lte_ok =
                !predictor_valid ||
                linalg::max_abs_diff(step.x, x_pred) <=
                    options.lte_tol *
                        std::max(1.0, linalg::norm_inf(step.x));

            if (!step.converged && !convergence_failed) {
                convergence_failed = true;
                ++result.rescues.dt_backoff_attempted;
            }
            if (step.converged && lte_ok) {
                if (convergence_failed) {
                    ++result.rescues.dt_backoff_succeeded;
                }
                accepted = true;
                break;
            }
            // A retry is only useful when the step actually shrinks
            // (h/2 clamps to dt_min at the floor — redoing the identical
            // solve is pointless).
            const double h_half = std::max(h / 2.0, options.dt_min);
            if (h_half >= h || halvings >= options.max_halvings) {
                // dt-backoff is out of road; for a genuine divergence
                // (not an LTE miss) escalate the rescue ladder (gmin
                // stepping, then source stepping) before the SPICE3-style
                // accept-or-throw fallback.
                StepSolve rescued;
                if (!step.converged &&
                    rescue_step(assembler, *cache, options, x, x_pred,
                                t + h, h, noise, result, &rescued)) {
                    step = std::move(rescued);
                    accepted = true;
                    break;
                }
                // Out of road.  SPICE3 behaviour: accept and march on —
                // but only a *finite* iterate.  A NaN/Inf state (poisoned
                // stimulus, overflowed device evaluation) corrupts every
                // later companion-history term, so it is diagnosed
                // instead of propagated.
                const bool finite_iterate =
                    std::all_of(step.x.begin(), step.x.end(),
                                [](double v) { return std::isfinite(v); });
                if (options.accept_nonconverged && finite_iterate) {
                    ++result.nonconverged_steps;
                    accepted = true;
                    break;
                }
                throw ConvergenceError(
                    "run_tran_nr: step at t=" + std::to_string(t) +
                        (finite_iterate
                             ? " failed to converge (rescue ladder "
                               "exhausted: dt-backoff, gmin stepping, "
                               "source stepping)"
                             : " produced a non-finite iterate (NaN/Inf "
                               "stimulus or device evaluation); rescue "
                               "ladder exhausted"),
                    step.iterations, 0.0);
            }
            // The halved step lands short of t_stop (h <= t_stop - t on
            // entry and only shrinks here); any remaining sliver closes
            // exactly on t_stop in a later iteration.
            h = h_half;
            final_step = false;
            ++halvings;
            ++result.steps_rejected;
            // Redo the predictor for the reduced step.
            x_pred = x;
            if (predictor_valid) {
                for (std::size_t i = 0; i < n; ++i) {
                    x_pred[i] += (x[i] - x_older[i]) * (h / h_prev);
                }
            }
        }

        if (accepted) {
            x_older = x;
            x = std::move(step.x);
            // Land on t_stop bit-exactly: t + (t_stop - t) may round off.
            t = final_step ? options.t_stop : t + h;
            h_prev = h;
            ++result.steps_accepted;
            // Step-bound attribution: an un-halved clipped step was
            // event-sized; a halved one was shrunk by the LTE/convergence
            // error control (dt_min when it hit the floor); otherwise the
            // growth heuristic (or its dt_max ceiling) proposed it.
            if (clip_changed && halvings == 0) {
                ++(clip.hit_breakpoint ? result.step_bounds.breakpoint
                                       : result.step_bounds.horizon);
            } else if (halvings > 0) {
                ++(h <= options.dt_min ? result.step_bounds.dt_min
                                       : result.step_bounds.device);
            } else {
                ++(h >= options.dt_max ? result.step_bounds.dt_max
                                       : result.step_bounds.growth);
            }
            if (it_hist != nullptr) {
                it_hist->observe(static_cast<double>(step.iterations));
            }
            result.min_dt_used = std::min(result.min_dt_used, h);
            result.max_dt_used = std::max(result.max_dt_used, h);
            record(t, x);
            if (observer != nullptr) {
                observer->step(t, result.steps_accepted);
                observer->sample(t, x.data(), static_cast<int>(x.size()));
                observer->progress(t / options.t_stop);
            }
            // Grow the step after an easy point.
            if (step.iterations <= options.max_nr_iterations / 4) {
                h = std::min(h * 1.5, options.dt_max);
            }
        }
    }

    result.solver_full_factors =
        cache->stats().full_factors - stats_before.full_factors;
    result.solver_fast_refactors =
        cache->stats().fast_refactors - stats_before.fast_refactors;
    result.solver_dense_solves =
        cache->stats().dense_solves - stats_before.dense_solves;
    result.solver_ordering = make_ordering_stats(cache->stats());
    result.solver_factor = make_factor_stats(cache->stats());
    result.flops = scope.counter();
    return result;
}

} // namespace nanosim::engines
