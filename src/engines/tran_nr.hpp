// Nano-Sim — SPICE-like Newton-Raphson transient engine (baseline).
//
// Classic companion-model transient analysis: at every time point the
// nonlinear system (G(x) + C/h) x = C/h x_n + b(t) is solved by
// Newton-Raphson with *differential* conductances, exactly the structure
// of SPICE3's transient loop (backward Euler; trapezoidal offered for
// linear circuits).  Local truncation error is estimated against a
// forward-Euler predictor and controls the step.
//
// On NDR devices this engine inherits SPICE3's failure modes: NR
// oscillates between the two stable branches, the step collapses to
// dt_min, and — matching the behaviour shown in paper Fig. 8(c) — the
// engine can be configured to accept the non-converged iterate and march
// on (`accept_nonconverged`), producing the wrong-but-finished waveform
// SPICE3 produces, or to throw ConvergenceError.
#ifndef NANOSIM_ENGINES_TRAN_NR_HPP
#define NANOSIM_ENGINES_TRAN_NR_HPP

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"

namespace nanosim::engines {

/// Companion integration method.
enum class Integration {
    backward_euler,
    trapezoidal, ///< linear circuits only (throws otherwise)
};

/// NR transient options.
struct NrTranOptions {
    double t_stop = 0.0;       ///< end time [s] (required)
    double dt_init = 0.0;      ///< 0 = t_stop / 1000
    double dt_min = 0.0;       ///< 0 = t_stop * 1e-9
    double dt_max = 0.0;       ///< 0 = t_stop / 50
    Integration method = Integration::backward_euler;
    int max_nr_iterations = 50;
    double abstol = 1e-9;
    double reltol = 1e-6;
    double lte_tol = 1e-3;     ///< predictor/corrector gap per step [V]
    int max_halvings = 12;     ///< step reductions before giving up
    bool accept_nonconverged = true; ///< SPICE3-like "march on" behaviour
    bool start_from_dc = true; ///< initial condition = NR DC op (gmin aided)
    linalg::Vector initial;    ///< explicit IC (overrides start_from_dc)
    mna::MnaAssembler::NoiseRealization noise;
};

/// Run the Newton-Raphson transient.  `observer` (optional) receives
/// per-step progress and may cancel cooperatively (partial waveforms,
/// `aborted` set); `cache` (optional) shares a caller-owned SystemCache
/// across analyses.  Solver stats in the result are deltas over this run.
[[nodiscard]] TranResult run_tran_nr(const mna::MnaAssembler& assembler,
                                     const NrTranOptions& options,
                                     const AnalysisObserver* observer = nullptr,
                                     mna::SystemCache* cache = nullptr);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_TRAN_NR_HPP
