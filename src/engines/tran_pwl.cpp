#include "engines/tran_pwl.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "devices/mosfet.hpp"
#include "engines/options_common.hpp"
#include "engines/step_control.hpp"
#include "linalg/vecops.hpp"
#include "mna/system_cache.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nanosim::engines {

namespace {

PwlTranOptions resolve(const PwlTranOptions& in) {
    constexpr const char* who = "run_tran_pwl";
    PwlTranOptions o = in;
    const StepLimits s =
        resolve_step_limits(who, o.t_stop, o.dt_init, o.dt_min, o.dt_max);
    o.dt_init = s.dt_init;
    o.dt_min = s.dt_min;
    o.dt_max = s.dt_max;
    require_at_least(who, "segments", o.segments, 2);
    require_ordered(who, "v_min", "v_max", o.v_min, o.v_max);
    require_at_least(who, "max_segment_iters", o.max_segment_iters, 1);
    require_at_least(who, "max_halvings", o.max_halvings, 0);
    return o;
}

/// PWL view of one nonlinear device.
class PwlDevice {
public:
    PwlDevice(const Device* dev, const PwlTranOptions& options)
        : dev_(dev),
          tt_(dynamic_cast<const TwoTerminalNonlinear*>(dev)),
          mos_(dynamic_cast<const Mosfet*>(dev)),
          v_min_(options.v_min),
          v_max_(options.v_max),
          nseg_(options.segments) {
        if (tt_ == nullptr && mos_ == nullptr) {
            throw AnalysisError("run_tran_pwl: unsupported device '" +
                                dev->name() + "'");
        }
    }

    /// Controlling branch voltage from a solution.
    [[nodiscard]] double branch_voltage(const NodeVoltages& v) const {
        if (mos_ != nullptr) {
            return v(mos_->drain()) - v(mos_->source());
        }
        return v(tt_->pos()) - v(tt_->neg());
    }

    /// Secondary control (V_GS) for MOSFETs, 0 otherwise.
    [[nodiscard]] double gate_voltage(const NodeVoltages& v) const {
        if (mos_ != nullptr) {
            return v(mos_->gate()) - v(mos_->source());
        }
        return 0.0;
    }

    [[nodiscard]] int segment_of(double v) const {
        const double f = (v - v_min_) / (v_max_ - v_min_);
        const int s = static_cast<int>(std::floor(f * nseg_));
        return std::clamp(s, 0, nseg_ - 1);
    }

    /// Norton equivalent of segment `seg` (gate voltage used for MOSFET
    /// tables): current = g * v + ioff on the controlling branch.
    void norton(int seg, double vgs, double& g, double& ioff) const {
        const double dv = (v_max_ - v_min_) / nseg_;
        const double v0 = v_min_ + dv * seg;
        const double v1 = v0 + dv;
        double i0 = 0.0;
        double i1 = 0.0;
        if (mos_ != nullptr) {
            i0 = mos_->drain_current(vgs, v0);
            i1 = mos_->drain_current(vgs, v1);
        } else {
            i0 = tt_->current(v0);
            i1 = tt_->current(v1);
        }
        g = (i1 - i0) / dv;
        ioff = i0 - g * v0;
        count_mul(2);
        count_add(3);
        count_div(1);
    }

    /// Stamp the segment's Norton pair.
    void stamp(Stamper& st, int seg, double vgs) const {
        double g = 0.0;
        double ioff = 0.0;
        norton(seg, vgs, g, ioff);
        if (mos_ != nullptr) {
            st.conductance(mos_->drain(), mos_->source(), g);
            st.rhs_current(mos_->drain(), -ioff);
            st.rhs_current(mos_->source(), +ioff);
        } else {
            st.conductance(tt_->pos(), tt_->neg(), g);
            st.rhs_current(tt_->pos(), -ioff);
            st.rhs_current(tt_->neg(), +ioff);
        }
    }

    [[nodiscard]] const Device* device() const noexcept { return dev_; }

private:
    const Device* dev_;
    const TwoTerminalNonlinear* tt_;
    const Mosfet* mos_;
    double v_min_;
    double v_max_;
    int nseg_;
};

} // namespace

TranResult run_tran_pwl(const mna::MnaAssembler& assembler,
                        const PwlTranOptions& options_in,
                        const AnalysisObserver* observer,
                        mna::SystemCache* cache) {
    const PwlTranOptions options = resolve(options_in);
    const FlopScope scope;
    const auto n = static_cast<std::size_t>(assembler.unknowns());

    std::vector<PwlDevice> pwl;
    pwl.reserve(assembler.nonlinear_devices().size());
    for (const Device* dev : assembler.nonlinear_devices()) {
        pwl.emplace_back(dev, options);
    }

    const mna::MnaAssembler::NoiseRealization* noise =
        options.noise.empty() ? nullptr : &options.noise;

    // Cached per-step system: the PWL Norton stamps always land on the
    // same (drain, source) / (pos, neg) coordinates, so every segment
    // iteration is an in-place restamp + pattern-reusing solve — shared
    // across whole analyses when the caller supplies the cache.
    std::optional<mna::SystemCache> local_cache;
    if (cache == nullptr) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }
    const mna::SystemCache::Stats stats_before = cache->stats();

    // Fast Norton restamps when the compiled program covers every PWL
    // device: the segment Nortons are evaluated engine-side (their
    // endpoint currents depend on the segment table) and scattered
    // through precomputed slots — no Stamper indirection per device.
    const bool norton_fast = cache->norton_fast();
    std::vector<double> norton_g(pwl.size(), 0.0);
    std::vector<double> norton_ioff(pwl.size(), 0.0);

    // Segment fixed-point solve of one companion system.  `h <= 0` means
    // DC (no C/h companion).  Returns convergence of the assignment.
    auto segment_solve = [&](const linalg::Vector& x_n, double t, double h,
                             std::vector<int>& seg, linalg::Vector& x_out,
                             int& iters) -> bool {
        const NodeVoltages vn = assembler.view(x_n);
        for (std::size_t k = 0; k < pwl.size(); ++k) {
            seg[k] = pwl[k].segment_of(pwl[k].branch_voltage(vn));
        }
        linalg::Vector x_cur = x_n;
        for (int it = 0; it < options.max_segment_iters; ++it) {
            iters = it + 1;
            linalg::Vector rhs = cache->rhs(t, noise);
            if (h > 0.0) {
                linalg::Vector cx = assembler.c_csr().multiply(x_n);
                for (std::size_t i = 0; i < n; ++i) {
                    rhs[i] += cx[i] / h;
                }
            }
            Stamper& stamper = cache->begin(h > 0.0 ? 1.0 / h : 0.0, rhs);
            cache->restamp_time_varying(t);
            {
                const NodeVoltages vc = assembler.view(x_cur);
                if (norton_fast) {
                    for (std::size_t k = 0; k < pwl.size(); ++k) {
                        pwl[k].norton(seg[k], pwl[k].gate_voltage(vc),
                                      norton_g[k], norton_ioff[k]);
                    }
                    cache->restamp_nortons(norton_g, norton_ioff);
                } else {
                    for (std::size_t k = 0; k < pwl.size(); ++k) {
                        pwl[k].stamp(stamper, seg[k],
                                     pwl[k].gate_voltage(vc));
                    }
                }
            }
            x_cur = cache->solve(rhs);

            // Re-derive the assignment; stable assignment = converged.
            const NodeVoltages vc = assembler.view(x_cur);
            bool stable = true;
            for (std::size_t k = 0; k < pwl.size(); ++k) {
                const int s = pwl[k].segment_of(pwl[k].branch_voltage(vc));
                if (s != seg[k]) {
                    seg[k] = s;
                    stable = false;
                }
            }
            if (stable) {
                x_out = std::move(x_cur);
                return true;
            }
        }
        x_out = std::move(x_cur);
        return false;
    };

    // --- Initial condition. ---
    linalg::Vector x(n, 0.0);
    std::vector<int> seg(pwl.size(), 0);
    if (!options.initial.empty()) {
        if (options.initial.size() != n) {
            throw AnalysisError("run_tran_pwl: initial size mismatch");
        }
        x = options.initial;
    } else if (options.start_from_dc) {
        linalg::Vector x0(n, 0.0);
        linalg::Vector x_dc;
        int iters = 0;
        segment_solve(x0, 0.0, -1.0, seg, x_dc, iters);
        x = std::move(x_dc);
    }

    TranResult result;
    for (int i = 0; i < assembler.num_nodes(); ++i) {
        result.node_waves.emplace_back(
            "v(" + assembler.circuit().node_name(i + 1) + ")");
    }
    auto record = [&](double t, const linalg::Vector& state) {
        for (int i = 0; i < assembler.num_nodes(); ++i) {
            result.node_waves[static_cast<std::size_t>(i)].append(
                t, state[static_cast<std::size_t>(i)]);
        }
    };

    const std::vector<double> breakpoints =
        assembler.breakpoints(0.0, options.t_stop);
    std::size_t next_bp = 0;

    double t = 0.0;
    record(t, x);
    double h = options.dt_init;
    result.min_dt_used = options.dt_max;
    while (t < options.t_stop) {
        // Cooperative cancellation, polled once per step: the partial
        // waveforms recorded so far are the result.
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        const obs::Span step_span("step", "engine");
        // Clip to breakpoints / the horizon — shared landing rules
        // (breakpoint first, sliver merged into the final step, exact
        // t_stop landing); see clip_step_to_events.
        const ClippedStep clip = clip_step_to_events(
            t, h, options.t_stop, options.dt_min, breakpoints, next_bp,
            /*floor_to_dt_min=*/true);
        const bool clip_changed = clip.h != h;
        h = clip.h;
        bool final_step = clip.final_step;

        linalg::Vector x_next;
        int halvings = 0;
        while (true) {
            int iters = 0;
            const bool ok =
                segment_solve(x, t + h, h, seg, x_next, iters);
            result.nr_iterations += iters; // segment iterations
            if (ok) {
                break;
            }
            // A retry is only useful when the step actually shrinks
            // (h/2 clamps to dt_min at the floor — redoing the identical
            // solve is pointless).
            const double h_half = std::max(h / 2.0, options.dt_min);
            if (h_half >= h || halvings >= options.max_halvings) {
                // Segment assignment still cycling at the minimum step —
                // the PWL/NDR hazard; accept and march on (as the
                // adaptive scheme of [2] ultimately does).
                ++result.nonconverged_steps;
                break;
            }
            // The halved step lands short of t_stop (h <= t_stop - t on
            // entry and only shrinks here); any remaining sliver closes
            // exactly on t_stop in a later iteration.
            h = h_half;
            final_step = false;
            ++halvings;
            ++result.steps_rejected;
        }

        // Segment cycling is accepted and marched past (finite, merely
        // ambiguous), but a NaN/Inf solution poisons every later step's
        // C/h history — diagnose it instead of recording garbage.
        if (!std::all_of(x_next.begin(), x_next.end(),
                         [](double v) { return std::isfinite(v); })) {
            throw AnalysisError(
                "run_tran_pwl: non-finite solution at t=" +
                std::to_string(t + h) +
                " (NaN/Inf stimulus or device evaluation)");
        }

        x = std::move(x_next);
        // Land on t_stop bit-exactly: t + (t_stop - t) may round off.
        t = final_step ? options.t_stop : t + h;
        ++result.steps_accepted;
        // Step-bound attribution mirrors tran_nr: event clip, then
        // segment-cycling halving (floored at dt_min), else the growth
        // heuristic / its ceiling.
        if (clip_changed && halvings == 0) {
            ++(clip.hit_breakpoint ? result.step_bounds.breakpoint
                                   : result.step_bounds.horizon);
        } else if (halvings > 0) {
            ++(h <= options.dt_min ? result.step_bounds.dt_min
                                   : result.step_bounds.device);
        } else {
            ++(h >= options.dt_max ? result.step_bounds.dt_max
                                   : result.step_bounds.growth);
        }
        result.min_dt_used = std::min(result.min_dt_used, h);
        result.max_dt_used = std::max(result.max_dt_used, h);
        record(t, x);
        if (observer != nullptr) {
            observer->step(t, result.steps_accepted);
            observer->sample(t, x.data(), static_cast<int>(x.size()));
            observer->progress(t / options.t_stop);
        }
        h = std::min(h * 1.5, options.dt_max);
    }

    result.solver_full_factors =
        cache->stats().full_factors - stats_before.full_factors;
    result.solver_fast_refactors =
        cache->stats().fast_refactors - stats_before.fast_refactors;
    result.solver_dense_solves =
        cache->stats().dense_solves - stats_before.dense_solves;
    result.solver_ordering = make_ordering_stats(cache->stats());
    result.solver_factor = make_factor_stats(cache->stats());
    result.flops = scope.counter();
    return result;
}

} // namespace nanosim::engines
