// Nano-Sim — piece-wise-linear (PWL) transient engine, ACES-like baseline.
//
// Re-implementation of the approach of Le, Pileggi & Devgan, "Circuit
// Simulation of Nanotechnology Devices with Non-monotonic I-V
// Characteristics" (ICCAD 2003), at the algorithm-family level: each
// nonlinear device's I-V curve is approximated by uniform piece-wise
// linear segments; a time step replaces Newton-Raphson by a *segment
// fixed-point* — solve the linear circuit assuming each device sits in a
// segment, re-derive the segments from the solution, repeat until the
// assignment is stable.  When the assignment cycles (the PWL flavour of
// the NDR problem: a segment's conductance IS negative inside the NDR
// region) the step is cut, mirroring the paper's adaptive-time-step +
// current-stepping remedy.
//
// MOSFETs are piecewise-linearised along V_DS with V_GS frozen at its
// previous iterate — the weak-coupling treatment that keeps the engine a
// pure linear-solver loop.
#ifndef NANOSIM_ENGINES_TRAN_PWL_HPP
#define NANOSIM_ENGINES_TRAN_PWL_HPP

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"

namespace nanosim::engines {

/// PWL engine options.
struct PwlTranOptions {
    double t_stop = 0.0;   ///< end time [s] (required)
    double dt_init = 0.0;  ///< 0 = t_stop / 1000
    double dt_min = 0.0;   ///< 0 = t_stop * 1e-9
    double dt_max = 0.0;   ///< 0 = t_stop / 50
    int segments = 64;     ///< PWL segments per device table
    double v_min = -1.0;   ///< table range [V]
    double v_max = 6.0;
    int max_segment_iters = 8; ///< fixed-point budget per step
    int max_halvings = 12;
    bool start_from_dc = true; ///< IC via segment iteration at t=0
    linalg::Vector initial;
    mna::MnaAssembler::NoiseRealization noise;
};

/// Run the PWL transient.  `observer` (optional) receives per-step
/// progress and may cancel cooperatively (partial waveforms, `aborted`
/// set); `cache` (optional) shares a caller-owned SystemCache across
/// analyses.  Solver stats in the result are deltas over this run.
[[nodiscard]] TranResult run_tran_pwl(const mna::MnaAssembler& assembler,
                                      const PwlTranOptions& options,
                                      const AnalysisObserver* observer = nullptr,
                                      mna::SystemCache* cache = nullptr);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_TRAN_PWL_HPP
