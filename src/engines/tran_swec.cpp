#include "engines/tran_swec.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "engines/dc_swec.hpp"
#include "engines/options_common.hpp"
#include "engines/step_control.hpp"
#include "linalg/vecops.hpp"
#include "mna/system_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace nanosim::engines {

namespace {

/// Validate and fill defaults derived from t_stop.
SwecTranOptions resolve(const SwecTranOptions& in) {
    constexpr const char* who = "run_tran_swec";
    SwecTranOptions o = in;
    const StepLimits s =
        resolve_step_limits(who, o.t_stop, o.dt_init, o.dt_min, o.dt_max);
    o.dt_init = s.dt_init;
    o.dt_min = s.dt_min;
    o.dt_max = s.dt_max;
    require_positive(who, "eps", o.eps);
    require_at_least(who, "growth_limit", o.growth_limit, 1.0);
    require_non_negative(who, "geq_floor", o.geq_floor);
    return o;
}

} // namespace

TranResult run_tran_swec(const mna::MnaAssembler& assembler,
                         const SwecTranOptions& options_in,
                         const AnalysisObserver* observer,
                         mna::SystemCache* cache) {
    const SwecTranOptions options = resolve(options_in);
    const FlopScope scope;
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    const auto nl = assembler.nonlinear_devices().size();

    // Pattern-frozen per-step system: restamp values in place, reuse the
    // symbolic LU analysis across every accepted step (the SWEC promise —
    // one cheap numeric refactor + solve per time point).  A caller-owned
    // cache extends the reuse across whole analyses (SimSession).
    std::optional<mna::SystemCache> local_cache;
    const bool shared_cache = cache != nullptr;
    if (!shared_cache) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }
    const mna::SystemCache::Stats stats_before = cache->stats();

    // --- Initial condition. ---
    linalg::Vector x;
    if (!options.initial.empty()) {
        if (options.initial.size() != n) {
            throw AnalysisError("run_tran_swec: initial size mismatch");
        }
        x = options.initial;
    } else if (options.start_from_dc) {
        // Through the shared cache when one was supplied (the DC march
        // restamps the same pattern); self-contained otherwise, matching
        // the historical per-call behaviour.
        x = solve_op_swec(assembler, {}, 0.0, 1.0,
                          shared_cache ? cache : nullptr)
                .x;
    } else {
        x.assign(n, 0.0);
    }

    // Tabulated chord models (opt-in): bound after the DC solve so the
    // operating point keeps its own (closed-form by default) setting.
    cache->configure_tables(options.tables);

    TranResult result;
    result.node_waves.reserve(static_cast<std::size_t>(assembler.num_nodes()));
    for (int i = 0; i < assembler.num_nodes(); ++i) {
        result.node_waves.emplace_back(
            "v(" + assembler.circuit().node_name(i + 1) + ")");
    }
    auto record = [&](double t, const linalg::Vector& state) {
        for (int i = 0; i < assembler.num_nodes(); ++i) {
            result.node_waves[static_cast<std::size_t>(i)].append(
                t, state[static_cast<std::size_t>(i)]);
        }
    };

    // --- Breakpoints (source corners) — never step across one. ---
    const std::vector<double> breakpoints =
        assembler.breakpoints(0.0, options.t_stop);
    std::size_t next_bp = 0;

    // Static part of the node-diagonal conductance sums, computed once;
    // the per-step diagonal adds the SWEC chords and time-varying
    // devices incrementally (see swec_node_step_bound).
    const auto nn = static_cast<std::size_t>(assembler.num_nodes());
    std::vector<double> static_gdiag(nn, 0.0);
    for (const auto& e : assembler.static_g().entries()) {
        if (e.row == e.col && e.row < nn) {
            static_gdiag[e.row] += e.value;
        }
    }
    // Grounded node capacitances (eq. 12 node bound) — the C diagonal is
    // fixed per assembly, so read it once instead of binary-searching
    // the CSR every step.
    std::vector<double> c_node_diag(nn, 0.0);
    for (std::size_t r = 0; r < nn; ++r) {
        c_node_diag[r] = assembler.c_csr().at(r, r);
    }

    double t = 0.0;
    record(t, x);

    // Accepted-step-size distribution (metrics on only; registered once,
    // then two relaxed atomics per accepted step).
    obs::Histogram* h_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& sh = obs::metrics().histogram(
            "swec.step_size_s", obs::log_buckets(1e-15, 1.0, 2));
        h_hist = &sh;
    }

    linalg::Vector dvdt(n, 0.0);    // eq. (9) backward difference
    std::vector<double> geq(nl, 0.0);
    std::vector<double> geq_rate(nl, 0.0);
    std::vector<double> geq_pred(nl, 0.0); // hoisted: no per-step alloc
    double h = options.dt_init;
    double h_prev = 0.0;
    int steps_since_corner = 0; // gate for the eq. (10) diagnostic
    double local_error_sum = 0.0;
    std::size_t local_error_count = 0;
    result.min_dt_used = options.dt_max;

    const mna::MnaAssembler::NoiseRealization* noise =
        options.noise.empty() ? nullptr : &options.noise;

    while (t < options.t_stop) {
        // Cooperative cancellation, polled once per step: the partial
        // waveforms recorded so far are the result.
        if (observer != nullptr && observer->cancelled()) {
            result.aborted = true;
            break;
        }
        const obs::Span step_span("step", "engine");
        // Which constraint produced the step actually taken (RunReport
        // step-bound attribution); repointed as each clamp below wins.
        std::uint64_t* bound_src = &result.step_bounds.fixed;
        // 1. Chord conductances and their rates at t_n — one compiled
        // per-class evaluation pass (closed forms or tables) instead of
        // a virtual call per device.
        cache->eval_chords(x, dvdt, h_prev > 0.0, geq, geq_rate);

        // 2. Adaptive step (eq. 12) — needs the node-diagonal G sums at
        // t_n: static part cached, nonlinear/time-varying parts added
        // through the cache's compiled diagonal plan.
        if (options.adaptive) {
            std::vector<double> gdiag = static_gdiag;
            cache->swec_gdiag(t, geq, gdiag);
            // Eq. (12): device bounds from the chords/rates evaluated in
            // step 1 (no model re-evaluation), node RC bounds from the
            // incremental diagonal.
            const double device_bound = cache->device_step_bound(
                x, dvdt, geq, geq_rate, options.eps);
            const double node_bound = swec_node_step_bound(
                c_node_diag, gdiag, dvdt, options.eps);
            bound_src = device_bound <= node_bound
                            ? &result.step_bounds.device
                            : &result.step_bounds.node;
            h = std::min(device_bound, node_bound);
            if (options.dt_max < h) {
                h = options.dt_max;
                bound_src = &result.step_bounds.dt_max;
            }
            if (h_prev > 0.0 && options.growth_limit * h_prev < h) {
                h = options.growth_limit * h_prev;
                bound_src = &result.step_bounds.growth;
            }
            if (h < options.dt_min) {
                h = options.dt_min;
                bound_src = &result.step_bounds.dt_min;
            }
        } else {
            h = options.dt_init;
        }
        // Land exactly on breakpoints and on t_stop; any trailing sliver
        // shorter than dt_min is merged into the final step (a ~1e-21 s
        // step would make (G + C/h) ill-scaled for no informational
        // gain), so the last recorded point is exactly t_stop — sweep
        // metrics and Monte-Carlo sample a solved state, not a
        // clamped/held one.  See clip_step_to_events for the landing
        // rules shared with the NR/PWL engines.
        const ClippedStep clip = clip_step_to_events(
            t, h, options.t_stop, options.dt_min, breakpoints, next_bp,
            /*floor_to_dt_min=*/false);
        if (clip.h != h) {
            // The clip actually changed the step: an event, not a bound,
            // decided its size.
            bound_src = clip.hit_breakpoint ? &result.step_bounds.breakpoint
                                            : &result.step_bounds.horizon;
        }
        h = clip.h;
        const bool hit_breakpoint = clip.hit_breakpoint;
        const bool final_step = clip.final_step;

        // 3. Predict G_eq at t_{n+1} (eq. 5).
        for (std::size_t k = 0; k < nl; ++k) {
            double g = geq[k];
            if (options.use_predictor) {
                g += 0.5 * h * geq_rate[k];
            }
            geq_pred[k] = std::max(g, options.geq_floor);
        }

        // 4. One linear backward-Euler solve through the cached system:
        // values restamped in place (no triplet rebuild), pattern-reusing
        // refactor instead of a fresh symbolic factorisation.
        linalg::Vector rhs = cache->rhs(t + h, noise);
        {
            // rhs += (C/h) x  via the cached CSR C.
            linalg::Vector cx = assembler.c_csr().multiply(x);
            for (std::size_t i = 0; i < n; ++i) {
                rhs[i] += cx[i] / h;
            }
        }
        cache->begin(1.0 / h, rhs);
        cache->restamp_time_varying(t + h);
        cache->restamp_swec(geq_pred);
        linalg::Vector x_next = cache->solve(rhs);

        // 5. Bookkeeping: eq. (10) a-posteriori error, eq. (9) slope.
        // Excluded: the first two steps (slope history not meaningful
        // from a possibly inconsistent IC) and the two steps following a
        // source corner (the slope is discontinuous there by design, so
        // the prediction-error ratio says nothing about step control).
        if (h_prev > 0.0 && result.steps_accepted >= 2 &&
            steps_since_corner >= 2) {
            const double err = measured_local_error(
                x, x_next, dvdt, h, assembler.num_nodes());
            result.max_local_error =
                std::max(result.max_local_error, err);
            local_error_sum += err;
            ++local_error_count;
        }
        for (std::size_t i = 0; i < n; ++i) {
            dvdt[i] = (x_next[i] - x[i]) / h;
        }
        x = std::move(x_next);
        // Land on t_stop bit-exactly: t + (t_stop - t) may round off.
        t = final_step ? options.t_stop : t + h;
        h_prev = h;
        ++result.steps_accepted;
        ++*bound_src;
        if (h_hist != nullptr) {
            h_hist->observe(h);
        }
        result.min_dt_used = std::min(result.min_dt_used, h);
        result.max_dt_used = std::max(result.max_dt_used, h);
        record(t, x);
        if (observer != nullptr) {
            observer->step(t, result.steps_accepted);
            observer->progress(t / options.t_stop);
        }

        if (hit_breakpoint) {
            // A source corner invalidates the slope history; restart the
            // ramp so the bound reacts to the new edge.
            h_prev = std::min(h_prev, options.dt_init);
            steps_since_corner = 0;
        } else {
            ++steps_since_corner;
        }
    }

    if (local_error_count > 0) {
        result.avg_local_error =
            local_error_sum / static_cast<double>(local_error_count);
    }
    // Deltas over this run, so a shared cache reports per-analysis work.
    result.solver_full_factors =
        cache->stats().full_factors - stats_before.full_factors;
    result.solver_fast_refactors =
        cache->stats().fast_refactors - stats_before.fast_refactors;
    result.solver_dense_solves =
        cache->stats().dense_solves - stats_before.dense_solves;
    result.solver_ordering = make_ordering_stats(cache->stats());
    result.solver_factor = make_factor_stats(cache->stats());
    result.flops = scope.counter();
    return result;
}

} // namespace nanosim::engines
