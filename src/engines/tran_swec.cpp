#include "engines/tran_swec.hpp"

#include <optional>
#include <utility>

#include "engines/swec_stepper.hpp"
#include "mna/system_cache.hpp"
#include "obs/trace.hpp"

namespace nanosim::engines {

TranResult run_tran_swec(const mna::MnaAssembler& assembler,
                         const SwecTranOptions& options_in,
                         const AnalysisObserver* observer,
                         mna::SystemCache* cache) {
    const SwecTranOptions options = resolve_swec_tran_options(options_in);
    const FlopScope scope;

    // Pattern-frozen per-step system: restamp values in place, reuse the
    // symbolic LU analysis across every accepted step (the SWEC promise —
    // one cheap numeric refactor + solve per time point).  A caller-owned
    // cache extends the reuse across whole analyses (SimSession).
    std::optional<mna::SystemCache> local_cache;
    const bool shared_cache = cache != nullptr;
    if (!shared_cache) {
        local_cache.emplace(assembler);
        cache = &*local_cache;
    }
    const mna::SystemCache::Stats stats_before = cache->stats();

    SwecStepper stepper(assembler, options, *cache, shared_cache);
    while (!stepper.done()) {
        // Cooperative cancellation, polled once per step: the partial
        // waveforms recorded so far are the result.
        if (observer != nullptr && observer->cancelled()) {
            stepper.abort();
            break;
        }
        const obs::Span step_span("step", "engine");
        stepper.eval();
        stepper.prepare();
        stepper.stamp();
        // solve_rescued == cache->solve(rhs) on the healthy path; on a
        // singular/non-finite solve it walks the dt-backoff -> gmin ->
        // source-stepping ladder before giving up.
        stepper.accept(stepper.solve_rescued(), observer);
    }

    TranResult result = stepper.take_result();
    // Deltas over this run, so a shared cache reports per-analysis work.
    result.solver_full_factors =
        cache->stats().full_factors - stats_before.full_factors;
    result.solver_fast_refactors =
        cache->stats().fast_refactors - stats_before.fast_refactors;
    result.solver_dense_solves =
        cache->stats().dense_solves - stats_before.dense_solves;
    result.solver_ordering = make_ordering_stats(cache->stats());
    result.solver_factor = make_factor_stats(cache->stats());
    result.flops = scope.counter();
    return result;
}

} // namespace nanosim::engines
