// Nano-Sim — SWEC transient engine (the paper's primary contribution).
//
// Integrates  G(t) V(t) + C dV/dt = b u(t)  (eq. 1) where every nonlinear
// device is represented by its step-wise equivalent (chord) conductance:
//
//   1. at time t_n, evaluate each device's chord conductance
//      G_eq(n) = I(V)/V (eq. 6) and its rate dG_eq/dt = dG_eq/dV * dV/dt
//      (eqs. 7-9, with dV/dt the backward difference of node voltages);
//   2. predict the conductance at the next point with the first-order
//      Taylor step  G_eq(n+1) = G_eq(n) + h/2 * G'_eq(n)   (eq. 5);
//   3. pick the step h from the adaptive bound of eq. (12);
//   4. solve the *linear* backward-Euler system
//         (G_swec + C/h) x_{n+1} = C/h x_n + b(t_{n+1}).
//
// No Newton-Raphson anywhere: each accepted time point costs exactly one
// LU factor+solve.  The chord conductance is non-negative even across an
// NDR region, so the engine cannot exhibit the oscillation / false
// convergence of differential-conductance simulators (paper Sec. 3.2).
#ifndef NANOSIM_ENGINES_TRAN_SWEC_HPP
#define NANOSIM_ENGINES_TRAN_SWEC_HPP

#include "engines/observer.hpp"
#include "engines/results.hpp"
#include "mna/mna.hpp"
#include "mna/system_cache.hpp"

namespace nanosim::engines {

/// SWEC transient options.
struct SwecTranOptions {
    double t_stop = 0.0;       ///< end time [s] (required, > 0)
    double dt_init = 0.0;      ///< first step; 0 = t_stop / 1000
    double dt_min = 0.0;       ///< floor; 0 = t_stop * 1e-9
    double dt_max = 0.0;       ///< ceiling; 0 = t_stop / 50
    double eps = 0.05;         ///< target local error ratio (eq. 10)
    bool adaptive = true;      ///< eq. (12) control (false = fixed dt_init)
    bool use_predictor = true; ///< eq. (5) Taylor predictor (ablation knob)
    double growth_limit = 2.0; ///< max step growth per step
    double geq_floor = 1e-12;  ///< conductance floor [S] (matrix safety)
    bool start_from_dc = true; ///< initial condition = SWEC DC op
    /// Opt-in tabulated chord models (devices/tabulated.hpp): chord /
    /// dG/dV lookups replace the closed-form transcendentals inside the
    /// configured voltage range, exact closed-form fallback outside it.
    /// Tables build once per solver cache and are shared across every
    /// analysis re-enabling the same config (Monte-Carlo trials, sweep
    /// points).  Disabled by default — the default path stays
    /// bit-identical to the closed forms.
    TableConfig tables;
    /// Explicit initial condition (overrides start_from_dc when set).
    linalg::Vector initial;
    /// Noise realizations for Monte-Carlo runs (see MnaAssembler::rhs).
    mna::MnaAssembler::NoiseRealization noise;
};

/// Run the SWEC transient.  Throws AnalysisError on bad options.
/// `observer` (optional) receives per-step progress and may cancel
/// cooperatively — a cancelled run returns the partial waveforms with
/// `aborted` set.  `cache` (optional) reuses a caller-owned SystemCache
/// (and its symbolic LU analysis) instead of freezing a fresh one —
/// SimSession passes its persistent cache; nullptr keeps the solve
/// self-contained.  Solver stats in the result are deltas over this run.
[[nodiscard]] TranResult run_tran_swec(const mna::MnaAssembler& assembler,
                                       const SwecTranOptions& options,
                                       const AnalysisObserver* observer = nullptr,
                                       mna::SystemCache* cache = nullptr);

} // namespace nanosim::engines

#endif // NANOSIM_ENGINES_TRAN_SWEC_HPP
