#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::linalg {

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        if (row.size() != cols_) {
            throw SimError("DenseMatrix: ragged initializer list");
        }
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

double& DenseMatrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) {
        throw std::out_of_range("DenseMatrix::at: index out of range");
    }
    return data_[r * cols_ + c];
}

double DenseMatrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
        throw std::out_of_range("DenseMatrix::at: index out of range");
    }
    return data_[r * cols_ + c];
}

void DenseMatrix::set_zero() noexcept {
    std::fill(data_.begin(), data_.end(), 0.0);
}

void DenseMatrix::resize_zero(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

void DenseMatrix::add_scaled(const DenseMatrix& other, double alpha) {
    if (other.rows_ != rows_ || other.cols_ != cols_) {
        throw SimError("DenseMatrix::add_scaled: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += alpha * other.data_[i];
    }
    count_fma(data_.size());
}

Vector DenseMatrix::multiply(const Vector& x) const {
    if (x.size() != cols_) {
        throw SimError("DenseMatrix::multiply: vector size mismatch");
    }
    Vector y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) {
            acc += row[c] * x[c];
        }
        y[r] = acc;
    }
    count_fma(rows_ * cols_);
    return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& b) const {
    if (b.rows_ != cols_) {
        throw SimError("DenseMatrix::multiply: inner dimension mismatch");
    }
    DenseMatrix c(rows_, b.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = data_[i * cols_ + k];
            if (aik == 0.0) {
                continue;
            }
            const double* brow = &b.data_[k * b.cols_];
            double* crow = &c.data_[i * b.cols_];
            for (std::size_t j = 0; j < b.cols_; ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    count_fma(rows_ * cols_ * b.cols_);
    return c;
}

DenseMatrix DenseMatrix::transposed() const {
    DenseMatrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

double DenseMatrix::max_abs() const noexcept {
    double m = 0.0;
    for (const double v : data_) {
        m = std::max(m, std::abs(v));
    }
    return m;
}

double DenseMatrix::norm_inf() const noexcept {
    double best = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            sum += std::abs((*this)(r, c));
        }
        best = std::max(best, sum);
    }
    return best;
}

std::string DenseMatrix::to_string(int precision) const {
    std::ostringstream os;
    os << std::setprecision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << (r == 0 ? "[" : " ");
        for (std::size_t c = 0; c < cols_; ++c) {
            os << std::setw(precision + 7) << (*this)(r, c);
        }
        os << (r + 1 == rows_ ? " ]" : "\n");
    }
    return os.str();
}

} // namespace nanosim::linalg
