// Nano-Sim — dense matrix and vector primitives.
//
// DenseMatrix is a row-major, double-precision matrix sized for circuit
// work (MNA systems of a few to a few thousand unknowns).  It is a plain
// value type: copyable, movable, with bounds-checked access in debug
// builds via at() and unchecked access via operator().
#ifndef NANOSIM_LINALG_DENSE_HPP
#define NANOSIM_LINALG_DENSE_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace nanosim::linalg {

/// Column vector of doubles.  An alias keeps interop with the standard
/// library trivial (waveform storage, RNG fills, ...).
using Vector = std::vector<double>;

/// Row-major dense matrix.
class DenseMatrix {
public:
    /// Empty 0x0 matrix.
    DenseMatrix() = default;

    /// rows x cols matrix, zero-initialised.
    DenseMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    /// Construct from nested initializer lists:
    ///   DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}};
    /// Throws nanosim::SimError if the rows are ragged.
    DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

    /// Identity matrix of order n.
    [[nodiscard]] static DenseMatrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
    [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

    /// Unchecked element access.
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// Checked element access (throws std::out_of_range).
    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    /// Raw storage (row-major), e.g. for tests.
    [[nodiscard]] const std::vector<double>& data() const noexcept {
        return data_;
    }

    /// Reset every entry to zero, keeping the shape.  Engines call this
    /// once per time step before re-stamping, so it must be cheap.
    void set_zero() noexcept;

    /// Resize to rows x cols and zero (contents are NOT preserved).
    void resize_zero(std::size_t rows, std::size_t cols);

    /// this += alpha * other.  Shapes must match.
    void add_scaled(const DenseMatrix& other, double alpha);

    /// Matrix-vector product y = A * x.  x.size() must equal cols().
    [[nodiscard]] Vector multiply(const Vector& x) const;

    /// Matrix-matrix product C = A * B.
    [[nodiscard]] DenseMatrix multiply(const DenseMatrix& b) const;

    /// Transposed copy.
    [[nodiscard]] DenseMatrix transposed() const;

    /// Max-abs entry (useful for scaling/convergence checks).
    [[nodiscard]] double max_abs() const noexcept;

    /// Infinity norm (max absolute row sum).
    [[nodiscard]] double norm_inf() const noexcept;

    /// Multi-line pretty print, for diagnostics and error messages.
    [[nodiscard]] std::string to_string(int precision = 6) const;

    friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_DENSE_HPP
