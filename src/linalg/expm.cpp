#include "linalg/expm.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace nanosim::linalg {

DenseMatrix expm(const DenseMatrix& a) {
    if (!a.square()) {
        throw SimError("expm: matrix must be square");
    }
    const std::size_t n = a.rows();
    if (n == 0) {
        return a;
    }

    // Scale A by 2^-s so that ||A/2^s||_inf < 0.5.
    const double norm = a.norm_inf();
    int s = 0;
    if (norm > 0.5) {
        s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
    }
    DenseMatrix as = a;
    const double scale = std::ldexp(1.0, -s);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            as(i, j) *= scale;
        }
    }

    // [6/6] Pade approximant:  e^X ~ D^{-1} N,
    //   N = sum c_k X^k,  D = sum (-1)^k c_k X^k,
    //   c_0 = 1, c_{k+1} = c_k (p - k) / ((2p - k)(k + 1)),  p = 6.
    constexpr int p = 6;
    DenseMatrix num = DenseMatrix::identity(n);
    DenseMatrix den = DenseMatrix::identity(n);
    DenseMatrix power = DenseMatrix::identity(n);
    double c = 1.0;
    double sign = 1.0;
    for (int k = 0; k < p; ++k) {
        c = c * static_cast<double>(p - k) /
            static_cast<double>((2 * p - k) * (k + 1));
        sign = -sign;
        power = power.multiply(as);
        num.add_scaled(power, c);
        den.add_scaled(power, sign * c);
    }

    // Solve den * F = num column by column.
    const DenseLu lu(den);
    DenseMatrix f(n, n);
    Vector col(n);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            col[i] = num(i, j);
        }
        const Vector x = lu.solve(col);
        for (std::size_t i = 0; i < n; ++i) {
            f(i, j) = x[i];
        }
    }

    // Undo the scaling: square s times.
    for (int k = 0; k < s; ++k) {
        f = f.multiply(f);
    }
    return f;
}

} // namespace nanosim::linalg
