// Nano-Sim — dense matrix exponential.
//
// Used by the exact Ornstein-Uhlenbeck reference solution (the "true
// solution" curve of the paper's Fig. 10): the linear SDE
//   dX = A X dt + L dW
// has the exact one-step update X(t+h) = e^{A h} X(t) + noise, so a
// trustworthy expm is the foundation of the strong-error comparison with
// Euler-Maruyama.
//
// Algorithm: scaling-and-squaring with a [6/6] Pade approximant; the norm
// is scaled below 1/2 before the approximant is evaluated, giving ~1e-13
// relative accuracy for the small, well-scaled matrices circuit reduction
// produces.
#ifndef NANOSIM_LINALG_EXPM_HPP
#define NANOSIM_LINALG_EXPM_HPP

#include "linalg/dense.hpp"

namespace nanosim::linalg {

/// e^A for a square matrix A.  Throws SimError for non-square input.
[[nodiscard]] DenseMatrix expm(const DenseMatrix& a);

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_EXPM_HPP
