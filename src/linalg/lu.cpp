#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::linalg {

DenseLu::DenseLu(const DenseMatrix& a, double pivot_tol) : lu_(a) {
    if (!a.square()) {
        throw SimError("DenseLu: matrix must be square");
    }
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});

    const double scale = std::max(lu_.max_abs(), 1e-300);
    const double tol = pivot_tol * scale;
    min_pivot_ = std::numeric_limits<double>::infinity();
    max_pivot_ = 0.0;

    std::uint64_t flops = 0;
    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: bring the largest remaining |entry| in column k
        // onto the diagonal.
        std::size_t pivot_row = k;
        double pivot_mag = std::abs(lu_(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::abs(lu_(r, k));
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if (pivot_mag < tol) {
            std::ostringstream os;
            os << "DenseLu: singular matrix (pivot " << pivot_mag
               << " below tolerance " << tol << " at column " << k << ")";
            throw SingularMatrixError(os.str());
        }
        if (pivot_row != k) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu_(k, c), lu_(pivot_row, c));
            }
            std::swap(perm_[k], perm_[pivot_row]);
            ++swaps_;
        }

        const double pivot = lu_(k, k);
        min_pivot_ = std::min(min_pivot_, std::abs(pivot));
        max_pivot_ = std::max(max_pivot_, std::abs(pivot));

        for (std::size_t r = k + 1; r < n; ++r) {
            const double m = lu_(r, k) / pivot;
            lu_(r, k) = m;
            if (m == 0.0) {
                continue;
            }
            for (std::size_t c = k + 1; c < n; ++c) {
                lu_(r, c) -= m * lu_(k, c);
            }
            flops += 1 + 2 * (n - k - 1); // one div + fma per trailing col
        }
    }
    auto& counter = current_flops();
    counter.lu_factor += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
}

Vector DenseLu::solve(const Vector& b) const {
    Vector x = b;
    solve_in_place(x);
    return x;
}

void DenseLu::solve_in_place(Vector& x) const {
    const std::size_t n = order();
    if (x.size() != n) {
        throw SimError("DenseLu::solve: rhs size mismatch");
    }
    // Apply the permutation: y = P b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        y[i] = x[perm_[i]];
    }
    // Forward substitution L z = y (unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (std::size_t j = 0; j < i; ++j) {
            acc -= lu_(i, j) * y[j];
        }
        y[i] = acc;
    }
    // Back substitution U x = z.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) {
            acc -= lu_(ii, j) * y[j];
        }
        y[ii] = acc / lu_(ii, ii);
    }
    x = std::move(y);

    const std::uint64_t flops = 2 * n * n + n;
    auto& counter = current_flops();
    counter.lu_solve += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
}

double DenseLu::determinant() const {
    double det = (swaps_ % 2 == 0) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < order(); ++i) {
        det *= lu_(i, i);
    }
    return det;
}

double DenseLu::rcond_estimate() const noexcept {
    if (max_pivot_ == 0.0) {
        return 0.0;
    }
    return min_pivot_ / max_pivot_;
}

Vector lu_solve(const DenseMatrix& a, const Vector& b) {
    return DenseLu(a).solve(b);
}

} // namespace nanosim::linalg
