// Nano-Sim — dense LU factorisation with partial pivoting.
//
// This is the workhorse behind every engine: each SWEC time step, each
// Newton-Raphson iteration and each Euler-Maruyama step is one factor+solve
// (or one solve against a cached factorisation when the matrix did not
// change).  Flops are charged to the lu_factor / lu_solve categories so
// Table I can attribute cost.
#ifndef NANOSIM_LINALG_LU_HPP
#define NANOSIM_LINALG_LU_HPP

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace nanosim::linalg {

/// LU decomposition P*A = L*U of a square matrix, computed with partial
/// (row) pivoting.  The factors are stored packed in a single matrix (unit
/// diagonal of L implicit).
class DenseLu {
public:
    /// Factor `a`.  Throws SingularMatrixError if a pivot's magnitude
    /// falls below `pivot_tol * max_abs(a)`.
    explicit DenseLu(const DenseMatrix& a, double pivot_tol = 1e-13);

    /// Order of the factored matrix.
    [[nodiscard]] std::size_t order() const noexcept { return lu_.rows(); }

    /// Solve A x = b, returning x.  b.size() must equal order().
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// Solve in place: x starts as b, ends as the solution.
    void solve_in_place(Vector& x) const;

    /// Determinant of A (product of pivots with permutation sign).
    [[nodiscard]] double determinant() const;

    /// Fast reciprocal-condition estimate: min|pivot| / max|pivot|.
    /// Cheap and rough, but sufficient for step-rejection heuristics.
    [[nodiscard]] double rcond_estimate() const noexcept;

    /// Number of row swaps performed during factorisation.
    [[nodiscard]] int swap_count() const noexcept { return swaps_; }

private:
    DenseMatrix lu_;
    std::vector<std::size_t> perm_;
    int swaps_ = 0;
    double min_pivot_ = 0.0;
    double max_pivot_ = 0.0;
};

/// Convenience one-shot solve of A x = b.
[[nodiscard]] Vector lu_solve(const DenseMatrix& a, const Vector& b);

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_LU_HPP
