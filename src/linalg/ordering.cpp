#include "linalg/ordering.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace nanosim::linalg {

namespace {

constexpr std::size_t k_npos = std::numeric_limits<std::size_t>::max();

/// Undirected adjacency of the symmetrized pattern (diagonal dropped,
/// neighbours sorted and unique).
std::vector<std::vector<std::size_t>>
symmetrized_adjacency(std::size_t n, const std::vector<std::size_t>& col_ptr,
                      const std::vector<std::size_t>& row_idx) {
    if (col_ptr.size() != n + 1) {
        throw SimError("ordering: col_ptr size does not match n");
    }
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const std::size_t r = row_idx[p];
            if (r >= n) {
                throw SimError("ordering: row index out of range");
            }
            if (r != c) {
                adj[c].push_back(r);
                adj[r].push_back(c);
            }
        }
    }
    for (auto& list : adj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return adj;
}

/// BFS level structure from `root` over unvisited-agnostic adjacency,
/// restricted to one component.  Returns the visit order; `level` is
/// component-local (k_npos outside the component).
std::vector<std::size_t>
bfs_levels(const std::vector<std::vector<std::size_t>>& adj, std::size_t root,
           std::vector<std::size_t>& level) {
    std::fill(level.begin(), level.end(), k_npos);
    std::vector<std::size_t> order;
    order.push_back(root);
    level[root] = 0;
    for (std::size_t head = 0; head < order.size(); ++head) {
        const std::size_t u = order[head];
        for (const std::size_t v : adj[u]) {
            if (level[v] == k_npos) {
                level[v] = level[u] + 1;
                order.push_back(v);
            }
        }
    }
    return order;
}

} // namespace

const char* ordering_name(Ordering o) noexcept {
    switch (o) {
    case Ordering::natural:
        return "natural";
    case Ordering::rcm:
        return "rcm";
    case Ordering::min_degree:
        return "min_degree";
    case Ordering::automatic:
        return "auto";
    }
    return "?";
}

Permutation::Permutation(std::vector<std::size_t> new_to_old)
    : new_to_old_(std::move(new_to_old)) {
    const std::size_t n = new_to_old_.size();
    old_to_new_.assign(n, k_npos);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t v = new_to_old_[j];
        if (v >= n || old_to_new_[v] != k_npos) {
            throw SimError("Permutation: not a bijection of {0..n-1}");
        }
        old_to_new_[v] = j;
    }
}

Permutation Permutation::identity(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = i;
    }
    return Permutation(std::move(p));
}

bool Permutation::is_identity() const noexcept {
    for (std::size_t j = 0; j < new_to_old_.size(); ++j) {
        if (new_to_old_[j] != j) {
            return false;
        }
    }
    return true;
}

Permutation Permutation::inverse() const {
    return Permutation(old_to_new_);
}

void Permutation::apply(const Vector& v, Vector& out) const {
    if (v.size() != new_to_old_.size()) {
        throw SimError("Permutation::apply: size mismatch");
    }
    out.resize(v.size());
    for (std::size_t j = 0; j < v.size(); ++j) {
        out[j] = v[new_to_old_[j]];
    }
}

Vector Permutation::apply(const Vector& v) const {
    Vector out;
    apply(v, out);
    return out;
}

void Permutation::apply_inverse(const Vector& v, Vector& out) const {
    if (v.size() != new_to_old_.size()) {
        throw SimError("Permutation::apply_inverse: size mismatch");
    }
    out.resize(v.size());
    for (std::size_t j = 0; j < v.size(); ++j) {
        out[new_to_old_[j]] = v[j];
    }
}

Vector Permutation::apply_inverse(const Vector& v) const {
    Vector out;
    apply_inverse(v, out);
    return out;
}

void Permutation::permute_pattern(const std::vector<std::size_t>& col_ptr,
                                  const std::vector<std::size_t>& row_idx,
                                  std::vector<std::size_t>& out_col_ptr,
                                  std::vector<std::size_t>& out_row_idx,
                                  std::vector<std::size_t>& slot_map) const {
    const std::size_t n = size();
    if (col_ptr.size() != n + 1) {
        throw SimError("Permutation::permute_pattern: size mismatch");
    }
    out_col_ptr.assign(n + 1, 0);
    out_row_idx.resize(row_idx.size());
    slot_map.resize(row_idx.size());
    std::vector<std::pair<std::size_t, std::size_t>> col; // (new row, slot)
    std::size_t s = 0;
    for (std::size_t jc = 0; jc < n; ++jc) {
        const std::size_t c = new_to_old_[jc];
        col.clear();
        for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            col.emplace_back(old_to_new_[row_idx[p]], p);
        }
        std::sort(col.begin(), col.end());
        for (const auto& [row, slot] : col) {
            out_row_idx[s] = row;
            slot_map[s] = slot;
            ++s;
        }
        out_col_ptr[jc + 1] = s;
    }
}

Permutation reverse_cuthill_mckee(std::size_t n,
                                  const std::vector<std::size_t>& col_ptr,
                                  const std::vector<std::size_t>& row_idx) {
    const auto adj = symmetrized_adjacency(n, col_ptr, row_idx);

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> numbered(n, false);
    std::vector<std::size_t> level(n, k_npos);
    std::vector<std::size_t> neighbours;

    auto degree = [&](std::size_t v) { return adj[v].size(); };

    for (std::size_t seed = 0; seed < n; ++seed) {
        if (numbered[seed]) {
            continue;
        }
        // Component of `seed`; start from its min-degree node and walk to
        // a pseudo-peripheral node (George-Liu: re-root at the smallest-
        // degree node of the deepest level until eccentricity stalls).
        std::vector<std::size_t> component = bfs_levels(adj, seed, level);
        std::size_t root = seed;
        for (const std::size_t v : component) {
            if (degree(v) < degree(root)) {
                root = v;
            }
        }
        std::size_t ecc = 0;
        for (int iter = 0; iter < 8; ++iter) {
            component = bfs_levels(adj, root, level);
            const std::size_t depth = level[component.back()];
            if (depth <= ecc && iter > 0) {
                break;
            }
            ecc = depth;
            std::size_t candidate = component.back();
            for (const std::size_t v : component) {
                if (level[v] == depth && degree(v) < degree(candidate)) {
                    candidate = v;
                }
            }
            root = candidate;
        }

        // Cuthill-McKee numbering: BFS from the root, queuing each node's
        // unnumbered neighbours in ascending (degree, index) order.
        const std::size_t head0 = order.size();
        order.push_back(root);
        numbered[root] = true;
        for (std::size_t head = head0; head < order.size(); ++head) {
            neighbours.clear();
            for (const std::size_t v : adj[order[head]]) {
                if (!numbered[v]) {
                    numbered[v] = true;
                    neighbours.push_back(v);
                }
            }
            std::sort(neighbours.begin(), neighbours.end(),
                      [&](std::size_t a, std::size_t b) {
                          return degree(a) != degree(b)
                                     ? degree(a) < degree(b)
                                     : a < b;
                      });
            order.insert(order.end(), neighbours.begin(), neighbours.end());
        }
    }

    std::reverse(order.begin(), order.end());
    return Permutation(std::move(order));
}

Permutation min_degree_ordering(std::size_t n,
                                const std::vector<std::size_t>& col_ptr,
                                const std::vector<std::size_t>& row_idx) {
    auto adj = symmetrized_adjacency(n, col_ptr, row_idx);

    std::vector<bool> alive(n, true);
    std::vector<std::size_t> degree(n);
    for (std::size_t v = 0; v < n; ++v) {
        degree[v] = adj[v].size();
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<std::size_t> clique;   // alive neighbours of the pivot
    std::vector<std::size_t> merged;

    for (std::size_t step = 0; step < n; ++step) {
        // Least external degree, ties on index (linear scan: the MNA
        // systems this serves are a few thousand unknowns).
        std::size_t v = k_npos;
        for (std::size_t u = 0; u < n; ++u) {
            if (alive[u] && (v == k_npos || degree[u] < degree[v])) {
                v = u;
            }
        }
        order.push_back(v);
        alive[v] = false;

        clique.clear();
        for (const std::size_t u : adj[v]) {
            if (alive[u]) {
                clique.push_back(u);
            }
        }
        // Eliminating v connects its neighbours into a clique; dead
        // entries are swept out of each list during the merge so the
        // graph never accumulates corpses.
        for (const std::size_t u : clique) {
            merged.clear();
            auto it_a = adj[u].begin();
            const auto end_a = adj[u].end();
            auto it_c = clique.begin();
            const auto end_c = clique.end();
            while (it_a != end_a || it_c != end_c) {
                std::size_t next;
                if (it_c == end_c ||
                    (it_a != end_a && *it_a <= *it_c)) {
                    next = *it_a;
                    if (it_c != end_c && *it_c == next) {
                        ++it_c;
                    }
                    ++it_a;
                    if (!alive[next]) {
                        continue;
                    }
                } else {
                    next = *it_c++;
                }
                if (next != u) {
                    merged.push_back(next);
                }
            }
            adj[u].assign(merged.begin(), merged.end());
            degree[u] = adj[u].size();
        }
        adj[v].clear();
        adj[v].shrink_to_fit();
    }
    return Permutation(std::move(order));
}

std::size_t predicted_fill(std::size_t n,
                           const std::vector<std::size_t>& col_ptr,
                           const std::vector<std::size_t>& row_idx,
                           const Permutation& perm) {
    if (!perm.empty() && perm.size() != n) {
        throw SimError("predicted_fill: permutation size mismatch");
    }
    const bool identity = perm.empty();
    const std::vector<std::size_t>* o2n =
        identity ? nullptr : &perm.old_to_new();

    if (col_ptr.size() != n + 1) {
        throw SimError("predicted_fill: col_ptr size does not match n");
    }
    // Strictly-lower symmetrized pattern in permuted space.
    std::vector<std::vector<std::size_t>> lower(n);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const std::size_t r = row_idx[p];
            if (r >= n) {
                throw SimError("predicted_fill: row index out of range");
            }
            const std::size_t pr = identity ? r : (*o2n)[r];
            const std::size_t pc = identity ? c : (*o2n)[c];
            if (pr != pc) {
                lower[std::min(pr, pc)].push_back(std::max(pr, pc));
            }
        }
    }
    for (auto& list : lower) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }

    // Symbolic no-pivoting factorisation by child-merge: the pattern of
    // L(:,j) is A_lower(:,j) union the below-j rows of every child column
    // (a column's rows land in exactly one parent, so total work is
    // O(nnz(L))).
    std::vector<std::vector<std::size_t>> lpat(n);
    std::vector<std::vector<std::size_t>> children(n);
    std::vector<std::size_t> mark(n, k_npos);
    std::vector<std::size_t> rows;
    std::size_t nnz_l = n; // diagonal
    for (std::size_t j = 0; j < n; ++j) {
        rows.clear();
        mark[j] = j;
        for (const std::size_t r : lower[j]) {
            if (mark[r] != j) {
                mark[r] = j;
                rows.push_back(r);
            }
        }
        for (const std::size_t k : children[j]) {
            for (const std::size_t r : lpat[k]) {
                if (mark[r] != j) {
                    mark[r] = j;
                    rows.push_back(r);
                }
            }
            lpat[k].clear();
            lpat[k].shrink_to_fit();
        }
        nnz_l += rows.size();
        if (!rows.empty()) {
            const std::size_t parent =
                *std::min_element(rows.begin(), rows.end());
            children[parent].push_back(j);
            lpat[j] = rows;
        }
    }
    // Symmetric-pattern LU: L (unit diag implicit) + U share the
    // structure, diagonal counted once — comparable to
    // SparseLu::nnz_factors().
    return 2 * nnz_l - n;
}

} // namespace nanosim::linalg
