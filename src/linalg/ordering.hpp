// Nano-Sim — fill-reducing node orderings for the sparse solver path.
//
// On 1-D ladder topologies (the RTD chains) natural node order is already
// near-optimal and the Gilbert-Peierls LU stays banded.  On the 2-D
// topologies nanotech fabrics and power-distribution meshes actually have,
// natural order produces O(n^1.5)+ fill — and the pattern-reusing refactor
// path faithfully caches that fill and re-pays it on EVERY accepted time
// step.  A fill-reducing symmetric permutation, computed once from the
// frozen sparsity pattern, shrinks both the one-time symbolic analysis and
// every subsequent numeric refactor/solve.
//
// This header provides:
//
//   * Permutation — a validated bijection with apply/invert helpers and a
//     symmetric CSC pattern permutation (B = A(p,p)) that also emits the
//     slot map needed to feed values in the caller's original order;
//   * reverse_cuthill_mckee() — bandwidth-reducing BFS ordering from a
//     pseudo-peripheral start node (George & Liu), per component;
//   * min_degree_ordering() — greedy minimum-(external-)degree ordering of
//     the symmetrized elimination graph, the algorithm family AMD
//     approximates (AMD's quotient-graph degree bounds are purely a speed
//     optimisation; the fill behaviour is the same);
//   * predicted_fill() — nnz(L)+nnz(U) of a no-pivoting symbolic
//     factorisation of the symmetrized pattern under a candidate
//     permutation, the quantity mna::SystemCache compares at freeze time
//     to auto-select an ordering.
//
// All functions take the CSC pattern (col_ptr/row_idx, rows sorted and
// unique per column) that linalg::SparseLu and mna::SystemCache already
// maintain; patterns are symmetrized internally, so unsymmetric MNA
// patterns (voltage-source branch rows) are handled.
#ifndef NANOSIM_LINALG_ORDERING_HPP
#define NANOSIM_LINALG_ORDERING_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/dense.hpp"

namespace nanosim::linalg {

/// Ordering strategy selector (mna::SystemCache options / stats).
enum class Ordering {
    natural,   ///< identity — keep assembly order
    rcm,       ///< reverse Cuthill-McKee (bandwidth reducing)
    min_degree,///< greedy minimum degree (the AMD family)
    automatic, ///< pick the candidate with the least predicted fill
};

/// Human-readable name ("natural", "rcm", "min_degree", "auto").
[[nodiscard]] const char* ordering_name(Ordering o) noexcept;

/// A validated permutation of {0, .., n-1}.  Convention: new_to_old()[j]
/// is the ORIGINAL index placed at permuted position j, so a symmetric
/// matrix permutation reads  B(j, k) = A(new_to_old[j], new_to_old[k]).
/// A default-constructed Permutation is empty and means "identity of
/// whatever size the caller needs" (SparseLu treats it as no-op).
class Permutation {
public:
    Permutation() = default;

    /// Takes new_to_old; throws SimError unless it is a bijection.
    explicit Permutation(std::vector<std::size_t> new_to_old);

    [[nodiscard]] static Permutation identity(std::size_t n);

    [[nodiscard]] std::size_t size() const noexcept {
        return new_to_old_.size();
    }
    [[nodiscard]] bool empty() const noexcept { return new_to_old_.empty(); }
    [[nodiscard]] bool is_identity() const noexcept;

    [[nodiscard]] const std::vector<std::size_t>& new_to_old() const noexcept {
        return new_to_old_;
    }
    [[nodiscard]] const std::vector<std::size_t>& old_to_new() const noexcept {
        return old_to_new_;
    }

    /// The permutation mapping the other way (apply(inverse().apply(v))
    /// == v).
    [[nodiscard]] Permutation inverse() const;

    /// Gather: out[j] = v[new_to_old[j]] (original -> permuted space).
    [[nodiscard]] Vector apply(const Vector& v) const;
    /// Allocation-free variant (out is resized; must not alias v) — the
    /// hot-path form SparseLu::solve uses every step.
    void apply(const Vector& v, Vector& out) const;

    /// Scatter: out[new_to_old[j]] = v[j] (permuted -> original space).
    [[nodiscard]] Vector apply_inverse(const Vector& v) const;
    /// Allocation-free variant (out is resized; must not alias v).
    void apply_inverse(const Vector& v, Vector& out) const;

    /// Symmetric CSC pattern permutation B = A(p,p).  `slot_map[s]` gives,
    /// for each slot s of the permuted pattern, the slot of the ORIGINAL
    /// pattern holding the same matrix entry — so permuted values are a
    /// gather of original values.  Rows stay sorted and unique per column.
    void permute_pattern(const std::vector<std::size_t>& col_ptr,
                         const std::vector<std::size_t>& row_idx,
                         std::vector<std::size_t>& out_col_ptr,
                         std::vector<std::size_t>& out_row_idx,
                         std::vector<std::size_t>& slot_map) const;

private:
    std::vector<std::size_t> new_to_old_;
    std::vector<std::size_t> old_to_new_;
};

/// Reverse Cuthill-McKee ordering of the symmetrized pattern.  Each
/// connected component is BFS-numbered from a pseudo-peripheral node with
/// neighbours visited in ascending-degree order; the concatenated order is
/// reversed.  Deterministic for a given pattern.
[[nodiscard]] Permutation
reverse_cuthill_mckee(std::size_t n, const std::vector<std::size_t>& col_ptr,
                      const std::vector<std::size_t>& row_idx);

/// Greedy minimum-degree ordering of the symmetrized elimination graph:
/// repeatedly eliminate the node of least external degree and connect its
/// neighbours into a clique.  Deterministic (ties break on index).
[[nodiscard]] Permutation
min_degree_ordering(std::size_t n, const std::vector<std::size_t>& col_ptr,
                    const std::vector<std::size_t>& row_idx);

/// Predicted factor fill under `perm`: nnz(L) + nnz(U) (diagonal counted
/// once) of a symbolic no-pivoting factorisation of the symmetrized
/// pattern — directly comparable to SparseLu::nnz_factors() when partial
/// pivoting stays on the diagonal.  An empty permutation means natural
/// order.
[[nodiscard]] std::size_t
predicted_fill(std::size_t n, const std::vector<std::size_t>& col_ptr,
               const std::vector<std::size_t>& row_idx,
               const Permutation& perm = {});

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_ORDERING_HPP
