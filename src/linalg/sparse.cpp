#include "linalg/sparse.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::linalg {

void Triplets::add(std::size_t row, std::size_t col, double value) {
    if (row >= rows_ || col >= cols_) {
        throw SimError("Triplets::add: index out of range");
    }
    entries_.push_back(Triplet{row, col, value});
}

DenseMatrix Triplets::to_dense() const {
    DenseMatrix m(rows_, cols_);
    for (const auto& e : entries_) {
        m(e.row, e.col) += e.value;
    }
    return m;
}

CscForm compress_columns(const Triplets& t) {
    CscForm out;
    out.rows = t.rows();
    out.cols = t.cols();
    std::vector<Triplet> sorted = t.entries();
    std::sort(sorted.begin(), sorted.end(),
              [](const Triplet& a, const Triplet& b) {
                  return a.col != b.col ? a.col < b.col : a.row < b.row;
              });
    out.col_ptr.assign(out.cols + 1, 0);
    out.row_idx.reserve(sorted.size());
    out.values.reserve(sorted.size());
    for (std::size_t i = 0; i < sorted.size();) {
        const std::size_t c = sorted[i].col;
        const std::size_t r = sorted[i].row;
        double sum = 0.0;
        while (i < sorted.size() && sorted[i].col == c && sorted[i].row == r) {
            sum += sorted[i].value;
            ++i;
        }
        out.row_idx.push_back(r);
        out.values.push_back(sum);
        ++out.col_ptr[c + 1];
    }
    for (std::size_t c = 0; c < out.cols; ++c) {
        out.col_ptr[c + 1] += out.col_ptr[c];
    }
    return out;
}

CsrMatrix::CsrMatrix(const Triplets& t) : rows_(t.rows()), cols_(t.cols()) {
    std::vector<Triplet> sorted = t.entries();
    std::sort(sorted.begin(), sorted.end(),
              [](const Triplet& a, const Triplet& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    row_ptr_.assign(rows_ + 1, 0);
    col_idx_.reserve(sorted.size());
    values_.reserve(sorted.size());

    for (std::size_t i = 0; i < sorted.size();) {
        const std::size_t r = sorted[i].row;
        const std::size_t c = sorted[i].col;
        double sum = 0.0;
        while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
            sum += sorted[i].value;
            ++i;
        }
        col_idx_.push_back(c);
        values_.push_back(sum);
        ++row_ptr_[r + 1];
    }
    for (std::size_t r = 0; r < rows_; ++r) {
        row_ptr_[r + 1] += row_ptr_[r];
    }
}

Vector CsrMatrix::multiply(const Vector& x) const {
    if (x.size() != cols_) {
        throw SimError("CsrMatrix::multiply: vector size mismatch");
    }
    Vector y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            acc += values_[k] * x[col_idx_[k]];
        }
        y[r] = acc;
    }
    count_fma(nnz());
    return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
    if (row >= rows_ || col >= cols_) {
        throw SimError("CsrMatrix::at: index out of range");
    }
    const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
    const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
    const auto it = std::lower_bound(begin, end, col);
    if (it == end || *it != col) {
        return 0.0;
    }
    return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

DenseMatrix CsrMatrix::to_dense() const {
    DenseMatrix m(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            m(r, col_idx_[k]) = values_[k];
        }
    }
    return m;
}

} // namespace nanosim::linalg
