// Nano-Sim — sparse matrix storage (triplet builder + CSR).
//
// MNA matrices are sparse (a handful of entries per node); circuits past a
// few hundred nodes are assembled as triplets and factored with the sparse
// LU in sparse_lu.hpp.  Duplicate triplets accumulate — exactly the device
// "stamping" semantics MNA needs.
#ifndef NANOSIM_LINALG_SPARSE_HPP
#define NANOSIM_LINALG_SPARSE_HPP

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace nanosim::linalg {

/// One (row, col, value) entry.
struct Triplet {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/// Accumulating COO builder.  add() of a duplicate coordinate sums values
/// when compressed, mirroring MNA stamping.
class Triplets {
public:
    Triplets(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t entry_count() const noexcept {
        return entries_.size();
    }

    /// Append a contribution; bounds-checked (throws SimError).
    void add(std::size_t row, std::size_t col, double value);

    /// Drop all entries, keep the shape.
    void clear() noexcept { entries_.clear(); }

    /// The raw (uncompressed) entry list.
    [[nodiscard]] const std::vector<Triplet>& entries() const noexcept {
        return entries_;
    }

    /// Dense copy with duplicates summed.
    [[nodiscard]] DenseMatrix to_dense() const;

private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<Triplet> entries_;
};

/// Compressed-sparse-column pattern + parallel values of a triplet list:
/// duplicates summed, rows sorted and unique within each column — the
/// exact compression SparseLu caches, so `values` can be fed straight to
/// SparseLu::refactor(values) against a SparseLu built from the same
/// triplets.  Shared by the solver, the ordering benches and the tests
/// so the compression rules cannot drift apart.
struct CscForm {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::size_t> col_ptr; ///< size cols + 1
    std::vector<std::size_t> row_idx; ///< size nnz, sorted per column
    std::vector<double> values;       ///< parallel to row_idx
};

[[nodiscard]] CscForm compress_columns(const Triplets& t);

/// Compressed-sparse-row matrix (immutable once built).
class CsrMatrix {
public:
    CsrMatrix() = default;

    /// Compress a triplet list (duplicates summed, entries sorted by
    /// (row, col), explicit zeros kept).
    explicit CsrMatrix(const Triplets& t);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

    [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
        return row_ptr_;
    }
    [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
        return col_idx_;
    }
    [[nodiscard]] const std::vector<double>& values() const noexcept {
        return values_;
    }

    /// y = A * x (flop-counted).
    [[nodiscard]] Vector multiply(const Vector& x) const;

    /// Entry lookup (binary search within the row); 0.0 if not stored.
    [[nodiscard]] double at(std::size_t row, std::size_t col) const;

    /// Dense copy, for tests and small-system fallbacks.
    [[nodiscard]] DenseMatrix to_dense() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> row_ptr_;
    std::vector<std::size_t> col_idx_;
    std::vector<double> values_;
};

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_SPARSE_HPP
