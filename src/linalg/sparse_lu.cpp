#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::linalg {

namespace {

constexpr std::size_t k_unassigned = std::numeric_limits<std::size_t>::max();

/// Column-compressed view assembled from triplets (duplicates summed).
struct CscView {
    std::size_t n = 0;
    std::vector<std::size_t> col_ptr;
    std::vector<std::size_t> row_idx;
    std::vector<double> values;
    double max_abs = 0.0;

    explicit CscView(const Triplets& t) : n(t.cols()) {
        std::vector<Triplet> sorted = t.entries();
        std::sort(sorted.begin(), sorted.end(),
                  [](const Triplet& a, const Triplet& b) {
                      return a.col != b.col ? a.col < b.col : a.row < b.row;
                  });
        col_ptr.assign(n + 1, 0);
        row_idx.reserve(sorted.size());
        values.reserve(sorted.size());
        for (std::size_t i = 0; i < sorted.size();) {
            const std::size_t c = sorted[i].col;
            const std::size_t r = sorted[i].row;
            double sum = 0.0;
            while (i < sorted.size() && sorted[i].col == c &&
                   sorted[i].row == r) {
                sum += sorted[i].value;
                ++i;
            }
            row_idx.push_back(r);
            values.push_back(sum);
            max_abs = std::max(max_abs, std::abs(sum));
            ++col_ptr[c + 1];
        }
        for (std::size_t c = 0; c < n; ++c) {
            col_ptr[c + 1] += col_ptr[c];
        }
    }
};

} // namespace

SparseLu::SparseLu(const Triplets& a, double pivot_tol) {
    if (a.rows() != a.cols()) {
        throw SimError("SparseLu: matrix must be square");
    }
    n_ = a.rows();
    const CscView csc(a);
    const double tol = pivot_tol * std::max(csc.max_abs, 1e-300);

    lcols_.assign(n_, {});
    ucols_.assign(n_, {});
    pinv_.assign(n_, k_unassigned);

    std::vector<double> x(n_, 0.0);
    std::vector<std::size_t> mark(n_, k_unassigned); // stamp = current col
    std::vector<std::size_t> postorder;
    postorder.reserve(n_);
    // Explicit DFS stack of (node, next-child-index) to avoid recursion on
    // long RTD chains.
    std::vector<std::pair<std::size_t, std::size_t>> dfs_stack;

    std::uint64_t flops = 0;

    for (std::size_t j = 0; j < n_; ++j) {
        // --- Symbolic: pattern of L^{-1} A(:,j) via DFS through L. ---
        postorder.clear();
        for (std::size_t p = csc.col_ptr[j]; p < csc.col_ptr[j + 1]; ++p) {
            const std::size_t start = csc.row_idx[p];
            if (mark[start] == j) {
                continue;
            }
            dfs_stack.emplace_back(start, 0);
            mark[start] = j;
            while (!dfs_stack.empty()) {
                auto& [node, child] = dfs_stack.back();
                const std::size_t k = pinv_[node];
                bool descended = false;
                if (k != k_unassigned) {
                    const auto& lcol = lcols_[k];
                    while (child < lcol.size()) {
                        const std::size_t next = lcol[child].row;
                        ++child;
                        if (mark[next] != j) {
                            mark[next] = j;
                            dfs_stack.emplace_back(next, 0);
                            descended = true;
                            break;
                        }
                    }
                }
                if (!descended && (k == k_unassigned ||
                                   child >= lcols_[k].size())) {
                    postorder.push_back(node);
                    dfs_stack.pop_back();
                }
            }
        }

        // --- Numeric: scatter A(:,j), then eliminate in topological
        // (reverse-postorder) order. ---
        for (std::size_t p = csc.col_ptr[j]; p < csc.col_ptr[j + 1]; ++p) {
            x[csc.row_idx[p]] += csc.values[p];
        }
        for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
            const std::size_t i = *it;
            const std::size_t k = pinv_[i];
            if (k == k_unassigned) {
                continue;
            }
            const double xi = x[i];
            if (xi == 0.0) {
                continue;
            }
            for (const Entry& e : lcols_[k]) {
                x[e.row] -= e.value * xi;
            }
            flops += 2 * lcols_[k].size();
        }

        // --- Pivot selection among non-pivotal rows. ---
        std::size_t pivot_row = k_unassigned;
        double pivot_mag = 0.0;
        for (const std::size_t i : postorder) {
            if (pinv_[i] != k_unassigned) {
                continue;
            }
            const double mag = std::abs(x[i]);
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if (pivot_row == k_unassigned || pivot_mag < tol) {
            std::ostringstream os;
            os << "SparseLu: singular matrix at column " << j << " (pivot "
               << pivot_mag << " < tol " << tol << ")";
            throw SingularMatrixError(os.str());
        }
        const double ujj = x[pivot_row];
        pinv_[pivot_row] = j;

        // --- Gather into L(:,j) and U(:,j); clear the work array. ---
        auto& lcol = lcols_[j];
        auto& ucol = ucols_[j];
        for (const std::size_t i : postorder) {
            const double xi = x[i];
            x[i] = 0.0;
            if (i == pivot_row) {
                continue;
            }
            const std::size_t k = pinv_[i];
            if (k != k_unassigned && k < j) {
                if (xi != 0.0) {
                    ucol.push_back(Entry{k, xi});
                }
            } else if (xi != 0.0) {
                lcol.push_back(Entry{i, xi / ujj});
                ++flops;
            }
        }
        ucol.push_back(Entry{j, ujj}); // diagonal last by construction
    }

    auto& counter = current_flops();
    counter.lu_factor += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
}

std::size_t SparseLu::nnz_factors() const noexcept {
    std::size_t nnz = 0;
    for (const auto& c : lcols_) {
        nnz += c.size();
    }
    for (const auto& c : ucols_) {
        nnz += c.size();
    }
    return nnz;
}

Vector SparseLu::solve(const Vector& b) const {
    if (b.size() != n_) {
        throw SimError("SparseLu::solve: rhs size mismatch");
    }
    std::uint64_t flops = 0;

    // y = P b  (y indexed by pivot position).
    Vector y(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        y[pinv_[i]] = b[i];
    }
    // Forward substitution, column-oriented: L has unit diagonal, entries
    // stored with ORIGINAL row indices (mapped through pinv_).
    for (std::size_t j = 0; j < n_; ++j) {
        const double yj = y[j];
        if (yj == 0.0) {
            continue;
        }
        for (const Entry& e : lcols_[j]) {
            y[pinv_[e.row]] -= e.value * yj;
        }
        flops += 2 * lcols_[j].size();
    }
    // Back substitution, column-oriented: U entries are stored in pivot
    // space, diagonal last in each column.
    for (std::size_t jj = n_; jj-- > 0;) {
        const auto& ucol = ucols_[jj];
        const double ujj = ucol.back().value;
        const double xj = y[jj] / ujj;
        y[jj] = xj;
        ++flops;
        if (xj == 0.0) {
            continue;
        }
        for (std::size_t k = 0; k + 1 < ucol.size(); ++k) {
            y[ucol[k].row] -= ucol[k].value * xj;
        }
        flops += 2 * (ucol.size() - 1);
    }

    auto& counter = current_flops();
    counter.lu_solve += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
    return y;
}

} // namespace nanosim::linalg
