#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::linalg {

namespace {

constexpr std::size_t k_unassigned = std::numeric_limits<std::size_t>::max();

/// Max |v| over a value array (0 for an empty one).
double max_abs_value(std::span<const double> values) noexcept {
    double m = 0.0;
    for (const double v : values) {
        m = std::max(m, std::abs(v));
    }
    return m;
}

} // namespace

std::vector<double> SparseLu::set_pattern_from_triplets(const Triplets& a) {
    if (a.rows() != a.cols()) {
        throw SimError("SparseLu: matrix must be square");
    }
    n_ = a.rows();
    CscForm csc = compress_columns(a);
    col_ptr_ = std::move(csc.col_ptr);
    row_idx_ = std::move(csc.row_idx);
    return std::move(csc.values);
}

SparseLu::SparseLu(const Triplets& a, double pivot_tol)
    : SparseLu(a, Permutation{}, pivot_tol) {}

SparseLu::SparseLu(const Triplets& a, const Permutation& ordering,
                   double pivot_tol)
    : pivot_tol_(pivot_tol) {
    const std::vector<double> values = set_pattern_from_triplets(a);
    bake_permutation(ordering);
    factor_full(to_internal(values));
}

SparseLu::SparseLu(std::size_t n, std::vector<std::size_t> col_ptr,
                   std::vector<std::size_t> row_idx,
                   std::span<const double> values, double pivot_tol)
    : SparseLu(n, std::move(col_ptr), std::move(row_idx), values,
               Permutation{}, pivot_tol) {}

SparseLu::SparseLu(std::size_t n, std::vector<std::size_t> col_ptr,
                   std::vector<std::size_t> row_idx,
                   std::span<const double> values, const Permutation& ordering,
                   double pivot_tol, FactorStorage storage)
    : n_(n),
      pivot_tol_(pivot_tol),
      storage_(storage),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)) {
    if (col_ptr_.size() != n_ + 1 || col_ptr_.front() != 0 ||
        col_ptr_.back() != row_idx_.size() || values.size() != row_idx_.size()) {
        throw SimError("SparseLu: inconsistent CSC pattern");
    }
    for (std::size_t c = 0; c < n_; ++c) {
        if (col_ptr_[c + 1] < col_ptr_[c]) {
            throw SimError("SparseLu: CSC col_ptr not monotonic");
        }
        for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
            if (row_idx_[p] >= n_ ||
                (p > col_ptr_[c] && row_idx_[p] <= row_idx_[p - 1])) {
                throw SimError("SparseLu: CSC rows must be sorted, unique "
                               "and in range");
            }
        }
    }
    bake_permutation(ordering);
    factor_full(to_internal(values));
}

void SparseLu::bake_permutation(const Permutation& ordering) {
    if (ordering.empty() || ordering.is_identity()) {
        return; // natural order: zero-overhead path
    }
    if (ordering.size() != n_) {
        throw SimError("SparseLu: ordering size does not match the matrix");
    }
    perm_ = ordering;
    std::vector<std::size_t> perm_col_ptr;
    std::vector<std::size_t> perm_row_idx;
    perm_.permute_pattern(col_ptr_, row_idx_, perm_col_ptr, perm_row_idx,
                          user_slot_);
    col_ptr_ = std::move(perm_col_ptr);
    row_idx_ = std::move(perm_row_idx);
}

std::span<const double> SparseLu::to_internal(std::span<const double> values) {
    if (user_slot_.empty()) {
        return values;
    }
    perm_values_.resize(user_slot_.size());
    for (std::size_t s = 0; s < user_slot_.size(); ++s) {
        perm_values_[s] = values[user_slot_[s]];
    }
    return perm_values_;
}

void SparseLu::factor_full(std::span<const double> values) {
    const double tol = pivot_tol_ * std::max(max_abs_value(values), 1e-300);

    lcols_.assign(n_, {});
    ucols_.assign(n_, {});
    pinv_.assign(n_, k_unassigned);
    pivot_row_.assign(n_, k_unassigned);
    reach_ptr_.assign(n_ + 1, 0);
    reach_nodes_.clear();

    std::vector<double> x(n_, 0.0);
    std::vector<std::size_t> mark(n_, k_unassigned); // stamp = current col
    std::vector<std::size_t> postorder;
    postorder.reserve(n_);
    // Explicit DFS stack of (node, next-child-index) to avoid recursion on
    // long RTD chains.
    std::vector<std::pair<std::size_t, std::size_t>> dfs_stack;

    std::uint64_t flops = 0;

    for (std::size_t j = 0; j < n_; ++j) {
        // --- Symbolic: pattern of L^{-1} A(:,j) via DFS through L. ---
        postorder.clear();
        for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
            const std::size_t start = row_idx_[p];
            if (mark[start] == j) {
                continue;
            }
            dfs_stack.emplace_back(start, 0);
            mark[start] = j;
            while (!dfs_stack.empty()) {
                auto& [node, child] = dfs_stack.back();
                const std::size_t k = pinv_[node];
                bool descended = false;
                if (k != k_unassigned) {
                    const auto& lcol = lcols_[k];
                    while (child < lcol.size()) {
                        const std::size_t next = lcol[child].row;
                        ++child;
                        if (mark[next] != j) {
                            mark[next] = j;
                            dfs_stack.emplace_back(next, 0);
                            descended = true;
                            break;
                        }
                    }
                }
                if (!descended &&
                    (k == k_unassigned || child >= lcols_[k].size())) {
                    postorder.push_back(node);
                    dfs_stack.pop_back();
                }
            }
        }
        // Record the reach set so refactor() can skip this whole DFS.
        reach_nodes_.insert(reach_nodes_.end(), postorder.begin(),
                            postorder.end());
        reach_ptr_[j + 1] = reach_nodes_.size();

        // --- Numeric: scatter A(:,j), then eliminate in topological
        // (reverse-postorder) order. ---
        for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
            x[row_idx_[p]] += values[p];
        }
        for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
            const std::size_t i = *it;
            const std::size_t k = pinv_[i];
            if (k == k_unassigned) {
                continue;
            }
            const double xi = x[i];
            if (xi == 0.0) {
                continue;
            }
            for (const Entry& e : lcols_[k]) {
                x[e.row] -= e.value * xi;
            }
            flops += 2 * lcols_[k].size();
        }

        // --- Pivot selection among non-pivotal rows. ---
        std::size_t pivot_row = k_unassigned;
        double pivot_mag = 0.0;
        for (const std::size_t i : postorder) {
            if (pinv_[i] != k_unassigned) {
                continue;
            }
            const double mag = std::abs(x[i]);
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if (pivot_row == k_unassigned || pivot_mag < tol) {
            std::ostringstream os;
            os << "SparseLu: singular matrix at column " << j << " (pivot "
               << pivot_mag << " < tol " << tol << ")";
            throw SingularMatrixError(os.str());
        }
        const double ujj = x[pivot_row];
        pinv_[pivot_row] = j;
        pivot_row_[j] = pivot_row;

        // --- Gather into L(:,j) and U(:,j); clear the work array.  The
        // full *structural* reach set is kept (exact zeros included) so
        // the recorded pattern stays a valid superset for any later
        // value set fed to refactor(). ---
        auto& lcol = lcols_[j];
        auto& ucol = ucols_[j];
        for (const std::size_t i : postorder) {
            const double xi = x[i];
            x[i] = 0.0;
            if (i == pivot_row) {
                continue;
            }
            const std::size_t k = pinv_[i];
            if (k != k_unassigned && k < j) {
                ucol.push_back(Entry{k, xi});
            } else {
                lcol.push_back(Entry{i, xi / ujj});
                ++flops;
            }
        }
        ucol.push_back(Entry{j, ujj}); // diagonal last by construction
    }

    ++full_factors_;
    auto& counter = current_flops();
    counter.lu_factor += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;

    if (storage_ == FactorStorage::flat) {
        flatten_factors();
    }
}

void SparseLu::flatten_factors() {
    std::size_t l_nnz = 0;
    std::size_t u_nnz = 0;
    l_ptr_.assign(n_ + 1, 0);
    u_ptr_.assign(n_ + 1, 0);
    for (std::size_t j = 0; j < n_; ++j) {
        l_nnz += lcols_[j].size();
        u_nnz += ucols_[j].size();
        l_ptr_[j + 1] = l_nnz;
        u_ptr_[j + 1] = u_nnz;
    }
    l_row_.resize(l_nnz);
    l_prow_.resize(l_nnz);
    l_val_.resize(l_nnz);
    u_row_.resize(u_nnz);
    u_val_.resize(u_nnz);
    for (std::size_t j = 0; j < n_; ++j) {
        std::size_t lp = l_ptr_[j];
        for (const Entry& e : lcols_[j]) {
            l_row_[lp] = e.row;
            l_prow_[lp] = pinv_[e.row];
            l_val_[lp] = e.value;
            ++lp;
        }
        std::size_t up = u_ptr_[j];
        for (const Entry& e : ucols_[j]) {
            u_row_[up] = e.row;
            u_val_[up] = e.value;
            ++up;
        }
    }

    // Refactor gather plan: column j's reach positions are visited in the
    // same order the build pushed L/U entries (reach order == postorder),
    // so destinations are simply the next free slot of each side; the
    // pivot position maps onto the column's U diagonal (stored last).
    gather_dst_.assign(reach_nodes_.size(), 0);
    for (std::size_t j = 0; j < n_; ++j) {
        std::size_t lp = l_ptr_[j];
        std::size_t up = u_ptr_[j];
        for (std::size_t it = reach_ptr_[j]; it < reach_ptr_[j + 1]; ++it) {
            const std::size_t i = reach_nodes_[it];
            if (i == pivot_row_[j]) {
                gather_dst_[it] =
                    static_cast<std::ptrdiff_t>(u_ptr_[j + 1] - 1);
            } else if (pinv_[i] < j) {
                gather_dst_[it] = static_cast<std::ptrdiff_t>(up++);
            } else {
                gather_dst_[it] = ~static_cast<std::ptrdiff_t>(lp++);
            }
        }
    }

    build_schedule();
}

void SparseLu::build_schedule() {
    // --- Supernodes: maximal runs of columns with NESTED L patterns —
    // l_row_(j-1) must equal [pivot_row_[j]] followed by l_row_(j) as an
    // exact sequence (push order included), which makes the run a perfect
    // trapezoid over contiguous flat storage AND guarantees the chain
    // kernel visits memory in the same order as the scalar sweep.  The
    // mesh/grid workloads' repeated column structure is what makes these
    // runs long in practice. ---
    sn_of_col_.assign(n_, 0);
    sn_ptr_.clear();
    sn_ptr_.reserve(n_ + 1);
    sn_ptr_.push_back(0);
    for (std::size_t j = 1; j < n_; ++j) {
        const std::size_t prev_begin = l_ptr_[j - 1];
        const std::size_t prev_len = l_ptr_[j] - prev_begin;
        const std::size_t cur_len = l_ptr_[j + 1] - l_ptr_[j];
        const bool nested =
            j - sn_ptr_.back() < k_supernode_max_cols &&
            prev_len == cur_len + 1 &&
            l_row_[prev_begin] == pivot_row_[j] &&
            std::equal(l_row_.begin() +
                           static_cast<std::ptrdiff_t>(prev_begin + 1),
                       l_row_.begin() + static_cast<std::ptrdiff_t>(l_ptr_[j]),
                       l_row_.begin() +
                           static_cast<std::ptrdiff_t>(l_ptr_[j]));
        if (!nested) {
            sn_ptr_.push_back(j);
        }
        sn_of_col_[j] = sn_ptr_.size() - 1;
    }
    sn_ptr_.push_back(n_);

    // --- Level schedule over the supernode DAG.  dep(j) = {pinv_[i] :
    // i in reach(j), pinv_[i] < j} — exactly the columns whose L entries
    // the numeric sweep of column j reads.  A supernode's level is one
    // past the deepest external dependency; all supernodes of one level
    // are mutually independent.  Ascending supernode order is valid
    // because every dependency has a smaller column (hence supernode)
    // index. ---
    const std::size_t nsn = sn_ptr_.size() - 1;
    std::vector<std::size_t> sn_level(nsn, 0);
    std::size_t max_level = 0;
    for (std::size_t s = 0; s < nsn; ++s) {
        std::size_t lvl = 0;
        for (std::size_t j = sn_ptr_[s]; j < sn_ptr_[s + 1]; ++j) {
            for (std::size_t it = reach_ptr_[j]; it < reach_ptr_[j + 1];
                 ++it) {
                const std::size_t k = pinv_[reach_nodes_[it]];
                if (k < j && sn_of_col_[k] != s) {
                    lvl = std::max(lvl, sn_level[sn_of_col_[k]] + 1);
                }
            }
        }
        sn_level[s] = lvl;
        max_level = std::max(max_level, lvl);
    }
    const std::size_t nlevels = nsn == 0 ? 0 : max_level + 1;
    level_ptr_.assign(nlevels + 1, 0);
    for (std::size_t s = 0; s < nsn; ++s) {
        ++level_ptr_[sn_level[s] + 1];
    }
    for (std::size_t l = 0; l < nlevels; ++l) {
        level_ptr_[l + 1] += level_ptr_[l];
    }
    level_sns_.resize(nsn);
    std::vector<std::size_t> fill = level_ptr_;
    for (std::size_t s = 0; s < nsn; ++s) { // ascending within each level
        level_sns_[fill[sn_level[s]]++] = s;
    }
}

bool SparseLu::refactor_supernode(std::size_t s, std::size_t e,
                                  std::span<const double> values, double tol,
                                  std::vector<double>& x,
                                  std::uint64_t& flops) noexcept {
    // The chain kernel: columns of a supernode are processed in order
    // (each depends on its predecessor), streaming the supernode's
    // contiguous L trapezoid [l_ptr_[s], l_ptr_[e]).  Per column this is
    // the exact serial sweep — same operations, same order — which is
    // what keeps parallel factors bit-identical to factor_full().
    std::uint64_t f = 0;
    for (std::size_t j = s; j < e; ++j) {
        const std::size_t reach_begin = reach_ptr_[j];
        const std::size_t reach_end = reach_ptr_[j + 1];

        // Scatter A(:,j) and eliminate along the recorded reach set.
        for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
            x[row_idx_[p]] += values[p];
        }
        for (std::size_t it = reach_end; it-- > reach_begin;) {
            const std::size_t i = reach_nodes_[it];
            const std::size_t k = pinv_[i];
            if (k >= j) { // not yet pivotal at this column
                continue;
            }
            const double xi = x[i];
            if (xi == 0.0) {
                continue;
            }
            const std::size_t lp_end = l_ptr_[k + 1];
            for (std::size_t p = l_ptr_[k]; p < lp_end; ++p) {
                x[l_row_[p]] -= l_val_[p] * xi;
            }
            f += 2 * (lp_end - l_ptr_[k]);
        }

        // Pivot check: keep the recorded pivot unless it degraded.
        const std::size_t pivot_row = pivot_row_[j];
        const double pivot_mag = std::abs(x[pivot_row]);
        double cand_max = 0.0;
        for (std::size_t it = reach_begin; it < reach_end; ++it) {
            const std::size_t i = reach_nodes_[it];
            if (pinv_[i] >= j) {
                cand_max = std::max(cand_max, std::abs(x[i]));
            }
        }
        if (pivot_mag < tol ||
            pivot_mag < k_refactor_pivot_ratio * cand_max) {
            // Degraded: restore x's zero invariant, flag the column, and
            // bill NOTHING for the attempt — the fallback full
            // factorisation accounts for this step's factor cost exactly
            // once (and the tally stays identical at any thread count).
            for (std::size_t it = reach_begin; it < reach_end; ++it) {
                x[reach_nodes_[it]] = 0.0;
            }
            col_failed_[j] = 1;
            return false;
        }
        const double ujj = x[pivot_row];

        // Gather through the precomputed destination plan.
        for (std::size_t it = reach_begin; it < reach_end; ++it) {
            const std::size_t i = reach_nodes_[it];
            const double xi = x[i];
            x[i] = 0.0;
            const std::ptrdiff_t dst = gather_dst_[it];
            if (dst >= 0) {
                u_val_[static_cast<std::size_t>(dst)] = xi;
            } else {
                l_val_[static_cast<std::size_t>(~dst)] = xi / ujj;
                ++f;
            }
        }
    }
    flops += f;
    return true;
}

bool SparseLu::try_refactor_numeric(std::span<const double> values) {
    if (storage_ == FactorStorage::columns) {
        return try_refactor_numeric_columns(values);
    }
    const double tol = pivot_tol_ * std::max(max_abs_value(values), 1e-300);

    if (pool_ != nullptr && n_ >= k_parallel_min_cols) {
        return try_refactor_parallel(values, tol);
    }

    if (work_.size() != n_) {
        work_.assign(n_, 0.0);
    }
    if (col_failed_.size() != n_) {
        col_failed_.assign(n_, 0);
    }
    std::uint64_t flops = 0;

    // Serial path: walk the supernodes in column order through the chain
    // kernel — operation-for-operation the plain j = 0..n-1 sweep of
    // factor_full() minus the DFS, so the factors stay bit-identical.
    const std::size_t nsn = supernode_count();
    for (std::size_t s = 0; s < nsn; ++s) {
        if (!refactor_supernode(sn_ptr_[s], sn_ptr_[s + 1], values, tol,
                                work_, flops)) {
            // Degraded pivot: bail out (billing nothing — see the kernel)
            // so the caller can redo a full re-pivoting factorisation.
            std::fill(col_failed_.begin(), col_failed_.end(), 0);
            return false;
        }
    }

    ++fast_refactors_;
    auto& counter = current_flops();
    counter.lu_factor += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
    return true;
}

bool SparseLu::try_refactor_parallel(std::span<const double> values,
                                     double tol) {
    // Level-scheduled parallel sweep.  Within a level, supernodes are
    // mutually independent: each writes only its own columns' L/U slices
    // and its private scatter vector, and reads L columns finished in
    // earlier levels.  Chunk boundaries depend only on the schedule and
    // thread count — never on timing — and each column's arithmetic is
    // the exact serial kernel, so the factors are bit-identical to the
    // serial path at any thread count.
    const std::size_t nthreads = std::max<std::size_t>(pool_->size(), 1);
    if (par_x_.size() != nthreads) {
        par_x_.assign(nthreads, std::vector<double>(n_, 0.0));
    }
    par_flops_.assign(nthreads, 0);
    if (col_failed_.size() != n_) {
        col_failed_.assign(n_, 0);
    }
    if (work_.size() != n_) {
        work_.assign(n_, 0.0);
    }

    bool failed = false;
    std::uint64_t serial_flops = 0;
    const std::size_t nlevels = level_count();
    for (std::size_t l = 0; l < nlevels && !failed; ++l) {
        const std::size_t lvl_begin = level_ptr_[l];
        const std::size_t lvl_count = level_ptr_[l + 1] - lvl_begin;
        const std::size_t nchunks = std::min(lvl_count, nthreads);

        if (nchunks < k_parallel_min_level_sns) {
            // Narrow level: run inline on the caller's scratch — cheaper
            // than a task round-trip and identical arithmetic.
            for (std::size_t c = 0; c < lvl_count; ++c) {
                const std::size_t s = level_sns_[lvl_begin + c];
                if (!refactor_supernode(sn_ptr_[s], sn_ptr_[s + 1], values,
                                        tol, work_, serial_flops)) {
                    failed = true;
                    break;
                }
            }
            continue;
        }

        runtime::parallel_for(*pool_, nchunks, [&](std::size_t c) {
            obs::Span span("factor.level", "linalg");
            // Deterministic chunk boundaries: supernode c*count/n ..
            // (c+1)*count/n of this level, ascending.  Chunk c owns
            // scratch slot c — chunks of one level never share a slot.
            const std::size_t b = lvl_begin + c * lvl_count / nchunks;
            const std::size_t e = lvl_begin + (c + 1) * lvl_count / nchunks;
            std::vector<double>& x = par_x_[c];
            for (std::size_t q = b; q < e; ++q) {
                const std::size_t s = level_sns_[q];
                if (!refactor_supernode(sn_ptr_[s], sn_ptr_[s + 1], values,
                                        tol, x, par_flops_[c])) {
                    // col_failed_ flags the column; finish nothing
                    // further in this chunk.  Other chunks complete —
                    // their columns are independent of ours.
                    break;
                }
            }
        });

        // Post-level scan, ascending: the lowest-indexed failing column
        // decides the fallback — same verdict as the serial sweep, no
        // matter how the chunks interleaved.
        for (std::size_t q = lvl_begin; q < level_ptr_[l + 1] && !failed;
             ++q) {
            const std::size_t s = level_sns_[q];
            for (std::size_t j = sn_ptr_[s]; j < sn_ptr_[s + 1]; ++j) {
                if (col_failed_[j] != 0) {
                    failed = true;
                    break;
                }
            }
        }
    }

    if (failed) {
        // Bill nothing for the abandoned attempt: the fallback full
        // factorisation accounts for this step exactly once, keeping
        // SolverWork identical at any thread count.
        std::fill(col_failed_.begin(), col_failed_.end(), 0);
        return false;
    }

    // Integer flop totals commute across chunks: the sum equals the
    // serial tally exactly, billed once from the calling thread.
    std::uint64_t flops = serial_flops;
    for (const std::uint64_t f : par_flops_) {
        flops += f;
    }
    ++fast_refactors_;
    auto& counter = current_flops();
    counter.lu_factor += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
    return true;
}

bool SparseLu::try_refactor_numeric_columns(std::span<const double> values) {
    // The seed (pre-flattening) numeric sweep, verbatim: per-column
    // vectors with clear()+push_back gather.  Same operations in the
    // same order as the flat sweep — bit-identical results — kept as the
    // measured baseline of the device-evaluation benches.
    const double tol = pivot_tol_ * std::max(max_abs_value(values), 1e-300);

    if (work_.size() != n_) {
        work_.assign(n_, 0.0);
    }
    std::vector<double>& x = work_;
    std::uint64_t flops = 0;

    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t reach_begin = reach_ptr_[j];
        const std::size_t reach_end = reach_ptr_[j + 1];

        for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
            x[row_idx_[p]] += values[p];
        }
        for (std::size_t it = reach_end; it-- > reach_begin;) {
            const std::size_t i = reach_nodes_[it];
            const std::size_t k = pinv_[i];
            if (k >= j) {
                continue;
            }
            const double xi = x[i];
            if (xi == 0.0) {
                continue;
            }
            for (const Entry& e : lcols_[k]) {
                x[e.row] -= e.value * xi;
            }
            flops += 2 * lcols_[k].size();
        }

        const std::size_t pivot_row = pivot_row_[j];
        const double pivot_mag = std::abs(x[pivot_row]);
        double cand_max = 0.0;
        for (std::size_t it = reach_begin; it < reach_end; ++it) {
            const std::size_t i = reach_nodes_[it];
            if (pinv_[i] >= j) {
                cand_max = std::max(cand_max, std::abs(x[i]));
            }
        }
        if (pivot_mag < tol ||
            pivot_mag < k_refactor_pivot_ratio * cand_max) {
            for (std::size_t it = reach_begin; it < reach_end; ++it) {
                x[reach_nodes_[it]] = 0.0;
            }
            // Abandoned attempt: bill nothing.  The caller's fallback
            // full factorisation accounts for this step exactly once —
            // previously the partial sweep was billed here AND the full
            // factor billed again, double-counting the step's flops.
            return false;
        }
        const double ujj = x[pivot_row];

        auto& lcol = lcols_[j];
        auto& ucol = ucols_[j];
        lcol.clear();
        ucol.clear();
        for (std::size_t it = reach_begin; it < reach_end; ++it) {
            const std::size_t i = reach_nodes_[it];
            const double xi = x[i];
            x[i] = 0.0;
            if (i == pivot_row) {
                continue;
            }
            const std::size_t k = pinv_[i];
            if (k < j) {
                ucol.push_back(Entry{k, xi});
            } else {
                lcol.push_back(Entry{i, xi / ujj});
                ++flops;
            }
        }
        ucol.push_back(Entry{j, ujj});
    }

    ++fast_refactors_;
    auto& counter = current_flops();
    counter.lu_factor += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
    return true;
}

bool SparseLu::refactor_lane(std::span<const double> values, double tol,
                             LaneFactor& f, std::vector<double>& x,
                             std::uint64_t& flops) const noexcept {
    // One lane's whole-matrix sweep: per column exactly the serial
    // refactor_supernode arithmetic, reading/writing the LANE's value
    // planes instead of the members.  Earlier columns' L entries are the
    // lane's own (written by this sweep), so the elimination operands
    // match a serial refactor of the same plane bit for bit.
    f.l_val.resize(l_val_.size());
    f.u_val.resize(u_val_.size());
    double* lv = f.l_val.data();
    double* uv = f.u_val.data();
    std::uint64_t fl = 0;
    for (std::size_t j = 0; j < n_; ++j) {
        const std::size_t reach_begin = reach_ptr_[j];
        const std::size_t reach_end = reach_ptr_[j + 1];

        for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
            x[row_idx_[p]] += values[p];
        }
        for (std::size_t it = reach_end; it-- > reach_begin;) {
            const std::size_t i = reach_nodes_[it];
            const std::size_t k = pinv_[i];
            if (k >= j) { // not yet pivotal at this column
                continue;
            }
            const double xi = x[i];
            if (xi == 0.0) {
                continue;
            }
            const std::size_t lp_end = l_ptr_[k + 1];
            for (std::size_t p = l_ptr_[k]; p < lp_end; ++p) {
                x[l_row_[p]] -= lv[p] * xi;
            }
            fl += 2 * (lp_end - l_ptr_[k]);
        }

        const std::size_t pivot_row = pivot_row_[j];
        const double pivot_mag = std::abs(x[pivot_row]);
        double cand_max = 0.0;
        for (std::size_t it = reach_begin; it < reach_end; ++it) {
            const std::size_t i = reach_nodes_[it];
            if (pinv_[i] >= j) {
                cand_max = std::max(cand_max, std::abs(x[i]));
            }
        }
        if (pivot_mag < tol ||
            pivot_mag < k_refactor_pivot_ratio * cand_max) {
            // Degraded: restore x's zero invariant and bill nothing —
            // the caller replays every lane through the serial
            // refactor()/fallback path, which accounts for this exactly
            // as the serial driver would.
            for (std::size_t it = reach_begin; it < reach_end; ++it) {
                x[reach_nodes_[it]] = 0.0;
            }
            return false;
        }
        const double ujj = x[pivot_row];

        for (std::size_t it = reach_begin; it < reach_end; ++it) {
            const std::size_t i = reach_nodes_[it];
            const double xi = x[i];
            x[i] = 0.0;
            const std::ptrdiff_t dst = gather_dst_[it];
            if (dst >= 0) {
                uv[static_cast<std::size_t>(dst)] = xi;
            } else {
                lv[static_cast<std::size_t>(~dst)] = xi / ujj;
                ++fl;
            }
        }
    }
    flops += fl;
    return true;
}

bool SparseLu::refactor_lanes(
    std::span<const std::span<const double>> lane_values,
    std::span<LaneFactor> factors, std::span<std::uint64_t> lane_flops) {
    const std::size_t m = lane_values.size();
    if (factors.size() != m || lane_flops.size() != m) {
        throw SimError("SparseLu::refactor_lanes: lane span size mismatch");
    }
    if (storage_ != FactorStorage::flat || m == 0) {
        return false; // caller replays lanes through the serial path
    }
    for (const std::span<const double> values : lane_values) {
        if (values.size() != row_idx_.size()) {
            throw SimError("SparseLu::refactor_lanes: value count does not "
                           "match the cached pattern");
        }
    }
    if (lane_vals_.size() < m) {
        lane_vals_.resize(m);
    }
    if (lane_x_.size() < m) {
        lane_x_.resize(m);
    }
    std::vector<std::uint8_t> ok(m, 0);

    auto run_lane = [&](std::size_t i) {
        std::span<const double> internal = lane_values[i];
        if (!user_slot_.empty()) {
            // Lane-private gather into internal (permuted) order — the
            // shared perm_values_ scratch is single-lane.
            std::vector<double>& buf = lane_vals_[i];
            buf.resize(user_slot_.size());
            for (std::size_t s = 0; s < user_slot_.size(); ++s) {
                buf[s] = lane_values[i][user_slot_[s]];
            }
            internal = buf;
        }
        // Same threshold a serial refactor of this plane would use (the
        // permutation reorders values, so the max is unchanged).
        const double tol =
            pivot_tol_ * std::max(max_abs_value(internal), 1e-300);
        std::vector<double>& x = lane_x_[i];
        if (x.size() != n_) {
            x.assign(n_, 0.0);
        }
        lane_flops[i] = 0;
        ok[i] =
            refactor_lane(internal, tol, factors[i], x, lane_flops[i]) ? 1
                                                                       : 0;
    };

    if (pool_ != nullptr && m > 1 && n_ >= k_parallel_min_cols) {
        runtime::parallel_for(*pool_, m, [&](std::size_t i) {
            obs::Span span("factor.lane", "linalg");
            run_lane(i);
        });
    } else {
        for (std::size_t i = 0; i < m; ++i) {
            run_lane(i);
        }
    }

    for (std::size_t i = 0; i < m; ++i) {
        if (ok[i] == 0) {
            return false; // nothing billed; all factors invalid
        }
    }

    // Bill once from the calling thread, lane by lane so the rounding of
    // the mul/add halves matches m serial refactors of the same planes.
    fast_refactors_ += m;
    auto& counter = current_flops();
    for (std::size_t i = 0; i < m; ++i) {
        counter.lu_factor += lane_flops[i];
        counter.mul += lane_flops[i] / 2;
        counter.add += lane_flops[i] / 2;
    }
    return true;
}

Vector SparseLu::solve_lane(const LaneFactor& f, const Vector& b) const {
    Vector out;
    const Vector* rhs = &b;
    Vector* x = &out;
    solve_multi(std::span<const Vector* const>(&rhs, 1),
                std::span<Vector* const>(&x, 1), &f);
    return out;
}

void SparseLu::solve_multi(std::span<const Vector* const> rhs,
                           std::span<Vector* const> out,
                           const LaneFactor* f) const {
    const std::size_t m = rhs.size();
    if (out.size() != m) {
        throw SimError("SparseLu::solve_multi: rhs/out span size mismatch");
    }
    if (storage_ == FactorStorage::columns) {
        // Legacy storage has no flat planes (and no LaneFactor source):
        // per-column solve, which already bills per column.
        for (std::size_t c = 0; c < m; ++c) {
            *out[c] = solve(*rhs[c]);
        }
        return;
    }
    const double* lv = f != nullptr ? f->l_val.data() : l_val_.data();
    const double* uv = f != nullptr ? f->u_val.data() : u_val_.data();

    // Column work vectors in pivot space: the output vectors double as
    // the substitution buffers; the permuted path scatters back at the
    // end (same two-stage gather/scatter as solve()).
    std::vector<Vector> scratch;
    std::vector<Vector*> work(m);
    if (!permuted()) {
        for (std::size_t c = 0; c < m; ++c) {
            work[c] = out[c];
        }
    } else {
        scratch.resize(m);
        for (std::size_t c = 0; c < m; ++c) {
            work[c] = &scratch[c];
        }
    }
    std::vector<std::uint64_t> col_flops(m, 0);
    Vector pb; // permuted-rhs gather scratch, reused per column
    for (std::size_t c = 0; c < m; ++c) {
        const Vector& b = *rhs[c];
        if (b.size() != n_) {
            throw SimError("SparseLu::solve_multi: rhs size mismatch");
        }
        Vector& y = *work[c];
        y.assign(n_, 0.0);
        if (!permuted()) {
            for (std::size_t i = 0; i < n_; ++i) {
                y[pinv_[i]] = b[i];
            }
        } else {
            perm_.apply(b, pb);
            for (std::size_t i = 0; i < n_; ++i) {
                y[pinv_[i]] = pb[i];
            }
        }
    }

    // Blocked substitution: each L/U column streams once per block of
    // rhs columns, but per column the operation sequence (zero-skips
    // included) is exactly solve_internal's — interleaving independent
    // columns changes nothing about any one column's arithmetic.
    for (std::size_t c0 = 0; c0 < m; c0 += k_solve_block) {
        const std::size_t c1 = std::min(m, c0 + k_solve_block);
        for (std::size_t j = 0; j < n_; ++j) {
            const std::size_t lp = l_ptr_[j];
            const std::size_t lp_end = l_ptr_[j + 1];
            for (std::size_t c = c0; c < c1; ++c) {
                Vector& y = *work[c];
                const double yj = y[j];
                if (yj == 0.0) {
                    continue;
                }
                for (std::size_t p = lp; p < lp_end; ++p) {
                    y[l_prow_[p]] -= lv[p] * yj;
                }
                col_flops[c] += 2 * (lp_end - lp);
            }
        }
        for (std::size_t jj = n_; jj-- > 0;) {
            const std::size_t up = u_ptr_[jj];
            const std::size_t up_end = u_ptr_[jj + 1];
            const double ujj = uv[up_end - 1];
            for (std::size_t c = c0; c < c1; ++c) {
                Vector& y = *work[c];
                const double xj = y[jj] / ujj;
                y[jj] = xj;
                ++col_flops[c];
                if (xj == 0.0) {
                    continue;
                }
                for (std::size_t k = up; k + 1 < up_end; ++k) {
                    y[u_row_[k]] -= uv[k] * xj;
                }
                col_flops[c] += 2 * (up_end - 1 - up);
            }
        }
    }

    if (permuted()) {
        for (std::size_t c = 0; c < m; ++c) {
            out[c]->resize(n_);
            perm_.apply_inverse(scratch[c], *out[c]);
        }
    }

    // Per-column billing, halves rounded per column: K columns count
    // exactly what K solve() calls on the same rhs vectors would.
    auto& counter = current_flops();
    for (std::size_t c = 0; c < m; ++c) {
        counter.lu_solve += col_flops[c];
        counter.mul += col_flops[c] / 2;
        counter.add += col_flops[c] / 2;
    }
}

bool SparseLu::refactor(std::span<const double> values) {
    if (values.size() != row_idx_.size()) {
        throw SimError("SparseLu::refactor: value count does not match the "
                       "cached pattern");
    }
    const std::span<const double> internal = to_internal(values);
    if (try_refactor_numeric(internal)) {
        return true;
    }
    factor_full(internal);
    return false;
}

bool SparseLu::refactor(const Triplets& a) {
    if (a.rows() != a.cols() || a.rows() != n_) {
        throw SimError("SparseLu::refactor: matrix shape mismatch");
    }
    if (permuted()) {
        // The cached pattern lives in permuted space; comparing it against
        // a freshly compressed caller pattern is meaningless.  The cached
        // CSC paths (SystemCache) use refactor(values) instead.
        throw SimError("SparseLu::refactor(Triplets): not supported with a "
                       "fill-reducing pre-permutation");
    }
    // Compress into (col, row)-sorted summed form and compare patterns.
    const std::vector<std::size_t> old_col_ptr = col_ptr_;
    const std::vector<std::size_t> old_row_idx = row_idx_;
    const std::vector<double> values = set_pattern_from_triplets(a);
    if (col_ptr_ == old_col_ptr && row_idx_ == old_row_idx) {
        return refactor(std::span<const double>(values));
    }
    // Pattern changed: the symbolic analysis is stale; redo everything.
    factor_full(values);
    return false;
}

std::size_t SparseLu::nnz_factors() const noexcept {
    std::size_t nnz = 0;
    for (const auto& c : lcols_) {
        nnz += c.size();
    }
    for (const auto& c : ucols_) {
        nnz += c.size();
    }
    return nnz;
}

Vector SparseLu::solve(const Vector& b) const {
    if (b.size() != n_) {
        throw SimError("SparseLu::solve: rhs size mismatch");
    }
    if (!permuted()) {
        Vector y;
        solve_internal(b, y);
        return y;
    }
    // A(q,q) x' = b' with b' = b gathered into permuted space; scatter
    // x' back to original numbering.  Both intermediates reuse member
    // scratch — engines call this every accepted step, so like
    // refactor() the permuted path allocates nothing beyond the
    // returned vector (in steady state).
    perm_.apply(b, perm_b_);
    solve_internal(perm_b_, perm_y_);
    Vector x(n_);
    perm_.apply_inverse(perm_y_, x);
    return x;
}

void SparseLu::solve_internal(const Vector& b, Vector& y) const {
    if (storage_ == FactorStorage::columns) {
        solve_internal_columns(b, y);
        return;
    }
    std::uint64_t flops = 0;

    // y = P b  (y indexed by pivot position).
    y.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        y[pinv_[i]] = b[i];
    }
    // Forward substitution, column-oriented over the flat L: unit
    // diagonal implicit, pivot-space rows precomputed (l_prow_).
    for (std::size_t j = 0; j < n_; ++j) {
        const double yj = y[j];
        if (yj == 0.0) {
            continue;
        }
        const std::size_t lp_end = l_ptr_[j + 1];
        for (std::size_t p = l_ptr_[j]; p < lp_end; ++p) {
            y[l_prow_[p]] -= l_val_[p] * yj;
        }
        flops += 2 * (lp_end - l_ptr_[j]);
    }
    // Back substitution over the flat U: entries are in pivot space,
    // diagonal last in each column.
    for (std::size_t jj = n_; jj-- > 0;) {
        const std::size_t up = u_ptr_[jj];
        const std::size_t up_end = u_ptr_[jj + 1];
        const double ujj = u_val_[up_end - 1];
        const double xj = y[jj] / ujj;
        y[jj] = xj;
        ++flops;
        if (xj == 0.0) {
            continue;
        }
        for (std::size_t k = up; k + 1 < up_end; ++k) {
            y[u_row_[k]] -= u_val_[k] * xj;
        }
        flops += 2 * (up_end - 1 - up);
    }

    auto& counter = current_flops();
    counter.lu_solve += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
}

void SparseLu::solve_internal_columns(const Vector& b, Vector& y) const {
    // Seed (column-vector) substitution loops — see
    // try_refactor_numeric_columns for why they are kept.
    std::uint64_t flops = 0;

    y.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        y[pinv_[i]] = b[i];
    }
    for (std::size_t j = 0; j < n_; ++j) {
        const double yj = y[j];
        if (yj == 0.0) {
            continue;
        }
        for (const Entry& e : lcols_[j]) {
            y[pinv_[e.row]] -= e.value * yj;
        }
        flops += 2 * lcols_[j].size();
    }
    for (std::size_t jj = n_; jj-- > 0;) {
        const auto& ucol = ucols_[jj];
        const double ujj = ucol.back().value;
        const double xj = y[jj] / ujj;
        y[jj] = xj;
        ++flops;
        if (xj == 0.0) {
            continue;
        }
        for (std::size_t k = 0; k + 1 < ucol.size(); ++k) {
            y[ucol[k].row] -= ucol[k].value * xj;
        }
        flops += 2 * (ucol.size() - 1);
    }

    auto& counter = current_flops();
    counter.lu_solve += flops;
    counter.mul += flops / 2;
    counter.add += flops / 2;
}

} // namespace nanosim::linalg
