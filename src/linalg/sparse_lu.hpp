// Nano-Sim — sparse LU factorisation (Gilbert-Peierls, partial pivoting)
// with a KLU-style symbolic/numeric split.
//
// Left-looking column LU over a compressed-sparse-column view.  Each
// column of A is solved against the already-computed L by a depth-first
// reachability pass (the Gilbert-Peierls trick: the nonzero pattern of
// L\b is the set of nodes reachable from pattern(b) in the graph of L),
// then the largest remaining entry is chosen as the pivot.
//
// The first (full) factorisation records its symbolic analysis — the CSC
// pattern of A, every column's elimination reach set in topological order,
// and the pivot sequence.  refactor() then redoes only the numeric sweep:
// scatter the new values, eliminate along the recorded reach sets, keep
// the recorded pivots.  When the values are unchanged this reproduces the
// full factorisation bit for bit (same operations in the same order); when
// a reused pivot degrades below `refactor_pivot_ratio` of its column's
// magnitude the call transparently falls back to a full re-pivoting
// factorisation (and reports it via the return value / counters).
//
// This is the same algorithm family as SPICE's sparse1.3 / KLU and scales
// to the RTD-chain benchmarks; for tiny systems the dense path wins and
// engines pick automatically (see mna::SystemCache / mna::solve_system).
#ifndef NANOSIM_LINALG_SPARSE_LU_HPP
#define NANOSIM_LINALG_SPARSE_LU_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse.hpp"

namespace nanosim::runtime {
class ThreadPool; // avoid linalg -> runtime header coupling (see .cpp)
} // namespace nanosim::runtime

namespace nanosim::linalg {

/// Storage layout of the computed L/U factors in the per-step hot path.
///
///  * `flat` (default) — after every full factorisation the column
///    vectors are compiled into contiguous CSC arrays plus a refactor
///    gather plan; refactor() and solve() run over flat memory with no
///    per-column indirection or push_back bookkeeping.
///  * `columns` — the pre-flattening representation (one heap vector of
///    entries per column), kept selectable as the measured BASELINE of
///    the device-evaluation fast-path benches: together with
///    mna::SystemCache's legacy stamping mode it reproduces the seed
///    per-step loop this PR series replaced.
///
/// The numeric sweep performs the same operations in the same order in
/// both layouts — results are bit-identical (gated by tests).
enum class FactorStorage { flat, columns };

/// Sparse LU of a square matrix with row partial pivoting: P A = L U —
/// optionally of the symmetrically pre-permuted matrix A(q,q) with a
/// fill-reducing ordering q (linalg/ordering.hpp).  The pre-permutation
/// is baked into the symbolic analysis: fresh factorisation and
/// refactor() both operate in permuted space (values still arrive in the
/// CALLER's pattern order and are gathered through a slot map), and
/// solve() permutes rhs/x transparently, so callers never see q.
class SparseLu {
public:
    /// Factor from a triplet list.  Throws SingularMatrixError when a
    /// column has no usable pivot (magnitude below pivot_tol * max|A|).
    explicit SparseLu(const Triplets& a, double pivot_tol = 1e-13);

    /// Triplet factorisation with a fill-reducing pre-permutation.
    SparseLu(const Triplets& a, const Permutation& ordering,
             double pivot_tol = 1e-13);

    /// Factor directly from a CSC pattern + parallel value array (rows
    /// sorted and unique within each column; values[k] belongs to
    /// row_idx[k]).  This is the allocation-free entry point used by
    /// mna::SystemCache, whose slot maps keep values in exactly this
    /// order across time steps.
    SparseLu(std::size_t n, std::vector<std::size_t> col_ptr,
             std::vector<std::size_t> row_idx, std::span<const double> values,
             double pivot_tol = 1e-13);

    /// CSC factorisation with a fill-reducing pre-permutation: factors
    /// A(q,q) where q = ordering.new_to_old().  `values` (here and in
    /// every later refactor(values)) stay in the ORIGINAL col_ptr/row_idx
    /// slot order.  An empty ordering means natural order.
    SparseLu(std::size_t n, std::vector<std::size_t> col_ptr,
             std::vector<std::size_t> row_idx, std::span<const double> values,
             const Permutation& ordering, double pivot_tol = 1e-13,
             FactorStorage storage = FactorStorage::flat);

    [[nodiscard]] FactorStorage storage() const noexcept { return storage_; }

    [[nodiscard]] std::size_t order() const noexcept { return n_; }

    /// Fill-in: nonzeros in L + U (diagonal counted once).
    [[nodiscard]] std::size_t nnz_factors() const noexcept;

    /// Numeric refactorisation with new values in the cached CSC pattern
    /// order.  Returns true when the fast pattern-reusing path was taken;
    /// false when a degraded pivot forced a full re-pivoting
    /// factorisation.  Throws SingularMatrixError if even the full path
    /// finds no usable pivot.
    bool refactor(std::span<const double> values);

    /// Refactor from a triplet list.  When the compressed pattern matches
    /// the cached one this forwards to the fast path above; a changed
    /// pattern triggers a full symbolic + numeric factorisation (returns
    /// false).
    bool refactor(const Triplets& a);

    /// Solve A x = b (rhs/x in original numbering; any pre-permutation
    /// is applied and undone internally).
    [[nodiscard]] Vector solve(const Vector& b) const;

    // ---- cached symbolic pattern (for slot mapping) ----
    // NOTE: with a pre-permutation these describe the INTERNAL (permuted)
    // pattern; without one they are exactly the caller's pattern.
    [[nodiscard]] const std::vector<std::size_t>&
    pattern_col_ptr() const noexcept {
        return col_ptr_;
    }
    [[nodiscard]] const std::vector<std::size_t>&
    pattern_row_idx() const noexcept {
        return row_idx_;
    }
    [[nodiscard]] std::size_t pattern_nnz() const noexcept {
        return row_idx_.size();
    }

    /// True when a fill-reducing pre-permutation is baked in.
    [[nodiscard]] bool permuted() const noexcept { return !perm_.empty(); }

    // ---- instrumentation ----
    /// Full (symbolic + pivoting) factorisations performed so far.
    [[nodiscard]] std::size_t full_factor_count() const noexcept {
        return full_factors_;
    }
    /// Fast pattern-reusing refactorisations performed so far.
    [[nodiscard]] std::size_t fast_refactor_count() const noexcept {
        return fast_refactors_;
    }

    /// A reused pivot must stay above this fraction of its column's
    /// largest candidate magnitude or refactor() falls back to full
    /// re-pivoting (KLU uses the same style of threshold pivoting).
    static constexpr double k_refactor_pivot_ratio = 1e-3;

    // ---- parallel numeric refactorisation (flat storage only) ----------
    //
    // refactor() can run its numeric sweep level-scheduled on a worker
    // pool: flatten_factors() extracts the column elimination DAG from
    // the recorded reach sets (dep(j) = columns whose pivot rows appear
    // in reach(j)), groups columns into supernodes (maximal runs with
    // nested L patterns — contiguous trapezoids in the flat arrays), and
    // buckets supernodes into levels; all supernodes of one level are
    // independent and run as pool tasks.  Every column's arithmetic is
    // self-contained (it reads the new values plus finished earlier-level
    // columns and writes only its own L/U segments), so parallel results
    // are BIT-IDENTICAL to the serial sweep at any thread count, and a
    // degraded pivot is collected per column and resolved after the level
    // joins — the lowest-indexed failing column triggers the fallback
    // regardless of thread interleaving (deterministic counters).

    /// Opt-in parallel refactor on `pool` (non-owning; nullptr = serial,
    /// the default).  Only engaged in flat storage on systems with at
    /// least k_parallel_min_cols columns.
    void set_refactor_pool(runtime::ThreadPool* pool) noexcept {
        pool_ = pool;
    }
    [[nodiscard]] runtime::ThreadPool* refactor_pool() const noexcept {
        return pool_;
    }

    /// Below this many columns the level-scheduled path is skipped (task
    /// overhead would dominate the numeric work).
    static constexpr std::size_t k_parallel_min_cols = 64;
    /// A level with fewer supernodes than this runs inline on the calling
    /// thread (no submit/join round trip for trivial levels).
    static constexpr std::size_t k_parallel_min_level_sns = 2;
    /// Supernode width cap: bounds a task's span and the per-chunk
    /// imbalance within a level.
    static constexpr std::size_t k_supernode_max_cols = 32;

    // ---- schedule introspection (stats / benches; flat mode) ----
    [[nodiscard]] std::size_t supernode_count() const noexcept {
        return sn_ptr_.empty() ? 0 : sn_ptr_.size() - 1;
    }
    [[nodiscard]] std::size_t level_count() const noexcept {
        return level_ptr_.empty() ? 0 : level_ptr_.size() - 1;
    }
    /// Flat factor values (flat mode) — parallel-vs-serial bit-identity
    /// gates memcmp these.
    [[nodiscard]] std::span<const double> l_values() const noexcept {
        return l_val_;
    }
    [[nodiscard]] std::span<const double> u_values() const noexcept {
        return u_val_;
    }

    // ---- trial-batched numeric refactorisation + multi-RHS solve --------
    //
    // The batched Monte-Carlo driver factors the systems of K due trials
    // in one call: every lane shares THIS analysis's symbolic structure
    // (pattern, reach sets, pivot sequence, gather plan) and differs only
    // in its value plane.  Each lane's sweep is the exact serial
    // refactor() arithmetic on lane-private scratch and lane-private
    // output planes, so the factors are bit-identical to K serial
    // refactor(values) calls at any thread count — lanes are dispatched
    // across the refactor pool whole (one task per lane), never split.

    /// One lane's numeric factors over the shared flat symbolic
    /// structure: value planes parallel to l_values()/u_values().
    struct LaneFactor {
        std::vector<double> l_val;
        std::vector<double> u_val;
    };

    /// Batched numeric refactorisation (flat storage only; returns false
    /// immediately otherwise).  lane_values[i] is lane i's value plane in
    /// the caller's pattern order; on success factors[i] holds its L/U
    /// planes and lane_flops[i] the factor flops a serial
    /// refactor(lane_values[i]) would have billed.  The summed flops are
    /// billed once, on the calling thread, after all lanes join.  When
    /// ANY lane's recorded pivot degrades the call returns false billing
    /// nothing and every LaneFactor is invalid — the caller replays the
    /// lanes through the serial refactor()/full-factor path so counters
    /// and fallback behaviour stay exactly the serial driver's.
    [[nodiscard]] bool
    refactor_lanes(std::span<const std::span<const double>> lane_values,
                   std::span<LaneFactor> factors,
                   std::span<std::uint64_t> lane_flops);

    /// Solve A x = b against a lane's factors (original numbering; the
    /// pre-permutation is applied and undone exactly like solve()).
    [[nodiscard]] Vector solve_lane(const LaneFactor& f,
                                    const Vector& b) const;

    /// Blocked multi-RHS forward/back substitution under ONE factor —
    /// the live factors when `f` is null, a lane's otherwise.  Columns
    /// are processed in blocks of k_solve_block so each L/U column
    /// streams once per block, but every rhs column's arithmetic
    /// (including the zero-skips) is exactly solve()'s, and flops are
    /// billed per column: K columns cost and count the same as K
    /// independent solve() calls.
    void solve_multi(std::span<const Vector* const> rhs,
                     std::span<Vector* const> out,
                     const LaneFactor* f = nullptr) const;

    /// Columns per block of the multi-RHS substitution.
    static constexpr std::size_t k_solve_block = 4;

private:
    /// Serial whole-matrix numeric sweep of one lane into `f`'s planes
    /// (flat mode).  Reads only the shared symbolic structure; writes
    /// only `f`, `x` and `flops` — safe to run concurrently across
    /// lanes.  Returns false on a degraded pivot (x's zeros restored,
    /// nothing billed).
    bool refactor_lane(std::span<const double> values, double tol,
                       LaneFactor& f, std::vector<double>& x,
                       std::uint64_t& flops) const noexcept;

    struct Entry {
        std::size_t row;
        double value;
    };

    /// Compress `a` into the cached CSC pattern (duplicates summed);
    /// returns the summed values in pattern order.
    std::vector<double> set_pattern_from_triplets(const Triplets& a);
    /// Rewrite the cached pattern as A(q,q) and build the slot map that
    /// gathers caller-order values into permuted order.
    void bake_permutation(const Permutation& ordering);
    /// Caller-order values -> internal (permuted) order; identity pass-
    /// through without a permutation.
    [[nodiscard]] std::span<const double>
    to_internal(std::span<const double> values);
    void factor_full(std::span<const double> values);
    [[nodiscard]] bool try_refactor_numeric(std::span<const double> values);
    [[nodiscard]] bool
    try_refactor_numeric_columns(std::span<const double> values);
    /// Rebuild the flat factor arrays + refactor gather plan from
    /// lcols_/ucols_ (after every full factorisation in flat mode).
    void flatten_factors();
    /// Detect supernodes and bucket them into elimination-tree levels
    /// (called at the end of flatten_factors; see the parallel-refactor
    /// block above).
    void build_schedule();
    /// Numeric sweep of supernode columns [s, e): scatter, eliminate
    /// along the recorded reach sets, pivot-check, gather through the
    /// flat plan.  Operation-for-operation the serial per-column sweep —
    /// the chain kernel only streams the supernode's contiguous L
    /// trapezoid — so results are bit-identical in any schedule.  On a
    /// degraded pivot: restores x's zeros, flags the column in
    /// col_failed_, returns false (no flops billed — the caller's full
    /// re-factorisation accounts for the step exactly once).
    bool refactor_supernode(std::size_t s, std::size_t e,
                            std::span<const double> values, double tol,
                            std::vector<double>& x,
                            std::uint64_t& flops) noexcept;
    /// Level-scheduled numeric sweep on pool_ (flat mode).
    [[nodiscard]] bool try_refactor_parallel(std::span<const double> values,
                                             double tol);
    void solve_internal_columns(const Vector& b, Vector& y) const;
    /// Solve in the internal (possibly permuted) numbering; `y` is
    /// assigned the solution (caller-owned so the hot path can reuse
    /// scratch).
    void solve_internal(const Vector& b, Vector& y) const;

    std::size_t n_ = 0;
    double pivot_tol_ = 1e-13;
    FactorStorage storage_ = FactorStorage::flat;

    // CSC pattern of A — in permuted space when perm_ is non-empty (rows
    // sorted and unique within each column).
    std::vector<std::size_t> col_ptr_;
    std::vector<std::size_t> row_idx_;

    // Fill-reducing pre-permutation (empty = natural order) and the slot
    // gather map: internal slot s holds the caller's slot user_slot_[s].
    Permutation perm_;
    std::vector<std::size_t> user_slot_;
    std::vector<double> perm_values_; // gather scratch (hot path: no alloc)
    mutable Vector perm_b_;           // solve() rhs-gather scratch
    mutable Vector perm_y_;           // solve() permuted-solution scratch
    /// Per-lane gather + scatter scratch for refactor_lanes (the shared
    /// perm_values_/work_ scratch is single-lane; concurrent lanes need
    /// private buffers, indexed by lane).
    std::vector<std::vector<double>> lane_vals_;
    std::vector<std::vector<double>> lane_x_;

    // Column-wise factors: lcols_[j] holds strictly-below-diagonal entries
    // of L (unit diagonal implicit); ucols_[j] holds entries of U with
    // row <= j, diagonal last.  Patterns are structural (exact numeric
    // zeros are kept) so they stay valid across refactorisations.
    // factor_full() always assembles columns here (the DFS discovers the
    // pattern incrementally).  In FactorStorage::flat mode they are then
    // compiled into the contiguous arrays below, which refactor()/solve()
    // — the per-step hot path — read and write exclusively (the values
    // here go stale after a refactor); in `columns` mode (the measured
    // baseline of the fast-path benches) refactor()/solve() keep
    // operating on the column vectors as the seed implementation did.
    std::vector<std::vector<Entry>> lcols_;
    std::vector<std::vector<Entry>> ucols_;
    std::vector<std::size_t> pinv_;      // pinv_[orig_row] = permuted position
    std::vector<std::size_t> pivot_row_; // pivot_row_[j] = orig row of pivot j

    // ---- flattened factors (CSC; entry order = build push order, so the
    // numeric sweep is operation-for-operation identical to the
    // column-vector representation — bit-identical results) ----
    std::vector<std::size_t> l_ptr_;  // n_ + 1
    std::vector<std::size_t> l_row_;  // ORIGINAL row index per L entry
    std::vector<std::size_t> l_prow_; // pinv_[l_row_] (solve fast path)
    std::vector<double> l_val_;
    std::vector<std::size_t> u_ptr_;  // n_ + 1; diagonal last per column
    std::vector<std::size_t> u_row_;  // pivot-space row per U entry
    std::vector<double> u_val_;
    /// Refactor gather plan, parallel to reach_nodes_: where column j's
    /// reach position lands.  dst >= 0: u_val_[dst] (incl. the diagonal);
    /// dst < 0: l_val_[~dst], scaled by 1/ujj on the way in.
    std::vector<std::ptrdiff_t> gather_dst_;

    // Recorded symbolic analysis: reach_nodes_[reach_ptr_[j] ..
    // reach_ptr_[j+1]) is column j's reach set in DFS postorder
    // (eliminate in reverse order).
    std::vector<std::size_t> reach_ptr_;
    std::vector<std::size_t> reach_nodes_;

    std::size_t full_factors_ = 0;
    std::size_t fast_refactors_ = 0;

    // Numeric-sweep scratch for refactor(); kept as a member so the hot
    // path allocates nothing.  Invariant: all-zero between calls (every
    // exit path of try_refactor_numeric restores the zeros it wrote).
    std::vector<double> work_;

    // ---- level schedule over supernodes (flat mode; rebuilt by every
    // flatten_factors(), i.e. whenever the pivot sequence can change) ----
    runtime::ThreadPool* pool_ = nullptr; // non-owning; nullptr = serial
    std::vector<std::size_t> sn_ptr_;    // supernode s = columns
                                         // [sn_ptr_[s], sn_ptr_[s+1])
    std::vector<std::size_t> sn_of_col_; // column -> supernode
    std::vector<std::size_t> level_ptr_; // level l = level_sns_
                                         // [level_ptr_[l], level_ptr_[l+1])
    std::vector<std::size_t> level_sns_; // ascending within each level
    /// Per-column pivot-degradation flags for the parallel sweep.  Each
    /// task writes only its own columns' flags (no atomics needed); the
    /// post-level scan resolves the lowest-indexed failure.
    std::vector<std::uint8_t> col_failed_;
    /// Per-chunk numeric scratch (same zero invariant as work_) and flop
    /// tallies — summed after the sweep, so the billed total equals the
    /// serial sum exactly (integer addition commutes).
    std::vector<std::vector<double>> par_x_;
    std::vector<std::uint64_t> par_flops_;
};

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_SPARSE_LU_HPP
