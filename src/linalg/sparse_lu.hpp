// Nano-Sim — sparse LU factorisation (Gilbert-Peierls, partial pivoting).
//
// Left-looking column LU over a compressed-sparse-column view.  Each
// column of A is solved against the already-computed L by a depth-first
// reachability pass (the Gilbert-Peierls trick: the nonzero pattern of
// L\b is the set of nodes reachable from pattern(b) in the graph of L),
// then the largest remaining entry is chosen as the pivot.
//
// This is the same algorithm family as SPICE's sparse1.3 / KLU and scales
// to the RTD-chain benchmarks; for tiny systems the dense path wins and
// engines pick automatically (see mna/solver_select).
#ifndef NANOSIM_LINALG_SPARSE_LU_HPP
#define NANOSIM_LINALG_SPARSE_LU_HPP

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"

namespace nanosim::linalg {

/// Sparse LU of a square matrix with row partial pivoting: P A = L U.
class SparseLu {
public:
    /// Factor from a triplet list.  Throws SingularMatrixError when a
    /// column has no usable pivot (magnitude below pivot_tol * max|A|).
    explicit SparseLu(const Triplets& a, double pivot_tol = 1e-13);

    [[nodiscard]] std::size_t order() const noexcept { return n_; }

    /// Fill-in: nonzeros in L + U (diagonal counted once).
    [[nodiscard]] std::size_t nnz_factors() const noexcept;

    /// Solve A x = b.
    [[nodiscard]] Vector solve(const Vector& b) const;

private:
    struct Entry {
        std::size_t row;
        double value;
    };

    std::size_t n_ = 0;
    // Column-wise factors: lcols_[j] holds strictly-below-diagonal entries
    // of L (unit diagonal implicit); ucols_[j] holds entries of U with
    // row <= j, diagonal last.
    std::vector<std::vector<Entry>> lcols_;
    std::vector<std::vector<Entry>> ucols_;
    std::vector<std::size_t> pinv_; // pinv_[orig_row] = permuted position
};

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_SPARSE_LU_HPP
