#include "linalg/vecops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::linalg {

namespace {

void require_same_size(const Vector& x, const Vector& y, const char* who) {
    if (x.size() != y.size()) {
        throw SimError(std::string(who) + ": size mismatch");
    }
}

} // namespace

void axpy(double alpha, const Vector& x, Vector& y) {
    require_same_size(x, y, "axpy");
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] += alpha * x[i];
    }
    count_fma(x.size());
}

double dot(const Vector& x, const Vector& y) {
    require_same_size(x, y, "dot");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        acc += x[i] * y[i];
    }
    count_fma(x.size());
    return acc;
}

double norm2(const Vector& x) {
    count_special();
    return std::sqrt(dot(x, x));
}

// NaN operands must poison the max, not vanish into it: std::max(m, NaN)
// returns m, so a NaN iterate would read as a zero delta and let Newton
// loops "converge" on garbage.  Both norms propagate NaN instead.
double norm_inf(const Vector& x) noexcept {
    double m = 0.0;
    for (const double v : x) {
        if (std::isnan(v)) {
            return v;
        }
        m = std::max(m, std::abs(v));
    }
    return m;
}

double max_abs_diff(const Vector& x, const Vector& y) {
    require_same_size(x, y, "max_abs_diff");
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = std::abs(x[i] - y[i]);
        if (std::isnan(d)) {
            count_add(x.size());
            return d;
        }
        m = std::max(m, d);
    }
    count_add(x.size());
    return m;
}

Vector scaled(const Vector& x, double alpha) {
    Vector y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = alpha * x[i];
    }
    count_mul(x.size());
    return y;
}

Vector add(const Vector& x, const Vector& y) {
    require_same_size(x, y, "add");
    Vector z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        z[i] = x[i] + y[i];
    }
    count_add(x.size());
    return z;
}

Vector subtract(const Vector& x, const Vector& y) {
    require_same_size(x, y, "subtract");
    Vector z(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        z[i] = x[i] - y[i];
    }
    count_add(x.size());
    return z;
}

Vector linspace(double a, double b, std::size_t n) {
    if (n == 0) {
        return {};
    }
    if (n == 1) {
        return {a};
    }
    Vector v(n);
    const double step = (b - a) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = a + step * static_cast<double>(i);
    }
    // Pin the endpoint exactly: accumulated rounding must not push the last
    // sample past b (sweep engines rely on v.back() == b).
    v.back() = b;
    return v;
}

} // namespace nanosim::linalg
