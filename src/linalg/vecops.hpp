// Nano-Sim — small BLAS-1 style helpers on linalg::Vector.
//
// All functions are flop-instrumented (see util/flops.hpp) so that engines
// built on top of them report faithful operation counts for Table I.
#ifndef NANOSIM_LINALG_VECOPS_HPP
#define NANOSIM_LINALG_VECOPS_HPP

#include "linalg/dense.hpp"

namespace nanosim::linalg {

/// y += alpha * x.  Sizes must match (throws SimError otherwise).
void axpy(double alpha, const Vector& x, Vector& y);

/// Dot product <x, y>.
[[nodiscard]] double dot(const Vector& x, const Vector& y);

/// Euclidean norm ||x||_2.
[[nodiscard]] double norm2(const Vector& x);

/// Max norm ||x||_inf.
[[nodiscard]] double norm_inf(const Vector& x) noexcept;

/// ||x - y||_inf; sizes must match.
[[nodiscard]] double max_abs_diff(const Vector& x, const Vector& y);

/// Element-wise x * alpha into a fresh vector.
[[nodiscard]] Vector scaled(const Vector& x, double alpha);

/// x + y into a fresh vector; sizes must match.
[[nodiscard]] Vector add(const Vector& x, const Vector& y);

/// x - y into a fresh vector; sizes must match.
[[nodiscard]] Vector subtract(const Vector& x, const Vector& y);

/// Linear ramp of n points from a to b inclusive (n >= 2), or {a} if n==1.
[[nodiscard]] Vector linspace(double a, double b, std::size_t n);

} // namespace nanosim::linalg

#endif // NANOSIM_LINALG_VECOPS_HPP
