#include "mna/mna.hpp"

#include <algorithm>
#include <cmath>

#include "devices/sources.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "util/error.hpp"

namespace nanosim::mna {

MnaBuilder::MnaBuilder(int num_nodes, int num_branches)
    : num_nodes_(num_nodes),
      num_branches_(num_branches),
      g_(static_cast<std::size_t>(num_nodes + num_branches),
         static_cast<std::size_t>(num_nodes + num_branches)),
      c_(static_cast<std::size_t>(num_nodes + num_branches),
         static_cast<std::size_t>(num_nodes + num_branches)),
      rhs_(static_cast<std::size_t>(num_nodes + num_branches), 0.0) {}

void MnaBuilder::conductance(NodeId a, NodeId b, double g) {
    if (a != k_ground) {
        g_.add(node_row(a), node_row(a), g);
    }
    if (b != k_ground) {
        g_.add(node_row(b), node_row(b), g);
    }
    if (a != k_ground && b != k_ground) {
        g_.add(node_row(a), node_row(b), -g);
        g_.add(node_row(b), node_row(a), -g);
    }
}

void MnaBuilder::conductance_entry(NodeId row, NodeId col, double g) {
    if (row == k_ground || col == k_ground) {
        return;
    }
    g_.add(node_row(row), node_row(col), g);
}

void MnaBuilder::capacitance(NodeId a, NodeId b, double c) {
    if (a != k_ground) {
        c_.add(node_row(a), node_row(a), c);
    }
    if (b != k_ground) {
        c_.add(node_row(b), node_row(b), c);
    }
    if (a != k_ground && b != k_ground) {
        c_.add(node_row(a), node_row(b), -c);
        c_.add(node_row(b), node_row(a), -c);
    }
}

void MnaBuilder::rhs_current(NodeId node, double i) {
    if (node == k_ground) {
        return;
    }
    rhs_[static_cast<std::size_t>(node_row(node))] += i;
}

void MnaBuilder::branch_incidence(NodeId node, int branch, double sign) {
    if (node == k_ground) {
        return;
    }
    g_.add(node_row(node), branch_row(branch), sign);
}

void MnaBuilder::branch_voltage_coeff(int branch, NodeId node, double coeff) {
    if (node == k_ground) {
        return;
    }
    g_.add(branch_row(branch), node_row(node), coeff);
}

void MnaBuilder::branch_reactive(int branch_row_idx, int branch_col_idx,
                                 double value) {
    c_.add(branch_row(branch_row_idx), branch_row(branch_col_idx), value);
}

void MnaBuilder::branch_rhs(int branch, double value) {
    rhs_[static_cast<std::size_t>(branch_row(branch))] += value;
}

// ---------------------------------------------------------------------------

MnaAssembler::MnaAssembler(const Circuit& circuit) : circuit_(&circuit) {
    circuit.validate();
    num_nodes_ = circuit.num_nodes();
    num_branches_ = circuit.num_branches();

    MnaBuilder builder(num_nodes_, num_branches_);
    const auto& devs = circuit.devices();
    branch_base_.resize(devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i) {
        branch_base_[i] = circuit.branch_base(i);
        branch_base_map_.emplace(devs[i].get(), branch_base_[i]);
        devs[i]->stamp_static(builder, branch_base_[i]);
        devs[i]->stamp_reactive(builder, branch_base_[i]);
        if (devs[i]->nonlinear()) {
            nonlinear_.push_back(devs[i].get());
        }
        if (devs[i]->kind() == DeviceKind::noise_source) {
            noise_.push_back(devs[i].get());
        }
        if (devs[i]->time_varying()) {
            time_varying_.push_back(devs[i].get());
        }
    }
    static_g_ = builder.g();
    c_ = builder.c();
    c_csr_ = linalg::CsrMatrix(c_);

    // Structural-singularity guard: a node touched only by RHS-stamping
    // devices (current/noise sources) has an identically zero matrix row
    // — no pivoting order or rescue rung can ever solve it, and engines
    // that regularise it away (geq/gmin floors) just grind against
    // astronomically scaled solutions until their step control starves.
    // Diagnose it here, by name, before any engine runs.
    std::vector<bool> covered(static_cast<std::size_t>(num_nodes_) + 1,
                              false);
    for (const auto& dev : devs) {
        const DeviceKind k = dev->kind();
        if (k == DeviceKind::isource || k == DeviceKind::noise_source) {
            continue;
        }
        for (const NodeId n : dev->terminals()) {
            if (n > 0 && n <= num_nodes_) {
                covered[static_cast<std::size_t>(n)] = true;
            }
        }
    }
    for (NodeId n = 1; n <= num_nodes_; ++n) {
        if (!covered[static_cast<std::size_t>(n)]) {
            throw SingularMatrixError(
                "node '" + circuit.node_name(n) +
                "' is connected only to current/noise sources; its MNA "
                "row is structurally zero (floating node)");
        }
    }
}

linalg::Vector MnaAssembler::rhs(double t,
                                 const NoiseRealization* noise) const {
    MnaBuilder builder(num_nodes_, num_branches_);
    const auto& devs = circuit_->devices();
    for (std::size_t i = 0; i < devs.size(); ++i) {
        devs[i]->stamp_rhs(builder, branch_base_[i], t);
    }
    if (noise != nullptr) {
        if (noise->size() != noise_.size()) {
            throw AnalysisError("rhs: noise realization size mismatch");
        }
        for (std::size_t k = 0; k < noise_.size(); ++k) {
            const auto* src =
                static_cast<const NoiseCurrentSource*>(noise_[k]);
            const double i = (*noise)[k]->value(t);
            builder.rhs_current(src->pos(), -i);
            builder.rhs_current(src->neg(), +i);
        }
    }
    return builder.rhs();
}

int MnaAssembler::branch_base_of(const Device* dev) const {
    const auto it = branch_base_map_.find(dev);
    if (it == branch_base_map_.end()) {
        throw NetlistError("branch_base_of: device not in circuit");
    }
    return it->second;
}

void MnaAssembler::stamp_time_varying_into(double t, Stamper& st) const {
    for (const Device* dev : time_varying_) {
        dev->stamp_time_varying(st, branch_base_of(dev), t);
    }
}

void MnaAssembler::stamp_swec_into(std::span<const double> geq,
                                   Stamper& st) const {
    if (geq.size() != nonlinear_.size()) {
        throw AnalysisError("stamp_swec_into: geq size mismatch");
    }
    for (std::size_t k = 0; k < nonlinear_.size(); ++k) {
        nonlinear_[k]->stamp_swec(st, branch_base_of(nonlinear_[k]), geq[k]);
    }
}

void MnaAssembler::stamp_nr_into(std::span<const double> x,
                                 Stamper& st) const {
    const NodeVoltages v = view(x);
    for (const Device* dev : nonlinear_) {
        dev->stamp_nr(st, branch_base_of(dev), v);
    }
}

void MnaAssembler::add_time_varying_stamps(double t,
                                           linalg::Triplets& g) const {
    if (time_varying_.empty()) {
        return;
    }
    MnaBuilder builder(num_nodes_, num_branches_);
    stamp_time_varying_into(t, builder);
    for (const auto& e : builder.g().entries()) {
        g.add(e.row, e.col, e.value);
    }
}

void MnaAssembler::add_nr_stamps(std::span<const double> x,
                                 linalg::Triplets& g,
                                 linalg::Vector& rhs) const {
    MnaBuilder builder(num_nodes_, num_branches_);
    stamp_nr_into(x, builder);
    for (const auto& e : builder.g().entries()) {
        g.add(e.row, e.col, e.value);
    }
    for (std::size_t i = 0; i < rhs.size(); ++i) {
        rhs[i] += builder.rhs()[i];
    }
}

void MnaAssembler::add_swec_stamps(std::span<const double> geq,
                                   linalg::Triplets& g) const {
    MnaBuilder builder(num_nodes_, num_branches_);
    stamp_swec_into(geq, builder);
    for (const auto& e : builder.g().entries()) {
        g.add(e.row, e.col, e.value);
    }
}

std::vector<double> MnaAssembler::breakpoints(double t0, double t1) const {
    std::vector<double> bp;
    for (const auto& dev : circuit_->devices()) {
        const Waveform* wave = nullptr;
        if (const auto* vs = dynamic_cast<const VSource*>(dev.get())) {
            wave = &vs->wave();
        } else if (const auto* is = dynamic_cast<const ISource*>(dev.get())) {
            wave = &is->wave();
        }
        if (wave != nullptr) {
            const auto w = wave->breakpoints(t0, t1);
            bp.insert(bp.end(), w.begin(), w.end());
        }
    }
    std::sort(bp.begin(), bp.end());
    // Coalesce duplicates with a tolerance relative to the window — an
    // absolute epsilon would keep femtosecond corners apart at second
    // scales and merge real corners at femtosecond scales.
    const double tol = k_breakpoint_snap_rel *
                       std::max(std::abs(t1 - t0), std::abs(t1));
    bp.erase(std::unique(bp.begin(), bp.end(),
                         [tol](double a, double b) {
                             return std::abs(a - b) < tol;
                         }),
             bp.end());
    return bp;
}

linalg::Triplets swec_step_matrix(const MnaAssembler& assembler, double h,
                                  double geq) {
    const auto nl = assembler.nonlinear_devices().size();
    const std::vector<double> chords(nl, geq);
    linalg::Triplets a = assembler.static_g();
    assembler.add_time_varying_stamps(0.0, a);
    assembler.add_swec_stamps(chords, a);
    for (const auto& e : assembler.c_triplets().entries()) {
        a.add(e.row, e.col, e.value / h);
    }
    return a;
}

linalg::Vector solve_system(const linalg::Triplets& a,
                            const linalg::Vector& b,
                            std::size_t dense_threshold) {
    if (a.rows() <= dense_threshold) {
        return linalg::DenseLu(a.to_dense()).solve(b);
    }
    return linalg::SparseLu(a).solve(b);
}

} // namespace nanosim::mna
