// Nano-Sim — modified nodal analysis (MNA) assembly.
//
// Builds the G (conductance), C (reactance) and b (source) objects of the
// paper's eq. (1),  G(t) V(t) + C dV/dt = b u(t),  from a Circuit.
//
// Unknown ordering: [v_1 .. v_N, i_b1 .. i_bB] — node voltages first
// (node 0/ground eliminated), then branch currents of voltage sources and
// inductors.
//
// MnaBuilder implements the devices' Stamper interface and accumulates
// triplets; MnaAssembler caches the circuit structure (static stamps,
// nonlinear device list, noise sources) and produces per-step systems for
// the engines: NR-linearised, SWEC, or purely linear.
#ifndef NANOSIM_MNA_MNA_HPP
#define NANOSIM_MNA_MNA_HPP

#include <span>
#include <unordered_map>
#include <vector>

#include "devices/device.hpp"
#include "devices/waveform.hpp"
#include "linalg/sparse.hpp"
#include "netlist/circuit.hpp"

namespace nanosim::mna {

/// Relative tolerance under which two source corner times are the same
/// breakpoint.  Shared single source of truth: MnaAssembler::breakpoints
/// deduplicates with it and the transient engines snap with it
/// (engines::breakpoint_snap_tol) — if they diverged, duplicate corners
/// could survive dedup yet be skipped by the snap, reintroducing
/// degenerate sliver steps.
inline constexpr double k_breakpoint_snap_rel = 1e-12;

/// Stamper writing into triplet matrices + an rhs vector.
class MnaBuilder final : public Stamper {
public:
    MnaBuilder(int num_nodes, int num_branches);

    // Stamper interface.
    void conductance(NodeId a, NodeId b, double g) override;
    void conductance_entry(NodeId row, NodeId col, double g) override;
    void capacitance(NodeId a, NodeId b, double c) override;
    void rhs_current(NodeId node, double i) override;
    void branch_incidence(NodeId node, int branch, double sign) override;
    void branch_voltage_coeff(int branch, NodeId node, double coeff) override;
    void branch_reactive(int branch_row, int branch_col,
                         double value) override;
    void branch_rhs(int branch, double value) override;

    [[nodiscard]] const linalg::Triplets& g() const noexcept { return g_; }
    [[nodiscard]] const linalg::Triplets& c() const noexcept { return c_; }
    [[nodiscard]] const linalg::Vector& rhs() const noexcept { return rhs_; }
    [[nodiscard]] linalg::Vector& rhs() noexcept { return rhs_; }

private:
    [[nodiscard]] int node_row(NodeId n) const noexcept { return n - 1; }
    [[nodiscard]] int branch_row(int b) const noexcept {
        return num_nodes_ + b;
    }

    int num_nodes_;
    int num_branches_;
    linalg::Triplets g_;
    linalg::Triplets c_;
    linalg::Vector rhs_;
};

/// Cached assembly of one Circuit.
class MnaAssembler {
public:
    /// Validates the circuit (throws NetlistError on dangling nodes etc.).
    explicit MnaAssembler(const Circuit& circuit);

    [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }
    [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
    [[nodiscard]] int num_branches() const noexcept { return num_branches_; }
    [[nodiscard]] int unknowns() const noexcept {
        return num_nodes_ + num_branches_;
    }

    /// Static (linear, time-invariant) G triplets: resistors, source and
    /// inductor branch rows.
    [[nodiscard]] const linalg::Triplets& static_g() const noexcept {
        return static_g_;
    }

    /// Reactive triplets: capacitors and inductor -L terms.
    [[nodiscard]] const linalg::Triplets& c_triplets() const noexcept {
        return c_;
    }

    /// Compressed C for fast C*x products in companion models.
    [[nodiscard]] const linalg::CsrMatrix& c_csr() const noexcept {
        return c_csr_;
    }

    /// Per-noise-source sample-path realizations (parallel to
    /// noise_sources()); used by the Monte-Carlo wrapper to turn white
    /// noise into concrete current stimuli for deterministic engines.
    using NoiseRealization = std::vector<WaveformPtr>;

    /// Source vector b(t).  When `noise` is given, each noise source is
    /// additionally realized as a current injection of its waveform value
    /// at t (ISource sign convention).
    [[nodiscard]] linalg::Vector
    rhs(double t, const NoiseRealization* noise = nullptr) const;

    /// Nonlinear devices, in circuit order (engines keep per-device state
    /// in vectors parallel to this list).
    [[nodiscard]] const std::vector<const Device*>&
    nonlinear_devices() const noexcept {
        return nonlinear_;
    }

    /// White-noise sources (for the Euler-Maruyama engine).
    [[nodiscard]] const std::vector<const Device*>&
    noise_sources() const noexcept {
        return noise_;
    }

    /// Time-varying linear devices (Device::time_varying()).
    [[nodiscard]] const std::vector<const Device*>&
    time_varying_devices() const noexcept {
        return time_varying_;
    }

    /// ADD the G entries of all time-varying linear devices at time t.
    /// Engines call this wherever they copy static_g().
    void add_time_varying_stamps(double t, linalg::Triplets& g) const;

    // ---- Stamper-direct variants ----
    // The add_*_stamps helpers above materialise a scratch MnaBuilder and
    // merge its triplets; these write straight into any Stamper instead —
    // the zero-allocation restamp path SystemCache builds on.  RHS
    // contributions (NR Norton currents, PWL offsets) flow through the
    // stamper's rhs_current/branch_rhs hooks.

    /// Stamp all time-varying linear devices at time t into `st`.
    void stamp_time_varying_into(double t, Stamper& st) const;

    /// Stamp SWEC chord conductances (`geq` parallel to
    /// nonlinear_devices()) into `st`.
    void stamp_swec_into(std::span<const double> geq, Stamper& st) const;

    /// Stamp the Newton-Raphson linearisation at trial point `x` into
    /// `st` (tangent conductances into the matrix, Norton currents into
    /// the stamper's rhs hooks).
    void stamp_nr_into(std::span<const double> x, Stamper& st) const;

    /// Branch base of a device (by pointer; must belong to the circuit).
    [[nodiscard]] int branch_base_of(const Device* dev) const;

    /// ADD the Newton-Raphson linearisation (tangent conductances +
    /// Norton currents) of every nonlinear device at trial point `x` into
    /// an existing system.  Callers pre-fill `g` with static_g() (copy)
    /// and `rhs` with (possibly scaled) sources — this split is what lets
    /// source stepping scale only the independent sources.
    void add_nr_stamps(std::span<const double> x, linalg::Triplets& g,
                       linalg::Vector& rhs) const;

    /// ADD SWEC chord-conductance stamps, `geq` parallel to
    /// nonlinear_devices().
    void add_swec_stamps(std::span<const double> geq,
                         linalg::Triplets& g) const;

    /// View helper binding an unknown vector to the circuit's node count.
    [[nodiscard]] NodeVoltages view(std::span<const double> x) const noexcept {
        return NodeVoltages(x, static_cast<std::size_t>(num_nodes_));
    }

    /// Waveform corner times of all sources inside [t0, t1), sorted,
    /// deduplicated (tolerance k_breakpoint_snap_rel relative to the
    /// window) — transient engines land time points on them.
    [[nodiscard]] std::vector<double> breakpoints(double t0, double t1) const;

private:
    const Circuit* circuit_;
    int num_nodes_ = 0;
    int num_branches_ = 0;
    linalg::Triplets static_g_{0, 0};
    linalg::Triplets c_{0, 0};
    linalg::CsrMatrix c_csr_;
    std::vector<const Device*> nonlinear_;
    std::vector<const Device*> noise_;
    std::vector<const Device*> time_varying_;
    std::vector<int> branch_base_; // parallel to circuit devices
    std::unordered_map<const Device*, int> branch_base_map_;
};

/// Solve A x = b choosing dense LU for small systems and Gilbert-Peierls
/// sparse LU above `dense_threshold` unknowns.
[[nodiscard]] linalg::Vector solve_system(const linalg::Triplets& a,
                                          const linalg::Vector& b,
                                          std::size_t dense_threshold = 64);

/// A representative SWEC per-step system of the circuit:
/// static G + time-varying stamps at t = 0 + chord conductances `geq`
/// on every nonlinear device + C/h.  This is the matrix the cached
/// solver refactors every accepted step; benches and solver tests use it
/// to measure/compare factorisations without running an engine.
[[nodiscard]] linalg::Triplets
swec_step_matrix(const MnaAssembler& assembler, double h,
                 double geq = 1e-3);

} // namespace nanosim::mna

#endif // NANOSIM_MNA_MNA_HPP
