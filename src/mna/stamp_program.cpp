#include "mna/stamp_program.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <typeinfo>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/nanowire.hpp"
#include "devices/passives.hpp"
#include "devices/rtd.hpp"
#include "devices/rtt.hpp"
#include "devices/sources.hpp"
#include "devices/tv_conductor.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace nanosim::mna {

namespace {

/// Voltage window of the chord V->0 switch — must equal the constant the
/// legacy TwoTerminalNonlinear::chord_conductance uses (device.cpp) for
/// the program's evaluation to stay bit-identical.
constexpr double k_chord_v_eps = 1e-9;

[[nodiscard]] std::ptrdiff_t node_row_of(NodeId n) noexcept {
    return n == k_ground ? -1 : static_cast<std::ptrdiff_t>(n - 1);
}

} // namespace

std::size_t StampProgram::require_slot(const SlotFn& slot_of,
                                       std::size_t row,
                                       std::size_t col) const {
    const std::size_t s = slot_of(row, col);
    if (s == k_npos) {
        throw AnalysisError(
            "StampProgram: stamp coordinate (" + std::to_string(row) + ", " +
            std::to_string(col) + ") missing from the frozen pattern");
    }
    return s;
}

StampProgram::Pair StampProgram::make_pair(NodeId a, NodeId b,
                                           const SlotFn& slot_of) const {
    Pair p;
    const auto ra = static_cast<std::size_t>(a - 1);
    const auto rb = static_cast<std::size_t>(b - 1);
    if (a != k_ground) {
        p.aa = require_slot(slot_of, ra, ra);
    }
    if (b != k_ground) {
        p.bb = require_slot(slot_of, rb, rb);
    }
    if (a != k_ground && b != k_ground) {
        p.ab = require_slot(slot_of, ra, rb);
        p.ba = require_slot(slot_of, rb, ra);
    }
    return p;
}

StampProgram::StampProgram(const MnaAssembler& assembler,
                           const SlotFn& slot_of)
    : assembler_(&assembler) {
    const auto& nonlinear = assembler.nonlinear_devices();
    const std::size_t nl = nonlinear.size();
    kind_.resize(nl);
    class_pos_.resize(nl);
    pair_.resize(nl);
    diag_a_.assign(nl, -1);
    diag_b_.assign(nl, -1);
    rhs_a_.assign(nl, -1);
    rhs_b_.assign(nl, -1);

    // Resolve a single NR entry slot, ground rows dropped (k_npos) —
    // mirrors Stamper::conductance_entry.
    auto entry_slot = [&](NodeId row, NodeId col) -> std::size_t {
        if (row == k_ground || col == k_ground) {
            return k_npos;
        }
        return require_slot(slot_of, static_cast<std::size_t>(row - 1),
                            static_cast<std::size_t>(col - 1));
    };

    for (std::size_t k = 0; k < nl; ++k) {
        const Device* dev = nonlinear[k];
        const auto idx = static_cast<std::uint32_t>(k);
        const auto& type = typeid(*dev);
        NodeId a = k_ground;
        NodeId b = k_ground;
        if (type == typeid(Rtd)) {
            kind_[k] = Kind::rtd;
            const auto* r = static_cast<const Rtd*>(dev);
            class_pos_[k] = static_cast<std::uint32_t>(rtds_.dev.size());
            rtds_.dev.push_back(r);
            rtds_.params.push_back(r->params());
            rtds_.pos.push_back(r->pos());
            rtds_.neg.push_back(r->neg());
            rtds_.idx.push_back(idx);
            rtds_.table.push_back(nullptr);
            a = r->pos();
            b = r->neg();
        } else if (type == typeid(Diode)) {
            kind_[k] = Kind::diode;
            const auto* d = static_cast<const Diode*>(dev);
            class_pos_[k] = static_cast<std::uint32_t>(diodes_.dev.size());
            diodes_.dev.push_back(d);
            diodes_.pos.push_back(d->pos());
            diodes_.neg.push_back(d->neg());
            diodes_.idx.push_back(idx);
            diodes_.table.push_back(nullptr);
            a = d->pos();
            b = d->neg();
        } else if (type == typeid(Nanowire)) {
            kind_[k] = Kind::nanowire;
            const auto* w = static_cast<const Nanowire*>(dev);
            class_pos_[k] = static_cast<std::uint32_t>(wires_.dev.size());
            wires_.dev.push_back(w);
            wires_.pos.push_back(w->pos());
            wires_.neg.push_back(w->neg());
            wires_.idx.push_back(idx);
            wires_.table.push_back(nullptr);
            a = w->pos();
            b = w->neg();
        } else if (type == typeid(Mosfet)) {
            kind_[k] = Kind::mosfet;
            const auto* m = static_cast<const Mosfet*>(dev);
            class_pos_[k] = static_cast<std::uint32_t>(mosfets_.dev.size());
            mosfets_.dev.push_back(m);
            mosfets_.drain.push_back(m->drain());
            mosfets_.gate.push_back(m->gate());
            mosfets_.source.push_back(m->source());
            mosfets_.idx.push_back(idx);
            mosfets_.nr_slot.push_back(
                {entry_slot(m->drain(), m->gate()),
                 entry_slot(m->drain(), m->source()),
                 entry_slot(m->drain(), m->drain()),
                 entry_slot(m->source(), m->gate()),
                 entry_slot(m->source(), m->source()),
                 entry_slot(m->source(), m->drain())});
            a = m->drain();
            b = m->source();
        } else if (type == typeid(Rtt)) {
            kind_[k] = Kind::rtt;
            const auto* r = static_cast<const Rtt*>(dev);
            const std::vector<NodeId> t = r->terminals(); // {c, b, e}
            class_pos_[k] = static_cast<std::uint32_t>(rtts_.dev.size());
            rtts_.dev.push_back(r);
            rtts_.collector.push_back(t[0]);
            rtts_.base.push_back(t[1]);
            rtts_.emitter.push_back(t[2]);
            rtts_.idx.push_back(idx);
            rtts_.nr_slot.push_back(
                {entry_slot(t[0], t[0]), entry_slot(t[0], t[2]),
                 entry_slot(t[0], t[1]), entry_slot(t[2], t[0]),
                 entry_slot(t[2], t[2]), entry_slot(t[2], t[1])});
            norton_fast_ = false; // RTT is not a PWL device
            a = t[0];
            b = t[2];
        } else {
            kind_[k] = Kind::generic;
            class_pos_[k] = static_cast<std::uint32_t>(generics_.size());
            generics_.push_back(
                GenericEntry{dev, idx, assembler.branch_base_of(dev)});
            norton_fast_ = false;
            gdiag_fast_ = false;
            continue; // no known principal pair
        }
        pair_[k] = make_pair(a, b, slot_of);
        diag_a_[k] = node_row_of(a);
        diag_b_[k] = node_row_of(b);
        rhs_a_[k] = node_row_of(a);
        rhs_b_[k] = node_row_of(b);
    }

    // Terminal slots for the vectorised eval gather: node i sits at
    // index i of the ground-padded voltage copy, ground at index 0 —
    // the branchy per-terminal ground test becomes a plain load.
    auto fill_slots = [](const std::vector<NodeId>& nodes,
                         std::vector<std::uint32_t>& slots) {
        slots.resize(nodes.size());
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            slots[i] = static_cast<std::uint32_t>(nodes[i]);
        }
    };
    fill_slots(rtds_.pos, rtds_.pos_slot);
    fill_slots(rtds_.neg, rtds_.neg_slot);
    fill_slots(diodes_.pos, diodes_.pos_slot);
    fill_slots(diodes_.neg, diodes_.neg_slot);
    fill_slots(wires_.pos, wires_.pos_slot);
    fill_slots(wires_.neg, wires_.neg_slot);

    // ---- compiled rhs plan ----
    // Only V/I sources write b(t); every other known class's stamp_rhs
    // is the empty default.  A device of unrecognised concrete type
    // could override stamp_rhs, so its presence invalidates the whole
    // plan (eval_rhs callers fall back to MnaAssembler::rhs).
    unknowns_ = static_cast<std::size_t>(assembler.unknowns());
    const auto num_nodes = static_cast<std::size_t>(assembler.num_nodes());
    for (const auto& dev_ptr : assembler.circuit().devices()) {
        const Device* dev = dev_ptr.get();
        const auto& type = typeid(*dev);
        if (type == typeid(VSource)) {
            const auto* vs = static_cast<const VSource*>(dev);
            RhsSource e;
            e.vs = vs;
            e.branch_row =
                num_nodes +
                static_cast<std::size_t>(assembler.branch_base_of(dev));
            rhs_sources_.push_back(e);
        } else if (type == typeid(ISource)) {
            const auto* is = static_cast<const ISource*>(dev);
            RhsSource e;
            e.is = is;
            e.pos_row = node_row_of(is->pos());
            e.neg_row = node_row_of(is->neg());
            rhs_sources_.push_back(e);
        } else if (type != typeid(Resistor) && type != typeid(Capacitor) &&
                   type != typeid(Inductor) && type != typeid(Diode) &&
                   type != typeid(Mosfet) && type != typeid(Rtd) &&
                   type != typeid(Rtt) && type != typeid(Nanowire) &&
                   type != typeid(TimeVaryingConductor) &&
                   type != typeid(NoiseCurrentSource)) {
            rhs_fast_ = false;
        }
    }
    for (const Device* dev : assembler.noise_sources()) {
        const auto* src = static_cast<const NoiseCurrentSource*>(dev);
        rhs_noise_.push_back(
            RhsNoise{node_row_of(src->pos()), node_row_of(src->neg())});
    }

    for (const Device* dev : assembler.time_varying_devices()) {
        TvEntry e;
        e.dev = dev;
        e.branch_base = assembler.branch_base_of(dev);
        if (typeid(*dev) == typeid(TimeVaryingConductor)) {
            e.fast = static_cast<const TimeVaryingConductor*>(dev);
            const std::vector<NodeId> t = dev->terminals(); // {a, b}
            e.pair = make_pair(t[0], t[1], slot_of);
            e.diag_a = node_row_of(t[0]);
            e.diag_b = node_row_of(t[1]);
        } else {
            gdiag_fast_ = false;
        }
        tv_.push_back(e);
    }
}

// ---------------------------------------------------------------------------
// Device-model evaluation: one tight loop per device class.  Each branch
// reproduces the legacy virtual chain's arithmetic exactly — see the
// bit-identity contract in the header.
// ---------------------------------------------------------------------------

namespace {

/// TwoTerminalNonlinear::chord_conductance, devirtualised: Dev must
/// provide non-virtual-dispatch current()/didv() via a qualified call.
template <typename Dev>
[[nodiscard]] double chord_2t(const Dev* d, double v) {
    if (std::abs(v) < k_chord_v_eps) {
        return d->Dev::didv(0.0);
    }
    count_div();
    return d->Dev::current(v) / v;
}

/// TwoTerminalNonlinear::chord_conductance_dv (the generic quotient
/// rule), devirtualised.
template <typename Dev>
[[nodiscard]] double chord_dv_2t(const Dev* d, double v) {
    if (std::abs(v) < k_chord_v_eps) {
        const double h = 1e-6;
        count_div(2);
        return (d->Dev::didv(h) - d->Dev::didv(-h)) / (4.0 * h);
    }
    count_mul(2);
    count_add(1);
    count_div(1);
    return (v * d->Dev::didv(v) - d->Dev::current(v)) / (v * v);
}

} // namespace

namespace {

/// Vectorisable terminal-difference gather: out[i] = vp[pos[i]] -
/// vp[neg[i]] over a ground-padded voltage array.  Contiguous output,
/// branch-free body, __restrict'ed streams — the compiler's auto-
/// vectoriser turns this into SIMD gathers + packed subtracts.  The
/// subtraction is the exact expression the scalar path computed
/// (v(pos) - v(neg)), so downstream values stay bit-identical.
void gather_vd(const double* __restrict vp,
               const std::uint32_t* __restrict pos,
               const std::uint32_t* __restrict neg, double* __restrict out,
               std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = vp[pos[i]] - vp[neg[i]];
    }
}

} // namespace

void StampProgram::eval_chords(const NodeVoltages& v,
                               const NodeVoltages& dvdt, bool with_rate,
                               std::span<double> geq,
                               std::span<double> geq_rate) const {
    if (!with_rate && !geq_rate.empty()) {
        std::fill(geq_rate.begin(), geq_rate.end(), 0.0);
    }
    const bool tables = tables_on_;

    // Ground-padded voltage (and rate) copies: index 0 reads exactly
    // 0.0, node i at index i.  One memcpy each, then every two-terminal
    // class's vd/vdot comes from one SIMD gather-subtract pass instead
    // of four branchy NodeVoltages calls per device.
    const std::size_t num_nodes =
        std::min(v.num_nodes(), v.raw().size()); // branch rows excluded
    vpad_.resize(num_nodes + 1);
    vpad_[0] = 0.0;
    if (num_nodes > 0) {
        std::memcpy(vpad_.data() + 1, v.raw().data(),
                    num_nodes * sizeof(double));
    }
    if (with_rate) {
        dpad_.resize(num_nodes + 1);
        dpad_[0] = 0.0;
        if (num_nodes > 0) {
            std::memcpy(dpad_.data() + 1, dvdt.raw().data(),
                        num_nodes * sizeof(double));
        }
    }
    const std::size_t max_class = std::max(
        {rtds_.dev.size(), diodes_.dev.size(), wires_.dev.size()});
    vd_.resize(max_class);
    vdot_.resize(with_rate ? max_class : 0);

    const std::size_t n_rtd = rtds_.dev.size();
    gather_vd(vpad_.data(), rtds_.pos_slot.data(), rtds_.neg_slot.data(),
              vd_.data(), n_rtd);
    if (with_rate) {
        gather_vd(dpad_.data(), rtds_.pos_slot.data(),
                  rtds_.neg_slot.data(), vdot_.data(), n_rtd);
    }
    for (std::size_t i = 0; i < n_rtd; ++i) {
        const double vd = vd_[i];
        const std::uint32_t k = rtds_.idx[i];
        const ChordTable* tb = tables ? rtds_.table[i] : nullptr;
        if (tb != nullptr && tb->contains(vd)) {
            geq[k] = tb->chord(vd);
            if (with_rate) {
                geq_rate[k] = tb->chord_dv(vd) * vdot_[i];
            }
            continue;
        }
        if (with_rate) {
            // Fused chord + derivative — shares the Schulman subterms
            // between the two closed forms, bit-identical to separate
            // chord()/chord_dv() calls (see rtd_math::chord_and_dv).
            double g = 0.0;
            double dg = 0.0;
            rtd_math::chord_and_dv(rtds_.params[i], vd, g, dg);
            geq[k] = g;
            count_mul(1);
            count_add(2);
            geq_rate[k] = dg * vdot_[i];
        } else {
            geq[k] = rtd_math::chord(rtds_.params[i], vd);
        }
    }

    const std::size_t n_diode = diodes_.dev.size();
    gather_vd(vpad_.data(), diodes_.pos_slot.data(),
              diodes_.neg_slot.data(), vd_.data(), n_diode);
    if (with_rate) {
        gather_vd(dpad_.data(), diodes_.pos_slot.data(),
                  diodes_.neg_slot.data(), vdot_.data(), n_diode);
    }
    for (std::size_t i = 0; i < n_diode; ++i) {
        const double vd = vd_[i];
        const std::uint32_t k = diodes_.idx[i];
        const ChordTable* tb = tables ? diodes_.table[i] : nullptr;
        if (tb != nullptr && tb->contains(vd)) {
            geq[k] = tb->chord(vd);
            if (with_rate) {
                geq_rate[k] = tb->chord_dv(vd) * vdot_[i];
            }
            continue;
        }
        geq[k] = chord_2t(diodes_.dev[i], vd);
        if (with_rate) {
            count_mul(1);
            count_add(2);
            geq_rate[k] = chord_dv_2t(diodes_.dev[i], vd) * vdot_[i];
        }
    }

    const std::size_t n_wire = wires_.dev.size();
    gather_vd(vpad_.data(), wires_.pos_slot.data(), wires_.neg_slot.data(),
              vd_.data(), n_wire);
    if (with_rate) {
        gather_vd(dpad_.data(), wires_.pos_slot.data(),
                  wires_.neg_slot.data(), vdot_.data(), n_wire);
    }
    for (std::size_t i = 0; i < n_wire; ++i) {
        const double vd = vd_[i];
        const std::uint32_t k = wires_.idx[i];
        const ChordTable* tb = tables ? wires_.table[i] : nullptr;
        if (tb != nullptr && tb->contains(vd)) {
            geq[k] = tb->chord(vd);
            if (with_rate) {
                geq_rate[k] = tb->chord_dv(vd) * vdot_[i];
            }
            continue;
        }
        geq[k] = chord_2t(wires_.dev[i], vd);
        if (with_rate) {
            count_mul(1);
            count_add(2);
            geq_rate[k] = chord_dv_2t(wires_.dev[i], vd) * vdot_[i];
        }
    }

    for (std::size_t i = 0; i < mosfets_.dev.size(); ++i) {
        const Mosfet* m = mosfets_.dev[i];
        const std::uint32_t k = mosfets_.idx[i];
        geq[k] = m->Mosfet::swec_conductance(v);
        if (with_rate) {
            geq_rate[k] = m->Mosfet::swec_conductance_rate(v, dvdt);
        }
    }

    for (std::size_t i = 0; i < rtts_.dev.size(); ++i) {
        const Rtt* r = rtts_.dev[i];
        const std::uint32_t k = rtts_.idx[i];
        geq[k] = r->Rtt::swec_conductance(v);
        if (with_rate) {
            geq_rate[k] = r->Rtt::swec_conductance_rate(v, dvdt);
        }
    }

    for (const GenericEntry& e : generics_) {
        geq[e.idx] = e.dev->swec_conductance(v);
        if (with_rate) {
            geq_rate[e.idx] = e.dev->swec_conductance_rate(v, dvdt);
        }
    }
}

std::size_t StampProgram::tabulated_devices() const noexcept {
    if (!tables_on_) {
        return 0;
    }
    std::size_t n = 0;
    for (const auto* t : rtds_.table) {
        n += t != nullptr ? 1 : 0;
    }
    for (const auto* t : diodes_.table) {
        n += t != nullptr ? 1 : 0;
    }
    for (const auto* t : wires_.table) {
        n += t != nullptr ? 1 : 0;
    }
    return n;
}

// ---------------------------------------------------------------------------
// Restamps
// ---------------------------------------------------------------------------

void StampProgram::apply_swec(std::span<const double> geq,
                              std::span<double> values,
                              Stamper& fallback) const {
    double* v = values.data();
    const std::size_t nl = kind_.size();
    for (std::size_t k = 0; k < nl; ++k) {
        if (kind_[k] == Kind::generic) {
            const GenericEntry& e = generics_[class_pos_[k]];
            e.dev->stamp_swec(fallback, e.branch_base, geq[k]);
            continue;
        }
        scatter_pair(pair_[k], geq[k], v);
    }
}

void StampProgram::apply_nr(std::span<const double> x,
                            std::span<double> values, linalg::Vector& rhs,
                            Stamper& fallback) const {
    const NodeVoltages nv = assembler_->view(x);
    double* v = values.data();
    const std::size_t nl = kind_.size();
    for (std::size_t k = 0; k < nl; ++k) {
        switch (kind_[k]) {
        case Kind::rtd: {
            const std::size_t i = class_pos_[k];
            const RtdParams& p = rtds_.params[i];
            const double vd = nv(rtds_.pos[i]) - nv(rtds_.neg[i]);
            // Fused tangent + current (bit-identical to the separate
            // didv()/current() calls of the legacy stamp).
            double i0 = 0.0;
            double g = 0.0;
            rtd_math::current_and_didv(p, vd, i0, g);
            const double ieq = i0 - g * vd;
            scatter_pair(pair_[k], g, v);
            scatter_rhs_pair(rhs_a_[k], rhs_b_[k], ieq, rhs);
            count_mul(2);
            count_add(2);
            break;
        }
        case Kind::diode: {
            const std::size_t i = class_pos_[k];
            const Diode* d = diodes_.dev[i];
            const double vd = nv(diodes_.pos[i]) - nv(diodes_.neg[i]);
            const double g = d->Diode::didv(vd);
            const double i0 = d->Diode::current(vd);
            const double ieq = i0 - g * vd;
            scatter_pair(pair_[k], g, v);
            scatter_rhs_pair(rhs_a_[k], rhs_b_[k], ieq, rhs);
            count_mul(2);
            count_add(2);
            break;
        }
        case Kind::nanowire: {
            const std::size_t i = class_pos_[k];
            const Nanowire* w = wires_.dev[i];
            const double vd = nv(wires_.pos[i]) - nv(wires_.neg[i]);
            const double g = w->Nanowire::didv(vd);
            const double i0 = w->Nanowire::current(vd);
            const double ieq = i0 - g * vd;
            scatter_pair(pair_[k], g, v);
            scatter_rhs_pair(rhs_a_[k], rhs_b_[k], ieq, rhs);
            count_mul(2);
            count_add(2);
            break;
        }
        case Kind::mosfet: {
            const std::size_t i = class_pos_[k];
            const Mosfet* m = mosfets_.dev[i];
            const double v_gs = nv(mosfets_.gate[i]) - nv(mosfets_.source[i]);
            const double v_ds =
                nv(mosfets_.drain[i]) - nv(mosfets_.source[i]);
            const double i0 = m->Mosfet::drain_current(v_gs, v_ds);
            const auto [gm, gds] = m->Mosfet::derivatives(v_gs, v_ds);
            // Entry order and value expressions exactly as in
            // Mosfet::stamp_nr.
            const std::array<double, 6> vals = {gm,  -gm - gds, gds,
                                                -gm, gm + gds,  -gds};
            const auto& slots = mosfets_.nr_slot[i];
            for (std::size_t j = 0; j < 6; ++j) {
                if (slots[j] != k_npos) {
                    v[slots[j]] += vals[j];
                }
            }
            const double ieq = i0 - gm * v_gs - gds * v_ds;
            scatter_rhs_pair(rhs_a_[k], rhs_b_[k], ieq, rhs);
            count_mul(2);
            count_add(4);
            break;
        }
        case Kind::rtt: {
            const std::size_t i = class_pos_[k];
            const Rtt* r = rtts_.dev[i];
            const double v_ce =
                nv(rtts_.collector[i]) - nv(rtts_.emitter[i]);
            const double v_be = nv(rtts_.base[i]) - nv(rtts_.emitter[i]);
            const double i0 = r->Rtt::collector_current(v_ce, v_be);
            const double g_ce = r->Rtt::gce(v_ce, v_be);
            // Numeric transconductance, exactly as in Rtt::stamp_nr.
            const double h = 1e-7;
            const double g_m = (r->Rtt::collector_current(v_ce, v_be + h) -
                                r->Rtt::collector_current(v_ce, v_be - h)) /
                               (2.0 * h);
            const std::array<double, 6> vals = {g_ce,  -g_ce - g_m, g_m,
                                                -g_ce, g_ce + g_m,  -g_m};
            const auto& slots = rtts_.nr_slot[i];
            for (std::size_t j = 0; j < 6; ++j) {
                if (slots[j] != k_npos) {
                    v[slots[j]] += vals[j];
                }
            }
            const double ieq = i0 - g_ce * v_ce - g_m * v_be;
            scatter_rhs_pair(rhs_a_[k], rhs_b_[k], ieq, rhs);
            count_mul(3);
            count_add(5);
            count_div(1);
            break;
        }
        case Kind::generic: {
            const GenericEntry& e = generics_[class_pos_[k]];
            e.dev->stamp_nr(fallback, e.branch_base, nv);
            break;
        }
        }
    }
}

void StampProgram::apply_time_varying(double t, std::span<double> values,
                                      Stamper& fallback) const {
    double* v = values.data();
    for (const TvEntry& e : tv_) {
        if (e.fast != nullptr) {
            const double g = e.fast->conductance(t);
            if (g < 0.0) {
                // Same failure contract as
                // TimeVaryingConductor::stamp_time_varying.
                throw AnalysisError("tv_conductor '" + e.fast->name() +
                                    "': negative conductance at t=" +
                                    std::to_string(t));
            }
            scatter_pair(e.pair, g, v);
        } else {
            e.dev->stamp_time_varying(fallback, e.branch_base, t);
        }
    }
}

void StampProgram::apply_nortons(std::span<const double> g,
                                 std::span<const double> ioff,
                                 std::span<double> values,
                                 linalg::Vector& rhs) const {
    double* v = values.data();
    const std::size_t nl = kind_.size();
    for (std::size_t k = 0; k < nl; ++k) {
        scatter_pair(pair_[k], g[k], v);
        scatter_rhs_pair(rhs_a_[k], rhs_b_[k], ioff[k], rhs);
    }
}

void StampProgram::add_swec_gdiag(double t, std::span<const double> geq,
                                  std::span<double> gdiag) const {
    // Same accumulation order as the legacy scratch-builder pass:
    // time-varying devices first, nonlinear devices second, each
    // contributing its (a,a) then (b,b) diagonal entry.
    for (const TvEntry& e : tv_) {
        const double g = e.fast->conductance(t);
        if (g < 0.0) {
            throw AnalysisError("tv_conductor '" + e.fast->name() +
                                "': negative conductance at t=" +
                                std::to_string(t));
        }
        if (e.diag_a >= 0) {
            gdiag[static_cast<std::size_t>(e.diag_a)] += g;
        }
        if (e.diag_b >= 0) {
            gdiag[static_cast<std::size_t>(e.diag_b)] += g;
        }
    }
    const std::size_t nl = kind_.size();
    for (std::size_t k = 0; k < nl; ++k) {
        const double g = geq[k];
        if (diag_a_[k] >= 0) {
            gdiag[static_cast<std::size_t>(diag_a_[k])] += g;
        }
        if (diag_b_[k] >= 0) {
            gdiag[static_cast<std::size_t>(diag_b_[k])] += g;
        }
    }
}

double StampProgram::device_step_bound(const NodeVoltages& v,
                                       const NodeVoltages& dvdt,
                                       std::span<const double> geq,
                                       std::span<const double> geq_rate,
                                       double eps) const {
    double bound = std::numeric_limits<double>::infinity();
    const std::size_t nl = kind_.size();
    for (std::size_t k = 0; k < nl; ++k) {
        switch (kind_[k]) {
        case Kind::rtd:
        case Kind::diode:
        case Kind::nanowire:
        case Kind::rtt: {
            // h <= eps * G_eq / |dG_eq/dt| — the chord-rate bound of
            // TwoTerminalNonlinear::step_limit / Rtt::step_limit, fed
            // the chord and rate this step already evaluated (the same
            // pure-function values step_limit would recompute).
            const double g = geq[k];
            const double gdot = std::abs(geq_rate[k]);
            if (gdot <= 0.0 || g <= 0.0) {
                break;
            }
            count_div();
            count_mul();
            bound = std::min(bound, eps * g / gdot);
            break;
        }
        case Kind::mosfet:
            // Transcendental-free V_GS bound (paper eq. 12, transistor
            // term); qualified call = direct dispatch.
            bound = std::min(bound, mosfets_.dev[class_pos_[k]]
                                        ->Mosfet::step_limit(v, dvdt, eps));
            break;
        case Kind::generic:
            bound = std::min(
                bound,
                generics_[class_pos_[k]].dev->step_limit(v, dvdt, eps));
            break;
        }
    }
    return bound;
}

void StampProgram::eval_rhs(double t,
                            const MnaAssembler::NoiseRealization* noise,
                            linalg::Vector& out) const {
    out.assign(unknowns_, 0.0);
    for (const RhsSource& e : rhs_sources_) {
        if (e.vs != nullptr) {
            // VSource::stamp_rhs -> branch_rhs(branch, wave.value(t)).
            out[e.branch_row] += e.vs->wave().value(t);
        } else {
            // ISource::stamp_rhs: current drawn out of pos, into neg.
            const double i = e.is->wave().value(t);
            if (e.pos_row >= 0) {
                out[static_cast<std::size_t>(e.pos_row)] += -i;
            }
            if (e.neg_row >= 0) {
                out[static_cast<std::size_t>(e.neg_row)] += +i;
            }
        }
    }
    if (noise != nullptr) {
        if (noise->size() != rhs_noise_.size()) {
            throw AnalysisError("rhs: noise realization size mismatch");
        }
        for (std::size_t k = 0; k < rhs_noise_.size(); ++k) {
            const double i = (*noise)[k]->value(t);
            if (rhs_noise_[k].pos_row >= 0) {
                out[static_cast<std::size_t>(rhs_noise_[k].pos_row)] += -i;
            }
            if (rhs_noise_[k].neg_row >= 0) {
                out[static_cast<std::size_t>(rhs_noise_[k].neg_row)] += +i;
            }
        }
    }
}

std::size_t StampProgram::bind_tables(TableStore& store,
                                      const TableConfig& cfg) {
    std::size_t builds = 0;
    table_refs_.clear();
    auto bind = [&](const Device* dev,
                    const ChordTable*& slot) {
        slot = nullptr;
        std::shared_ptr<const ChordTable> table =
            store.acquire(*dev, cfg, builds);
        if (table != nullptr) {
            slot = table.get();
            table_refs_.push_back(std::move(table));
        }
    };
    for (std::size_t i = 0; i < rtds_.dev.size(); ++i) {
        bind(rtds_.dev[i], rtds_.table[i]);
    }
    for (std::size_t i = 0; i < diodes_.dev.size(); ++i) {
        bind(diodes_.dev[i], diodes_.table[i]);
    }
    for (std::size_t i = 0; i < wires_.dev.size(); ++i) {
        bind(wires_.dev[i], wires_.table[i]);
    }
    tables_on_ = true;
    return builds;
}

} // namespace nanosim::mna
