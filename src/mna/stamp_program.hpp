// Nano-Sim — flattened per-step stamp/evaluation programs.
//
// Profiling the SWEC inner loop (BENCH_session.json, 32x32 RTD mesh)
// lands in per-device virtual dispatch: every step, every nonlinear
// device went `Device::swec_conductance` -> `Device::stamp_swec` ->
// `Stamper::conductance` -> a binary-searched slot lookup, repeated for
// NR linearisations and time-varying restamps.  None of that indirection
// carries information — the set of devices, their concrete classes, the
// matrix coordinates they touch and the slot each coordinate occupies in
// the frozen pattern are ALL fixed the moment a SystemCache freezes its
// union stamp pattern.
//
// A StampProgram compiles that knowledge into flat execution plans at
// pattern-freeze time:
//
//  * per-device-class SoA evaluation loops (chord conductance + rate) —
//    RTDs evaluate through rtd_math on their parameter structs, diodes /
//    nanowires / MOSFETs / RTTs through devirtualised qualified calls,
//    with opt-in ChordTable lookups replacing the transcendentals;
//  * per-device conductance-pair scatters: the 4 CSC value slots of a
//    two-terminal conductance stamp, precomputed so a SWEC / PWL / NR /
//    time-varying restamp is `values[slot] += ±g` — zero virtual calls,
//    zero Stamper indirection, zero slot searches;
//  * NR linearisation plans: the 6 single-entry slots of a MOSFET/RTT
//    stamp plus Norton rhs rows, evaluated and scattered in one pass;
//  * the node-diagonal conductance sums the adaptive step bound
//    (eq. 12) needs, replacing the per-step scratch MnaBuilder.
//
// Bit-identity contract: every fast path reproduces the legacy stamping
// path's arithmetic exactly — same evaluation expressions (shared free
// functions / devirtualised calls into the same member functions), same
// per-slot accumulation order (devices in assembler order, entries in
// stamp-call order).  Devices of classes the program does not recognise
// fall back to their virtual stamps through the cache's scatter stamper,
// preserving correctness for user-defined models.
#ifndef NANOSIM_MNA_STAMP_PROGRAM_HPP
#define NANOSIM_MNA_STAMP_PROGRAM_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "devices/rtd.hpp" // RtdParams stored BY VALUE in the SoA plan
#include "devices/tabulated.hpp"
#include "linalg/dense.hpp"
#include "mna/mna.hpp"

namespace nanosim {
class Diode;
class ISource;
class Mosfet;
class Nanowire;
class Rtt;
class TimeVaryingConductor;
class VSource;
} // namespace nanosim

namespace nanosim::mna {

class StampProgram {
public:
    static constexpr std::size_t k_npos = static_cast<std::size_t>(-1);

    /// Resolve a frozen-pattern slot for (row, col); k_npos when absent.
    using SlotFn = std::function<std::size_t(std::size_t, std::size_t)>;

    /// Compile the program against `assembler`'s device lists, resolving
    /// every per-step coordinate through `slot_of` (the cache's frozen
    /// pattern).  Throws AnalysisError when a required coordinate is
    /// missing — the union pattern always contains them by construction.
    StampProgram(const MnaAssembler& assembler, const SlotFn& slot_of);

    // ---- device-model evaluation -------------------------------------

    /// Chord conductances (and, when `with_rate`, their time rates) of
    /// every nonlinear device, written to geq[k] / geq_rate[k] parallel
    /// to assembler.nonlinear_devices().  Tight per-class loops; bound
    /// tables short-circuit the closed forms inside their range.
    void eval_chords(const NodeVoltages& v, const NodeVoltages& dvdt,
                     bool with_rate, std::span<double> geq,
                     std::span<double> geq_rate) const;

    /// One lane of a cross-trial batched evaluation: a trial's state
    /// views and its output spans.
    struct EvalLane {
        NodeVoltages v;
        NodeVoltages dvdt;
        bool with_rate = false;
        std::span<double> geq;
        std::span<double> geq_rate;
    };

    /// Evaluate every lane through the compiled per-class SoA kernels in
    /// one batched entry (trial-batched Monte-Carlo).  Lanes run
    /// sequentially over the shared gather scratch — each lane's
    /// arithmetic is exactly eval_chords on its own state, so batched
    /// evaluation is bit-identical to per-trial evaluation.
    void eval_chords_multi(std::span<const EvalLane> lanes) const {
        for (const EvalLane& lane : lanes) {
            eval_chords(lane.v, lane.dvdt, lane.with_rate, lane.geq,
                        lane.geq_rate);
        }
    }

    // ---- per-step restamps (into the frozen-pattern value array) ------

    /// SWEC chord stamps: values[slot] += ±geq[k] over precomputed pairs.
    void apply_swec(std::span<const double> geq, std::span<double> values,
                    Stamper& fallback) const;

    /// Newton-Raphson linearisation at x: evaluate every device's
    /// tangent + Norton current and scatter both (matrix slots + rhs
    /// rows).
    void apply_nr(std::span<const double> x, std::span<double> values,
                  linalg::Vector& rhs, Stamper& fallback) const;

    /// Time-varying linear device stamps at time t.
    void apply_time_varying(double t, std::span<double> values,
                            Stamper& fallback) const;

    /// True when apply_nortons covers every nonlinear device (all of
    /// them stamp the standard two-node Norton pair).
    [[nodiscard]] bool norton_fast() const noexcept { return norton_fast_; }

    /// PWL Norton stamps: per device k, conductance g[k] over its pair
    /// slots and ∓ioff[k] on its principal rhs rows.
    void apply_nortons(std::span<const double> g,
                       std::span<const double> ioff,
                       std::span<double> values, linalg::Vector& rhs) const;

    /// True when add_swec_gdiag covers every time-varying and nonlinear
    /// device (no unrecognised classes).
    [[nodiscard]] bool gdiag_fast() const noexcept { return gdiag_fast_; }

    /// True when eval_rhs covers the circuit: only V/I sources write the
    /// source vector and every device class is recognised as rhs-inert.
    [[nodiscard]] bool rhs_fast() const noexcept { return rhs_fast_; }

    /// Device half of the eq. (12) step bound: min over devices of their
    /// step_limit.  The chord-rate classes (RTD/diode/nanowire/RTT) reuse
    /// the geq/geq_rate values of the current step — the exact quantities
    /// Device::step_limit would re-derive from the same state — so no
    /// model re-evaluation happens; MOSFETs use their (transcendental-
    /// free) V_GS bound; unrecognised classes go through the virtual.
    [[nodiscard]] double device_step_bound(const NodeVoltages& v,
                                           const NodeVoltages& dvdt,
                                           std::span<const double> geq,
                                           std::span<const double> geq_rate,
                                           double eps) const;

    /// Source vector b(t) (+ realized noise injections) into `out` —
    /// replicates MnaAssembler::rhs without the scratch MnaBuilder and
    /// the virtual stamp_rhs sweep over every device.  Sources are read
    /// through their device handles, so sweep-swapped stimuli are seen.
    void eval_rhs(double t, const MnaAssembler::NoiseRealization* noise,
                  linalg::Vector& out) const;

    /// ADD the node-diagonal conductance contributions of time-varying
    /// devices (at time t) and SWEC chords `geq` to gdiag — the eq. (12)
    /// step-bound input, replacing the legacy scratch-builder pass.
    void add_swec_gdiag(double t, std::span<const double> geq,
                        std::span<double> gdiag) const;

    // ---- tabulated models --------------------------------------------

    /// Attach tables for every tabulatable device (get-or-build through
    /// `store`).  Returns the number of tables actually built.
    std::size_t bind_tables(TableStore& store, const TableConfig& cfg);

    /// Detach tables — evaluation returns to the exact closed forms.
    void unbind_tables() noexcept { tables_on_ = false; }

    [[nodiscard]] bool tables_bound() const noexcept { return tables_on_; }

    /// Devices currently evaluating through a table (for reporting).
    [[nodiscard]] std::size_t tabulated_devices() const noexcept;

private:
    /// Concrete class of a nonlinear device (typeid-exact, so user
    /// subclasses of the known models stay on the generic path).
    enum class Kind : std::uint8_t {
        rtd,
        diode,
        nanowire,
        mosfet,
        rtt,
        generic,
    };

    /// Slots of a two-terminal conductance stamp between nodes (a, b):
    /// +g at (a,a), (b,b); -g at (a,b), (b,a); k_npos = row dropped
    /// (ground terminal).  Scatter order matches MnaBuilder/CoordStamper
    /// call order for bit-identical accumulation.
    struct Pair {
        std::size_t aa = k_npos;
        std::size_t bb = k_npos;
        std::size_t ab = k_npos;
        std::size_t ba = k_npos;
    };

    static void scatter_pair(const Pair& p, double g,
                             double* values) noexcept {
        if (p.aa != k_npos) {
            values[p.aa] += g;
        }
        if (p.bb != k_npos) {
            values[p.bb] += g;
        }
        if (p.ab != k_npos) {
            values[p.ab] += -g;
            values[p.ba] += -g;
        }
    }

    /// rhs_current(a, -ieq); rhs_current(b, +ieq) with ground dropped.
    static void scatter_rhs_pair(std::ptrdiff_t a_row, std::ptrdiff_t b_row,
                                 double ieq, linalg::Vector& rhs) noexcept {
        if (a_row >= 0) {
            rhs[static_cast<std::size_t>(a_row)] += -ieq;
        }
        if (b_row >= 0) {
            rhs[static_cast<std::size_t>(b_row)] += +ieq;
        }
    }

    [[nodiscard]] Pair make_pair(NodeId a, NodeId b,
                                 const SlotFn& slot_of) const;
    [[nodiscard]] std::size_t require_slot(const SlotFn& slot_of,
                                           std::size_t row,
                                           std::size_t col) const;

    const MnaAssembler* assembler_;

    // ---- per nonlinear device, in assembler.nonlinear_devices() order
    std::vector<Kind> kind_;
    std::vector<std::uint32_t> class_pos_; ///< index into the class SoA
    std::vector<Pair> pair_;               ///< principal conductance pair
    std::vector<std::ptrdiff_t> diag_a_;   ///< node-diag rows (-1 = ground)
    std::vector<std::ptrdiff_t> diag_b_;
    std::vector<std::ptrdiff_t> rhs_a_;    ///< principal rhs rows
    std::vector<std::ptrdiff_t> rhs_b_;

    // ---- per-class SoA evaluation plans ------------------------------
    struct RtdSoA {
        std::vector<const Rtd*> dev;
        /// Parameter copies, contiguous — the eval loop reads them
        /// without chasing per-device heap pointers.  Safe because any
        /// parameter mutation requires a reassemble/rebind (which also
        /// refreshes the cache's static baselines), and rebind rebuilds
        /// the program.
        std::vector<RtdParams> params;
        std::vector<NodeId> pos, neg;
        /// Terminal slots into the ground-padded voltage array (slot 0
        /// reads exactly 0.0) — the vectorised gather of eval_chords.
        std::vector<std::uint32_t> pos_slot, neg_slot;
        std::vector<std::uint32_t> idx;
        std::vector<const ChordTable*> table;
    };
    struct DiodeSoA {
        std::vector<const Diode*> dev;
        std::vector<NodeId> pos, neg;
        std::vector<std::uint32_t> pos_slot, neg_slot;
        std::vector<std::uint32_t> idx;
        std::vector<const ChordTable*> table;
    };
    struct WireSoA {
        std::vector<const Nanowire*> dev;
        std::vector<NodeId> pos, neg;
        std::vector<std::uint32_t> pos_slot, neg_slot;
        std::vector<std::uint32_t> idx;
        std::vector<const ChordTable*> table;
    };
    struct MosSoA {
        std::vector<const Mosfet*> dev;
        std::vector<NodeId> drain, gate, source;
        std::vector<std::uint32_t> idx;
        /// NR entry slots, order (d,g)(d,s)(d,d)(s,g)(s,s)(s,d).
        std::vector<std::array<std::size_t, 6>> nr_slot;
    };
    struct RttSoA {
        std::vector<const Rtt*> dev;
        std::vector<NodeId> collector, base, emitter;
        std::vector<std::uint32_t> idx;
        /// NR entry slots, order (c,c)(c,e)(c,b)(e,c)(e,e)(e,b).
        std::vector<std::array<std::size_t, 6>> nr_slot;
    };
    struct GenericEntry {
        const Device* dev = nullptr;
        std::uint32_t idx = 0;
        int branch_base = 0;
    };
    RtdSoA rtds_;
    DiodeSoA diodes_;
    WireSoA wires_;
    MosSoA mosfets_;
    RttSoA rtts_;
    std::vector<GenericEntry> generics_;

    // ---- time-varying devices, in assembler order ---------------------
    struct TvEntry {
        const TimeVaryingConductor* fast = nullptr; ///< null = fallback
        const Device* dev = nullptr;
        int branch_base = 0;
        Pair pair;
        std::ptrdiff_t diag_a = -1;
        std::ptrdiff_t diag_b = -1;
    };
    std::vector<TvEntry> tv_;

    // ---- compiled rhs plan (sources only, in circuit device order) ----
    struct RhsSource {
        const VSource* vs = nullptr; ///< exactly one of vs/is is set
        const ISource* is = nullptr;
        std::size_t branch_row = 0;  ///< VSource branch row
        std::ptrdiff_t pos_row = -1; ///< ISource node rows (-1 = ground)
        std::ptrdiff_t neg_row = -1;
    };
    struct RhsNoise { ///< parallel to assembler.noise_sources()
        std::ptrdiff_t pos_row = -1;
        std::ptrdiff_t neg_row = -1;
    };
    std::vector<RhsSource> rhs_sources_;
    std::vector<RhsNoise> rhs_noise_;
    std::size_t unknowns_ = 0;
    bool rhs_fast_ = true;

    bool norton_fast_ = true;
    bool gdiag_fast_ = true;
    bool tables_on_ = false;
    // ---- vectorised eval scratch (eval_chords) ------------------------
    // vpad_/dpad_: ground-padded copies of the step's node voltages /
    // rates (index 0 = ground = 0.0, node i at index i) so terminal
    // lookups become branch-free gathers; vd_/vdot_: the per-class
    // contiguous terminal differences the model loops then read.
    mutable std::vector<double> vpad_, dpad_, vd_, vdot_;
    /// Pins the shared tables the SoA raw pointers refer to.
    std::vector<std::shared_ptr<const ChordTable>> table_refs_;
};

} // namespace nanosim::mna

#endif // NANOSIM_MNA_STAMP_PROGRAM_HPP
