#include "mna/system_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <new>
#include <optional>
#include <utility>

#include "linalg/lu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/failpoints.hpp"
#include "util/flops.hpp"

namespace nanosim::mna {

namespace {

/// `linalg.factor_alloc` fail point: simulate an allocation failure
/// inside a factorisation (the catch below turns real and injected
/// bad_allocs alike into a diagnosed AnalysisError).
void maybe_inject_factor_alloc() {
    if (failpoints::enabled()) {
        static auto& fp = failpoints::site("linalg.factor_alloc");
        if (fp.fire()) {
            throw std::bad_alloc();
        }
    }
}

/// Accumulate a scope's wall time into one Stats field (the per-step
/// analyze/eval/stamp/factor/solve attribution).  steady_clock::now()
/// costs tens of nanoseconds — noise next to a restamp or a
/// factorisation.  `span_name` doubles as an obs trace span (a no-op
/// object unless tracing is on); `hist` (optional) receives the scope
/// duration in seconds — resolve it behind obs::metrics_enabled().
class ScopedTimer {
public:
    explicit ScopedTimer(double& acc, const char* span_name = "cache",
                         obs::Histogram* hist = nullptr) noexcept
        : span_(span_name, "cache"),
          acc_(&acc),
          hist_(hist),
          t0_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0_)
                              .count();
        *acc_ += dt;
        if (hist_ != nullptr) {
            hist_->observe(dt);
        }
    }

private:
    obs::Span span_; // first member: brackets the timed scope
    double* acc_;
    obs::Histogram* hist_;
    std::chrono::steady_clock::time_point t0_;
};

/// Maps device-level stamps onto matrix coordinates exactly like
/// MnaBuilder (ground rows dropped, node n -> row n-1, branch b -> row
/// num_nodes + b), forwarding to entry()/rhs_add() hooks.  Shared by the
/// pattern dry-run recorder and the per-step scatter stamper.
class CoordStamper : public Stamper {
public:
    explicit CoordStamper(int num_nodes) : num_nodes_(num_nodes) {}

    void conductance(NodeId a, NodeId b, double g) override {
        if (a != k_ground) {
            entry(node_row(a), node_row(a), g);
        }
        if (b != k_ground) {
            entry(node_row(b), node_row(b), g);
        }
        if (a != k_ground && b != k_ground) {
            entry(node_row(a), node_row(b), -g);
            entry(node_row(b), node_row(a), -g);
        }
    }

    void conductance_entry(NodeId row, NodeId col, double g) override {
        if (row == k_ground || col == k_ground) {
            return;
        }
        entry(node_row(row), node_row(col), g);
    }

    void capacitance(NodeId, NodeId, double) override {
        // The C matrix is frozen at assembly time; a reactive stamp in a
        // per-step restamp would be a device-model bug.
        throw AnalysisError(
            "SystemCache: capacitance() is not a per-step stamp");
    }

    void rhs_current(NodeId node, double i) override {
        if (node == k_ground) {
            return;
        }
        rhs_add(node_row(node), i);
    }

    void branch_incidence(NodeId node, int branch, double sign) override {
        if (node == k_ground) {
            return;
        }
        entry(node_row(node), branch_row(branch), sign);
    }

    void branch_voltage_coeff(int branch, NodeId node,
                              double coeff) override {
        if (node == k_ground) {
            return;
        }
        entry(branch_row(branch), node_row(node), coeff);
    }

    void branch_reactive(int, int, double) override {
        throw AnalysisError(
            "SystemCache: branch_reactive() is not a per-step stamp");
    }

    void branch_rhs(int branch, double value) override {
        rhs_add(branch_row(branch), value);
    }

protected:
    virtual void entry(std::size_t row, std::size_t col, double value) = 0;
    virtual void rhs_add(std::size_t row, double value) = 0;

private:
    [[nodiscard]] std::size_t node_row(NodeId n) const noexcept {
        return static_cast<std::size_t>(n - 1);
    }
    [[nodiscard]] std::size_t branch_row(int b) const noexcept {
        return static_cast<std::size_t>(num_nodes_ + b);
    }

    int num_nodes_;
};

/// Dry-run stamper: records which coordinates a stamp source touches.
class PatternRecorder final : public CoordStamper {
public:
    PatternRecorder(int num_nodes,
                    std::vector<std::pair<std::size_t, std::size_t>>& coords)
        : CoordStamper(num_nodes), coords_(&coords) {}

protected:
    void entry(std::size_t row, std::size_t col, double) override {
        coords_->emplace_back(row, col);
    }
    void rhs_add(std::size_t, double) override {}

private:
    std::vector<std::pair<std::size_t, std::size_t>>* coords_;
};

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
union_stamp_pattern(const MnaAssembler& assembler) {
    const auto n = static_cast<std::size_t>(assembler.unknowns());
    std::vector<std::pair<std::size_t, std::size_t>> coords;
    for (const auto& e : assembler.static_g().entries()) {
        coords.emplace_back(e.row, e.col);
    }
    for (const auto& e : assembler.c_triplets().entries()) {
        coords.emplace_back(e.row, e.col);
    }
    // Node diagonals are always structural: the SWEC DC continuation adds
    // pseudo-capacitances there, and keeping them guarantees a pivot slot
    // for every KCL row.
    for (int i = 0; i < assembler.num_nodes(); ++i) {
        const auto r = static_cast<std::size_t>(i);
        coords.emplace_back(r, r);
    }
    PatternRecorder recorder(assembler.num_nodes(), coords);
    assembler.stamp_time_varying_into(0.0, recorder);
    const std::size_t nl = assembler.nonlinear_devices().size();
    if (nl > 0) {
        const std::vector<double> geq(nl, 1.0);
        assembler.stamp_swec_into(geq, recorder);
        const linalg::Vector x0(n, 0.0);
        assembler.stamp_nr_into(x0, recorder);
    }
    // CSC order: by column, then row; duplicates collapse.
    std::sort(coords.begin(), coords.end(),
              [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second < b.second
                                              : a.first < b.first;
              });
    coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
    return coords;
}

namespace {

/// FNV-1a accumulator shared by the signature functions (they must emit
/// bit-identical hashes for the same coordinate stream).
struct Fnv1a {
    std::uint64_t h = 14695981039346656037ULL;
    void mix(std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffULL;
            h *= 1099511628211ULL;
        }
    }
};

} // namespace

std::uint64_t stamp_pattern_signature(
    std::size_t unknowns,
    const std::vector<std::pair<std::size_t, std::size_t>>& coords) {
    Fnv1a fnv;
    fnv.mix(static_cast<std::uint64_t>(unknowns));
    for (const auto& [row, col] : coords) {
        fnv.mix(static_cast<std::uint64_t>(row));
        fnv.mix(static_cast<std::uint64_t>(col));
    }
    return fnv.h;
}

std::uint64_t stamp_pattern_signature(const MnaAssembler& assembler) {
    return stamp_pattern_signature(
        static_cast<std::size_t>(assembler.unknowns()),
        union_stamp_pattern(assembler));
}

/// Per-step stamper: scatters matrix writes into the cached slot array
/// and rhs writes into the vector bound by begin().
class SystemCache::ScatterStamper final : public CoordStamper {
public:
    ScatterStamper(SystemCache& owner, int num_nodes)
        : CoordStamper(num_nodes), owner_(&owner) {}

    void bind(linalg::Vector* rhs) noexcept { rhs_ = rhs; }

protected:
    void entry(std::size_t row, std::size_t col, double value) override {
        owner_->add_entry(row, col, value);
    }
    void rhs_add(std::size_t row, double value) override {
        (*rhs_)[row] += value;
    }

private:
    SystemCache* owner_;
    linalg::Vector* rhs_ = nullptr;
};

SystemCache::SystemCache(const MnaAssembler& assembler, Options options)
    // Union pattern dry-run: everything any engine may stamp per step.
    // Signature 0 = "hash the frozen pattern for me" (at construction
    // the frozen pattern IS the union pattern, in the same CSC order).
    : SystemCache(assembler, options, union_stamp_pattern(assembler), 0) {}

SystemCache::SystemCache(
    const MnaAssembler& assembler, Options options,
    std::vector<std::pair<std::size_t, std::size_t>> coords,
    std::uint64_t signature)
    : assembler_(&assembler),
      options_(options),
      n_(static_cast<std::size_t>(assembler.unknowns())),
      signature_(signature) {
    freeze_pattern(std::move(coords));
    if (signature_ == 0) {
        signature_ = frozen_pattern_signature();
    }
    stamper_ = std::make_unique<ScatterStamper>(*this, assembler.num_nodes());
    if (dense_path()) {
        dense_ = linalg::DenseMatrix(n_, n_);
    }
}

std::uint64_t SystemCache::frozen_pattern_signature() const {
    // Identical stream to stamp_pattern_signature(n, coords): CSC
    // traversal yields (row, col) pairs sorted by column then row —
    // exactly union_stamp_pattern's order.
    Fnv1a fnv;
    fnv.mix(static_cast<std::uint64_t>(n_));
    for (std::size_t c = 0; c < n_; ++c) {
        for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
            fnv.mix(static_cast<std::uint64_t>(row_idx_[p]));
            fnv.mix(static_cast<std::uint64_t>(c));
        }
    }
    return fnv.h;
}

void SystemCache::rebind(const MnaAssembler& assembler) {
    if (static_cast<std::size_t>(assembler.unknowns()) != n_) {
        throw AnalysisError(
            "SystemCache::rebind: unknown count changed; build a fresh "
            "cache");
    }
    std::vector<std::pair<std::size_t, std::size_t>> coords =
        union_stamp_pattern(assembler);
    bool fits = true;
    for (const auto& [row, col] : coords) {
        if (row >= n_ || col >= n_ || slot_of(row, col) == k_npos) {
            fits = false;
            break;
        }
    }
    assembler_ = &assembler;
    signature_ = stamp_pattern_signature(n_, coords);
    if (fits) {
        // Same structure (possibly a subset of an overflow-extended
        // pattern): keep the symbolic analysis and ordering, refresh the
        // value baselines only.  The next solve is a numeric refactor.
        // The stamp program still recompiles — it caches device pointers
        // and parameter addresses of the assembler it was built against.
        const ScopedTimer timer(stats_.analyze_s, "analyze");
        refresh_baselines();
        rebuild_program();
    } else {
        freeze_pattern(std::move(coords));
    }
}

SystemCache::~SystemCache() = default;

void SystemCache::set_factor_threads(int threads) {
    const int want = threads > 0 ? threads : 1;
    options_.factor_threads = want;
    if (want <= 1) {
        if (lu_) {
            lu_->set_refactor_pool(nullptr);
        }
        factor_pool_.reset();
        return;
    }
    if (!factor_pool_ ||
        factor_pool_->size() != static_cast<std::size_t>(want)) {
        if (lu_) { // detach before the old pool is torn down
            lu_->set_refactor_pool(nullptr);
        }
        factor_pool_ = std::make_unique<runtime::ThreadPool>(want);
    }
    if (lu_) {
        lu_->set_refactor_pool(factor_pool_.get());
    }
}

void SystemCache::freeze_pattern(
    std::vector<std::pair<std::size_t, std::size_t>> coords) {
    // The symbolic-analysis bucket: pattern freeze + ordering selection
    // + StampProgram compilation (the previously unattributed first-step
    // cost the CLI "step time:" line under-counted).
    const ScopedTimer timer(stats_.analyze_s, "analyze");
    // CSC order: by column, then row; duplicates collapse.
    std::sort(coords.begin(), coords.end(),
              [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second < b.second
                                              : a.first < b.first;
              });
    coords.erase(std::unique(coords.begin(), coords.end()), coords.end());

    col_ptr_.assign(n_ + 1, 0);
    row_idx_.clear();
    row_idx_.reserve(coords.size());
    for (const auto& [row, col] : coords) {
        if (row >= n_ || col >= n_) {
            throw AnalysisError("SystemCache: stamp coordinate out of range");
        }
        row_idx_.push_back(row);
        ++col_ptr_[col + 1];
    }
    for (std::size_t c = 0; c < n_; ++c) {
        col_ptr_[c + 1] += col_ptr_[c];
    }

    diag_slots_.resize(
        static_cast<std::size_t>(assembler_->num_nodes()));
    for (std::size_t i = 0; i < diag_slots_.size(); ++i) {
        diag_slots_[i] = slot_of(i, i); // always structural (union pattern)
    }

    refresh_baselines();
    lu_.reset(); // symbolic analysis is tied to the pattern
    choose_ordering();
    rebuild_program();
}

void SystemCache::rebuild_program() {
    program_.reset();
    if (!options_.use_stamp_program) {
        return;
    }
    program_ = std::make_unique<StampProgram>(
        *assembler_, [this](std::size_t row, std::size_t col) {
            const std::size_t s = slot_of(row, col);
            return s == k_npos ? StampProgram::k_npos : s;
        });
}

void SystemCache::refresh_baselines() {
    // Baseline slot arrays (static G and C in pattern order).
    static_values_.assign(row_idx_.size(), 0.0);
    for (const auto& e : assembler_->static_g().entries()) {
        static_values_[slot_of(e.row, e.col)] += e.value;
    }
    c_values_.assign(row_idx_.size(), 0.0);
    for (const auto& e : assembler_->c_triplets().entries()) {
        c_values_[slot_of(e.row, e.col)] += e.value;
    }
    values_.assign(row_idx_.size(), 0.0);
}

void SystemCache::choose_ordering() {
    stats_.pattern_nnz = row_idx_.size();
    ordering_ = linalg::Permutation{};
    stats_.ordering = linalg::Ordering::natural;
    stats_.predicted_fill_natural = 0;
    stats_.predicted_fill_chosen = 0;
    stats_.factor_nnz = 0; // stale until the new pattern's LU exists
    if (dense_path()) {
        return; // dense LU has no fill to reduce
    }

    const std::size_t fill_natural =
        linalg::predicted_fill(n_, col_ptr_, row_idx_);
    stats_.predicted_fill_natural = fill_natural;
    stats_.predicted_fill_chosen = fill_natural;

    auto adopt = [&](linalg::Ordering which, linalg::Permutation perm,
                     std::size_t fill) {
        stats_.ordering = which;
        stats_.predicted_fill_chosen = fill;
        ordering_ = std::move(perm);
    };

    switch (options_.ordering) {
    case linalg::Ordering::natural:
        return;
    case linalg::Ordering::rcm: {
        linalg::Permutation rcm =
            linalg::reverse_cuthill_mckee(n_, col_ptr_, row_idx_);
        const std::size_t fill =
            linalg::predicted_fill(n_, col_ptr_, row_idx_, rcm);
        adopt(linalg::Ordering::rcm, std::move(rcm), fill);
        return;
    }
    case linalg::Ordering::min_degree: {
        linalg::Permutation md =
            linalg::min_degree_ordering(n_, col_ptr_, row_idx_);
        const std::size_t fill =
            linalg::predicted_fill(n_, col_ptr_, row_idx_, md);
        adopt(linalg::Ordering::min_degree, std::move(md), fill);
        return;
    }
    case linalg::Ordering::automatic:
        break;
    }

    // Auto-select: least predicted fill wins; natural keeps ties (it is
    // free — no gather, no rhs permutation).
    linalg::Permutation rcm =
        linalg::reverse_cuthill_mckee(n_, col_ptr_, row_idx_);
    const std::size_t fill_rcm =
        linalg::predicted_fill(n_, col_ptr_, row_idx_, rcm);
    linalg::Permutation md =
        linalg::min_degree_ordering(n_, col_ptr_, row_idx_);
    const std::size_t fill_md =
        linalg::predicted_fill(n_, col_ptr_, row_idx_, md);
    if (fill_md < fill_natural && fill_md <= fill_rcm) {
        adopt(linalg::Ordering::min_degree, std::move(md), fill_md);
    } else if (fill_rcm < fill_natural) {
        adopt(linalg::Ordering::rcm, std::move(rcm), fill_rcm);
    }
}

std::size_t SystemCache::slot_of(std::size_t row,
                                 std::size_t col) const noexcept {
    const auto begin = row_idx_.begin() +
                       static_cast<std::ptrdiff_t>(col_ptr_[col]);
    const auto end = row_idx_.begin() +
                     static_cast<std::ptrdiff_t>(col_ptr_[col + 1]);
    const auto it = std::lower_bound(begin, end, row);
    if (it == end || *it != row) {
        return k_npos;
    }
    return static_cast<std::size_t>(it - row_idx_.begin());
}

Stamper& SystemCache::begin(double reactive_scale, linalg::Vector& rhs) {
    if (rhs.size() != n_) {
        throw AnalysisError("SystemCache::begin: rhs size mismatch");
    }
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    overflow_.clear();
    for (std::size_t s = 0; s < values_.size(); ++s) {
        values_[s] = static_values_[s] + reactive_scale * c_values_[s];
    }
    bound_rhs_ = &rhs;
    stamper_->bind(&rhs);
    return *stamper_;
}

void SystemCache::eval_chords(std::span<const double> x,
                              std::span<const double> dvdt, bool with_rate,
                              std::span<double> geq,
                              std::span<double> geq_rate) {
    const ScopedTimer timer(stats_.eval_s, "eval");
    const NodeVoltages v = assembler_->view(x);
    const NodeVoltages rate_view = assembler_->view(dvdt);
    if (program_ != nullptr) {
        program_->eval_chords(v, rate_view, with_rate, geq, geq_rate);
        return;
    }
    const auto& nonlinear = assembler_->nonlinear_devices();
    for (std::size_t k = 0; k < nonlinear.size(); ++k) {
        geq[k] = nonlinear[k]->swec_conductance(v);
        if (!geq_rate.empty()) {
            geq_rate[k] =
                with_rate
                    ? nonlinear[k]->swec_conductance_rate(v, rate_view)
                    : 0.0;
        }
    }
}

linalg::Vector
SystemCache::rhs(double t, const MnaAssembler::NoiseRealization* noise) {
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    if (program_ != nullptr && program_->rhs_fast()) {
        linalg::Vector out;
        program_->eval_rhs(t, noise, out);
        return out;
    }
    return assembler_->rhs(t, noise);
}

void SystemCache::restamp_time_varying(double t) {
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    if (program_ != nullptr) {
        program_->apply_time_varying(t, values_, *stamper_);
    } else {
        assembler_->stamp_time_varying_into(t, *stamper_);
    }
}

void SystemCache::restamp_swec(std::span<const double> geq) {
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    if (program_ != nullptr) {
        program_->apply_swec(geq, values_, *stamper_);
    } else {
        assembler_->stamp_swec_into(geq, *stamper_);
    }
}

void SystemCache::restamp_nr(std::span<const double> x) {
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    if (program_ != nullptr) {
        if (bound_rhs_ == nullptr) {
            throw AnalysisError("SystemCache::restamp_nr: no begin() rhs");
        }
        program_->apply_nr(x, values_, *bound_rhs_, *stamper_);
    } else {
        assembler_->stamp_nr_into(x, *stamper_);
    }
}

void SystemCache::restamp_nortons(std::span<const double> g,
                                  std::span<const double> ioff) {
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    if (!norton_fast() || bound_rhs_ == nullptr) {
        throw AnalysisError(
            "SystemCache::restamp_nortons: norton fast path unavailable");
    }
    program_->apply_nortons(g, ioff, values_, *bound_rhs_);
}

void SystemCache::add_node_diag(std::size_t node_row, double value) {
    values_[diag_slots_[node_row]] += value;
}

void SystemCache::swec_gdiag(double t, std::span<const double> geq,
                             std::span<double> gdiag) {
    const ScopedTimer timer(stats_.stamp_s, "stamp");
    if (program_ != nullptr && program_->gdiag_fast()) {
        program_->add_swec_gdiag(t, geq, gdiag);
        return;
    }
    // Legacy pass: stamp time-varying + SWEC contributions into a
    // scratch builder and keep the node-diagonal entries (exactly the
    // historical per-step block of run_tran_swec).
    const auto nn = static_cast<std::size_t>(assembler_->num_nodes());
    MnaBuilder scratch(assembler_->num_nodes(), assembler_->num_branches());
    assembler_->stamp_time_varying_into(t, scratch);
    assembler_->stamp_swec_into(geq, scratch);
    for (const auto& e : scratch.g().entries()) {
        if (e.row == e.col && e.row < nn) {
            gdiag[e.row] += e.value;
        }
    }
}

double SystemCache::device_step_bound(std::span<const double> x,
                                      std::span<const double> dvdt,
                                      std::span<const double> geq,
                                      std::span<const double> geq_rate,
                                      double eps) {
    const ScopedTimer timer(stats_.eval_s, "eval");
    const NodeVoltages v = assembler_->view(x);
    const NodeVoltages rate = assembler_->view(dvdt);
    if (program_ != nullptr) {
        return program_->device_step_bound(v, rate, geq, geq_rate, eps);
    }
    double bound = std::numeric_limits<double>::infinity();
    for (const Device* dev : assembler_->nonlinear_devices()) {
        bound = std::min(bound, dev->step_limit(v, rate, eps));
    }
    return bound;
}

void SystemCache::configure_tables(const TableConfig& cfg) {
    if (program_ == nullptr) {
        return; // legacy baseline: closed forms only
    }
    if (!cfg.enabled) {
        program_->unbind_tables();
        bound_table_cfg_ = cfg;
        return;
    }
    if (program_->tables_bound() && cfg == bound_table_cfg_) {
        return; // shared across MC trials / sweep points: nothing to do
    }
    stats_.tables_built += program_->bind_tables(table_store_, cfg);
    bound_table_cfg_ = cfg;
}

void SystemCache::add_entry(std::size_t row, std::size_t col, double value) {
    const std::size_t s = slot_of(row, col);
    if (s == k_npos) {
        // Outside the frozen pattern: buffer it; solve() falls back to
        // the triplet path for this step and re-freezes the pattern.
        overflow_.push_back(linalg::Triplet{row, col, value});
        return;
    }
    values_[s] += value;
}

linalg::Vector SystemCache::solve(const linalg::Vector& rhs) {
    ++stats_.steps;

    if (failpoints::enabled()) {
        // `linalg.singular_pivot`: a pivot collapsed below tolerance —
        // exactly the SingularMatrixError the factoriser raises itself.
        static auto& fp_pivot = failpoints::site("linalg.singular_pivot");
        if (fp_pivot.fire()) {
            throw SingularMatrixError(
                "fail-point linalg.singular_pivot fired");
        }
        // `mna.pattern_overflow`: force the escaped-the-frozen-pattern
        // slow path (triplet solve + pattern re-freeze) with a no-op
        // stamp — the value plane is unchanged.
        static auto& fp_overflow = failpoints::site("mna.pattern_overflow");
        if (fp_overflow.fire() && overflow_.empty() && n_ > 0) {
            overflow_.push_back(linalg::Triplet{0, 0, 0.0});
        }
    }

    // Factor-time distribution (metrics on only): registered once, then
    // the cached reference is a couple of relaxed atomics per solve.
    obs::Histogram* factor_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& h =
            obs::metrics().histogram("cache.factor_s", obs::time_buckets());
        factor_hist = &h;
    }

    if (!overflow_.empty()) {
        linalg::Vector x;
        std::vector<std::pair<std::size_t, std::size_t>> coords;
        {
            const ScopedTimer timer(stats_.factor_s, "factor", factor_hist);
            linalg::Triplets t(n_, n_);
            for (std::size_t c = 0; c < n_; ++c) {
                for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
                    t.add(row_idx_[p], c, values_[p]);
                }
            }
            coords.reserve(row_idx_.size() + overflow_.size());
            for (std::size_t c = 0; c < n_; ++c) {
                for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
                    coords.emplace_back(row_idx_[p], c);
                }
            }
            for (const auto& o : overflow_) {
                t.add(o.row, o.col, o.value);
                coords.emplace_back(o.row, o.col);
            }
            overflow_.clear();
            x = solve_system(t, rhs, options_.dense_threshold);
        }
        // The re-freeze bills its own time to analyze_s (it IS symbolic
        // analysis), so it runs outside the factor scope.
        freeze_pattern(std::move(coords));
        ++stats_.pattern_rebuilds;
        if (obs::metrics_enabled()) {
            static obs::Counter& c =
                obs::metrics().counter("cache.pattern_rebuilds");
            c.inc();
        }
        return x;
    }

    if (dense_path()) {
        std::optional<linalg::DenseLu> lu;
        try {
            const ScopedTimer timer(stats_.factor_s, "factor", factor_hist);
            maybe_inject_factor_alloc();
            dense_.set_zero();
            for (std::size_t c = 0; c < n_; ++c) {
                for (std::size_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
                    dense_(row_idx_[p], c) += values_[p];
                }
            }
            lu.emplace(dense_, options_.pivot_tol);
        } catch (const std::bad_alloc&) {
            throw AnalysisError(
                "SystemCache::solve: factor allocation failed");
        }
        ++stats_.dense_solves;
        const ScopedTimer timer(stats_.solve_s, "solve");
        return lu->solve(rhs);
    }

    try {
        // The ScopedTimer bills this block's WALL time on the calling
        // thread.  The parallel refactor's per-worker durations appear
        // as "factor.level" trace spans only — summing them here would
        // report factor_s > elapsed_s on multi-core.
        const ScopedTimer timer(stats_.factor_s, "factor", factor_hist);
        maybe_inject_factor_alloc();
        if (!lu_) {
            // The legacy (no-program) baseline also keeps the seed's
            // column-vector factor storage, so benches measuring
            // "program vs legacy" compare whole per-step hot paths.
            lu_ = std::make_unique<linalg::SparseLu>(
                n_, col_ptr_, row_idx_, std::span<const double>(values_),
                ordering_, options_.pivot_tol,
                options_.use_stamp_program
                    ? linalg::FactorStorage::flat
                    : linalg::FactorStorage::columns);
            if (options_.factor_threads > 1 && !factor_pool_) {
                factor_pool_ = std::make_unique<runtime::ThreadPool>(
                    options_.factor_threads);
            }
            lu_->set_refactor_pool(factor_pool_.get());
            ++stats_.full_factors;
        } else if (lu_->refactor(std::span<const double>(values_))) {
            ++stats_.fast_refactors;
        } else {
            ++stats_.full_factors;
            ++stats_.pivot_fallbacks;
            if (obs::metrics_enabled()) {
                static obs::Counter& c =
                    obs::metrics().counter("cache.pivot_fallbacks");
                c.inc();
            }
        }
    } catch (const std::bad_alloc&) {
        // A half-built factor must not be trusted by the next refactor.
        lu_.reset();
        throw AnalysisError("SystemCache::solve: factor allocation failed");
    }
    // Re-read every step: a degraded-pivot fallback re-pivots and can
    // change the factor fill (O(n) column-size sum — noise next to the
    // solve) and reshape the level schedule.
    stats_.factor_nnz = lu_->nnz_factors();
    stats_.factor_threads =
        factor_pool_ ? factor_pool_->size() : std::size_t{1};
    stats_.factor_supernodes = lu_->supernode_count();
    stats_.factor_levels = lu_->level_count();
    const ScopedTimer timer(stats_.solve_s, "solve");
    return lu_->solve(rhs);
}

bool SystemCache::capture_plane(std::vector<double>& out) const {
    if (!overflow_.empty()) {
        return false; // the step escaped the frozen pattern: solve inline
    }
    out.assign(values_.begin(), values_.end());
    return true;
}

void SystemCache::eval_chords_batch(std::span<const EvalLane> lanes) {
    const ScopedTimer timer(stats_.eval_s, "eval");
    if (program_ != nullptr) {
        std::vector<StampProgram::EvalLane> plan(lanes.size());
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            plan[i] = StampProgram::EvalLane{
                .v = assembler_->view(lanes[i].x),
                .dvdt = assembler_->view(lanes[i].dvdt),
                .with_rate = lanes[i].with_rate,
                .geq = lanes[i].geq,
                .geq_rate = lanes[i].geq_rate};
        }
        program_->eval_chords_multi(plan);
        return;
    }
    // Legacy fallback: the virtual per-device sweep, lane by lane —
    // exactly eval_chords' loop on each lane's state.
    const auto& nonlinear = assembler_->nonlinear_devices();
    for (const EvalLane& lane : lanes) {
        const NodeVoltages v = assembler_->view(lane.x);
        const NodeVoltages rate_view = assembler_->view(lane.dvdt);
        for (std::size_t k = 0; k < nonlinear.size(); ++k) {
            lane.geq[k] = nonlinear[k]->swec_conductance(v);
            if (!lane.geq_rate.empty()) {
                lane.geq_rate[k] =
                    lane.with_rate
                        ? nonlinear[k]->swec_conductance_rate(v, rate_view)
                        : 0.0;
            }
        }
    }
}

void SystemCache::solve_batch(std::span<SolveLane> lanes) {
    if (lanes.empty()) {
        return;
    }

    // Serial replay of one lane: restore its stamped plane and run the
    // ordinary solve(), which bills steps/factors/fallbacks itself —
    // the deterministic fallback whenever the batch path cannot serve
    // the round (and the reason batched results can never diverge from
    // the serial driver's).
    auto replay = [&](SolveLane& lane) {
        values_.assign(lane.values.begin(), lane.values.end());
        lane.x = solve(lane.rhs);
    };

    const bool can_batch = !dense_path() && lu_ != nullptr &&
                           lu_->storage() == linalg::FactorStorage::flat;
    if (!can_batch) {
        for (SolveLane& lane : lanes) {
            replay(lane);
        }
        return;
    }

    obs::Histogram* factor_hist = nullptr;
    if (obs::metrics_enabled()) {
        static obs::Histogram& h =
            obs::metrics().histogram("cache.factor_s", obs::time_buckets());
        factor_hist = &h;
    }

    // Group lanes whose value planes are bit-identical (linear circuits,
    // RHS-only noise perturbations): one factor serves the whole group
    // through the blocked multi-RHS substitution.
    const std::size_t m = lanes.size();
    std::vector<std::size_t> group_of(m);
    std::vector<std::size_t> reps; // first lane of each group
    for (std::size_t i = 0; i < m; ++i) {
        std::size_t g = reps.size();
        for (std::size_t r = 0; r < reps.size(); ++r) {
            const std::vector<double>& a = lanes[i].values;
            const std::vector<double>& b = lanes[reps[r]].values;
            if (a.size() == b.size() &&
                std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(double)) == 0) {
                g = r;
                break;
            }
        }
        if (g == reps.size()) {
            reps.push_back(i);
        }
        group_of[i] = g;
    }

    // One batched refactor dispatch for the round's representatives.
    std::vector<std::span<const double>> planes;
    planes.reserve(reps.size());
    for (const std::size_t r : reps) {
        planes.emplace_back(lanes[r].values);
    }
    std::vector<linalg::SparseLu::LaneFactor> factors(reps.size());
    std::vector<std::uint64_t> rep_flops(reps.size(), 0);
    bool ok = false;
    {
        const ScopedTimer timer(stats_.factor_s, "factor", factor_hist);
        ok = lu_->refactor_lanes(planes, factors, rep_flops);
    }
    if (!ok) {
        // A degraded pivot anywhere (or legacy storage): nothing was
        // billed; replay every lane in order so the pivot fallback runs
        // exactly where and how the serial driver would run it.
        for (SolveLane& lane : lanes) {
            replay(lane);
        }
        return;
    }

    // As-if-serial accounting: every lane is one step and one fast
    // refactor.  refactor_lanes billed the representatives' factor
    // flops; group members bill their representative's tally (identical
    // planes refactor with identical arithmetic), so totals equal m
    // serial solve() calls exactly.
    stats_.steps += m;
    stats_.fast_refactors += m;
    std::vector<std::uint8_t> is_rep(m, 0);
    for (const std::size_t r : reps) {
        is_rep[r] = 1;
    }
    auto& counter = current_flops();
    for (std::size_t i = 0; i < m; ++i) {
        if (is_rep[i] != 0) {
            continue;
        }
        const std::uint64_t f = rep_flops[group_of[i]];
        counter.lu_factor += f;
        counter.mul += f / 2;
        counter.add += f / 2;
    }

    {
        // Per group, ascending lane order: one blocked multi-RHS pass
        // under the shared factor.  solve_multi bills flops per rhs
        // column, so SolverWork stays comparable with the serial driver.
        const ScopedTimer timer(stats_.solve_s, "solve");
        std::vector<const linalg::Vector*> rhs_ptrs;
        std::vector<linalg::Vector*> out_ptrs;
        for (std::size_t g = 0; g < reps.size(); ++g) {
            rhs_ptrs.clear();
            out_ptrs.clear();
            for (std::size_t i = 0; i < m; ++i) {
                if (group_of[i] != g) {
                    continue;
                }
                rhs_ptrs.push_back(&lanes[i].rhs);
                out_ptrs.push_back(&lanes[i].x);
            }
            lu_->solve_multi(rhs_ptrs, out_ptrs, &factors[g]);
        }
    }
    stats_.batched_solves += m;
    stats_.shared_factor_solves += m - reps.size();

    // Lane refactors share the live symbolic analysis, so the schedule
    // shape is unchanged — refresh like solve() for consistency.
    stats_.factor_nnz = lu_->nnz_factors();
    stats_.factor_threads =
        factor_pool_ ? factor_pool_->size() : std::size_t{1};
    stats_.factor_supernodes = lu_->supernode_count();
    stats_.factor_levels = lu_->level_count();
}

} // namespace nanosim::mna
