// Nano-Sim — cached per-step MNA system with an in-place restamp path.
//
// The SWEC observation (paper Sec. 3): the sparsity pattern of the
// per-step linear system  (G_static + G_dynamic + s C) x = b  never
// changes during a transient — only the chord conductances and the
// reactive scale s = 1/h move.  The seed engines nevertheless rebuilt a
// fresh triplet list and re-ran the full symbolic LU every step.
//
// SystemCache fixes that end to end:
//
//  * at construction it dry-runs every stamp source the engines can apply
//    (static G, the C matrix, time-varying devices, SWEC chords, NR
//    linearisations, node-diagonal pseudo-elements) against the assembler
//    and freezes the UNION sparsity pattern as a CSC index;
//  * begin(scale, rhs) resets the value array to  static + scale * C  in
//    one linear pass and hands back a Stamper whose writes scatter
//    straight into the cached slots (binary search within one column) —
//    no triplets, no allocation;
//  * solve() auto-selects dense LU below `dense_threshold` unknowns and
//    otherwise factors once, then reuses the symbolic analysis through
//    SparseLu::refactor() on every later step;
//  * a stamp that misses the frozen pattern (possible only for exotic
//    devices whose stamp pattern changes at runtime) is not lost: it is
//    buffered, the step is solved through the legacy triplet path, and
//    the pattern is re-frozen including the new coordinates so subsequent
//    steps are fast again.
//
// Engines own one SystemCache per analysis loop; the struct Stats counters
// let tests assert the fast path actually ran (full_factors stays at 1
// while fast_refactors counts the steps).
#ifndef NANOSIM_MNA_SYSTEM_CACHE_HPP
#define NANOSIM_MNA_SYSTEM_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "devices/tabulated.hpp"
#include "linalg/dense.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse_lu.hpp"
#include "mna/mna.hpp"
#include "mna/stamp_program.hpp"

namespace nanosim::mna {

/// Union stamp-pattern coordinates of an assembled circuit — every
/// matrix coordinate any engine may touch in a per-step restamp (static
/// G, the C matrix, node diagonals for pseudo-elements, time-varying
/// devices, SWEC chords, NR linearisations) — sorted CSC-style (column
/// major, then row) and deduplicated.  This is the pattern a SystemCache
/// freezes at construction.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
union_stamp_pattern(const MnaAssembler& assembler);

/// 64-bit FNV-1a signature of union_stamp_pattern(assembler) plus the
/// unknown count — the key under which a SimSession files its persistent
/// SystemCache instances.  Two assemblies with equal signatures produce
/// per-step systems of identical sparsity structure, so one symbolic LU
/// analysis serves both.
[[nodiscard]] std::uint64_t
stamp_pattern_signature(const MnaAssembler& assembler);

/// Same signature from an already-computed union pattern (must be the
/// sorted/deduplicated output of union_stamp_pattern) — lets callers
/// that need both the coordinates and the key pay the dry-run once.
[[nodiscard]] std::uint64_t stamp_pattern_signature(
    std::size_t unknowns,
    const std::vector<std::pair<std::size_t, std::size_t>>& coords);

/// Pattern-frozen per-step system: restamp values in place, solve through
/// a cached (dense or pattern-reusing sparse) factorisation.  On the
/// sparse path the cache additionally selects a fill-reducing node
/// ordering at pattern-freeze time (linalg/ordering.hpp): RCM and
/// minimum-degree candidates are scored by predicted factor fill against
/// natural order, and the winner is baked into the SparseLu's symbolic
/// analysis — 2-D mesh / power-grid topologies keep their refactor cost
/// near-linear instead of re-paying O(n^1.5) fill every accepted step.
class SystemCache {
public:
    struct Options {
        /// At or below this many unknowns the dense LU path is used
        /// (mirrors mna::solve_system's auto-select).
        std::size_t dense_threshold = 64;
        double pivot_tol = 1e-13;
        /// Node ordering for the sparse path.  `automatic` compares
        /// predicted fill of natural vs RCM vs minimum-degree at freeze
        /// time; the explicit values force one (tests / benches).
        linalg::Ordering ordering = linalg::Ordering::automatic;
        /// Compile a StampProgram at pattern-freeze time (the default):
        /// per-step restamps and chord evaluations run through flat
        /// slot/SoA plans with zero virtual dispatch.  `false` keeps the
        /// legacy virtual-stamping path — the benches' baseline, bit-
        /// identical to the program by contract.
        bool use_stamp_program = true;
        /// Worker threads for the level-scheduled parallel refactor
        /// (flat sparse path only).  1 = serial; >1 lazily spawns an
        /// owned pool and attaches it to the SparseLu.  Results are
        /// bit-identical at any value — the schedule fixes the
        /// arithmetic, threads only change who executes it.
        int factor_threads = 1;
    };

    explicit SystemCache(const MnaAssembler& assembler)
        : SystemCache(assembler, Options{}) {}
    SystemCache(const MnaAssembler& assembler, Options options);
    /// Construct from an already-computed union pattern (the exact
    /// output of union_stamp_pattern(assembler) with its signature) —
    /// callers that key a registry by signature pay the stamp dry-run
    /// once instead of twice (SimSession).
    SystemCache(const MnaAssembler& assembler, Options options,
                std::vector<std::pair<std::size_t, std::size_t>> coords,
                std::uint64_t signature);
    ~SystemCache();

    SystemCache(const SystemCache&) = delete;
    SystemCache& operator=(const SystemCache&) = delete;

    /// Start a step:  A := G_static + reactive_scale * C.  Dynamic rhs
    /// contributions written through the returned Stamper accumulate into
    /// `rhs` (which the caller pre-fills with sources etc.).  The
    /// reference stays valid until the next begin().
    Stamper& begin(double reactive_scale, linalg::Vector& rhs);

    /// Direct matrix-coordinate add (row/col already in MNA numbering) —
    /// for per-node pseudo-elements such as the SWEC DC continuation's
    /// artificial capacitance.  Only valid between begin() and solve().
    void add_entry(std::size_t row, std::size_t col, double value);

    /// Factor (first step, or after a pattern extension) or refactor, and
    /// solve for the current values.  `rhs` is the vector passed to
    /// begin() after all dynamic contributions.
    [[nodiscard]] linalg::Vector solve(const linalg::Vector& rhs);

    // ---- trial-batched solves (trial-batched Monte-Carlo) -------------

    /// Copy the currently stamped value plane (frozen-pattern order)
    /// into `out` so the system can be solved later via solve_batch.
    /// Returns false when this step overflowed the frozen pattern — the
    /// caller must solve that lane inline through solve() instead.
    [[nodiscard]] bool capture_plane(std::vector<double>& out) const;

    /// One lane of a batched deferred solve: a captured value plane, its
    /// rhs, and the solution written back by solve_batch.
    struct SolveLane {
        std::vector<double> values;
        linalg::Vector rhs;
        linalg::Vector x;
    };

    /// Solve every lane's system in one call.  On the sparse flat path
    /// the numeric refactors of all lanes run through one
    /// SparseLu::refactor_lanes dispatch (lane-parallel on the factor
    /// pool), lanes with bit-identical value planes share one factor
    /// through the blocked multi-RHS substitution, and counters/flops
    /// are billed exactly as K serial solve() calls would bill them.
    /// Any lane the batch path cannot serve (dense path, no live
    /// factorisation yet, legacy storage, or a degraded pivot in any
    /// lane) is replayed through the serial solve() in lane order, so
    /// results and Stats stay bit-identical to the serial driver.
    void solve_batch(std::span<SolveLane> lanes);

    /// One lane of a batched cross-trial chord evaluation.
    struct EvalLane {
        std::span<const double> x;
        std::span<const double> dvdt;
        bool with_rate = false;
        std::span<double> geq;
        std::span<double> geq_rate;
    };

    /// eval_chords for every lane in one batched entry (the compiled
    /// StampProgram SoA kernels run lane by lane over shared scratch —
    /// arithmetic identical to per-lane eval_chords).  Time lands in
    /// Stats::eval_s once for the whole batch.
    void eval_chords_batch(std::span<const EvalLane> lanes);

    // ---- engine-facing fast paths ------------------------------------
    // Each method routes through the compiled StampProgram when one
    // exists and falls back to the legacy virtual stamping path
    // otherwise, so engines contain a single code path.  The restamp_*
    // calls are only valid between begin() and solve().

    /// True when per-step work runs through a compiled StampProgram.
    [[nodiscard]] bool has_program() const noexcept {
        return program_ != nullptr;
    }

    /// Chord conductances (and rates when `with_rate`) of every
    /// nonlinear device at state x, parallel to nonlinear_devices().
    /// Usable outside begin()/solve().  Time lands in Stats::eval_s.
    void eval_chords(std::span<const double> x,
                     std::span<const double> dvdt, bool with_rate,
                     std::span<double> geq, std::span<double> geq_rate);

    /// Source vector b(t) — the compiled rhs plan (sources only, no
    /// scratch builder, no virtual sweep over rhs-inert devices) when
    /// available, MnaAssembler::rhs otherwise.  Usable outside
    /// begin()/solve().
    [[nodiscard]] linalg::Vector
    rhs(double t,
        const MnaAssembler::NoiseRealization* noise = nullptr);

    /// Restamp all time-varying linear devices at time t.
    void restamp_time_varying(double t);

    /// Restamp SWEC chord conductances (parallel to nonlinear_devices()).
    void restamp_swec(std::span<const double> geq);

    /// Restamp the Newton-Raphson linearisation at trial point x
    /// (tangents into the matrix, Norton currents into the rhs bound by
    /// begin()).
    void restamp_nr(std::span<const double> x);

    /// True when restamp_nortons covers every nonlinear device (PWL
    /// fast path; requires a program).
    [[nodiscard]] bool norton_fast() const noexcept {
        return program_ != nullptr && program_->norton_fast();
    }

    /// Restamp per-device Norton pairs (PWL): conductance g[k] across
    /// device k's principal nodes, offset current ioff[k] into its rhs
    /// rows.  Only valid when norton_fast().
    void restamp_nortons(std::span<const double> g,
                         std::span<const double> ioff);

    /// values[(row,row)] += value via the precomputed node-diagonal slot
    /// (the SWEC DC continuation's pseudo-capacitance; no slot search).
    void add_node_diag(std::size_t node_row, double value);

    /// ADD the node-diagonal conductance sums of time-varying stamps at
    /// time t plus SWEC chords `geq` into gdiag (size num_nodes) — the
    /// eq. (12) step-bound input.
    void swec_gdiag(double t, std::span<const double> geq,
                    std::span<double> gdiag);

    /// Device half of the eq. (12) step bound at state x.  With a
    /// program, the chord-rate device classes reuse the step's already-
    /// evaluated geq/geq_rate (no model re-evaluation); the legacy
    /// fallback is the historical virtual Device::step_limit sweep.
    [[nodiscard]] double device_step_bound(std::span<const double> x,
                                           std::span<const double> dvdt,
                                           std::span<const double> geq,
                                           std::span<const double> geq_rate,
                                           double eps);

    /// Enable/disable tabulated chord models for eval_chords.  Tables
    /// are built once per (device class, params, grid) through the
    /// cache's TableStore and shared across every later analysis that
    /// re-enables the same config (Monte-Carlo trials, sweep points).
    /// Ignored on caches without a program (the legacy baseline).
    void configure_tables(const TableConfig& cfg);

    /// Devices currently evaluating through a table.
    [[nodiscard]] std::size_t tabulated_devices() const noexcept {
        return program_ != nullptr ? program_->tabulated_devices() : 0;
    }

    struct Stats {
        std::size_t steps = 0;            ///< solve() calls
        std::size_t full_factors = 0;     ///< symbolic + pivoting factors
        std::size_t fast_refactors = 0;   ///< pattern-reusing refactors
        std::size_t dense_solves = 0;     ///< dense-path solves
        std::size_t pattern_rebuilds = 0; ///< overflow-triggered re-freezes
        /// refactor() detected pivot degradation and fell back to a full
        /// re-pivoting factorisation (a subset of full_factors after the
        /// first one).
        std::size_t pivot_fallbacks = 0;
        // ---- ordering decision (sparse path; natural/0 on dense) ----
        linalg::Ordering ordering = linalg::Ordering::natural; ///< chosen
        std::size_t pattern_nnz = 0;           ///< frozen pattern nonzeros
        std::size_t predicted_fill_natural = 0;///< symbolic L+U, natural
        std::size_t predicted_fill_chosen = 0; ///< symbolic L+U, chosen
        std::size_t factor_nnz = 0;            ///< actual L+U of the LU
        // ---- per-step wall-time attribution (seconds, cumulative) ----
        // analyze_s: symbolic analysis — pattern freeze, fill-reducing
        // ordering selection, StampProgram compilation (freeze_pattern /
        // rebind; the numeric half of the first LU stays in factor_s);
        // eval_s: device-model evaluation (eval_chords); stamp_s: begin()
        // baselines + restamps + gdiag; factor_s: LU factor/refactor
        // (incl. dense build+factor and overflow rebuilds); solve_s:
        // triangular solves.  NR restamps are fused eval+stamp and land
        // in stamp_s.
        double analyze_s = 0.0;
        double eval_s = 0.0;
        double stamp_s = 0.0;
        double factor_s = 0.0;
        double solve_s = 0.0;
        std::size_t tables_built = 0; ///< ChordTable builds by this cache
        // ---- trial-batched solve path (solve_batch; 0 when unused) ----
        std::size_t batched_solves = 0; ///< lanes served by solve_batch
        /// Lanes that reused another lane's factor through the multi-RHS
        /// substitution instead of refactoring (identical value planes —
        /// linear circuits / RHS-only noise perturbations).
        std::size_t shared_factor_solves = 0;
        // ---- parallel-refactor shape (sparse flat path; 0 on dense) ----
        std::size_t factor_threads = 1;   ///< workers the factor path uses
        std::size_t factor_supernodes = 0;///< supernodes in the schedule
        std::size_t factor_levels = 0;    ///< levels in the schedule
    };
    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

    /// The ordering the sparse path will factor with (natural until the
    /// pattern is frozen on a sparse system).
    [[nodiscard]] linalg::Ordering chosen_ordering() const noexcept {
        return stats_.ordering;
    }

    [[nodiscard]] std::size_t unknowns() const noexcept { return n_; }
    [[nodiscard]] std::size_t pattern_nnz() const noexcept {
        return row_idx_.size();
    }
    /// Signature of the union stamp pattern this cache was built (or
    /// last rebound) against — equals stamp_pattern_signature(assembler).
    [[nodiscard]] std::uint64_t signature() const noexcept {
        return signature_;
    }
    /// The assembler the cache currently reads baselines from.
    [[nodiscard]] const MnaAssembler* bound_assembler() const noexcept {
        return assembler_;
    }

    /// Re-point the cache at a (re-)assembled circuit.  When the new
    /// assembly's union stamp pattern fits inside the frozen pattern the
    /// symbolic LU analysis and ordering survive — only the static/
    /// reactive baselines are refreshed (a parameter tweak + reassemble
    /// costs a numeric refactor, not a new symbolic analysis).  A
    /// pattern that no longer fits triggers a full re-freeze.  Throws
    /// AnalysisError when the unknown count changed (the cache cannot be
    /// salvaged; build a fresh one).
    void rebind(const MnaAssembler& assembler);
    /// True when this system is small enough for the dense auto-select.
    [[nodiscard]] bool dense_path() const noexcept {
        return n_ <= options_.dense_threshold;
    }

    /// Re-target the parallel factor path at `threads` workers (1 =
    /// serial, releasing any pool).  Safe between steps; the attached
    /// SparseLu keeps its symbolic analysis and factors bit-identically
    /// under the new thread count.
    void set_factor_threads(int threads);
    [[nodiscard]] int factor_threads() const noexcept {
        return options_.factor_threads;
    }

private:
    class ScatterStamper;

    /// Freeze the union pattern from a coordinate list, refresh the
    /// static/reactive baseline slot arrays, and (sparse path) select the
    /// fill-reducing ordering for the new pattern.
    void freeze_pattern(std::vector<std::pair<std::size_t, std::size_t>> coords);

    /// Refill static_values_/c_values_ from the bound assembler (pattern
    /// unchanged) — the cheap half of a rebind.
    void refresh_baselines();

    /// (Re)compile the StampProgram against the current assembler and
    /// frozen pattern (no-op on the legacy baseline).  Any bound tables
    /// are dropped; the next configure_tables() re-attaches them from
    /// the store.
    void rebuild_program();

    /// FNV-1a of the frozen pattern, bit-compatible with
    /// stamp_pattern_signature (valid as the union signature only while
    /// the frozen pattern equals the union pattern, i.e. at freeze time).
    [[nodiscard]] std::uint64_t frozen_pattern_signature() const;

    /// Score natural/RCM/min-degree on the frozen pattern and stash the
    /// winner in ordering_ / stats_ (no-op on the dense path).
    void choose_ordering();

    /// Slot of (row, col) in the CSC pattern, or npos when absent.
    [[nodiscard]] std::size_t slot_of(std::size_t row,
                                      std::size_t col) const noexcept;

    static constexpr std::size_t k_npos = static_cast<std::size_t>(-1);

    const MnaAssembler* assembler_;
    Options options_;
    std::size_t n_ = 0;
    std::uint64_t signature_ = 0;

    // Frozen CSC pattern and the per-step value array (pattern order).
    std::vector<std::size_t> col_ptr_;
    std::vector<std::size_t> row_idx_;
    std::vector<double> values_;
    // Baselines in pattern order: A = static_values_ + scale * c_values_.
    std::vector<double> static_values_;
    std::vector<double> c_values_;

    // Stamps that missed the frozen pattern this step (rare; triggers the
    // legacy solve + a pattern re-freeze).
    std::vector<linalg::Triplet> overflow_;

    /// Node-diagonal slots (always structural), for add_node_diag.
    std::vector<std::size_t> diag_slots_;

    /// Compiled per-step execution plan (null on the legacy baseline).
    std::unique_ptr<StampProgram> program_;
    /// Shared chord tables + the config they were last bound under.
    TableStore table_store_;
    TableConfig bound_table_cfg_;

    /// rhs vector bound by the last begin() (restamp targets).
    linalg::Vector* bound_rhs_ = nullptr;

    std::unique_ptr<ScatterStamper> stamper_;
    linalg::Permutation ordering_; // empty = natural
    /// Owned worker pool for the parallel refactor (null when
    /// factor_threads <= 1); attached to lu_ via set_refactor_pool.
    std::unique_ptr<runtime::ThreadPool> factor_pool_;
    std::unique_ptr<linalg::SparseLu> lu_;
    linalg::DenseMatrix dense_; // dense-path work matrix
    Stats stats_;
};

} // namespace nanosim::mna

#endif // NANOSIM_MNA_SYSTEM_CACHE_HPP
