// Nano-Sim — cached per-step MNA system with an in-place restamp path.
//
// The SWEC observation (paper Sec. 3): the sparsity pattern of the
// per-step linear system  (G_static + G_dynamic + s C) x = b  never
// changes during a transient — only the chord conductances and the
// reactive scale s = 1/h move.  The seed engines nevertheless rebuilt a
// fresh triplet list and re-ran the full symbolic LU every step.
//
// SystemCache fixes that end to end:
//
//  * at construction it dry-runs every stamp source the engines can apply
//    (static G, the C matrix, time-varying devices, SWEC chords, NR
//    linearisations, node-diagonal pseudo-elements) against the assembler
//    and freezes the UNION sparsity pattern as a CSC index;
//  * begin(scale, rhs) resets the value array to  static + scale * C  in
//    one linear pass and hands back a Stamper whose writes scatter
//    straight into the cached slots (binary search within one column) —
//    no triplets, no allocation;
//  * solve() auto-selects dense LU below `dense_threshold` unknowns and
//    otherwise factors once, then reuses the symbolic analysis through
//    SparseLu::refactor() on every later step;
//  * a stamp that misses the frozen pattern (possible only for exotic
//    devices whose stamp pattern changes at runtime) is not lost: it is
//    buffered, the step is solved through the legacy triplet path, and
//    the pattern is re-frozen including the new coordinates so subsequent
//    steps are fast again.
//
// Engines own one SystemCache per analysis loop; the struct Stats counters
// let tests assert the fast path actually ran (full_factors stays at 1
// while fast_refactors counts the steps).
#ifndef NANOSIM_MNA_SYSTEM_CACHE_HPP
#define NANOSIM_MNA_SYSTEM_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/ordering.hpp"
#include "linalg/sparse_lu.hpp"
#include "mna/mna.hpp"

namespace nanosim::mna {

/// Union stamp-pattern coordinates of an assembled circuit — every
/// matrix coordinate any engine may touch in a per-step restamp (static
/// G, the C matrix, node diagonals for pseudo-elements, time-varying
/// devices, SWEC chords, NR linearisations) — sorted CSC-style (column
/// major, then row) and deduplicated.  This is the pattern a SystemCache
/// freezes at construction.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
union_stamp_pattern(const MnaAssembler& assembler);

/// 64-bit FNV-1a signature of union_stamp_pattern(assembler) plus the
/// unknown count — the key under which a SimSession files its persistent
/// SystemCache instances.  Two assemblies with equal signatures produce
/// per-step systems of identical sparsity structure, so one symbolic LU
/// analysis serves both.
[[nodiscard]] std::uint64_t
stamp_pattern_signature(const MnaAssembler& assembler);

/// Same signature from an already-computed union pattern (must be the
/// sorted/deduplicated output of union_stamp_pattern) — lets callers
/// that need both the coordinates and the key pay the dry-run once.
[[nodiscard]] std::uint64_t stamp_pattern_signature(
    std::size_t unknowns,
    const std::vector<std::pair<std::size_t, std::size_t>>& coords);

/// Pattern-frozen per-step system: restamp values in place, solve through
/// a cached (dense or pattern-reusing sparse) factorisation.  On the
/// sparse path the cache additionally selects a fill-reducing node
/// ordering at pattern-freeze time (linalg/ordering.hpp): RCM and
/// minimum-degree candidates are scored by predicted factor fill against
/// natural order, and the winner is baked into the SparseLu's symbolic
/// analysis — 2-D mesh / power-grid topologies keep their refactor cost
/// near-linear instead of re-paying O(n^1.5) fill every accepted step.
class SystemCache {
public:
    struct Options {
        /// At or below this many unknowns the dense LU path is used
        /// (mirrors mna::solve_system's auto-select).
        std::size_t dense_threshold = 64;
        double pivot_tol = 1e-13;
        /// Node ordering for the sparse path.  `automatic` compares
        /// predicted fill of natural vs RCM vs minimum-degree at freeze
        /// time; the explicit values force one (tests / benches).
        linalg::Ordering ordering = linalg::Ordering::automatic;
    };

    explicit SystemCache(const MnaAssembler& assembler)
        : SystemCache(assembler, Options{}) {}
    SystemCache(const MnaAssembler& assembler, Options options);
    /// Construct from an already-computed union pattern (the exact
    /// output of union_stamp_pattern(assembler) with its signature) —
    /// callers that key a registry by signature pay the stamp dry-run
    /// once instead of twice (SimSession).
    SystemCache(const MnaAssembler& assembler, Options options,
                std::vector<std::pair<std::size_t, std::size_t>> coords,
                std::uint64_t signature);
    ~SystemCache();

    SystemCache(const SystemCache&) = delete;
    SystemCache& operator=(const SystemCache&) = delete;

    /// Start a step:  A := G_static + reactive_scale * C.  Dynamic rhs
    /// contributions written through the returned Stamper accumulate into
    /// `rhs` (which the caller pre-fills with sources etc.).  The
    /// reference stays valid until the next begin().
    Stamper& begin(double reactive_scale, linalg::Vector& rhs);

    /// Direct matrix-coordinate add (row/col already in MNA numbering) —
    /// for per-node pseudo-elements such as the SWEC DC continuation's
    /// artificial capacitance.  Only valid between begin() and solve().
    void add_entry(std::size_t row, std::size_t col, double value);

    /// Factor (first step, or after a pattern extension) or refactor, and
    /// solve for the current values.  `rhs` is the vector passed to
    /// begin() after all dynamic contributions.
    [[nodiscard]] linalg::Vector solve(const linalg::Vector& rhs);

    struct Stats {
        std::size_t steps = 0;            ///< solve() calls
        std::size_t full_factors = 0;     ///< symbolic + pivoting factors
        std::size_t fast_refactors = 0;   ///< pattern-reusing refactors
        std::size_t dense_solves = 0;     ///< dense-path solves
        std::size_t pattern_rebuilds = 0; ///< overflow-triggered re-freezes
        // ---- ordering decision (sparse path; natural/0 on dense) ----
        linalg::Ordering ordering = linalg::Ordering::natural; ///< chosen
        std::size_t pattern_nnz = 0;           ///< frozen pattern nonzeros
        std::size_t predicted_fill_natural = 0;///< symbolic L+U, natural
        std::size_t predicted_fill_chosen = 0; ///< symbolic L+U, chosen
        std::size_t factor_nnz = 0;            ///< actual L+U of the LU
    };
    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

    /// The ordering the sparse path will factor with (natural until the
    /// pattern is frozen on a sparse system).
    [[nodiscard]] linalg::Ordering chosen_ordering() const noexcept {
        return stats_.ordering;
    }

    [[nodiscard]] std::size_t unknowns() const noexcept { return n_; }
    [[nodiscard]] std::size_t pattern_nnz() const noexcept {
        return row_idx_.size();
    }
    /// Signature of the union stamp pattern this cache was built (or
    /// last rebound) against — equals stamp_pattern_signature(assembler).
    [[nodiscard]] std::uint64_t signature() const noexcept {
        return signature_;
    }
    /// The assembler the cache currently reads baselines from.
    [[nodiscard]] const MnaAssembler* bound_assembler() const noexcept {
        return assembler_;
    }

    /// Re-point the cache at a (re-)assembled circuit.  When the new
    /// assembly's union stamp pattern fits inside the frozen pattern the
    /// symbolic LU analysis and ordering survive — only the static/
    /// reactive baselines are refreshed (a parameter tweak + reassemble
    /// costs a numeric refactor, not a new symbolic analysis).  A
    /// pattern that no longer fits triggers a full re-freeze.  Throws
    /// AnalysisError when the unknown count changed (the cache cannot be
    /// salvaged; build a fresh one).
    void rebind(const MnaAssembler& assembler);
    /// True when this system is small enough for the dense auto-select.
    [[nodiscard]] bool dense_path() const noexcept {
        return n_ <= options_.dense_threshold;
    }

private:
    class ScatterStamper;

    /// Freeze the union pattern from a coordinate list, refresh the
    /// static/reactive baseline slot arrays, and (sparse path) select the
    /// fill-reducing ordering for the new pattern.
    void freeze_pattern(std::vector<std::pair<std::size_t, std::size_t>> coords);

    /// Refill static_values_/c_values_ from the bound assembler (pattern
    /// unchanged) — the cheap half of a rebind.
    void refresh_baselines();

    /// FNV-1a of the frozen pattern, bit-compatible with
    /// stamp_pattern_signature (valid as the union signature only while
    /// the frozen pattern equals the union pattern, i.e. at freeze time).
    [[nodiscard]] std::uint64_t frozen_pattern_signature() const;

    /// Score natural/RCM/min-degree on the frozen pattern and stash the
    /// winner in ordering_ / stats_ (no-op on the dense path).
    void choose_ordering();

    /// Slot of (row, col) in the CSC pattern, or npos when absent.
    [[nodiscard]] std::size_t slot_of(std::size_t row,
                                      std::size_t col) const noexcept;

    static constexpr std::size_t k_npos = static_cast<std::size_t>(-1);

    const MnaAssembler* assembler_;
    Options options_;
    std::size_t n_ = 0;
    std::uint64_t signature_ = 0;

    // Frozen CSC pattern and the per-step value array (pattern order).
    std::vector<std::size_t> col_ptr_;
    std::vector<std::size_t> row_idx_;
    std::vector<double> values_;
    // Baselines in pattern order: A = static_values_ + scale * c_values_.
    std::vector<double> static_values_;
    std::vector<double> c_values_;

    // Stamps that missed the frozen pattern this step (rare; triggers the
    // legacy solve + a pattern re-freeze).
    std::vector<linalg::Triplet> overflow_;

    std::unique_ptr<ScatterStamper> stamper_;
    linalg::Permutation ordering_; // empty = natural
    std::unique_ptr<linalg::SparseLu> lu_;
    linalg::DenseMatrix dense_; // dense-path work matrix
    Stats stats_;
};

} // namespace nanosim::mna

#endif // NANOSIM_MNA_SYSTEM_CACHE_HPP
